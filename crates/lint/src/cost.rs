//! Abstract I/O cost analysis over a [`StaticPrediction`].
//!
//! [`cost_model`] annotates the static graphs with the numbers an
//! optimizer wants *before any byte is written*: per-task and per-stage
//! predicted bytes moved, physical op counts under the configured
//! [`IoEngineConfig`] (one coalesced submission can absorb many scalar
//! requests), per-stage dataset working sets against a cache capacity,
//! and the **symbolic critical path** — the heaviest producer→consumer
//! chain through the sSDG, walked over the graph's stable
//! [`topo_order`](dayu_analyzer::graph::Graph::topo_order).
//!
//! The same longest-path walk is exposed over an arbitrary simulator DAG
//! as [`plan_critical_path_bytes`], which is how `dayu_core::auto`
//! scores a transformed plan: re-run the walk on the rewritten task
//! list, compare predicted critical-path bytes, and rank or reject the
//! candidate — the static half of the what-if plan search.

use crate::static_graph::StaticPrediction;
use dayu_analyzer::graph::NodeKind;
use dayu_sim::SimTask;
use dayu_vfd::IoEngineConfig;
use std::collections::HashMap;

/// Knobs of the abstract cost model.
#[derive(Clone, Debug)]
pub struct CostConfig {
    /// The I/O engine the plan would run under: scalar mode issues one
    /// request per [`request_bytes`](CostConfig::request_bytes), batched
    /// mode coalesces a contiguous run up to `max_coalesced_bytes` per
    /// physical op.
    pub engine: IoEngineConfig,
    /// Assumed application request granularity for scalar dispatch.
    pub request_bytes: u64,
    /// Per-node cache capacity the per-stage working sets are judged
    /// against (`0` disables the working-set verdicts).
    pub cache_bytes: u64,
}

impl Default for CostConfig {
    fn default() -> Self {
        Self {
            engine: IoEngineConfig::default(),
            request_bytes: 64 << 10,
            cache_bytes: 64 << 20,
        }
    }
}

impl CostConfig {
    /// Physical ops needed to move one contiguous `len`-byte run.
    pub fn ops_for_run(&self, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let unit = if self.engine.is_batched() && self.engine.coalesce {
            self.engine.max_coalesced_bytes.max(1)
        } else {
            self.request_bytes.max(1)
        };
        len.div_ceil(unit)
    }
}

/// Predicted cost of one task.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct TaskCost {
    /// Task name.
    pub task: String,
    /// Stage index.
    pub stage: usize,
    /// Predicted raw bytes read.
    pub bytes_read: u64,
    /// Predicted raw bytes written.
    pub bytes_written: u64,
    /// Predicted physical op count under the configured engine.
    pub ops: u64,
    /// Modeled compute time.
    pub compute_ns: u64,
}

impl TaskCost {
    /// Total predicted bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Predicted cost of one stage (its tasks may run in parallel).
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct StageCost {
    /// Stage name.
    pub stage: String,
    /// Task count.
    pub tasks: usize,
    /// Sum of the stage's predicted reads.
    pub bytes_read: u64,
    /// Sum of the stage's predicted writes.
    pub bytes_written: u64,
    /// Sum of the stage's predicted physical ops.
    pub ops: u64,
    /// The stage's heaviest task (most predicted bytes).
    pub critical_task: String,
    /// That task's predicted bytes.
    pub critical_bytes: u64,
    /// Bytes of datasets live during this stage.
    pub working_set: u64,
    /// Whether the working set exceeds the configured cache capacity.
    pub over_cache: bool,
}

/// The full cost annotation of a static prediction.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CostReport {
    /// Workflow name.
    pub workflow: String,
    /// Per-task costs, in stage order.
    pub tasks: Vec<TaskCost>,
    /// Per-stage costs, in execution order.
    pub stages: Vec<StageCost>,
    /// Total predicted bytes moved by the whole plan.
    pub total_bytes: u64,
    /// Total predicted physical ops.
    pub total_ops: u64,
    /// Predicted bytes along the heaviest dependent chain of the sSDG.
    pub critical_path_bytes: u64,
    /// Task names along that chain, in execution order.
    pub critical_path: Vec<String>,
}

impl CostReport {
    /// The cost entry of one task.
    pub fn task(&self, name: &str) -> Option<&TaskCost> {
        self.tasks.iter().find(|t| t.task == name)
    }
}

/// Runs the abstract cost model over a prediction.
pub fn cost_model(pred: &StaticPrediction, cfg: &CostConfig) -> CostReport {
    let tasks: Vec<TaskCost> = pred
        .tasks
        .iter()
        .map(|t| {
            let ops = t
                .accesses
                .iter()
                .flat_map(|a| a.read_runs.iter().chain(a.write_runs.iter()))
                .map(|r| cfg.ops_for_run(r.len()))
                .sum();
            TaskCost {
                task: t.name.clone(),
                stage: t.stage,
                bytes_read: t.bytes_read(),
                bytes_written: t.bytes_written(),
                ops,
                compute_ns: t.compute_ns,
            }
        })
        .collect();

    let stages: Vec<StageCost> = pred
        .stage_names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let members: Vec<&TaskCost> = tasks.iter().filter(|t| t.stage == i).collect();
            let critical = members.iter().max_by_key(|t| t.total_bytes());
            let working_set = pred
                .live_ranges
                .iter()
                .filter(|l| l.born <= i && i <= l.dies)
                .map(|l| l.bytes)
                .sum();
            StageCost {
                stage: name.clone(),
                tasks: members.len(),
                bytes_read: members.iter().map(|t| t.bytes_read).sum(),
                bytes_written: members.iter().map(|t| t.bytes_written).sum(),
                ops: members.iter().map(|t| t.ops).sum(),
                critical_task: critical.map(|t| t.task.clone()).unwrap_or_default(),
                critical_bytes: critical.map(|t| t.total_bytes()).unwrap_or(0),
                working_set,
                over_cache: cfg.cache_bytes > 0 && working_set > cfg.cache_bytes,
            }
        })
        .collect();

    let (critical_path_bytes, critical_path) = sdg_critical_path(pred, &tasks);

    CostReport {
        workflow: pred.workflow.clone(),
        total_bytes: tasks.iter().map(|t| t.total_bytes()).sum(),
        total_ops: tasks.iter().map(|t| t.ops).sum(),
        tasks,
        stages,
        critical_path_bytes,
        critical_path,
    }
}

/// Longest byte-weighted dependent chain through the sSDG: task nodes
/// weigh their predicted bytes, dataset/file nodes weigh nothing, and
/// the walk follows the graph's stable topological order.
fn sdg_critical_path(pred: &StaticPrediction, costs: &[TaskCost]) -> (u64, Vec<String>) {
    let g = &pred.sdg;
    let weight_of: HashMap<&str, u64> = costs
        .iter()
        .map(|t| (t.task.as_str(), t.total_bytes()))
        .collect();
    let n = g.nodes.len();
    if n == 0 {
        return (0, Vec::new());
    }
    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &g.edges {
        if e.from != e.to {
            incoming[e.to].push(e.from);
        }
    }
    let weight = |id: usize| -> u64 {
        let node = &g.nodes[id];
        if node.kind == NodeKind::Task {
            weight_of.get(node.label.as_str()).copied().unwrap_or(0)
        } else {
            0
        }
    };
    let mut dist = vec![0u64; n];
    let mut prev: Vec<Option<usize>> = vec![None; n];
    for id in g.topo_order() {
        let best = incoming[id].iter().copied().max_by_key(|&p| dist[p]);
        let base = best.map(|p| dist[p]).unwrap_or(0);
        dist[id] = base + weight(id);
        prev[id] = best.filter(|&p| dist[p] > 0);
    }
    let Some(end) = (0..n).max_by_key(|&id| dist[id]) else {
        return (0, Vec::new());
    };
    let mut path = Vec::new();
    let mut cur = Some(end);
    while let Some(id) = cur {
        if g.nodes[id].kind == NodeKind::Task {
            path.push(g.nodes[id].label.clone());
        }
        cur = prev[id];
    }
    path.reverse();
    (dist[end], path)
}

/// Longest byte-weighted chain through a simulator plan DAG: each task
/// weighs [`SimTask::total_io_bytes`], edges are its `deps`. This is the
/// cost the optimizer compares across candidate plans — a transform that
/// grows it made the predicted bottleneck worse, whatever it did to
/// total traffic.
pub fn plan_critical_path_bytes(tasks: &[SimTask]) -> (u64, Vec<String>) {
    let n = tasks.len();
    if n == 0 {
        return (0, Vec::new());
    }
    // Tasks reference deps by index; a well-formed plan lists a task
    // after its deps, so one forward pass is a topological walk. Guard
    // against forward references by iterating until stable (bounded).
    let mut dist: Vec<u64> = vec![0; n];
    let mut prev: Vec<Option<usize>> = vec![None; n];
    for _ in 0..n {
        let mut changed = false;
        for (i, t) in tasks.iter().enumerate() {
            let best = t
                .deps
                .iter()
                .copied()
                .filter(|&d| d < n && d != i)
                .max_by_key(|&d| dist[d]);
            let base = best.map(|d| dist[d]).unwrap_or(0);
            let w = base + t.total_io_bytes();
            if w > dist[i] {
                dist[i] = w;
                prev[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let Some(end) = (0..n).max_by_key(|&i| dist[i]) else {
        return (0, Vec::new());
    };
    let mut path = Vec::new();
    let mut cur = Some(end);
    while let Some(i) = cur {
        path.push(tasks[i].name.clone());
        cur = prev[i];
    }
    path.reverse();
    (dist[end], path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_sim::SimOp;
    use dayu_workflow::contract::{AffineExpr, IoContract, SymExtent};
    use dayu_workflow::spec::{TaskSpec, WorkflowSpec};

    fn pipeline_spec() -> WorkflowSpec {
        // w writes 64 KiB; two readers consume it; a heavy reducer reads
        // both readers' outputs.
        let w = TaskSpec::new("w", |_| Ok(())).with_contract(IoContract::new().writes(
            "a.h5",
            "/d",
            SymExtent::bytes(0, 64 << 10),
        ));
        let reader = |name: &str, out: &str, bytes: u64| {
            TaskSpec::new(name, |_| Ok(())).with_contract(
                IoContract::new()
                    .reads("a.h5", "/d", SymExtent::bytes(0, 64 << 10))
                    .writes(out, "/o", SymExtent::bytes(0, bytes)),
            )
        };
        let reduce = TaskSpec::new("reduce", |_| Ok(())).with_contract(
            IoContract::new()
                .reads("b0.h5", "/o", SymExtent::bytes(0, 128 << 10))
                .reads("b1.h5", "/o", SymExtent::bytes(0, 8 << 10)),
        );
        WorkflowSpec::new("pipe")
            .stage("produce", vec![w])
            .stage(
                "map",
                vec![
                    reader("big", "b0.h5", 128 << 10),
                    reader("small", "b1.h5", 8 << 10),
                ],
            )
            .stage("reduce", vec![reduce])
    }

    #[test]
    fn per_task_and_per_stage_costs_add_up() {
        let pred = StaticPrediction::from_spec(&pipeline_spec());
        let report = cost_model(&pred, &CostConfig::default());
        assert_eq!(report.task("w").unwrap().bytes_written, 64 << 10);
        assert_eq!(report.task("big").unwrap().bytes_read, 64 << 10);
        assert_eq!(report.task("big").unwrap().bytes_written, 128 << 10);
        let map = &report.stages[1];
        assert_eq!(map.tasks, 2);
        assert_eq!(map.bytes_read, 128 << 10);
        assert_eq!(map.bytes_written, 136 << 10);
        assert_eq!(map.critical_task, "big");
        assert_eq!(
            report.total_bytes,
            report.tasks.iter().map(|t| t.total_bytes()).sum::<u64>()
        );
    }

    #[test]
    fn batched_engine_needs_fewer_ops() {
        let pred = StaticPrediction::from_spec(&pipeline_spec());
        let scalar = cost_model(
            &pred,
            &CostConfig {
                request_bytes: 4096,
                ..CostConfig::default()
            },
        );
        let batched = cost_model(
            &pred,
            &CostConfig {
                engine: IoEngineConfig::batched(),
                request_bytes: 4096,
                ..CostConfig::default()
            },
        );
        assert!(batched.total_ops < scalar.total_ops);
        // 64 KiB at 4 KiB requests = 16 scalar ops; one 1 MiB-cap
        // coalesced op swallows the run whole.
        assert_eq!(scalar.task("w").unwrap().ops, 16);
        assert_eq!(batched.task("w").unwrap().ops, 1);
    }

    #[test]
    fn critical_path_follows_the_heavy_chain() {
        let pred = StaticPrediction::from_spec(&pipeline_spec());
        let report = cost_model(&pred, &CostConfig::default());
        // w → big → reduce outweighs w → small → reduce.
        assert_eq!(report.critical_path, vec!["w", "big", "reduce"]);
        let expect = report.task("w").unwrap().total_bytes()
            + report.task("big").unwrap().total_bytes()
            + report.task("reduce").unwrap().total_bytes();
        assert_eq!(report.critical_path_bytes, expect);
    }

    #[test]
    fn working_sets_judge_cache_capacity() {
        let pred = StaticPrediction::from_spec(&pipeline_spec());
        let tight = cost_model(
            &pred,
            &CostConfig {
                cache_bytes: 16 << 10,
                ..CostConfig::default()
            },
        );
        assert!(tight.stages.iter().any(|s| s.over_cache));
        let roomy = cost_model(&pred, &CostConfig::default());
        assert!(roomy.stages.iter().all(|s| !s.over_cache));
        // /d is live from stage 0 through stage 1 (its readers).
        assert!(tight.stages[0].working_set >= 64 << 10);
        assert!(tight.stages[1].working_set >= 64 << 10);
    }

    #[test]
    fn plan_walk_agrees_with_graph_walk() {
        let pred = StaticPrediction::from_spec(&pipeline_spec());
        let report = cost_model(&pred, &CostConfig::default());
        let (bytes, path) = plan_critical_path_bytes(&pred.to_sim_tasks());
        assert_eq!(bytes, report.critical_path_bytes);
        assert_eq!(path, report.critical_path);
    }

    #[test]
    fn plan_walk_scores_transformed_plans() {
        let pred = StaticPrediction::from_spec(&pipeline_spec());
        let mut tasks = pred.to_sim_tasks();
        let (before, _) = plan_critical_path_bytes(&tasks);
        // Eliding the heavy intermediate's writes shrinks the chain.
        let big = tasks.iter_mut().find(|t| t.name == "big").unwrap();
        big.program.retain(|op| !op.is_io());
        let (after, _) = plan_critical_path_bytes(&tasks);
        assert!(after < before);
        // Growing a task on the path grows it back.
        let big = tasks.iter_mut().find(|t| t.name == "big").unwrap();
        big.program.push(SimOp::write("b0.h5", 1 << 30));
        let (heavier, path) = plan_critical_path_bytes(&tasks);
        assert!(heavier > before);
        assert!(path.contains(&"big".to_owned()));
    }

    #[test]
    fn empty_prediction_costs_nothing() {
        let pred = StaticPrediction::from_spec(&WorkflowSpec::new("empty"));
        let report = cost_model(&pred, &CostConfig::default());
        assert_eq!(report.total_bytes, 0);
        assert_eq!(report.critical_path_bytes, 0);
        assert!(report.critical_path.is_empty());
        assert_eq!(plan_critical_path_bytes(&[]), (0, Vec::new()));
    }

    #[test]
    fn affine_chunk_partition_costs_are_exact() {
        // The bench synthetic shape: n writers each own a bound chunk.
        let i = AffineExpr::var("i");
        let mk = |idx: i64| {
            TaskSpec::new(format!("t{idx}"), |_| Ok(())).with_contract(
                IoContract::new().bind("i", idx).writes(
                    "f.h5",
                    "/d",
                    SymExtent::span(i.clone() * 4096, (i.clone() + 1) * 4096),
                ),
            )
        };
        let spec = WorkflowSpec::new("exact").stage("w", (0..4).map(mk).collect());
        let report = cost_model(&StaticPrediction::from_spec(&spec), &CostConfig::default());
        assert_eq!(report.total_bytes, 4 * 4096);
        assert_eq!(report.stages[0].critical_bytes, 4096);
    }
}
