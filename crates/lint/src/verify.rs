//! Pass 2 — the transform semantics-preservation verifier.
//!
//! The optimization transforms (`dayu_workflow::transform`) rewrite a
//! replay plan for speed; none of them may rewrite its *meaning*. The
//! verifier pins that down as two invariants checked across each call:
//!
//! 1. **No new hazards** — the hazard report of the rewritten plan must
//!    not contain findings the original plan did not already have.
//! 2. **No lost orderings** — every (producer, consumer, file)
//!    happens-before edge of the original plan must survive, unless the
//!    transform redirected the consumer away from the file (stage-in
//!    replicas) or removed one endpoint's access entirely.
//!
//! [`verified`] wraps a transform application in snapshot → apply → check
//! and rolls the plan back when the check fails, so an illegal
//! `parallelize(producer, consumer)` leaves the plan untouched.
//!
//! When the snapshot carries a footprint oracle, the check gains
//! address-level precision in both directions: plan-granularity race
//! regressions between tasks whose footprints are provably disjoint
//! are *discharged* (the rewrite is safe even though both touch the
//! file), while regressions whose footprints really collide are upgraded
//! to [`Finding::ExtentRace`] with the offending byte range — proof the
//! rewrite introduces a new extent race. Two oracles exist: the recorded
//! [`ExtentCatalog`] (dynamics — see [`verified_with_extents`]) and the
//! declared [`ContractCatalog`](crate::symbolic::ContractCatalog)
//! (semantics — see [`verified_with_contracts`], which needs no recorded
//! trace at all). A snapshot may carry both; contracts are consulted
//! first, recorded extents settle whatever the declarations left open.

use crate::extent::ExtentCatalog;
use crate::hazard::{analyze_sim_tasks, ancestors, plan_from_sim_tasks, Access, LintConfig};
use crate::model::{Finding, FindingKey, Report};
use crate::symbolic::{ContractCatalog, FootprintOracle};
use dayu_sim::program::SimTask;
use std::collections::BTreeSet;
use std::fmt;

/// The hazard/happens-before state of a plan before a transform runs.
#[derive(Clone, Debug)]
pub struct PlanSnapshot {
    /// Structural keys of findings already present before the transform
    /// (pre-existing defects are not the transform's fault).
    baseline: BTreeSet<FindingKey>,
    /// Every (producer, consumer, file) ordering the plan guarantees.
    orderings: BTreeSet<(String, String, String)>,
    cfg: LintConfig,
    /// Recorded per-(task, file) byte extents, when the plan replays a
    /// recorded trace. Enables extent-level refinement in [`check`].
    catalog: Option<ExtentCatalog>,
    /// Declared contract footprints, when the workflow spec carries
    /// [`IoContract`](dayu_workflow::IoContract)s. Consulted before the
    /// recorded catalog.
    contracts: Option<ContractCatalog>,
}

impl PlanSnapshot {
    /// Attaches recorded extent ground truth to the snapshot.
    pub fn with_extents(mut self, catalog: ExtentCatalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Attaches declared contract footprints to the snapshot.
    pub fn with_contracts(mut self, contracts: ContractCatalog) -> Self {
        self.contracts = Some(contracts);
        self
    }
}

/// All (producer, consumer, file) triples where the producer data-writes
/// the file, the consumer reads it, and the producer happens-before the
/// consumer.
fn orderings(tasks: &[SimTask]) -> BTreeSet<(String, String, String)> {
    let plan = plan_from_sim_tasks(tasks);
    let anc = ancestors(&plan);
    let mut out = BTreeSet::new();
    for (c, consumer) in plan.iter().enumerate() {
        let reads: BTreeSet<&str> = consumer
            .accesses
            .iter()
            .filter(|(_, a)| *a == Access::Read)
            .map(|(f, _)| f.as_str())
            .collect();
        if reads.is_empty() {
            continue;
        }
        for &p in &anc[c] {
            if p == c {
                continue;
            }
            for (f, a) in &plan[p].accesses {
                if *a == Access::Write && reads.contains(f.as_str()) {
                    out.insert((plan[p].name.clone(), consumer.name.clone(), f.clone()));
                }
            }
        }
    }
    out
}

fn reads_file(tasks: &[SimTask], name: &str, file: &str) -> bool {
    plan_from_sim_tasks(tasks).iter().any(|t| {
        t.name == name
            && t.accesses
                .iter()
                .any(|(f, a)| f == file && *a == Access::Read)
    })
}

fn writes_file(tasks: &[SimTask], name: &str, file: &str) -> bool {
    plan_from_sim_tasks(tasks).iter().any(|t| {
        t.name == name
            && t.accesses
                .iter()
                .any(|(f, a)| f == file && *a == Access::Write)
    })
}

/// Snapshots a plan with the default (permissive) hazard config.
pub fn snapshot(tasks: &[SimTask]) -> PlanSnapshot {
    snapshot_with(tasks, LintConfig::default())
}

/// Snapshots a plan with an explicit hazard config.
pub fn snapshot_with(tasks: &[SimTask], cfg: LintConfig) -> PlanSnapshot {
    let report = analyze_sim_tasks(tasks, &cfg);
    PlanSnapshot {
        baseline: report.findings.iter().map(Finding::key).collect(),
        orderings: orderings(tasks),
        cfg,
        catalog: None,
        contracts: None,
    }
}

/// Checks a rewritten plan against its pre-transform snapshot. The report
/// holds only *regressions*: hazards absent from the baseline, plus an
/// [`Finding::OrderingLost`] for every broken producer→consumer edge
/// whose endpoints still access the file.
pub fn check(snap: &PlanSnapshot, after: &[SimTask]) -> Report {
    let mut report = analyze_sim_tasks(after, &snap.cfg);
    report
        .findings
        .retain(|f| !snap.baseline.contains(&f.key()));

    let now = orderings(after);
    for (producer, consumer, file) in snap.orderings.difference(&now) {
        // A redirected read (stage-in replica) or a removed access is a
        // legitimate rewrite; a surviving read/write pair without the
        // edge is a reorder.
        if reads_file(after, consumer, file) && writes_file(after, producer, file) {
            report.push(Finding::OrderingLost {
                file: file.clone(),
                producer: producer.clone(),
                consumer: consumer.clone(),
            });
        }
    }
    // Semantics first, dynamics second: declarations discharge what they
    // can, recorded extents settle the rest.
    if let Some(contracts) = &snap.contracts {
        report = refine_with_oracle(report, contracts);
    }
    if let Some(cat) = &snap.catalog {
        report = refine_with_oracle(report, cat);
    }
    report
}

/// Re-judges plan-granularity race regressions against a footprint
/// oracle — recorded byte extents or declared contract hulls: provably
/// disjoint pairs are discharged; pairs whose footprints collide become
/// [`Finding::ExtentRace`] carrying the byte range (the plan layer knows
/// files, not datasets, so the dataset list stays empty). Tasks the
/// oracle never saw (transform-synthesized stage-in/out copies,
/// undeclared tasks) keep their conservative plan-level finding.
fn refine_with_oracle(report: Report, cat: &dyn FootprintOracle) -> Report {
    let mut refined = Report::new();
    for f in report.findings {
        match &f {
            Finding::WriteWriteRace {
                file,
                first,
                second,
            } => {
                if cat.provably_disjoint(first, second, file) {
                    continue;
                }
                if let Some(x) = cat.collision(first, second, file) {
                    refined.push(Finding::ExtentRace {
                        file: file.clone(),
                        datasets: Vec::new(),
                        first: first.clone(),
                        second: second.clone(),
                        write_write: true,
                        start: x.start,
                        end: x.end,
                    });
                    continue;
                }
                refined.push(f);
            }
            Finding::ReadBeforeWrite {
                file,
                reader,
                writers,
            } => {
                if writers
                    .iter()
                    .all(|w| cat.provably_disjoint(reader, w, file))
                {
                    continue;
                }
                refined.push(f);
            }
            Finding::OrderingLost {
                file,
                producer,
                consumer,
            } => {
                if cat.provably_disjoint(producer, consumer, file) {
                    continue;
                }
                if let Some(x) = cat.collision(producer, consumer, file) {
                    refined.push(Finding::ExtentRace {
                        file: file.clone(),
                        datasets: Vec::new(),
                        first: producer.clone().min(consumer.clone()),
                        second: producer.clone().max(consumer.clone()),
                        write_write: false,
                        start: x.start,
                        end: x.end,
                    });
                    continue;
                }
                refined.push(f);
            }
            _ => refined.push(f),
        }
    }
    refined
}

/// A transform rejected for breaking dataflow semantics.
#[derive(Clone, Debug)]
pub struct SemanticsViolation {
    /// The offending transform (label supplied by the caller).
    pub transform: String,
    /// The regressions it would have introduced.
    pub report: Report,
}

impl fmt::Display for SemanticsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transform {:?} breaks dataflow semantics: {}",
            self.transform,
            self.report
                .findings
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        )
    }
}

impl std::error::Error for SemanticsViolation {}

/// Applies a transform under verification: snapshot, apply, check. On
/// violation the plan is restored to its pre-transform state and the
/// regressions are returned as the error.
pub fn verified<R>(
    tasks: &mut Vec<SimTask>,
    transform: &str,
    apply: impl FnOnce(&mut Vec<SimTask>) -> R,
) -> Result<R, SemanticsViolation> {
    let snap = snapshot(tasks);
    run_verified(snap, tasks, transform, apply)
}

/// [`verified`], refined by recorded byte extents: a rewrite that makes
/// two tasks concurrent is accepted when their recorded extents on the
/// shared file are provably disjoint, and rejected with a
/// [`Finding::ExtentRace`] when they actually collide.
pub fn verified_with_extents<R>(
    tasks: &mut Vec<SimTask>,
    transform: &str,
    catalog: &ExtentCatalog,
    apply: impl FnOnce(&mut Vec<SimTask>) -> R,
) -> Result<R, SemanticsViolation> {
    let snap = snapshot(tasks).with_extents(catalog.clone());
    run_verified(snap, tasks, transform, apply)
}

/// [`verified`], refined by *declared* contract footprints alone: a
/// rewrite that makes two tasks concurrent is accepted when their
/// declared extents on the shared file are provably disjoint — no
/// recorded trace required. The static half of the paper's
/// semantics+dynamics split.
pub fn verified_with_contracts<R>(
    tasks: &mut Vec<SimTask>,
    transform: &str,
    contracts: &ContractCatalog,
    apply: impl FnOnce(&mut Vec<SimTask>) -> R,
) -> Result<R, SemanticsViolation> {
    let snap = snapshot(tasks).with_contracts(contracts.clone());
    run_verified(snap, tasks, transform, apply)
}

/// [`verified`] with both oracles: declared contracts are consulted
/// first, recorded extents second. Either may be absent.
pub fn verified_with_oracles<R>(
    tasks: &mut Vec<SimTask>,
    transform: &str,
    contracts: Option<&ContractCatalog>,
    catalog: Option<&ExtentCatalog>,
    apply: impl FnOnce(&mut Vec<SimTask>) -> R,
) -> Result<R, SemanticsViolation> {
    let mut snap = snapshot(tasks);
    if let Some(c) = contracts {
        snap = snap.with_contracts(c.clone());
    }
    if let Some(c) = catalog {
        snap = snap.with_extents(c.clone());
    }
    run_verified(snap, tasks, transform, apply)
}

fn run_verified<R>(
    snap: PlanSnapshot,
    tasks: &mut Vec<SimTask>,
    transform: &str,
    apply: impl FnOnce(&mut Vec<SimTask>) -> R,
) -> Result<R, SemanticsViolation> {
    let saved = tasks.clone();
    let out = apply(tasks);
    let report = check(&snap, tasks);
    if report.is_clean() {
        Ok(out)
    } else {
        *tasks = saved;
        Err(SemanticsViolation {
            transform: transform.to_owned(),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_sim::cluster::Placement;
    use dayu_sim::program::SimOp;
    use dayu_sim::tiers::TierKind;
    use dayu_workflow::transform;

    fn chain() -> Vec<SimTask> {
        vec![
            SimTask::new("producer").with_program(vec![SimOp::write("f.h5", 1 << 20)]),
            SimTask::new("consumer")
                .after(&[0])
                .with_program(vec![SimOp::read("f.h5", 1 << 20)]),
        ]
    }

    #[test]
    fn co_schedule_is_semantics_preserving() {
        let mut tasks = chain();
        verified(&mut tasks, "co_schedule", |t| {
            transform::co_schedule(t, "producer", "consumer")
        })
        .unwrap();
        assert_eq!(tasks[1].node, tasks[0].node);
    }

    #[test]
    fn stage_in_is_semantics_preserving() {
        let mut tasks = chain();
        let mut placement = Placement::new();
        let staged = verified(&mut tasks, "stage_in", |t| {
            transform::stage_in(t, &mut placement, "f.h5", 1 << 20, 0, TierKind::NvmeSsd)
        })
        .unwrap();
        assert_eq!(staged, "f.h5@node0");
        assert_eq!(tasks.len(), 3);
    }

    #[test]
    fn stage_out_is_semantics_preserving() {
        let mut tasks = chain();
        verified(&mut tasks, "stage_out_async", |t| {
            transform::stage_out_async(t, "f.h5", 1 << 20, 0)
        })
        .unwrap();
        assert_eq!(tasks.len(), 3);
    }

    #[test]
    fn illegal_parallelize_is_rejected_and_rolled_back() {
        let mut tasks = chain();
        let before = tasks.clone();
        let err = verified(&mut tasks, "parallelize", |t| {
            transform::parallelize(t, "producer", "consumer")
        })
        .unwrap_err();
        assert_eq!(tasks, before, "plan restored on rejection");
        assert!(
            err.report.findings.iter().any(|f| matches!(
                f,
                Finding::OrderingLost { .. } | Finding::ReadBeforeWrite { .. }
            )),
            "{err}"
        );
        assert!(err.to_string().contains("parallelize"));
    }

    #[test]
    fn legal_parallelize_is_accepted() {
        // infer does not read train's output, only the shared input both
        // wait for — removing the barrier between them is safe.
        let mut tasks = vec![
            SimTask::new("sims").with_program(vec![SimOp::write("traj", 100)]),
            SimTask::new("train")
                .after(&[0])
                .with_program(vec![SimOp::read("traj", 100), SimOp::write("model", 10)]),
            SimTask::new("infer")
                .after(&[1])
                .with_program(vec![SimOp::read("traj", 100)]),
        ];
        verified(&mut tasks, "parallelize", |t| {
            transform::parallelize(t, "train", "infer")
        })
        .unwrap();
        assert_eq!(tasks[2].deps, vec![0], "inherited the data dependency");
    }

    /// A catalog where `producer` wrote and `consumer` read the given
    /// ranges of `f.h5`.
    fn catalog(write: (u64, u64), read: (u64, u64)) -> ExtentCatalog {
        use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
        use dayu_trace::{FileKey, ObjectKey, TaskKey, Timestamp};
        let mut b = dayu_trace::TraceBundle::new("wf");
        let mut op = |task: &str, kind: IoKind, (offset, len): (u64, u64)| {
            b.vfd.push(VfdRecord {
                task: TaskKey::new(task),
                file: FileKey::new("f.h5"),
                kind,
                offset,
                len,
                access: AccessType::RawData,
                object: ObjectKey::new("/d"),
                start: Timestamp(0),
                end: Timestamp(1),
            });
        };
        op("producer", IoKind::Write, write);
        op("consumer", IoKind::Read, read);
        ExtentCatalog::from_bundle(&b)
    }

    #[test]
    fn disjoint_recorded_extents_discharge_a_parallelize() {
        // Plan-level, producer→consumer on f.h5 looks like a dependency;
        // the recorded extents show the consumer reads a disjoint region,
        // so breaking the barrier is provably safe.
        let mut tasks = chain();
        let cat = catalog((0, 100), (4096, 100));
        verified_with_extents(&mut tasks, "parallelize", &cat, |t| {
            transform::parallelize(t, "producer", "consumer")
        })
        .unwrap();
        assert!(tasks[1].deps.is_empty());
    }

    #[test]
    fn colliding_recorded_extents_reject_as_extent_race() {
        let mut tasks = chain();
        let before = tasks.clone();
        let cat = catalog((0, 100), (50, 100));
        let err = verified_with_extents(&mut tasks, "parallelize", &cat, |t| {
            transform::parallelize(t, "producer", "consumer")
        })
        .unwrap_err();
        assert_eq!(tasks, before, "plan restored on rejection");
        assert!(
            err.report.findings.iter().any(|f| matches!(
                f,
                Finding::ExtentRace {
                    start: 50,
                    end: 100,
                    ..
                }
            )),
            "{err}"
        );
    }

    /// A contract catalog where `producer` declares writes of one span
    /// and `consumer` declares reads of another, on `f.h5:/d`.
    fn contracts(write: (u64, u64), read: (u64, u64)) -> ContractCatalog {
        use dayu_workflow::contract::{IoContract, SymExtent};
        use dayu_workflow::spec::TaskSpec;
        use dayu_workflow::WorkflowSpec;
        let spec =
            WorkflowSpec::new("wf")
                .stage(
                    "p",
                    vec![TaskSpec::new("producer", |_| Ok(())).with_contract(
                        IoContract::new().writes("f.h5", "/d", SymExtent::bytes(write.0, write.1)),
                    )],
                )
                .stage(
                    "c",
                    vec![TaskSpec::new("consumer", |_| Ok(())).with_contract(
                        IoContract::new().reads("f.h5", "/d", SymExtent::bytes(read.0, read.1)),
                    )],
                );
        ContractCatalog::from_spec(&spec)
    }

    #[test]
    fn disjoint_declared_contracts_discharge_a_parallelize() {
        // No trace was ever recorded — the declarations alone prove the
        // consumer reads a region the producer never writes.
        let mut tasks = chain();
        let cat = contracts((0, 100), (4096, 4196));
        verified_with_contracts(&mut tasks, "parallelize", &cat, |t| {
            transform::parallelize(t, "producer", "consumer")
        })
        .unwrap();
        assert!(tasks[1].deps.is_empty());
    }

    #[test]
    fn colliding_declared_contracts_reject_as_extent_race() {
        let mut tasks = chain();
        let before = tasks.clone();
        let cat = contracts((0, 100), (50, 150));
        let err = verified_with_contracts(&mut tasks, "parallelize", &cat, |t| {
            transform::parallelize(t, "producer", "consumer")
        })
        .unwrap_err();
        assert_eq!(tasks, before, "plan restored on rejection");
        assert!(
            err.report.findings.iter().any(|f| matches!(
                f,
                Finding::ExtentRace {
                    start: 50,
                    end: 100,
                    ..
                }
            )),
            "{err}"
        );
    }

    #[test]
    fn contracts_first_then_recorded_extents() {
        // Contracts are silent about these tasks; the recorded catalog
        // must still discharge the rewrite.
        let mut tasks = chain();
        let declared = ContractCatalog::default();
        let recorded = catalog((0, 100), (4096, 100));
        verified_with_oracles(
            &mut tasks,
            "parallelize",
            Some(&declared),
            Some(&recorded),
            |t| transform::parallelize(t, "producer", "consumer"),
        )
        .unwrap();
        assert!(tasks[1].deps.is_empty());
    }

    #[test]
    fn unknown_tasks_keep_the_conservative_plan_verdict() {
        // The catalog never saw these tasks, so extents prove nothing and
        // the plan-level rejection must stand.
        let mut tasks = chain();
        let cat = ExtentCatalog::default();
        assert!(verified_with_extents(&mut tasks, "parallelize", &cat, |t| {
            transform::parallelize(t, "producer", "consumer")
        })
        .is_err());
    }

    #[test]
    fn preexisting_hazards_are_not_blamed_on_the_transform() {
        // The plan already races; a harmless transform must still pass.
        let mut tasks = vec![
            SimTask::new("w1").with_program(vec![SimOp::write("shared", 1)]),
            SimTask::new("w2").with_program(vec![SimOp::write("shared", 1)]),
        ];
        verified(&mut tasks, "co_schedule", |t| {
            transform::co_schedule(t, "w1", "w2")
        })
        .unwrap();
    }
}
