//! Pass 2 — the transform semantics-preservation verifier.
//!
//! The optimization transforms (`dayu_workflow::transform`) rewrite a
//! replay plan for speed; none of them may rewrite its *meaning*. The
//! verifier pins that down as two invariants checked across each call:
//!
//! 1. **No new hazards** — the hazard report of the rewritten plan must
//!    not contain findings the original plan did not already have.
//! 2. **No lost orderings** — every (producer, consumer, file)
//!    happens-before edge of the original plan must survive, unless the
//!    transform redirected the consumer away from the file (stage-in
//!    replicas) or removed one endpoint's access entirely.
//!
//! [`verified`] wraps a transform application in snapshot → apply → check
//! and rolls the plan back when the check fails, so an illegal
//! `parallelize(producer, consumer)` leaves the plan untouched.

use crate::hazard::{analyze_sim_tasks, ancestors, plan_from_sim_tasks, Access, LintConfig};
use crate::model::{Finding, Report};
use dayu_sim::program::SimTask;
use std::collections::BTreeSet;
use std::fmt;

/// The hazard/happens-before state of a plan before a transform runs.
#[derive(Clone, Debug)]
pub struct PlanSnapshot {
    /// Debug-format keys of findings already present before the transform
    /// (pre-existing defects are not the transform's fault).
    baseline: BTreeSet<String>,
    /// Every (producer, consumer, file) ordering the plan guarantees.
    orderings: BTreeSet<(String, String, String)>,
    cfg: LintConfig,
}

fn finding_key(f: &Finding) -> String {
    format!("{f:?}")
}

/// All (producer, consumer, file) triples where the producer data-writes
/// the file, the consumer reads it, and the producer happens-before the
/// consumer.
fn orderings(tasks: &[SimTask]) -> BTreeSet<(String, String, String)> {
    let plan = plan_from_sim_tasks(tasks);
    let anc = ancestors(&plan);
    let mut out = BTreeSet::new();
    for (c, consumer) in plan.iter().enumerate() {
        let reads: BTreeSet<&str> = consumer
            .accesses
            .iter()
            .filter(|(_, a)| *a == Access::Read)
            .map(|(f, _)| f.as_str())
            .collect();
        if reads.is_empty() {
            continue;
        }
        for &p in &anc[c] {
            if p == c {
                continue;
            }
            for (f, a) in &plan[p].accesses {
                if *a == Access::Write && reads.contains(f.as_str()) {
                    out.insert((plan[p].name.clone(), consumer.name.clone(), f.clone()));
                }
            }
        }
    }
    out
}

fn reads_file(tasks: &[SimTask], name: &str, file: &str) -> bool {
    plan_from_sim_tasks(tasks).iter().any(|t| {
        t.name == name
            && t.accesses
                .iter()
                .any(|(f, a)| f == file && *a == Access::Read)
    })
}

fn writes_file(tasks: &[SimTask], name: &str, file: &str) -> bool {
    plan_from_sim_tasks(tasks).iter().any(|t| {
        t.name == name
            && t.accesses
                .iter()
                .any(|(f, a)| f == file && *a == Access::Write)
    })
}

/// Snapshots a plan with the default (permissive) hazard config.
pub fn snapshot(tasks: &[SimTask]) -> PlanSnapshot {
    snapshot_with(tasks, LintConfig::default())
}

/// Snapshots a plan with an explicit hazard config.
pub fn snapshot_with(tasks: &[SimTask], cfg: LintConfig) -> PlanSnapshot {
    let report = analyze_sim_tasks(tasks, &cfg);
    PlanSnapshot {
        baseline: report.findings.iter().map(finding_key).collect(),
        orderings: orderings(tasks),
        cfg,
    }
}

/// Checks a rewritten plan against its pre-transform snapshot. The report
/// holds only *regressions*: hazards absent from the baseline, plus an
/// [`Finding::OrderingLost`] for every broken producer→consumer edge
/// whose endpoints still access the file.
pub fn check(snap: &PlanSnapshot, after: &[SimTask]) -> Report {
    let mut report = analyze_sim_tasks(after, &snap.cfg);
    report
        .findings
        .retain(|f| !snap.baseline.contains(&finding_key(f)));

    let now = orderings(after);
    for (producer, consumer, file) in snap.orderings.difference(&now) {
        // A redirected read (stage-in replica) or a removed access is a
        // legitimate rewrite; a surviving read/write pair without the
        // edge is a reorder.
        if reads_file(after, consumer, file) && writes_file(after, producer, file) {
            report.push(Finding::OrderingLost {
                file: file.clone(),
                producer: producer.clone(),
                consumer: consumer.clone(),
            });
        }
    }
    report
}

/// A transform rejected for breaking dataflow semantics.
#[derive(Clone, Debug)]
pub struct SemanticsViolation {
    /// The offending transform (label supplied by the caller).
    pub transform: String,
    /// The regressions it would have introduced.
    pub report: Report,
}

impl fmt::Display for SemanticsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transform {:?} breaks dataflow semantics: {}",
            self.transform,
            self.report
                .findings
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        )
    }
}

impl std::error::Error for SemanticsViolation {}

/// Applies a transform under verification: snapshot, apply, check. On
/// violation the plan is restored to its pre-transform state and the
/// regressions are returned as the error.
pub fn verified<R>(
    tasks: &mut Vec<SimTask>,
    transform: &str,
    apply: impl FnOnce(&mut Vec<SimTask>) -> R,
) -> Result<R, SemanticsViolation> {
    let snap = snapshot(tasks);
    let saved = tasks.clone();
    let out = apply(tasks);
    let report = check(&snap, tasks);
    if report.is_clean() {
        Ok(out)
    } else {
        *tasks = saved;
        Err(SemanticsViolation {
            transform: transform.to_owned(),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_sim::cluster::Placement;
    use dayu_sim::program::SimOp;
    use dayu_sim::tiers::TierKind;
    use dayu_workflow::transform;

    fn chain() -> Vec<SimTask> {
        vec![
            SimTask::new("producer").with_program(vec![SimOp::write("f.h5", 1 << 20)]),
            SimTask::new("consumer")
                .after(&[0])
                .with_program(vec![SimOp::read("f.h5", 1 << 20)]),
        ]
    }

    #[test]
    fn co_schedule_is_semantics_preserving() {
        let mut tasks = chain();
        verified(&mut tasks, "co_schedule", |t| {
            transform::co_schedule(t, "producer", "consumer")
        })
        .unwrap();
        assert_eq!(tasks[1].node, tasks[0].node);
    }

    #[test]
    fn stage_in_is_semantics_preserving() {
        let mut tasks = chain();
        let mut placement = Placement::new();
        let staged = verified(&mut tasks, "stage_in", |t| {
            transform::stage_in(t, &mut placement, "f.h5", 1 << 20, 0, TierKind::NvmeSsd)
        })
        .unwrap();
        assert_eq!(staged, "f.h5@node0");
        assert_eq!(tasks.len(), 3);
    }

    #[test]
    fn stage_out_is_semantics_preserving() {
        let mut tasks = chain();
        verified(&mut tasks, "stage_out_async", |t| {
            transform::stage_out_async(t, "f.h5", 1 << 20, 0)
        })
        .unwrap();
        assert_eq!(tasks.len(), 3);
    }

    #[test]
    fn illegal_parallelize_is_rejected_and_rolled_back() {
        let mut tasks = chain();
        let before = tasks.clone();
        let err = verified(&mut tasks, "parallelize", |t| {
            transform::parallelize(t, "producer", "consumer")
        })
        .unwrap_err();
        assert_eq!(tasks, before, "plan restored on rejection");
        assert!(
            err.report.findings.iter().any(|f| matches!(
                f,
                Finding::OrderingLost { .. } | Finding::ReadBeforeWrite { .. }
            )),
            "{err}"
        );
        assert!(err.to_string().contains("parallelize"));
    }

    #[test]
    fn legal_parallelize_is_accepted() {
        // infer does not read train's output, only the shared input both
        // wait for — removing the barrier between them is safe.
        let mut tasks = vec![
            SimTask::new("sims").with_program(vec![SimOp::write("traj", 100)]),
            SimTask::new("train")
                .after(&[0])
                .with_program(vec![SimOp::read("traj", 100), SimOp::write("model", 10)]),
            SimTask::new("infer")
                .after(&[1])
                .with_program(vec![SimOp::read("traj", 100)]),
        ];
        verified(&mut tasks, "parallelize", |t| {
            transform::parallelize(t, "train", "infer")
        })
        .unwrap();
        assert_eq!(tasks[2].deps, vec![0], "inherited the data dependency");
    }

    #[test]
    fn preexisting_hazards_are_not_blamed_on_the_transform() {
        // The plan already races; a harmless transform must still pass.
        let mut tasks = vec![
            SimTask::new("w1").with_program(vec![SimOp::write("shared", 1)]),
            SimTask::new("w2").with_program(vec![SimOp::write("shared", 1)]),
        ];
        verified(&mut tasks, "co_schedule", |t| {
            transform::co_schedule(t, "w1", "w2")
        })
        .unwrap();
    }
}
