//! The diagnostic model shared by all three passes.
//!
//! Mirrors the analyzer's `Finding` idiom: a closed enum of structured
//! findings, each with a stable kebab-case category for aggregation, plus a
//! [`Report`] collecting them. Unlike the analyzer's findings (which are
//! *opportunities*), every lint finding is a defect: a plan, trace or file
//! exhibiting it is unsafe to run, optimize or read.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One defect surfaced by a lint pass.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Finding {
    /// Two tasks that may run concurrently both write the same file.
    WriteWriteRace {
        /// The contended file.
        file: String,
        /// First writer (lexicographically smaller name).
        first: String,
        /// Second writer.
        second: String,
    },
    /// A task reads a file that is written somewhere in the plan, but no
    /// writer is guaranteed to have finished first.
    ReadBeforeWrite {
        /// The file read too early.
        file: String,
        /// The reading task.
        reader: String,
        /// The writers none of which happen-before the reader.
        writers: Vec<String>,
    },
    /// A task reads a file after its stage-out/drop task has run.
    UseAfterDispose {
        /// The disposed file.
        file: String,
        /// The late reader.
        reader: String,
        /// The disposing task (e.g. `stage_out:<file>`).
        disposer: String,
    },
    /// A task reads a file no plan task produces and that is not declared
    /// as an external input.
    DanglingFileRef {
        /// The unknown file.
        file: String,
        /// The reading task.
        reader: String,
    },
    /// A transform removed the happens-before edge between a producer and
    /// a consumer of the same file (reported by the verifier only).
    OrderingLost {
        /// The file whose ordering broke.
        file: String,
        /// The producing task.
        producer: String,
        /// The consuming task that no longer waits for it.
        consumer: String,
    },
    /// The superblock is missing, undecodable or inconsistent.
    SuperblockInvalid {
        /// What is wrong with it.
        detail: String,
    },
    /// An object header block is undecodable or internally inconsistent.
    ObjectHeaderInvalid {
        /// Path of the object (best effort).
        path: String,
        /// Address of the header block.
        addr: u64,
        /// What is wrong with it.
        detail: String,
    },
    /// Two allocated structures occupy overlapping byte ranges.
    OverlappingExtents {
        /// Label of the first structure.
        a: String,
        /// First structure's address.
        a_addr: u64,
        /// First structure's length.
        a_len: u64,
        /// Label of the second structure.
        b: String,
        /// Second structure's address.
        b_addr: u64,
        /// Second structure's length.
        b_len: u64,
    },
    /// A chunk-index entry points at bytes outside the allocated file.
    ChunkEntryOutOfBounds {
        /// Path of the chunked dataset.
        dataset: String,
        /// Chunk ordinal within the index.
        ordinal: u64,
        /// Recorded chunk address.
        addr: u64,
        /// Recorded chunk size.
        size: u64,
        /// The file's allocated end.
        eof: u64,
    },
    /// A variable-length descriptor references a missing or truncated
    /// global-heap block.
    DanglingHeapRef {
        /// Path of the dataset holding the descriptor.
        dataset: String,
        /// The referenced heap-block address.
        block_addr: u64,
        /// What is wrong with the reference.
        detail: String,
    },
    /// Raw-data storage of two *different* datasets claims the same file
    /// bytes: writing either dataset silently corrupts the other. More
    /// specific than [`Finding::OverlappingExtents`], which covers
    /// metadata-involved or same-dataset collisions.
    SharedRawExtent {
        /// Lexicographically smaller of the two dataset paths.
        a_dataset: String,
        /// Lexicographically larger of the two dataset paths.
        b_dataset: String,
        /// Start of the shared byte range.
        start: u64,
        /// End (exclusive) of the shared byte range.
        end: u64,
    },
    /// Two concurrent tasks touched overlapping raw-data byte extents of
    /// one file, at least one side writing. Disjoint-extent concurrency is
    /// deliberately *not* a finding — that is the safe chunk-parallel
    /// pattern the paper encourages.
    ExtentRace {
        /// The contended file.
        file: String,
        /// Datasets the colliding extents belong to (sorted, deduped).
        datasets: Vec<String>,
        /// First offending task (lexicographically smaller name).
        first: String,
        /// Second offending task.
        second: String,
        /// `true` for write-write, `false` for write-read.
        write_write: bool,
        /// Start of the overlapping byte range (widest observed).
        start: u64,
        /// End (exclusive) of the overlapping byte range.
        end: u64,
    },
    /// A task issued data I/O on a file after closing it.
    UseAfterClose {
        /// The closed file.
        file: String,
        /// The offending task.
        task: String,
        /// Dataset the late op was attributed to.
        dataset: String,
    },
    /// A dataset somebody wrote but nobody — in the entire recorded
    /// workflow — ever read: dead data an in-situ rewrite could elide.
    DeadDataset {
        /// File holding the dataset.
        file: String,
        /// The unread dataset.
        dataset: String,
        /// Tasks that wrote it.
        writers: Vec<String>,
        /// Raw bytes written to it.
        bytes: u64,
    },
    /// A task reads a dataset that is written in the workflow, but no
    /// writer is ordered before the read (dataset-granularity
    /// read-before-write).
    DatasetReadBeforeWrite {
        /// File holding the dataset.
        file: String,
        /// The dataset read too early.
        dataset: String,
        /// The reading task.
        reader: String,
        /// The writers none of which happen-before the reader.
        writers: Vec<String>,
    },
    /// An ordered later writer fully re-covered a dataset's bytes before
    /// anyone read the first version: the first write was wasted I/O.
    RedundantOverwrite {
        /// File holding the dataset.
        file: String,
        /// The overwritten dataset.
        dataset: String,
        /// The task whose write was never consumed.
        first: String,
        /// The overwriting task.
        second: String,
        /// Bytes of the first write that were re-covered.
        bytes: u64,
    },
    /// A recorded run disagreed with a task's declared I/O contract:
    /// either the task touched bytes outside its declared footprint
    /// (`undeclared: true`) or a declared clause was never exercised at
    /// all (`undeclared: false` — declared-but-untouched waste).
    ContractViolation {
        /// The offending task.
        task: String,
        /// File the disagreement is about.
        file: String,
        /// Dataset within the file.
        dataset: String,
        /// `"read"` or `"write"`.
        access: String,
        /// Start of the disputed logical byte range.
        start: u64,
        /// End (exclusive) of the disputed logical byte range.
        end: u64,
        /// `true` when the trace touched bytes the contract never
        /// declared; `false` when the contract declared bytes the trace
        /// never touched.
        undeclared: bool,
    },
    /// A recorded run moved raw bytes along a task↔dataset edge the
    /// contract-predicted sSDG does not contain: the task's declared
    /// contract has a hole, and every static proof about the task
    /// (disjointness, plan cost, elision safety) silently under-counts.
    IncompleteContract {
        /// The task whose contract under-declares.
        task: String,
        /// File the unpredicted flow targets.
        file: String,
        /// Dataset within the file.
        dataset: String,
        /// `"read"` or `"write"`.
        access: String,
        /// Raw bytes observed along the unpredicted edge.
        bytes: u64,
    },
    /// A recorded SDG edge whose *structure* the static prediction cannot
    /// explain at all — e.g. a recorded task the workflow spec never
    /// declares, so no contract could even be consulted for the edge.
    GraphMismatch {
        /// Source node label of the offending recorded edge.
        from: String,
        /// Destination node label of the offending recorded edge.
        to: String,
        /// Why the edge has no static counterpart.
        detail: String,
    },
}

/// Structural identity of a finding: category plus the fields that pin it
/// to a specific defect site, with free-text details (messages, byte
/// counts that vary run to run) left out. The verifier diffs reports by
/// key, so two findings describing the same defect compare equal even if
/// incidental fields differ.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FindingKey {
    /// The finding's stable category label.
    pub category: &'static str,
    /// Identity fields in variant-specific order (file/task/dataset names).
    pub parts: Vec<String>,
    /// Byte span when the variant carries one, else `(0, 0)`.
    pub span: (u64, u64),
    /// Variant-specific flag (`write_write`, `undeclared`), else `false`.
    pub flag: bool,
}

impl Finding {
    /// Stable category label for aggregation and CLI output.
    pub fn category(&self) -> &'static str {
        match self {
            Finding::WriteWriteRace { .. } => "write-write-race",
            Finding::ReadBeforeWrite { .. } => "read-before-write",
            Finding::UseAfterDispose { .. } => "use-after-dispose",
            Finding::DanglingFileRef { .. } => "dangling-file-ref",
            Finding::OrderingLost { .. } => "ordering-lost",
            Finding::SuperblockInvalid { .. } => "superblock-invalid",
            Finding::ObjectHeaderInvalid { .. } => "object-header-invalid",
            Finding::OverlappingExtents { .. } => "overlapping-extents",
            Finding::ChunkEntryOutOfBounds { .. } => "chunk-out-of-bounds",
            Finding::DanglingHeapRef { .. } => "dangling-heap-ref",
            Finding::SharedRawExtent { .. } => "shared-raw-extent",
            Finding::ExtentRace { .. } => "extent-race",
            Finding::UseAfterClose { .. } => "use-after-close",
            Finding::DeadDataset { .. } => "dead-dataset",
            Finding::DatasetReadBeforeWrite { .. } => "dataset-read-before-write",
            Finding::RedundantOverwrite { .. } => "redundant-overwrite",
            Finding::ContractViolation { .. } => "contract-violation",
            Finding::IncompleteContract { .. } => "incomplete-contract",
            Finding::GraphMismatch { .. } => "graph-mismatch",
        }
    }

    /// Structural identity key (see [`FindingKey`]). Replaces the old
    /// `format!("{self:?}")` keys, which changed meaning whenever a field
    /// was renamed or a derive reordered output.
    pub fn key(&self) -> FindingKey {
        let mut parts: Vec<String> = Vec::new();
        let mut span = (0u64, 0u64);
        let mut flag = false;
        match self {
            Finding::WriteWriteRace {
                file,
                first,
                second,
            } => parts.extend([file.clone(), first.clone(), second.clone()]),
            Finding::ReadBeforeWrite {
                file,
                reader,
                writers,
            } => {
                parts.extend([file.clone(), reader.clone()]);
                let mut w = writers.clone();
                w.sort_unstable();
                parts.extend(w);
            }
            Finding::UseAfterDispose {
                file,
                reader,
                disposer,
            } => parts.extend([file.clone(), reader.clone(), disposer.clone()]),
            Finding::DanglingFileRef { file, reader } => {
                parts.extend([file.clone(), reader.clone()]);
            }
            Finding::OrderingLost {
                file,
                producer,
                consumer,
            } => parts.extend([file.clone(), producer.clone(), consumer.clone()]),
            Finding::SuperblockInvalid { detail } => parts.push(detail.clone()),
            Finding::ObjectHeaderInvalid { path, addr, detail } => {
                parts.extend([path.clone(), detail.clone()]);
                span = (*addr, 0);
            }
            Finding::OverlappingExtents {
                a,
                a_addr,
                b,
                b_addr,
                ..
            } => {
                parts.extend([a.clone(), b.clone()]);
                span = (*a_addr, *b_addr);
            }
            Finding::ChunkEntryOutOfBounds {
                dataset,
                ordinal,
                addr,
                size,
                ..
            } => {
                parts.extend([dataset.clone(), ordinal.to_string()]);
                span = (*addr, addr.saturating_add(*size));
            }
            Finding::DanglingHeapRef {
                dataset,
                block_addr,
                detail,
            } => {
                parts.extend([dataset.clone(), detail.clone()]);
                span = (*block_addr, 0);
            }
            Finding::SharedRawExtent {
                a_dataset,
                b_dataset,
                start,
                end,
            } => {
                parts.extend([a_dataset.clone(), b_dataset.clone()]);
                span = (*start, *end);
            }
            Finding::ExtentRace {
                file,
                datasets,
                first,
                second,
                write_write,
                start,
                end,
            } => {
                parts.extend([file.clone(), first.clone(), second.clone()]);
                parts.extend(datasets.iter().cloned());
                span = (*start, *end);
                flag = *write_write;
            }
            Finding::UseAfterClose {
                file,
                task,
                dataset,
            } => parts.extend([file.clone(), task.clone(), dataset.clone()]),
            Finding::DeadDataset { file, dataset, .. } => {
                parts.extend([file.clone(), dataset.clone()]);
            }
            Finding::DatasetReadBeforeWrite {
                file,
                dataset,
                reader,
                ..
            } => parts.extend([file.clone(), dataset.clone(), reader.clone()]),
            Finding::RedundantOverwrite {
                file,
                dataset,
                first,
                second,
                ..
            } => parts.extend([file.clone(), dataset.clone(), first.clone(), second.clone()]),
            Finding::ContractViolation {
                task,
                file,
                dataset,
                access,
                start,
                end,
                undeclared,
            } => {
                parts.extend([task.clone(), file.clone(), dataset.clone(), access.clone()]);
                span = (*start, *end);
                flag = *undeclared;
            }
            Finding::IncompleteContract {
                task,
                file,
                dataset,
                access,
                ..
            } => parts.extend([task.clone(), file.clone(), dataset.clone(), access.clone()]),
            Finding::GraphMismatch { from, to, .. } => {
                parts.extend([from.clone(), to.clone()]);
            }
        }
        FindingKey {
            category: self.category(),
            parts,
            span,
            flag,
        }
    }

    /// Every category label the linter can emit, in a stable order. The
    /// CLI validates `--deny` arguments against this list.
    pub fn categories() -> &'static [&'static str] {
        &[
            "write-write-race",
            "read-before-write",
            "use-after-dispose",
            "dangling-file-ref",
            "ordering-lost",
            "superblock-invalid",
            "object-header-invalid",
            "overlapping-extents",
            "chunk-out-of-bounds",
            "dangling-heap-ref",
            "shared-raw-extent",
            "extent-race",
            "use-after-close",
            "dead-dataset",
            "dataset-read-before-write",
            "redundant-overwrite",
            "contract-violation",
            "incomplete-contract",
            "graph-mismatch",
        ]
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::WriteWriteRace {
                file,
                first,
                second,
            } => write!(
                f,
                "tasks {first:?} and {second:?} may write {file:?} concurrently"
            ),
            Finding::ReadBeforeWrite {
                file,
                reader,
                writers,
            } => write!(
                f,
                "task {reader:?} reads {file:?} with no ordered producer (written by {writers:?})"
            ),
            Finding::UseAfterDispose {
                file,
                reader,
                disposer,
            } => write!(
                f,
                "task {reader:?} reads {file:?} after {disposer:?} disposed of it"
            ),
            Finding::DanglingFileRef { file, reader } => write!(
                f,
                "task {reader:?} reads {file:?}, which no task produces and no input declares"
            ),
            Finding::OrderingLost {
                file,
                producer,
                consumer,
            } => write!(
                f,
                "transform reordered producer {producer:?} past consumer {consumer:?} of {file:?}"
            ),
            Finding::SuperblockInvalid { detail } => write!(f, "superblock: {detail}"),
            Finding::ObjectHeaderInvalid { path, addr, detail } => {
                write!(f, "object header {path:?} at {addr}: {detail}")
            }
            Finding::OverlappingExtents {
                a,
                a_addr,
                a_len,
                b,
                b_addr,
                b_len,
            } => write!(
                f,
                "{a} [{a_addr}, {}) overlaps {b} [{b_addr}, {})",
                a_addr + a_len,
                b_addr + b_len
            ),
            Finding::ChunkEntryOutOfBounds {
                dataset,
                ordinal,
                addr,
                size,
                eof,
            } => write!(
                f,
                "chunk {ordinal} of {dataset:?} at [{addr}, {}) lies beyond eof {eof}",
                addr + size
            ),
            Finding::DanglingHeapRef {
                dataset,
                block_addr,
                detail,
            } => write!(
                f,
                "var-len descriptor in {dataset:?} references heap block {block_addr}: {detail}"
            ),
            Finding::SharedRawExtent {
                a_dataset,
                b_dataset,
                start,
                end,
            } => write!(
                f,
                "raw data of {a_dataset:?} and {b_dataset:?} share bytes [{start}, {end})"
            ),
            Finding::ExtentRace {
                file,
                datasets,
                first,
                second,
                write_write,
                start,
                end,
            } => {
                let kind = if *write_write {
                    "both write"
                } else {
                    "write/read"
                };
                write!(
                    f,
                    "tasks {first:?} and {second:?} concurrently {kind} bytes [{start}, {end}) of {file:?} (datasets {datasets:?})"
                )
            }
            Finding::UseAfterClose {
                file,
                task,
                dataset,
            } => write!(
                f,
                "task {task:?} touches {dataset:?} in {file:?} after closing the file"
            ),
            Finding::DeadDataset {
                file,
                dataset,
                writers,
                bytes,
            } => write!(
                f,
                "dataset {dataset:?} in {file:?} ({bytes} B written by {writers:?}) is never read"
            ),
            Finding::DatasetReadBeforeWrite {
                file,
                dataset,
                reader,
                writers,
            } => write!(
                f,
                "task {reader:?} reads {dataset:?} in {file:?} with no ordered producer (written by {writers:?})"
            ),
            Finding::RedundantOverwrite {
                file,
                dataset,
                first,
                second,
                bytes,
            } => write!(
                f,
                "{second:?} fully overwrites the {bytes} B {first:?} wrote to {dataset:?} in {file:?} before anyone read them"
            ),
            Finding::ContractViolation {
                task,
                file,
                dataset,
                access,
                start,
                end,
                undeclared,
            } => {
                if *undeclared {
                    write!(
                        f,
                        "task {task:?} {access}s bytes [{start}, {end}) of {dataset:?} in {file:?} outside its declared contract"
                    )
                } else {
                    write!(
                        f,
                        "task {task:?} declares a {access} of [{start}, {end}) of {dataset:?} in {file:?} but never touched it"
                    )
                }
            }
            Finding::IncompleteContract {
                task,
                file,
                dataset,
                access,
                bytes,
            } => write!(
                f,
                "task {task:?} moved {bytes} raw B ({access}) of {dataset:?} in {file:?} along an edge its contract never predicts"
            ),
            Finding::GraphMismatch { from, to, detail } => write!(
                f,
                "recorded edge {from:?} -> {to:?} has no static counterpart: {detail}"
            ),
        }
    }
}

/// The outcome of a lint pass: zero or more findings.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Defects found, in discovery order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the pass found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Whether the report holds no findings (alias of [`Report::is_clean`]).
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Appends a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Absorbs another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
    }

    /// Findings per category, in stable category order.
    pub fn counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut out = std::collections::BTreeMap::new();
        for f in &self.findings {
            *out.entry(f.category()).or_insert(0) += 1;
        }
        out
    }

    /// Findings whose category is in `denied` — the set a CI gate fails
    /// on. An empty `denied` list denies every category (plain
    /// `check` semantics).
    pub fn denied<'a>(&'a self, denied: &[String]) -> Vec<&'a Finding> {
        self.findings
            .iter()
            .filter(|f| denied.is_empty() || denied.iter().any(|d| d == f.category()))
            .collect()
    }

    /// Structured machine-readable export: category + human message +
    /// full structured fields per finding, plus per-category counts.
    /// Stable field order (serde struct order), suitable for byte-exact
    /// comparison across trace formats.
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct JsonFinding<'a> {
            category: &'static str,
            message: String,
            data: &'a Finding,
        }
        #[derive(Serialize)]
        struct JsonReport<'a> {
            total: usize,
            counts: std::collections::BTreeMap<&'static str, usize>,
            findings: Vec<JsonFinding<'a>>,
        }
        let doc = JsonReport {
            total: self.findings.len(),
            counts: self.counts(),
            findings: self
                .findings
                .iter()
                .map(|f| JsonFinding {
                    category: f.category(),
                    message: f.to_string(),
                    data: f,
                })
                .collect(),
        };
        serde_json::to_string_pretty(&doc).expect("report serialization is infallible")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "clean: 0 findings");
        }
        writeln!(f, "{} finding(s):", self.findings.len())?;
        for finding in &self.findings {
            writeln!(f, "  [{}] {finding}", finding.category())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_stable() {
        let f = Finding::WriteWriteRace {
            file: "f".into(),
            first: "a".into(),
            second: "b".into(),
        };
        assert_eq!(f.category(), "write-write-race");
        assert!(f.to_string().contains("concurrently"));
    }

    #[test]
    fn report_collects_and_displays() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert!(r.is_empty());
        r.push(Finding::SuperblockInvalid {
            detail: "bad magic".into(),
        });
        let mut other = Report::new();
        other.push(Finding::DanglingFileRef {
            file: "x".into(),
            reader: "t".into(),
        });
        r.merge(other);
        assert_eq!(r.len(), 2);
        let text = r.to_string();
        assert!(text.contains("superblock-invalid"));
        assert!(text.contains("dangling-file-ref"));
    }

    #[test]
    fn every_variant_category_is_listed() {
        for c in [
            Finding::ExtentRace {
                file: "f".into(),
                datasets: vec!["/d".into()],
                first: "a".into(),
                second: "b".into(),
                write_write: true,
                start: 0,
                end: 8,
            }
            .category(),
            Finding::UseAfterClose {
                file: "f".into(),
                task: "t".into(),
                dataset: "/d".into(),
            }
            .category(),
            Finding::DeadDataset {
                file: "f".into(),
                dataset: "/d".into(),
                writers: vec![],
                bytes: 0,
            }
            .category(),
            Finding::DatasetReadBeforeWrite {
                file: "f".into(),
                dataset: "/d".into(),
                reader: "r".into(),
                writers: vec![],
            }
            .category(),
            Finding::RedundantOverwrite {
                file: "f".into(),
                dataset: "/d".into(),
                first: "a".into(),
                second: "b".into(),
                bytes: 4,
            }
            .category(),
            Finding::SharedRawExtent {
                a_dataset: "/a".into(),
                b_dataset: "/b".into(),
                start: 0,
                end: 8,
            }
            .category(),
            Finding::ContractViolation {
                task: "t".into(),
                file: "f".into(),
                dataset: "/d".into(),
                access: "write".into(),
                start: 0,
                end: 8,
                undeclared: true,
            }
            .category(),
            Finding::IncompleteContract {
                task: "t".into(),
                file: "f".into(),
                dataset: "/d".into(),
                access: "read".into(),
                bytes: 64,
            }
            .category(),
            Finding::GraphMismatch {
                from: "f:/d".into(),
                to: "t".into(),
                detail: "task not in spec".into(),
            }
            .category(),
        ] {
            assert!(Finding::categories().contains(&c), "{c} missing");
        }
    }

    #[test]
    fn structural_keys_ignore_detail_fields() {
        let a = Finding::DeadDataset {
            file: "f".into(),
            dataset: "/d".into(),
            writers: vec!["w1".into()],
            bytes: 100,
        };
        let b = Finding::DeadDataset {
            file: "f".into(),
            dataset: "/d".into(),
            writers: vec!["w2".into(), "w3".into()],
            bytes: 999,
        };
        assert_eq!(a.key(), b.key(), "same defect site, different detail");
        let c = Finding::DeadDataset {
            file: "f".into(),
            dataset: "/other".into(),
            writers: vec![],
            bytes: 0,
        };
        assert_ne!(a.key(), c.key());
        // Cross-variant keys never collide even with identical parts.
        let race = Finding::WriteWriteRace {
            file: "f".into(),
            first: "/d".into(),
            second: "x".into(),
        };
        assert_ne!(a.key().category, race.key().category);
    }

    #[test]
    fn contract_violation_displays_both_directions() {
        let undeclared = Finding::ContractViolation {
            task: "t".into(),
            file: "f.h5".into(),
            dataset: "/raw".into(),
            access: "write".into(),
            start: 4096,
            end: 8192,
            undeclared: true,
        };
        assert!(undeclared
            .to_string()
            .contains("outside its declared contract"));
        let waste = Finding::ContractViolation {
            task: "t".into(),
            file: "f.h5".into(),
            dataset: "/raw".into(),
            access: "read".into(),
            start: 0,
            end: 4096,
            undeclared: false,
        };
        assert!(waste.to_string().contains("never touched"));
        assert_ne!(undeclared.key(), waste.key());
    }

    #[test]
    fn counts_deny_and_json_export() {
        let mut r = Report::new();
        r.push(Finding::ExtentRace {
            file: "f".into(),
            datasets: vec!["/d".into()],
            first: "a".into(),
            second: "b".into(),
            write_write: false,
            start: 16,
            end: 32,
        });
        r.push(Finding::DeadDataset {
            file: "f".into(),
            dataset: "/unused".into(),
            writers: vec!["a".into()],
            bytes: 128,
        });
        assert_eq!(r.counts().get("extent-race"), Some(&1));
        assert_eq!(r.denied(&[]).len(), 2);
        assert_eq!(r.denied(&["extent-race".to_owned()]).len(), 1);
        assert_eq!(r.denied(&["use-after-close".to_owned()]).len(), 0);
        let json = r.to_json();
        assert!(json.contains("\"total\": 2"));
        assert!(json.contains("\"extent-race\""));
        assert!(json.contains("\"ExtentRace\""));
        // Machine-readable and stable: parses back as JSON.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["counts"]["dead-dataset"], 1);
    }
}
