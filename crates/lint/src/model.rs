//! The diagnostic model shared by all three passes.
//!
//! Mirrors the analyzer's `Finding` idiom: a closed enum of structured
//! findings, each with a stable kebab-case category for aggregation, plus a
//! [`Report`] collecting them. Unlike the analyzer's findings (which are
//! *opportunities*), every lint finding is a defect: a plan, trace or file
//! exhibiting it is unsafe to run, optimize or read.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One defect surfaced by a lint pass.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Finding {
    /// Two tasks that may run concurrently both write the same file.
    WriteWriteRace {
        /// The contended file.
        file: String,
        /// First writer (lexicographically smaller name).
        first: String,
        /// Second writer.
        second: String,
    },
    /// A task reads a file that is written somewhere in the plan, but no
    /// writer is guaranteed to have finished first.
    ReadBeforeWrite {
        /// The file read too early.
        file: String,
        /// The reading task.
        reader: String,
        /// The writers none of which happen-before the reader.
        writers: Vec<String>,
    },
    /// A task reads a file after its stage-out/drop task has run.
    UseAfterDispose {
        /// The disposed file.
        file: String,
        /// The late reader.
        reader: String,
        /// The disposing task (e.g. `stage_out:<file>`).
        disposer: String,
    },
    /// A task reads a file no plan task produces and that is not declared
    /// as an external input.
    DanglingFileRef {
        /// The unknown file.
        file: String,
        /// The reading task.
        reader: String,
    },
    /// A transform removed the happens-before edge between a producer and
    /// a consumer of the same file (reported by the verifier only).
    OrderingLost {
        /// The file whose ordering broke.
        file: String,
        /// The producing task.
        producer: String,
        /// The consuming task that no longer waits for it.
        consumer: String,
    },
    /// The superblock is missing, undecodable or inconsistent.
    SuperblockInvalid {
        /// What is wrong with it.
        detail: String,
    },
    /// An object header block is undecodable or internally inconsistent.
    ObjectHeaderInvalid {
        /// Path of the object (best effort).
        path: String,
        /// Address of the header block.
        addr: u64,
        /// What is wrong with it.
        detail: String,
    },
    /// Two allocated structures occupy overlapping byte ranges.
    OverlappingExtents {
        /// Label of the first structure.
        a: String,
        /// First structure's address.
        a_addr: u64,
        /// First structure's length.
        a_len: u64,
        /// Label of the second structure.
        b: String,
        /// Second structure's address.
        b_addr: u64,
        /// Second structure's length.
        b_len: u64,
    },
    /// A chunk-index entry points at bytes outside the allocated file.
    ChunkEntryOutOfBounds {
        /// Path of the chunked dataset.
        dataset: String,
        /// Chunk ordinal within the index.
        ordinal: u64,
        /// Recorded chunk address.
        addr: u64,
        /// Recorded chunk size.
        size: u64,
        /// The file's allocated end.
        eof: u64,
    },
    /// A variable-length descriptor references a missing or truncated
    /// global-heap block.
    DanglingHeapRef {
        /// Path of the dataset holding the descriptor.
        dataset: String,
        /// The referenced heap-block address.
        block_addr: u64,
        /// What is wrong with the reference.
        detail: String,
    },
}

impl Finding {
    /// Stable category label for aggregation and CLI output.
    pub fn category(&self) -> &'static str {
        match self {
            Finding::WriteWriteRace { .. } => "write-write-race",
            Finding::ReadBeforeWrite { .. } => "read-before-write",
            Finding::UseAfterDispose { .. } => "use-after-dispose",
            Finding::DanglingFileRef { .. } => "dangling-file-ref",
            Finding::OrderingLost { .. } => "ordering-lost",
            Finding::SuperblockInvalid { .. } => "superblock-invalid",
            Finding::ObjectHeaderInvalid { .. } => "object-header-invalid",
            Finding::OverlappingExtents { .. } => "overlapping-extents",
            Finding::ChunkEntryOutOfBounds { .. } => "chunk-out-of-bounds",
            Finding::DanglingHeapRef { .. } => "dangling-heap-ref",
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::WriteWriteRace {
                file,
                first,
                second,
            } => write!(
                f,
                "tasks {first:?} and {second:?} may write {file:?} concurrently"
            ),
            Finding::ReadBeforeWrite {
                file,
                reader,
                writers,
            } => write!(
                f,
                "task {reader:?} reads {file:?} with no ordered producer (written by {writers:?})"
            ),
            Finding::UseAfterDispose {
                file,
                reader,
                disposer,
            } => write!(
                f,
                "task {reader:?} reads {file:?} after {disposer:?} disposed of it"
            ),
            Finding::DanglingFileRef { file, reader } => write!(
                f,
                "task {reader:?} reads {file:?}, which no task produces and no input declares"
            ),
            Finding::OrderingLost {
                file,
                producer,
                consumer,
            } => write!(
                f,
                "transform reordered producer {producer:?} past consumer {consumer:?} of {file:?}"
            ),
            Finding::SuperblockInvalid { detail } => write!(f, "superblock: {detail}"),
            Finding::ObjectHeaderInvalid { path, addr, detail } => {
                write!(f, "object header {path:?} at {addr}: {detail}")
            }
            Finding::OverlappingExtents {
                a,
                a_addr,
                a_len,
                b,
                b_addr,
                b_len,
            } => write!(
                f,
                "{a} [{a_addr}, {}) overlaps {b} [{b_addr}, {})",
                a_addr + a_len,
                b_addr + b_len
            ),
            Finding::ChunkEntryOutOfBounds {
                dataset,
                ordinal,
                addr,
                size,
                eof,
            } => write!(
                f,
                "chunk {ordinal} of {dataset:?} at [{addr}, {}) lies beyond eof {eof}",
                addr + size
            ),
            Finding::DanglingHeapRef {
                dataset,
                block_addr,
                detail,
            } => write!(
                f,
                "var-len descriptor in {dataset:?} references heap block {block_addr}: {detail}"
            ),
        }
    }
}

/// The outcome of a lint pass: zero or more findings.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Defects found, in discovery order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the pass found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Whether the report holds no findings (alias of [`Report::is_clean`]).
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Appends a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Absorbs another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "clean: 0 findings");
        }
        writeln!(f, "{} finding(s):", self.findings.len())?;
        for finding in &self.findings {
            writeln!(f, "  [{}] {finding}", finding.category())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_stable() {
        let f = Finding::WriteWriteRace {
            file: "f".into(),
            first: "a".into(),
            second: "b".into(),
        };
        assert_eq!(f.category(), "write-write-race");
        assert!(f.to_string().contains("concurrently"));
    }

    #[test]
    fn report_collects_and_displays() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert!(r.is_empty());
        r.push(Finding::SuperblockInvalid {
            detail: "bad magic".into(),
        });
        let mut other = Report::new();
        other.push(Finding::DanglingFileRef {
            file: "x".into(),
            reader: "t".into(),
        });
        r.merge(other);
        assert_eq!(r.len(), 2);
        let text = r.to_string();
        assert!(text.contains("superblock-invalid"));
        assert!(text.contains("dangling-file-ref"));
    }
}
