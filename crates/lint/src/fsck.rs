//! Pass 3 — fsck for `dayu-hdf` files.
//!
//! A pure walk over a raw file image (no format-library state, no
//! repair): decode the superblock, breadth-first every reachable object
//! header, and *claim* the byte extent of every structure encountered —
//! header blocks, group entry tables, attribute blocks, contiguous
//! extents, chunk index blocks, chunk payloads, referenced global-heap
//! blocks. Checked invariants:
//!
//! * superblock decodes and its `eof`/root address are in bounds;
//! * object headers decode and are internally consistent (groups carry
//!   no dataset messages and vice versa, chunk grids match dataspaces);
//! * chunk-index entries lie inside the allocated file;
//! * variable-length descriptors reference live heap blocks with the
//!   payload fully inside the file;
//! * no two claimed extents overlap (an allocator that hands the same
//!   bytes to two structures silently corrupts whichever flushes last).
//!   Claims are indexed in an [`IntervalTree`]; when both owners are
//!   *raw data of different datasets* the overlap is reported as the
//!   sharper [`Finding::SharedRawExtent`] naming both datasets, since
//!   that is exactly the cross-dataset aliasing the extent-race detector
//!   reasons about at trace level.

use crate::extent::{Extent, IntervalTree};
use crate::model::{Finding, Report};
use dayu_hdf::chunk::ChunkIndex;
use dayu_hdf::group;
use dayu_hdf::heap::{HeapRef, HEAP_HEADER, HEAP_MAGIC};
use dayu_hdf::meta::{self, LayoutMessage, ObjectHeader, Superblock};
use dayu_trace::vol::{DataType, ObjectKind};
use std::collections::{BTreeMap, BTreeSet};

/// Whether `[addr, addr + len)` escapes `[0, limit)`, treating address
/// arithmetic overflow as out of bounds (all inputs are untrusted).
pub(crate) fn out_of_bounds(addr: u64, len: u64, limit: u64) -> bool {
    addr.checked_add(len).is_none_or(|end| end > limit)
}

/// Whether a superblock slot holds no bytes at all. `create()` writes
/// generation 1 to slot B only, so a vacant (all-zero) slot is the normal
/// state of a file that has seen fewer than two commits — not a defect.
pub fn slot_vacant(slot: &[u8]) -> bool {
    slot.iter().all(|&b| b == 0)
}

/// One claimed byte extent. Raw-data claims remember the owning dataset
/// so cross-dataset collisions get the sharper finding.
struct Claim {
    extent: Extent,
    label: String,
    /// `Some(path)` when the bytes store a dataset's raw data
    /// (contiguous extents and chunk payloads); `None` for metadata.
    dataset: Option<String>,
}

struct Fsck<'a> {
    image: &'a [u8],
    /// Allocated end per the superblock, capped at the image length.
    eof: u64,
    report: Report,
    claims: Vec<Claim>,
    /// Referenced heap blocks: address → furthest referenced end.
    heap_blocks: BTreeMap<u64, u64>,
}

impl<'a> Fsck<'a> {
    fn len(&self) -> u64 {
        self.image.len() as u64
    }

    fn claim(&mut self, addr: u64, len: u64, label: impl Into<String>) {
        if len > 0 {
            self.claims.push(Claim {
                extent: Extent::of(addr, len),
                label: label.into(),
                dataset: None,
            });
        }
    }

    /// Claims bytes that hold `dataset`'s raw data.
    fn claim_raw(&mut self, addr: u64, len: u64, label: String, dataset: &str) {
        if len > 0 {
            self.claims.push(Claim {
                extent: Extent::of(addr, len),
                label,
                dataset: Some(dataset.to_owned()),
            });
        }
    }

    /// Borrows from the image, not from `self`, so callers can keep the
    /// slice across mutating checks.
    fn slice(&self, addr: u64, len: u64) -> Option<&'a [u8]> {
        if out_of_bounds(addr, len, self.len()) {
            return None;
        }
        Some(&self.image[addr as usize..(addr + len) as usize])
    }

    fn header_invalid(&mut self, path: &str, addr: u64, detail: impl Into<String>) {
        self.report.push(Finding::ObjectHeaderInvalid {
            path: path.to_owned(),
            addr,
            detail: detail.into(),
        });
    }

    fn walk(&mut self, root_addr: u64) {
        let mut visited: BTreeSet<u64> = BTreeSet::new();
        let mut queue: Vec<(u64, String)> = vec![(root_addr, "/".to_owned())];
        while let Some((addr, path)) = queue.pop() {
            if !visited.insert(addr) {
                continue;
            }
            let Some(block) = self.slice(addr, meta::HEADER_BLOCK_SIZE) else {
                self.header_invalid(&path, addr, "header block beyond end of file");
                continue;
            };
            self.claim(addr, meta::HEADER_BLOCK_SIZE, format!("header {path:?}"));
            let header = match ObjectHeader::decode(block) {
                Ok(h) => h,
                Err(e) => {
                    self.header_invalid(&path, addr, e.to_string());
                    continue;
                }
            };
            if header.attr_addr != 0 {
                self.check_attrs(&path, addr, &header);
            }
            match header.kind {
                ObjectKind::Group => self.check_group(&path, addr, &header, &mut queue),
                _ => self.check_dataset(&path, addr, &header),
            }
        }
    }

    fn check_attrs(&mut self, path: &str, addr: u64, header: &ObjectHeader) {
        let Some(buf) = self.slice(header.attr_addr, header.attr_len) else {
            self.header_invalid(path, addr, "attribute block beyond end of file");
            return;
        };
        self.claim(header.attr_addr, header.attr_len, format!("attrs {path:?}"));
        if let Err(e) = meta::decode_attrs(buf) {
            self.header_invalid(path, addr, format!("undecodable attribute block: {e}"));
        }
    }

    fn check_group(
        &mut self,
        path: &str,
        addr: u64,
        header: &ObjectHeader,
        queue: &mut Vec<(u64, String)>,
    ) {
        if header.layout.is_some() || header.dtype.is_some() {
            self.header_invalid(path, addr, "group header carries dataset messages");
        }
        if header.table_addr == 0 {
            return;
        }
        let Some(buf) = self.slice(header.table_addr, header.table_len) else {
            self.header_invalid(path, addr, "entry table beyond end of file");
            return;
        };
        self.claim(
            header.table_addr,
            header.table_len,
            format!("entry table {path:?}"),
        );
        let entries = match group::decode_table(buf) {
            Ok(e) => e,
            Err(e) => {
                self.header_invalid(path, addr, format!("undecodable entry table: {e}"));
                return;
            }
        };
        for entry in entries {
            let child = if path == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{path}/{}", entry.name)
            };
            if entry.addr == 0 || out_of_bounds(entry.addr, meta::HEADER_BLOCK_SIZE, self.len()) {
                self.header_invalid(
                    &child,
                    entry.addr,
                    "entry references a header outside the file",
                );
            } else {
                queue.push((entry.addr, child));
            }
        }
    }

    fn check_dataset(&mut self, path: &str, addr: u64, header: &ObjectHeader) {
        if header.table_addr != 0 || header.table_len != 0 {
            self.header_invalid(path, addr, "dataset header carries a group entry table");
        }
        let varlen = header.dtype == Some(DataType::VarLen);
        match &header.layout {
            None => self.header_invalid(path, addr, "dataset without a layout message"),
            Some(LayoutMessage::Compact { data }) => {
                if varlen {
                    self.check_varlen_slots(path, data);
                }
            }
            Some(LayoutMessage::Contiguous { addr: ext, size }) => {
                // `addr == 0` is late allocation: no data written yet.
                if *ext == 0 {
                    return;
                }
                if out_of_bounds(*ext, *size, self.eof) {
                    self.header_invalid(path, addr, "contiguous extent beyond allocated eof");
                    return;
                }
                self.claim_raw(*ext, *size, format!("contiguous {path:?}"), path);
                if varlen {
                    if let Some(buf) = self.slice(*ext, *size) {
                        self.check_varlen_slots(path, buf);
                    }
                }
            }
            Some(LayoutMessage::Chunked {
                chunk_dims,
                index_addr,
                index_len,
            }) => self.check_chunked(
                path,
                addr,
                header,
                chunk_dims,
                *index_addr,
                *index_len,
                varlen,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)] // decomposed layout message fields
    fn check_chunked(
        &mut self,
        path: &str,
        addr: u64,
        header: &ObjectHeader,
        chunk_dims: &[u64],
        index_addr: u64,
        index_len: u64,
        varlen: bool,
    ) {
        if chunk_dims.len() != header.shape.len() {
            self.header_invalid(path, addr, "chunk rank differs from dataspace rank");
            return;
        }
        if chunk_dims.contains(&0) {
            self.header_invalid(path, addr, "zero chunk dimension");
            return;
        }
        let expected: u64 = header
            .shape
            .iter()
            .zip(chunk_dims)
            .map(|(&s, &c)| s.div_ceil(c))
            .product::<u64>()
            .max(1);
        let Some(buf) = self.slice(index_addr, index_len) else {
            self.header_invalid(path, addr, "chunk index beyond end of file");
            return;
        };
        self.claim(index_addr, index_len, format!("chunk index {path:?}"));
        let entries = match ChunkIndex::decode_block(buf) {
            Ok(e) => e,
            Err(e) => {
                self.header_invalid(path, addr, format!("undecodable chunk index: {e}"));
                return;
            }
        };
        if entries.len() as u64 != expected {
            self.header_invalid(
                path,
                addr,
                format!(
                    "chunk index holds {} entries, dataspace needs {expected}",
                    entries.len()
                ),
            );
        }
        for (ordinal, (chunk_addr, chunk_size)) in entries.into_iter().enumerate() {
            if chunk_addr == 0 {
                continue; // unallocated chunk
            }
            if out_of_bounds(chunk_addr, chunk_size as u64, self.eof) {
                self.report.push(Finding::ChunkEntryOutOfBounds {
                    dataset: path.to_owned(),
                    ordinal: ordinal as u64,
                    addr: chunk_addr,
                    size: chunk_size as u64,
                    eof: self.eof,
                });
                continue;
            }
            self.claim_raw(
                chunk_addr,
                chunk_size as u64,
                format!("chunk {ordinal} of {path:?}"),
                path,
            );
            if varlen {
                if let Some(buf) = self.slice(chunk_addr, chunk_size as u64) {
                    self.check_varlen_slots(path, buf);
                }
            }
        }
    }

    /// Validates every 16-byte variable-length descriptor in a storage
    /// region (trailing partial slots are structural corruption).
    fn check_varlen_slots(&mut self, path: &str, storage: &[u8]) {
        let slot = HeapRef::SIZE as usize;
        if !storage.len().is_multiple_of(slot) {
            self.report.push(Finding::DanglingHeapRef {
                dataset: path.to_owned(),
                block_addr: 0,
                detail: format!(
                    "var-len storage of {} bytes is not a whole number of descriptors",
                    storage.len()
                ),
            });
        }
        for chunk in storage.chunks_exact(slot) {
            let Ok(href) = HeapRef::decode(chunk) else {
                continue;
            };
            if href.is_null() {
                continue;
            }
            self.check_heap_ref(path, href);
        }
    }

    fn check_heap_ref(&mut self, path: &str, href: HeapRef) {
        let dangling = |detail: &str| Finding::DanglingHeapRef {
            dataset: path.to_owned(),
            block_addr: href.block_addr,
            detail: detail.to_owned(),
        };
        let Some(head) = self.slice(href.block_addr, HEAP_HEADER) else {
            self.report
                .push(dangling("heap block header beyond end of file"));
            return;
        };
        let magic = u32::from_le_bytes(head[0..4].try_into().expect("header slice"));
        if magic != HEAP_MAGIC {
            self.report.push(dangling("no heap block at address"));
            return;
        }
        if (href.offset as u64) < HEAP_HEADER {
            self.report.push(dangling("payload overlaps heap header"));
            return;
        }
        let span = href.offset as u64 + href.len as u64;
        if out_of_bounds(href.block_addr, span, self.len()) {
            self.report.push(dangling("payload beyond end of file"));
            return;
        }
        let end = self.heap_blocks.entry(href.block_addr).or_insert(span);
        *end = (*end).max(span);
    }

    /// Indexes every claimed extent in an interval tree and reports each
    /// overlapping pair exactly once. Raw data of two *different*
    /// datasets sharing bytes is a [`Finding::SharedRawExtent`]; every
    /// other collision (metadata involved, or a dataset double-claiming
    /// its own bytes) stays a generic [`Finding::OverlappingExtents`].
    fn check_overlaps(&mut self) {
        let heap: Vec<(u64, u64)> = self.heap_blocks.iter().map(|(&a, &s)| (a, s)).collect();
        for (addr, span) in heap {
            self.claim(addr, span, format!("heap block @{addr}"));
        }
        self.claims
            .sort_by(|a, b| (a.extent, a.label.as_str()).cmp(&(b.extent, b.label.as_str())));
        let tree = IntervalTree::build(
            self.claims
                .iter()
                .enumerate()
                .map(|(i, c)| (c.extent, i))
                .collect(),
        );
        let mut findings = Vec::new();
        for (i, c) in self.claims.iter().enumerate() {
            tree.for_each_overlap(c.extent, |_, &j| {
                if j <= i {
                    return; // each unordered pair exactly once
                }
                let other = &self.claims[j];
                findings.push(match (&c.dataset, &other.dataset) {
                    (Some(a), Some(b)) if a != b => {
                        let x = c
                            .extent
                            .intersection(&other.extent)
                            .expect("tree reported an overlap");
                        Finding::SharedRawExtent {
                            a_dataset: a.min(b).clone(),
                            b_dataset: a.max(b).clone(),
                            start: x.start,
                            end: x.end,
                        }
                    }
                    _ => Finding::OverlappingExtents {
                        a: c.label.clone(),
                        a_addr: c.extent.start,
                        a_len: c.extent.len(),
                        b: other.label.clone(),
                        b_addr: other.extent.start,
                        b_len: other.extent.len(),
                    },
                });
            });
        }
        for f in findings {
            self.report.push(f);
        }
    }
}

/// Checks a raw file image and reports every violated invariant. An empty
/// report means the file is structurally sound.
pub fn fsck_bytes(image: &[u8]) -> Report {
    let mut report = Report::new();
    if (image.len() as u64) < meta::SUPERBLOCK_SIZE {
        report.push(Finding::SuperblockInvalid {
            detail: format!(
                "file is {} bytes, shorter than a superblock slot",
                image.len()
            ),
        });
        return report;
    }
    // Inspect both slots of the dual-superblock region: a vacant slot is
    // normal, a populated slot that fails to decode is a finding. The
    // newest valid generation governs the walk.
    let mut best: Option<Superblock> = None;
    for (name, off) in [("A", 0u64), ("B", meta::SUPERBLOCK_SIZE)] {
        let Some(slot) = image.get(off as usize..(off + meta::SUPERBLOCK_SIZE) as usize) else {
            report.push(Finding::SuperblockInvalid {
                detail: format!("slot {name} truncated by end of file"),
            });
            continue;
        };
        if slot_vacant(slot) {
            continue;
        }
        match Superblock::decode(slot) {
            Ok(sb) => {
                if best.is_none_or(|b: Superblock| sb.generation > b.generation) {
                    best = Some(sb);
                }
            }
            Err(e) => report.push(Finding::SuperblockInvalid {
                detail: format!("slot {name}: {e}"),
            }),
        }
    }
    let Some(sb) = best else {
        if report.is_clean() {
            report.push(Finding::SuperblockInvalid {
                detail: "no superblock slot is populated".into(),
            });
        }
        return report;
    };
    if sb.eof > image.len() as u64 {
        report.push(Finding::SuperblockInvalid {
            detail: format!("eof {} beyond file length {}", sb.eof, image.len()),
        });
    }
    if sb.eof < meta::SUPERBLOCK_REGION {
        report.push(Finding::SuperblockInvalid {
            detail: format!("eof {} inside the superblock region", sb.eof),
        });
    }
    let mut fsck = Fsck {
        image,
        eof: sb.eof.min(image.len() as u64),
        report,
        claims: Vec::new(),
        heap_blocks: BTreeMap::new(),
    };
    fsck.claim(0, meta::SUPERBLOCK_REGION, "superblock region");
    if sb.journal_addr != 0 {
        if out_of_bounds(sb.journal_addr, sb.journal_cap, fsck.len()) {
            fsck.report.push(Finding::SuperblockInvalid {
                detail: format!(
                    "journal region [{}, {}) beyond file length {}",
                    sb.journal_addr,
                    sb.journal_addr.saturating_add(sb.journal_cap),
                    fsck.len()
                ),
            });
        } else {
            fsck.claim(sb.journal_addr, sb.journal_cap, "journal region");
        }
    }
    if sb.root_addr == 0 || out_of_bounds(sb.root_addr, meta::HEADER_BLOCK_SIZE, fsck.len()) {
        fsck.report.push(Finding::SuperblockInvalid {
            detail: format!("root header address {} outside the file", sb.root_addr),
        });
    } else {
        fsck.walk(sb.root_addr);
    }
    fsck.check_overlaps();
    fsck.report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_hdf::{DataType, DatasetBuilder, FileOptions, H5File, LayoutKind};
    use dayu_vfd::MemFs;

    /// Builds a representative file (groups, attrs, all three layouts,
    /// var-len data) and returns its raw image.
    fn sample_image() -> Vec<u8> {
        let fs = MemFs::new();
        let f = H5File::create(fs.create("s.h5"), "s.h5", FileOptions::default()).unwrap();
        let root = f.root();
        root.set_attr("run", dayu_hdf::AttrValue::U64(7)).unwrap();
        let g = root.create_group("grid").unwrap();
        let mut contiguous = g
            .create_dataset("c", DatasetBuilder::new(DataType::Int { width: 4 }, &[32]))
            .unwrap();
        contiguous.write(&[9u8; 128]).unwrap();
        contiguous.close().unwrap();
        let mut chunked = g
            .create_dataset(
                "k",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[64]).chunks(&[16]),
            )
            .unwrap();
        chunked.write(&[3u8; 64]).unwrap();
        chunked.close().unwrap();
        let mut compact = root
            .create_dataset(
                "tiny",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[8]).layout(LayoutKind::Compact),
            )
            .unwrap();
        compact.write(&[1u8; 8]).unwrap();
        compact.close().unwrap();
        let mut vl = root
            .create_dataset("vl", DatasetBuilder::new(DataType::VarLen, &[3]))
            .unwrap();
        vl.write_varlen(0, &[b"alpha", b"bee", b"sea"]).unwrap();
        vl.close().unwrap();
        f.close().unwrap();
        fs.snapshot("s.h5").unwrap()
    }

    /// Decodes the live (newest valid) superblock of an image.
    fn live_sb(image: &[u8]) -> Superblock {
        Superblock::decode_region(&image[..meta::SUPERBLOCK_REGION as usize]).unwrap()
    }

    /// Mutates the live superblock and re-signs its slot, so tests can
    /// poke fields without tripping the slot CRC.
    fn poke_sb(image: &mut [u8], f: impl FnOnce(&mut Superblock)) {
        let mut sb = live_sb(image);
        f(&mut sb);
        let off = Superblock::slot_offset(sb.generation) as usize;
        image[off..off + meta::SUPERBLOCK_SIZE as usize].copy_from_slice(&sb.encode());
    }

    /// Finds the chunked dataset `/grid/k` and returns the address of its
    /// chunk index block.
    fn chunk_index_addr(image: &[u8]) -> u64 {
        let sb = live_sb(image);
        let hdr = |addr: u64| {
            ObjectHeader::decode(&image[addr as usize..(addr + meta::HEADER_BLOCK_SIZE) as usize])
                .unwrap()
        };
        let table = |h: &ObjectHeader| {
            group::decode_table(
                &image[h.table_addr as usize..(h.table_addr + h.table_len) as usize],
            )
            .unwrap()
        };
        let root = hdr(sb.root_addr);
        let grid = table(&root).into_iter().find(|e| e.name == "grid").unwrap();
        let k = table(&hdr(grid.addr))
            .into_iter()
            .find(|e| e.name == "k")
            .unwrap();
        match hdr(k.addr).layout {
            Some(LayoutMessage::Chunked { index_addr, .. }) => index_addr,
            other => panic!("expected chunked layout, got {other:?}"),
        }
    }

    #[test]
    fn clean_file_passes() {
        let report = fsck_bytes(&sample_image());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn truncated_file_is_superblock_invalid() {
        let report = fsck_bytes(&[0u8; 10]);
        assert!(matches!(
            report.findings[0],
            Finding::SuperblockInvalid { .. }
        ));
    }

    #[test]
    fn bad_magic_is_superblock_invalid() {
        let mut image = sample_image();
        image[0] = b'X';
        let report = fsck_bytes(&image);
        assert!(matches!(
            report.findings[0],
            Finding::SuperblockInvalid { .. }
        ));
    }

    #[test]
    fn chunk_entry_beyond_eof_is_flagged() {
        let mut image = sample_image();
        let idx = chunk_index_addr(&image) as usize;
        // Entry 0 starts after the u32 count; point it far past eof.
        let bogus = image.len() as u64 + 4096;
        image[idx + 4..idx + 12].copy_from_slice(&bogus.to_le_bytes());
        let report = fsck_bytes(&image);
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::ChunkEntryOutOfBounds { .. })),
            "{report}"
        );
    }

    /// Address of `/grid/c`'s contiguous raw-data extent.
    fn contiguous_addr(image: &[u8]) -> u64 {
        let sb = live_sb(image);
        let hdr = |addr: u64| {
            ObjectHeader::decode(&image[addr as usize..(addr + meta::HEADER_BLOCK_SIZE) as usize])
                .unwrap()
        };
        let table = |h: &ObjectHeader| {
            group::decode_table(
                &image[h.table_addr as usize..(h.table_addr + h.table_len) as usize],
            )
            .unwrap()
        };
        let root = hdr(sb.root_addr);
        let grid = table(&root).into_iter().find(|e| e.name == "grid").unwrap();
        let c = table(&hdr(grid.addr))
            .into_iter()
            .find(|e| e.name == "c")
            .unwrap();
        match hdr(c.addr).layout {
            Some(LayoutMessage::Contiguous { addr, .. }) => addr,
            other => panic!("expected contiguous layout, got {other:?}"),
        }
    }

    #[test]
    fn chunk_aliasing_another_dataset_is_a_shared_raw_extent() {
        let mut image = sample_image();
        let idx = chunk_index_addr(&image) as usize;
        // Point chunk 0 of /grid/k into /grid/c's contiguous storage: two
        // datasets now own the same raw bytes.
        let c_addr = contiguous_addr(&image);
        image[idx + 4..idx + 12].copy_from_slice(&c_addr.to_le_bytes());
        let report = fsck_bytes(&image);
        assert!(
            report.findings.iter().any(|f| matches!(
                f,
                Finding::SharedRawExtent { a_dataset, b_dataset, start, end }
                    if a_dataset == "/grid/c" && b_dataset == "/grid/k"
                        && *start == c_addr && *end > c_addr
            )),
            "{report}"
        );
    }

    #[test]
    fn chunk_aliasing_its_own_dataset_stays_a_generic_overlap() {
        let mut image = sample_image();
        let idx = chunk_index_addr(&image) as usize;
        // Point chunk 1 of /grid/k at chunk 0's bytes: same dataset on
        // both sides, so the sharper cross-dataset finding must not fire.
        let chunk0 = u64::from_le_bytes(image[idx + 4..idx + 12].try_into().unwrap());
        image[idx + 16..idx + 24].copy_from_slice(&chunk0.to_le_bytes());
        let report = fsck_bytes(&image);
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::OverlappingExtents { .. })),
            "{report}"
        );
        assert!(
            !report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::SharedRawExtent { .. })),
            "{report}"
        );
    }

    #[test]
    fn chunk_entry_into_metadata_is_overlap() {
        let mut image = sample_image();
        let idx = chunk_index_addr(&image) as usize;
        let sb = live_sb(&image);
        // Point chunk 0 at the root header block: two owners, one extent.
        image[idx + 4..idx + 12].copy_from_slice(&sb.root_addr.to_le_bytes());
        let report = fsck_bytes(&image);
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::OverlappingExtents { .. })),
            "{report}"
        );
    }

    #[test]
    fn corrupt_header_kind_is_flagged() {
        let mut image = sample_image();
        let sb = live_sb(&image);
        image[sb.root_addr as usize] = 77;
        let report = fsck_bytes(&image);
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::ObjectHeaderInvalid { .. })),
            "{report}"
        );
    }

    #[test]
    fn eof_beyond_image_is_flagged() {
        let mut image = sample_image();
        let huge = image.len() as u64 + 1000;
        // Re-signed, so the eof bounds check itself fires (not the CRC).
        poke_sb(&mut image, |sb| sb.eof = huge);
        let report = fsck_bytes(&image);
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::SuperblockInvalid { .. })),
            "{report}"
        );
    }

    #[test]
    fn vacant_slot_is_not_a_finding() {
        // A freshly created file has generation 1 in slot B and a vacant
        // slot A; fsck must treat vacancy as normal, not as corruption.
        let fs = MemFs::new();
        let f = H5File::create(fs.create("v.h5"), "v.h5", FileOptions::default()).unwrap();
        f.close().unwrap();
        let image = fs.snapshot("v.h5").unwrap();
        assert!(
            super::slot_vacant(&image[..meta::SUPERBLOCK_SIZE as usize]),
            "slot A of a fresh file should be vacant"
        );
        let report = fsck_bytes(&image);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn corrupt_populated_slot_is_flagged_but_walk_continues() {
        let mut image = sample_image();
        // Slot A holds the live generation after close; breaking its magic
        // must surface a finding while the walk falls back to slot B.
        image[0] = b'X';
        let report = fsck_bytes(&image);
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::SuperblockInvalid { .. })),
            "{report}"
        );
    }

    #[test]
    fn journaled_file_passes_and_claims_its_journal() {
        use dayu_hdf::Durability;
        let fs = MemFs::new();
        let f = H5File::create(
            fs.create("j.h5"),
            "j.h5",
            FileOptions::default().with_durability(Durability::Journal),
        )
        .unwrap();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[4]))
            .unwrap();
        ds.write_u64s(&[1, 2, 3, 4]).unwrap();
        ds.close().unwrap();
        f.close().unwrap();
        let image = fs.snapshot("j.h5").unwrap();
        let sb = live_sb(&image);
        assert_ne!(sb.journal_addr, 0, "journaled file records its journal");
        let report = fsck_bytes(&image);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn journal_region_beyond_file_is_flagged() {
        let mut image = sample_image();
        let len = image.len() as u64;
        poke_sb(&mut image, |sb| {
            sb.journal_addr = len + 64;
            sb.journal_cap = 4096;
        });
        let report = fsck_bytes(&image);
        assert!(
            report.findings.iter().any(
                |f| matches!(f, Finding::SuperblockInvalid { detail } if detail.contains("journal"))
            ),
            "{report}"
        );
    }
}
