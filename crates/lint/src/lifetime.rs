//! Pass 1b — dataset lifetime analysis.
//!
//! Where the hazard pass asks "can these two tasks collide?", this pass
//! follows each logical dataset through its recorded life and asks whether
//! the workflow ever *uses* what it paid to store:
//!
//! * **Use-after-close** — a task issued data I/O on a file after closing
//!   it (every open has been balanced by a close). Always a defect.
//! * **Dataset read-before-write** — a task reads a dataset that other
//!   tasks write, but no writer is ordered (happens-before) ahead of the
//!   read. The dataset-granularity refinement of the file-level check.
//! * **Dead dataset** — written but never read by anyone in the whole
//!   recorded workflow: storage and I/O an in-situ rewrite could elide
//!   (surfaced to the advisor as `ElideDataset`).
//! * **Redundant overwrite** — an ordered later writer re-covered every
//!   byte of a dataset before any task could have read the first version:
//!   the first write was wasted I/O.
//!
//! The last two are *waste*, not unsafety — final outputs of a workflow
//! are legitimately never read back — so they are reported only when
//! [`crate::LintConfig::report_dead_data`] opts in.

use crate::extent::{Extent, ExtentSet};
use crate::hb::TaskHb;
use crate::model::{Finding, Report};
use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
use dayu_trace::{FileKey, ObjectKey, TaskKey};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Open/close balance of one (task, file) pair.
#[derive(Default)]
struct OpenState {
    depth: u32,
    ever_closed: bool,
}

/// What one task wrote into one dataset.
#[derive(Default)]
struct WriterInfo {
    cover: ExtentSet,
    first_seq: u64,
    bytes: u64,
}

/// Recorded raw-data life of one (file, dataset) pair.
#[derive(Default)]
struct ObjState {
    writers: BTreeMap<TaskKey, WriterInfo>,
    /// Reader task → sequence of its first raw read.
    readers: BTreeMap<TaskKey, u64>,
}

/// Streaming dataset-lifetime analysis. Feed every VFD record through
/// [`LifetimePass::op`] in trace order, then [`LifetimePass::finish`].
#[derive(Default)]
pub struct LifetimePass {
    open: HashMap<(TaskKey, FileKey), OpenState>,
    uac_seen: BTreeSet<(TaskKey, FileKey, ObjectKey)>,
    uac: Vec<Finding>,
    objects: BTreeMap<(FileKey, ObjectKey), ObjState>,
}

impl LifetimePass {
    /// A fresh pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record into the pass. `seq` is the task's program-order
    /// position of the op (any per-task monotonic counter works).
    pub fn op(&mut self, r: &VfdRecord, seq: u64) {
        match r.kind {
            IoKind::Open => {
                self.open
                    .entry((r.task.clone(), r.file.clone()))
                    .or_default()
                    .depth += 1;
            }
            IoKind::Close => {
                let st = self
                    .open
                    .entry((r.task.clone(), r.file.clone()))
                    .or_default();
                st.depth = st.depth.saturating_sub(1);
                st.ever_closed = true;
            }
            k if k.moves_data() => {
                if let Some(st) = self.open.get(&(r.task.clone(), r.file.clone())) {
                    if st.depth == 0
                        && st.ever_closed
                        && self
                            .uac_seen
                            .insert((r.task.clone(), r.file.clone(), r.object.clone()))
                    {
                        self.uac.push(Finding::UseAfterClose {
                            file: r.file.as_str().to_owned(),
                            task: r.task.as_str().to_owned(),
                            dataset: r.object.as_str().to_owned(),
                        });
                    }
                }
                // Dataset bookkeeping tracks raw payload bytes only, and
                // only when the VOL layer attributed the op to a real
                // object (unattributed raw I/O carries the File-Metadata
                // sentinel and has no dataset-level meaning).
                if r.access == AccessType::RawData && r.object != ObjectKey::file_metadata() {
                    let obj = self
                        .objects
                        .entry((r.file.clone(), r.object.clone()))
                        .or_default();
                    match r.kind {
                        IoKind::Write => {
                            let w = obj.writers.entry(r.task.clone()).or_insert(WriterInfo {
                                cover: ExtentSet::new(),
                                first_seq: seq,
                                bytes: 0,
                            });
                            w.cover.insert(Extent::of(r.offset, r.len));
                            w.bytes += r.len;
                        }
                        IoKind::Read => {
                            obj.readers.entry(r.task.clone()).or_insert(seq);
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }

    /// Emits the pass's findings. `hb` (when the trace recorded stages)
    /// enables the order-dependent checks; `report_dead_data` opts into
    /// the waste class (dead datasets, redundant overwrites).
    pub fn finish(&self, hb: Option<&TaskHb>, report_dead_data: bool) -> Report {
        let mut report = Report::new();
        for f in &self.uac {
            report.push(f.clone());
        }
        for ((file, object), st) in &self.objects {
            if report_dead_data && !st.writers.is_empty() && st.readers.is_empty() {
                report.push(Finding::DeadDataset {
                    file: file.as_str().to_owned(),
                    dataset: object.as_str().to_owned(),
                    writers: st.writers.keys().map(|t| t.as_str().to_owned()).collect(),
                    bytes: st.writers.values().map(|w| w.bytes).sum(),
                });
            }
            let Some(hb) = hb else {
                continue;
            };
            self.read_before_write(hb, file, object, st, &mut report);
            if report_dead_data {
                self.redundant_overwrite(hb, file, object, st, &mut report);
            }
        }
        report
    }

    /// Reads of `object` with no happens-before-ordered producer.
    fn read_before_write(
        &self,
        hb: &TaskHb,
        file: &FileKey,
        object: &ObjectKey,
        st: &ObjState,
        report: &mut Report,
    ) {
        for (reader, &rseq) in &st.readers {
            // Reading back one's own earlier write is production, not
            // consumption.
            if st.writers.get(reader).is_some_and(|w| w.first_seq < rseq) {
                continue;
            }
            let foreign: Vec<&TaskKey> = st.writers.keys().filter(|w| *w != reader).collect();
            if foreign.is_empty() {
                continue;
            }
            let Some(rid) = hb.task(reader.as_str()) else {
                // Unstaged reader: order is unknowable, stay silent rather
                // than guess.
                continue;
            };
            let mut all_known = true;
            let mut ordered = false;
            for w in &foreign {
                match hb.task(w.as_str()) {
                    None => all_known = false,
                    Some(wid) => ordered |= hb.happens_before(wid, rid),
                }
            }
            if all_known && !ordered {
                report.push(Finding::DatasetReadBeforeWrite {
                    file: file.as_str().to_owned(),
                    dataset: object.as_str().to_owned(),
                    reader: reader.as_str().to_owned(),
                    writers: foreign.iter().map(|w| w.as_str().to_owned()).collect(),
                });
            }
        }
    }

    /// An ordered later writer fully re-covered the dataset before anyone
    /// could have read the first version. Provable only when every reader
    /// is ordered before the first writer; one finding per dataset.
    fn redundant_overwrite(
        &self,
        hb: &TaskHb,
        file: &FileKey,
        object: &ObjectKey,
        st: &ObjState,
        report: &mut Report,
    ) {
        for (a, ai) in &st.writers {
            let Some(aid) = hb.task(a.as_str()) else {
                continue;
            };
            let unread = st.readers.keys().all(|r| {
                hb.task(r.as_str())
                    .is_some_and(|rid| hb.happens_before(rid, aid))
            });
            if !unread {
                continue;
            }
            for (b, bi) in &st.writers {
                if a == b {
                    continue;
                }
                let Some(bid) = hb.task(b.as_str()) else {
                    continue;
                };
                if hb.happens_before(aid, bid) && bi.cover.covers(&ai.cover) {
                    report.push(Finding::RedundantOverwrite {
                        file: file.as_str().to_owned(),
                        dataset: object.as_str().to_owned(),
                        first: a.as_str().to_owned(),
                        second: b.as_str().to_owned(),
                        bytes: ai.cover.total_len(),
                    });
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_trace::Timestamp;

    fn rec(task: &str, file: &str, kind: IoKind, offset: u64, len: u64, object: &str) -> VfdRecord {
        VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new(file),
            kind,
            offset,
            len,
            access: AccessType::RawData,
            object: ObjectKey::new(object),
            start: Timestamp(0),
            end: Timestamp(1),
        }
    }

    fn feed(pass: &mut LifetimePass, records: &[VfdRecord]) {
        let mut seq: HashMap<TaskKey, u64> = HashMap::new();
        for r in records {
            let s = seq.entry(r.task.clone()).or_insert(0);
            pass.op(r, *s);
            *s += 1;
        }
    }

    #[test]
    fn data_op_after_close_is_flagged_once() {
        let mut pass = LifetimePass::new();
        feed(
            &mut pass,
            &[
                rec("t", "f.h5", IoKind::Open, 0, 0, "/d"),
                rec("t", "f.h5", IoKind::Write, 0, 8, "/d"),
                rec("t", "f.h5", IoKind::Close, 0, 0, "/d"),
                rec("t", "f.h5", IoKind::Read, 0, 8, "/d"),
                rec("t", "f.h5", IoKind::Read, 8, 8, "/d"), // same (task,file,object): dedup
            ],
        );
        let report = pass.finish(None, false);
        assert_eq!(report.len(), 1, "{report}");
        assert!(matches!(
            &report.findings[0],
            Finding::UseAfterClose { task, .. } if task == "t"
        ));

        // Reopening clears the state.
        let mut pass = LifetimePass::new();
        feed(
            &mut pass,
            &[
                rec("t", "f.h5", IoKind::Open, 0, 0, "/d"),
                rec("t", "f.h5", IoKind::Close, 0, 0, "/d"),
                rec("t", "f.h5", IoKind::Open, 0, 0, "/d"),
                rec("t", "f.h5", IoKind::Read, 0, 8, "/d"),
            ],
        );
        assert!(pass.finish(None, false).is_clean());
    }

    #[test]
    fn dead_dataset_is_opt_in_and_reads_anywhere_clear_it() {
        let mut pass = LifetimePass::new();
        feed(
            &mut pass,
            &[
                rec("w", "f.h5", IoKind::Write, 0, 64, "/dead"),
                rec("w", "f.h5", IoKind::Write, 64, 64, "/dead"),
                rec("w", "f.h5", IoKind::Write, 0, 32, "/live"),
                rec("r", "f.h5", IoKind::Read, 0, 32, "/live"),
            ],
        );
        assert!(pass.finish(None, false).is_clean());
        let report = pass.finish(None, true);
        assert_eq!(report.len(), 1, "{report}");
        assert!(matches!(
            &report.findings[0],
            Finding::DeadDataset { dataset, bytes, .. } if dataset == "/dead" && *bytes == 128
        ));
    }

    #[test]
    fn unordered_dataset_read_is_flagged_ordered_and_self_reads_are_not() {
        let hb = TaskHb::from_stages(&[vec!["w", "peer"], vec!["late"]]);
        let mut pass = LifetimePass::new();
        feed(
            &mut pass,
            &[
                rec("w", "f.h5", IoKind::Write, 0, 64, "/d"),
                rec("w", "f.h5", IoKind::Read, 0, 64, "/d"), // self read-back
                rec("peer", "f.h5", IoKind::Read, 0, 64, "/d"), // same stage: unordered
                rec("late", "f.h5", IoKind::Read, 0, 64, "/d"), // next stage: ordered
            ],
        );
        let report = pass.finish(Some(&hb), false);
        assert_eq!(report.len(), 1, "{report}");
        assert!(matches!(
            &report.findings[0],
            Finding::DatasetReadBeforeWrite { reader, writers, .. }
                if reader == "peer" && writers == &["w".to_owned()]
        ));
        // Without stage knowledge the check stays silent.
        assert!(pass.finish(None, false).is_clean());
    }

    #[test]
    fn full_ordered_overwrite_of_unread_version_is_redundant() {
        let hb = TaskHb::from_stages(&[vec!["first"], vec!["second"], vec!["reader"]]);
        let mut pass = LifetimePass::new();
        feed(
            &mut pass,
            &[
                rec("first", "f.h5", IoKind::Write, 0, 100, "/d"),
                rec("second", "f.h5", IoKind::Write, 0, 128, "/d"),
                rec("reader", "f.h5", IoKind::Read, 0, 128, "/d"),
            ],
        );
        let report = pass.finish(Some(&hb), true);
        assert!(
            report.findings.iter().any(|f| matches!(
                f,
                Finding::RedundantOverwrite { first, second, bytes, .. }
                    if first == "first" && second == "second" && *bytes == 100
            )),
            "{report}"
        );

        // A read between the two versions makes the first write useful.
        let hb = TaskHb::from_stages(&[vec!["first"], vec!["mid_reader"], vec!["second"]]);
        let mut pass = LifetimePass::new();
        feed(
            &mut pass,
            &[
                rec("first", "f.h5", IoKind::Write, 0, 100, "/d"),
                rec("mid_reader", "f.h5", IoKind::Read, 0, 100, "/d"),
                rec("second", "f.h5", IoKind::Write, 0, 128, "/d"),
            ],
        );
        let report = pass.finish(Some(&hb), true);
        assert!(
            !report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::RedundantOverwrite { .. })),
            "{report}"
        );

        // A partial overwrite is not redundant either.
        let hb = TaskHb::from_stages(&[vec!["first"], vec!["second"]]);
        let mut pass = LifetimePass::new();
        feed(
            &mut pass,
            &[
                rec("first", "f.h5", IoKind::Write, 0, 100, "/d"),
                rec("second", "f.h5", IoKind::Write, 0, 50, "/d"),
            ],
        );
        let report = pass.finish(Some(&hb), true);
        assert!(
            !report
                .findings
                .iter()
                .any(|f| matches!(f, Finding::RedundantOverwrite { .. })),
            "{report}"
        );
    }

    #[test]
    fn unattributed_raw_io_carries_no_dataset_findings() {
        let mut pass = LifetimePass::new();
        feed(
            &mut pass,
            &[rec(
                "w",
                "f.h5",
                IoKind::Write,
                0,
                64,
                ObjectKey::file_metadata().as_str(),
            )],
        );
        assert!(pass.finish(None, true).is_clean());
    }
}
