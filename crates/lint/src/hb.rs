//! The happens-before engine: a partial order over recorded operations.
//!
//! Three sources of order compose here, mirroring how the workflow engine
//! actually schedules work:
//!
//! 1. **Stage barriers** — the runner launches stage *i + 1* only after
//!    every task of stage *i* returned, so any op of an earlier stage
//!    happens-before any op of a later one. General dependency DAGs are
//!    supported too ([`TaskHb::from_deps`]).
//! 2. **Program order** — ops of one task within one attempt are totally
//!    ordered by their recorded sequence.
//! 3. **Retry attempts** — a failed attempt fully precedes its retry; ops
//!    of attempt *k* happen-before ops of attempt *k + 1* of the same task.
//!
//! Two ops are **concurrent** iff neither happens-before the other; only
//! concurrent ops can race. Task-level reachability is a transitive
//! closure held as one bitset row per task, so op-level queries cost a
//! couple of integer compares plus one bit test — cheap enough to sit on
//! the million-op detector path.

use std::collections::HashMap;

/// Position of one recorded op: owning task (dense id), retry attempt,
/// and program-order sequence within the attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCtx {
    /// Dense task id from [`TaskHb`].
    pub task: usize,
    /// Retry attempt ordinal (0 for the first attempt; persisted bundles
    /// only ever hold the surviving attempt).
    pub attempt: u32,
    /// Program-order position within the attempt.
    pub seq: u64,
}

impl OpCtx {
    /// An op of the first attempt.
    pub fn new(task: usize, seq: u64) -> Self {
        Self {
            task,
            attempt: 0,
            seq,
        }
    }
}

/// Task-level happens-before relation: dense task ids plus one transitive
/// closure bitset row per task (`reach[b]` bit `a` set ⇔ `a` must finish
/// before `b` starts).
#[derive(Clone, Debug, Default)]
pub struct TaskHb {
    names: Vec<String>,
    index: HashMap<String, usize>,
    reach: Vec<Vec<u64>>,
    words: usize,
}

impl TaskHb {
    /// Builds the relation from explicit dependency edges: `tasks[i]` is
    /// `(name, deps)` where each dep is an index of a task that must
    /// finish first. Out-of-range and self dependencies are ignored;
    /// cycles cannot deadlock the walk (matching `hazard::ancestors`).
    pub fn from_deps<S: AsRef<str>>(tasks: &[(S, Vec<usize>)]) -> Self {
        let n = tasks.len();
        let words = n.div_ceil(64);
        let mut hb = Self {
            names: tasks.iter().map(|(s, _)| s.as_ref().to_owned()).collect(),
            index: HashMap::with_capacity(n),
            reach: vec![vec![0u64; words]; n],
            words,
        };
        for (i, name) in hb.names.iter().enumerate() {
            hb.index.insert(name.clone(), i);
        }

        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Unvisited,
            InProgress,
            Done,
        }
        fn visit<S: AsRef<str>>(
            i: usize,
            tasks: &[(S, Vec<usize>)],
            state: &mut [State],
            reach: &mut [Vec<u64>],
        ) {
            if state[i] != State::Unvisited {
                return;
            }
            state[i] = State::InProgress;
            for &d in &tasks[i].1 {
                if d >= tasks.len() || d == i {
                    continue;
                }
                visit(d, tasks, state, reach);
                let row_d = reach[d].clone();
                let row_i = &mut reach[i];
                for (w, bits) in row_d.into_iter().enumerate() {
                    row_i[w] |= bits;
                }
                row_i[d / 64] |= 1u64 << (d % 64);
            }
            state[i] = State::Done;
        }
        let mut state = vec![State::Unvisited; n];
        for i in 0..n {
            visit(i, tasks, &mut state, &mut hb.reach);
        }
        hb
    }

    /// Builds the relation from barrier-synchronized stages: every task of
    /// stage *i* depends on every task of stage *i - 1* (transitively, on
    /// all earlier stages).
    pub fn from_stages<S: AsRef<str>>(stages: &[Vec<S>]) -> Self {
        let mut tasks: Vec<(&str, Vec<usize>)> = Vec::new();
        let mut prev: Vec<usize> = Vec::new();
        for stage in stages {
            let start = tasks.len();
            for name in stage {
                tasks.push((name.as_ref(), prev.clone()));
            }
            prev = (start..tasks.len()).collect();
        }
        Self::from_deps(&tasks)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the relation is over zero tasks.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Dense id of a task by name.
    pub fn task(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Name of a task by dense id.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Whether task `a` happens-before task `b` (strict: never reflexive).
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        a != b && self.words > 0 && (self.reach[b][a / 64] >> (a % 64)) & 1 == 1
    }

    /// Whether two distinct tasks are unordered — the precondition for any
    /// of their ops to race.
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        a != b && !self.happens_before(a, b) && !self.happens_before(b, a)
    }

    /// Op-level happens-before: program order within an attempt, attempt
    /// order within a task, task order across tasks.
    pub fn op_happens_before(&self, a: OpCtx, b: OpCtx) -> bool {
        if a.task == b.task {
            a.attempt < b.attempt || (a.attempt == b.attempt && a.seq < b.seq)
        } else {
            self.happens_before(a.task, b.task)
        }
    }

    /// Whether two ops are concurrent: neither happens-before the other.
    pub fn ops_concurrent(&self, a: OpCtx, b: OpCtx) -> bool {
        !self.op_happens_before(a, b) && !self.op_happens_before(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_barriers_order_across_not_within() {
        let hb = TaskHb::from_stages(&[vec!["a1", "a2"], vec!["b1"], vec!["c1", "c2"]]);
        let (a1, a2) = (hb.task("a1").unwrap(), hb.task("a2").unwrap());
        let b1 = hb.task("b1").unwrap();
        let c2 = hb.task("c2").unwrap();
        assert!(hb.happens_before(a1, b1));
        assert!(hb.happens_before(a1, c2)); // transitive through the barrier
        assert!(hb.happens_before(b1, c2));
        assert!(!hb.happens_before(b1, a1));
        assert!(hb.concurrent(a1, a2));
        assert!(!hb.concurrent(a1, b1));
        assert_eq!(hb.name(a1), "a1");
        assert_eq!(hb.task("ghost"), None);
    }

    #[test]
    fn op_order_combines_program_attempt_and_task() {
        let hb = TaskHb::from_stages(&[vec!["a"], vec!["b"]]);
        let (a, b) = (hb.task("a").unwrap(), hb.task("b").unwrap());
        // Program order within one attempt.
        assert!(hb.op_happens_before(OpCtx::new(a, 0), OpCtx::new(a, 1)));
        assert!(!hb.op_happens_before(OpCtx::new(a, 1), OpCtx::new(a, 0)));
        // Attempt boundaries dominate sequence numbers.
        let retry = OpCtx {
            task: a,
            attempt: 1,
            seq: 0,
        };
        assert!(hb.op_happens_before(OpCtx::new(a, 99), retry));
        // Cross-task order comes from the task relation.
        assert!(hb.op_happens_before(OpCtx::new(a, 5), OpCtx::new(b, 0)));
        assert!(!hb.ops_concurrent(OpCtx::new(a, 5), OpCtx::new(b, 0)));
        // An op is never concurrent with itself-later.
        assert!(hb.ops_concurrent(OpCtx::new(a, 3), OpCtx::new(a, 3)));
    }

    #[test]
    fn dep_dag_diamond() {
        // d depends on b and c, both depend on a.
        let tasks = [
            ("a", vec![]),
            ("b", vec![0]),
            ("c", vec![0]),
            ("d", vec![1, 2]),
        ];
        let hb = TaskHb::from_deps(&tasks);
        assert!(hb.happens_before(0, 3));
        assert!(hb.concurrent(1, 2));
        assert!(!hb.happens_before(3, 0));
        assert!(!hb.happens_before(0, 0));
    }

    #[test]
    fn bad_indices_and_empty_are_harmless() {
        let hb = TaskHb::from_deps(&[("solo", vec![7, 0])]);
        assert!(!hb.happens_before(0, 0));
        let empty = TaskHb::from_stages::<&str>(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random DAG: each task's deps point only at lower indices, so the
    /// graph is acyclic by construction.
    fn arb_dag() -> impl Strategy<Value = Vec<(String, Vec<usize>)>> {
        (2usize..12).prop_flat_map(|n| {
            let deps: Vec<_> = (0..n)
                .map(|i| prop::collection::vec(0..n.max(2), 0..3.min(i + 1)))
                .collect();
            deps.prop_map(move |deps| {
                deps.into_iter()
                    .enumerate()
                    .map(|(i, ds)| {
                        let ds = ds.into_iter().filter(|&d| d < i).collect();
                        (format!("t{i}"), ds)
                    })
                    .collect()
            })
        })
    }

    /// Random stage partition of up to 10 tasks.
    fn arb_stages() -> impl Strategy<Value = Vec<Vec<String>>> {
        prop::collection::vec(1usize..4, 1..5).prop_map(|sizes| {
            let mut id = 0;
            sizes
                .into_iter()
                .map(|k| {
                    (0..k)
                        .map(|_| {
                            id += 1;
                            format!("s{id}")
                        })
                        .collect()
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Happens-before on arbitrary DAGs is irreflexive and transitive,
        /// and concurrency is symmetric.
        #[test]
        fn hb_is_a_strict_partial_order(tasks in arb_dag()) {
            let hb = TaskHb::from_deps(&tasks);
            let n = hb.len();
            for a in 0..n {
                prop_assert!(!hb.happens_before(a, a), "irreflexive at {}", a);
                for b in 0..n {
                    prop_assert_eq!(hb.concurrent(a, b), hb.concurrent(b, a));
                    for c in 0..n {
                        if hb.happens_before(a, b) && hb.happens_before(b, c) {
                            prop_assert!(
                                hb.happens_before(a, c),
                                "transitivity broke: {} -> {} -> {}", a, b, c
                            );
                        }
                    }
                }
            }
        }

        /// On stage DAGs, the closure agrees with plain stage-index
        /// comparison: ordered iff strictly earlier stage.
        #[test]
        fn stage_hb_equals_stage_comparison(stages in arb_stages()) {
            let hb = TaskHb::from_stages(&stages);
            let mut stage_of = Vec::new();
            for (s, stage) in stages.iter().enumerate() {
                for _ in stage {
                    stage_of.push(s);
                }
            }
            for a in 0..hb.len() {
                for b in 0..hb.len() {
                    let want = a != b && stage_of[a] < stage_of[b];
                    prop_assert_eq!(hb.happens_before(a, b), want);
                }
            }
        }
    }
}
