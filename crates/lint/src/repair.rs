//! Pass 3b — `fsck --repair`: best-effort reconstruction of a damaged
//! `dayu-hdf` image.
//!
//! Repair is layered to mirror how damage happens:
//!
//! 1. **Journal recovery** — [`dayu_hdf::journal::recover_bytes`] rolls a
//!    journaled file forward (sealed epoch) or back (torn epoch) to its
//!    last committed generation. This alone heals every crash the
//!    write-ahead protocol covers.
//! 2. **Superblock surgery** — clamp an end-of-file that overruns the
//!    physical image, drop an out-of-bounds journal region, rebuild a
//!    missing root group, re-sign the live slot, and clear a populated
//!    but undecodable sibling slot.
//! 3. **Iterative prune** — run [`fsck_bytes`], translate each finding
//!    into the smallest structure drop that removes it (unlink an
//!    undecodable child, discard an out-of-bounds extent, zero a bogus
//!    chunk entry, null a dangling heap descriptor), and repeat until the
//!    image is clean, nothing more can be fixed, or the pass budget runs
//!    out. Pruning only ever *detaches* data — bytes are never invented —
//!    so a repaired file is a consistent subset of the damaged one.
//!
//! Only one condition is unrecoverable: no superblock slot decodes, which
//! leaves nothing to anchor the walk.

use crate::fsck::{fsck_bytes, out_of_bounds, slot_vacant};
use crate::model::{Finding, Report};
use dayu_hdf::chunk::ChunkIndex;
use dayu_hdf::group;
use dayu_hdf::heap::{HeapRef, HEAP_HEADER, HEAP_MAGIC};
use dayu_hdf::journal;
use dayu_hdf::meta::{self, LayoutMessage, ObjectHeader, Superblock};
use dayu_hdf::RecoveryReport;
use dayu_trace::vol::ObjectKind;

/// Prune iterations before giving up on a still-dirty image.
const MAX_PASSES: u64 = 8;

/// What a repair run did and what (if anything) it could not fix.
#[derive(Debug, Default)]
pub struct RepairReport {
    /// Journal recovery outcome (phase 1), when a superblock decoded.
    pub recovery: Option<RecoveryReport>,
    /// Human-readable log of every mutation, in application order.
    pub actions: Vec<String>,
    /// fsck evaluations performed by the prune loop.
    pub passes: u64,
    /// Findings still present after the final pass (empty on success).
    pub remaining: Report,
    /// No superblock slot decodes: there is nothing to repair from.
    pub unrecoverable: bool,
}

impl RepairReport {
    /// Whether the image is structurally sound after repair.
    pub fn is_clean(&self) -> bool {
        !self.unrecoverable && self.remaining.is_clean()
    }

    /// Whether repair changed the image at all.
    pub fn modified(&self) -> bool {
        !self.actions.is_empty()
    }
}

impl std::fmt::Display for RepairReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.unrecoverable {
            return writeln!(f, "unrecoverable: no valid superblock slot");
        }
        for a in &self.actions {
            writeln!(f, "repaired: {a}")?;
        }
        if self.is_clean() {
            writeln!(f, "clean after {} action(s)", self.actions.len())
        } else {
            write!(f, "still dirty: {}", self.remaining)
        }
    }
}

/// Repairs `image` in place. See the module docs for the phase order.
pub fn repair_bytes(image: &mut Vec<u8>) -> RepairReport {
    let mut rep = RepairReport::default();
    if (image.len() as u64) < meta::SUPERBLOCK_SIZE {
        rep.unrecoverable = true;
        rep.remaining.push(Finding::SuperblockInvalid {
            detail: format!(
                "file is {} bytes, shorter than a superblock slot",
                image.len()
            ),
        });
        return rep;
    }

    // Phase 1: roll the journal forward or back.
    match journal::recover_bytes(image) {
        Ok((report, modified)) => {
            if modified {
                rep.actions.push(format!(
                    "journal recovery: replayed {} frame(s) ({} B), discarded {} torn B, cut {} tail B",
                    report.replayed_frames,
                    report.replayed_bytes,
                    report.discarded_bytes,
                    report.truncated_tail
                ));
            }
            rep.recovery = Some(report);
        }
        Err(e) => {
            rep.unrecoverable = true;
            rep.remaining.push(Finding::SuperblockInvalid {
                detail: format!("no valid superblock slot: {e}"),
            });
            return rep;
        }
    }

    // Phase 2: superblock surgery.
    let Ok(mut sb) = Superblock::decode_region(image) else {
        // recover_bytes just decoded it; only a logic bug lands here.
        rep.unrecoverable = true;
        return rep;
    };
    let mut sb_changed = false;
    if (image.len() as u64) < meta::SUPERBLOCK_REGION {
        image.resize(meta::SUPERBLOCK_REGION as usize, 0);
        rep.actions
            .push("zero-padded file to cover the superblock region".into());
    }
    if sb.eof > image.len() as u64 {
        rep.actions.push(format!(
            "clamped eof {} to file length {}",
            sb.eof,
            image.len()
        ));
        sb.eof = image.len() as u64;
        sb_changed = true;
    }
    if sb.eof < meta::SUPERBLOCK_REGION {
        rep.actions.push(format!(
            "raised eof {} to the end of the superblock region",
            sb.eof
        ));
        sb.eof = meta::SUPERBLOCK_REGION;
        sb_changed = true;
    }
    if sb.journal_addr != 0 && out_of_bounds(sb.journal_addr, sb.journal_cap, image.len() as u64) {
        rep.actions.push(format!(
            "dropped out-of-bounds journal region at {}",
            sb.journal_addr
        ));
        sb.journal_addr = 0;
        sb.journal_cap = 0;
        sb_changed = true;
    }
    if sb.root_addr == 0 || out_of_bounds(sb.root_addr, meta::HEADER_BLOCK_SIZE, sb.eof) {
        // Rebuild an empty root group just past the superblock region —
        // or past the journal if it happens to sit there.
        let mut addr = meta::SUPERBLOCK_REGION;
        if sb.journal_addr != 0 && addr < sb.journal_addr + sb.journal_cap {
            let jend = sb.journal_addr + sb.journal_cap;
            if addr + meta::HEADER_BLOCK_SIZE > sb.journal_addr {
                addr = jend;
            }
        }
        let need = (addr + meta::HEADER_BLOCK_SIZE) as usize;
        if image.len() < need {
            image.resize(need, 0);
        }
        if sb.eof < need as u64 {
            sb.eof = need as u64;
        }
        write_header(image, addr, &ObjectHeader::new_group());
        sb.root_addr = addr;
        sb_changed = true;
        rep.actions
            .push(format!("rebuilt missing root group header at {addr}"));
    }
    let off = Superblock::slot_offset(sb.generation) as usize;
    if sb_changed {
        image[off..off + meta::SUPERBLOCK_SIZE as usize].copy_from_slice(&sb.encode());
    }
    let other = if off == 0 {
        meta::SUPERBLOCK_SIZE as usize
    } else {
        0
    };
    let sibling = &image[other..other + meta::SUPERBLOCK_SIZE as usize];
    if !slot_vacant(sibling) && Superblock::decode(sibling).is_err() {
        image[other..other + meta::SUPERBLOCK_SIZE as usize].fill(0);
        rep.actions
            .push("cleared a populated but undecodable superblock slot".into());
    }

    // Phase 3: iterative prune until clean, stuck, or out of passes.
    loop {
        rep.passes += 1;
        let findings = fsck_bytes(image);
        if findings.is_clean() || rep.passes > MAX_PASSES {
            rep.remaining = findings;
            return rep;
        }
        let before = rep.actions.len();
        apply_fixes(image, &sb, &findings, &mut rep.actions);
        if rep.actions.len() == before {
            rep.remaining = findings;
            return rep;
        }
    }
}

/// Translates one pass worth of findings into structure drops.
fn apply_fixes(image: &mut [u8], sb: &Superblock, report: &Report, actions: &mut Vec<String>) {
    let mut fixed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for f in &report.findings {
        match f {
            Finding::ObjectHeaderInvalid { path, .. } if fixed.insert(format!("obj:{path}")) => {
                fix_object(image, sb, path, actions);
            }
            Finding::ChunkEntryOutOfBounds {
                dataset, ordinal, ..
            } => {
                zero_chunk_entry(image, sb, dataset, *ordinal, actions);
            }
            Finding::DanglingHeapRef { dataset, .. } if fixed.insert(format!("heap:{dataset}")) => {
                fix_heap_refs(image, sb, dataset, actions);
            }
            // Two datasets own the same bytes; detach the later path
            // (the earlier keeps the data, matching allocator intent).
            Finding::SharedRawExtent { b_dataset, .. }
                if fixed.insert(format!("raw:{b_dataset}")) =>
            {
                drop_raw_storage(image, sb, b_dataset, actions);
            }
            Finding::OverlappingExtents { a, b, .. } => {
                let dropped_b = apply_overlap_fix(image, sb, b, &mut fixed, actions);
                if !dropped_b {
                    apply_overlap_fix(image, sb, a, &mut fixed, actions);
                }
            }
            _ => {}
        }
    }
}

/// Extracts the quoted object path from a claim label such as
/// `chunk 3 of "/grid/k"` or `entry table "/sim"`.
fn label_owner(label: &str) -> Option<String> {
    let start = label.find('"')?;
    let end = label.rfind('"')?;
    if end <= start {
        return None;
    }
    Some(label[start + 1..end].to_string())
}

/// Resolves an overlap by detaching the labelled structure: raw-data
/// claims lose their storage pointers, metadata claims lose the child.
fn apply_overlap_fix(
    image: &mut [u8],
    sb: &Superblock,
    label: &str,
    fixed: &mut std::collections::BTreeSet<String>,
    actions: &mut Vec<String>,
) -> bool {
    let Some(path) = label_owner(label) else {
        return false;
    };
    let raw = label.starts_with("contiguous")
        || (label.starts_with("chunk ") && !label.starts_with("chunk index"));
    if !fixed.insert(format!("overlap:{label}")) {
        return true; // already handled this pass
    }
    if raw {
        drop_raw_storage(image, sb, &path, actions)
    } else if path != "/" {
        drop_child(image, sb, &path, actions)
    } else {
        false
    }
}

fn read_header(image: &[u8], addr: u64) -> Option<ObjectHeader> {
    if addr == 0 || out_of_bounds(addr, meta::HEADER_BLOCK_SIZE, image.len() as u64) {
        return None;
    }
    ObjectHeader::decode(&image[addr as usize..(addr + meta::HEADER_BLOCK_SIZE) as usize]).ok()
}

fn write_header(image: &mut [u8], addr: u64, h: &ObjectHeader) -> bool {
    let Ok(bytes) = h.encode() else {
        return false;
    };
    let start = addr as usize;
    if start + bytes.len() > image.len() {
        return false;
    }
    image[start..start + bytes.len()].copy_from_slice(&bytes);
    true
}

fn table_of(image: &[u8], h: &ObjectHeader) -> Option<Vec<group::Entry>> {
    if h.table_addr == 0 {
        return Some(Vec::new());
    }
    if out_of_bounds(h.table_addr, h.table_len, image.len() as u64) {
        return None;
    }
    group::decode_table(&image[h.table_addr as usize..(h.table_addr + h.table_len) as usize]).ok()
}

/// Walks `path` from the root, returning the object's header address.
fn resolve(image: &[u8], root: u64, path: &str) -> Option<u64> {
    let mut addr = root;
    for comp in path.split('/').filter(|c| !c.is_empty()) {
        let h = read_header(image, addr)?;
        let entries = table_of(image, &h)?;
        addr = entries.into_iter().find(|e| e.name == comp)?.addr;
    }
    Some(addr)
}

/// Splits `/a/b/c` into (`/a/b`, `c`); `None` for the root itself.
fn split_parent(path: &str) -> Option<(String, String)> {
    let trimmed = path.trim_end_matches('/');
    if trimmed.is_empty() {
        return None;
    }
    let idx = trimmed.rfind('/')?;
    let parent = if idx == 0 {
        "/".to_string()
    } else {
        trimmed[..idx].to_string()
    };
    Some((parent, trimmed[idx + 1..].to_string()))
}

/// Unlinks `path` from its parent's entry table (rebuilt in place — it
/// only ever shrinks). Unlinking the root rebuilds it as an empty group.
fn drop_child(image: &mut [u8], sb: &Superblock, path: &str, actions: &mut Vec<String>) -> bool {
    let Some((parent, leaf)) = split_parent(path) else {
        if write_header(image, sb.root_addr, &ObjectHeader::new_group()) {
            actions.push("rebuilt unrepairable root as an empty group".into());
            return true;
        }
        return false;
    };
    let Some(paddr) = resolve(image, sb.root_addr, &parent) else {
        return false;
    };
    let Some(mut h) = read_header(image, paddr) else {
        return false;
    };
    let Some(mut entries) = table_of(image, &h) else {
        return false;
    };
    let n = entries.len();
    entries.retain(|e| e.name != leaf);
    if entries.len() == n {
        return false;
    }
    if entries.is_empty() {
        h.table_addr = 0;
        h.table_len = 0;
    } else {
        let bytes = group::encode_table(&entries);
        let start = h.table_addr as usize;
        if start + bytes.len() > image.len() {
            return false;
        }
        image[start..start + bytes.len()].copy_from_slice(&bytes);
        h.table_len = bytes.len() as u64;
    }
    if !write_header(image, paddr, &h) {
        return false;
    }
    actions.push(format!("unlinked unrepairable child {path:?}"));
    true
}

/// Expected chunk count for a chunked dataset's dataspace.
fn expected_chunks(shape: &[u64], chunk_dims: &[u64]) -> u64 {
    shape
        .iter()
        .zip(chunk_dims)
        .map(|(&s, &c)| s.div_ceil(c))
        .product::<u64>()
        .max(1)
}

/// Re-diagnoses the object behind an [`Finding::ObjectHeaderInvalid`] and
/// applies the narrowest fix; unlinks it when the damage is structural.
fn fix_object(image: &mut [u8], sb: &Superblock, path: &str, actions: &mut Vec<String>) -> bool {
    let addr = if path == "/" {
        Some(sb.root_addr)
    } else {
        resolve(image, sb.root_addr, path)
    };
    let Some(addr) = addr else {
        return drop_child(image, sb, path, actions);
    };
    let Some(mut h) = read_header(image, addr) else {
        return drop_child(image, sb, path, actions);
    };
    let len = image.len() as u64;
    let mut changed = false;
    if h.attr_addr != 0 {
        let bad = out_of_bounds(h.attr_addr, h.attr_len, len)
            || meta::decode_attrs(
                &image[h.attr_addr as usize..(h.attr_addr + h.attr_len) as usize],
            )
            .is_err();
        if bad {
            h.attr_addr = 0;
            h.attr_len = 0;
            changed = true;
            actions.push(format!("detached corrupt attribute block of {path:?}"));
        }
    }
    match h.kind {
        ObjectKind::Group => {
            if h.layout.is_some() || h.dtype.is_some() || !h.shape.is_empty() {
                h.layout = None;
                h.dtype = None;
                h.shape.clear();
                changed = true;
                actions.push(format!("stripped dataset messages from group {path:?}"));
            }
            if h.table_addr != 0 && table_of(image, &h).is_none() {
                h.table_addr = 0;
                h.table_len = 0;
                changed = true;
                actions.push(format!("dropped undecodable entry table of {path:?}"));
            }
        }
        _ => {
            if h.table_addr != 0 || h.table_len != 0 {
                h.table_addr = 0;
                h.table_len = 0;
                changed = true;
                actions.push(format!("stripped entry table from dataset {path:?}"));
            }
            let sound = match h.layout.clone() {
                None => false,
                Some(LayoutMessage::Compact { .. }) => true,
                Some(LayoutMessage::Contiguous { addr: ext, size }) => {
                    if ext != 0 && out_of_bounds(ext, size, sb.eof.min(len)) {
                        h.layout = Some(LayoutMessage::Contiguous { addr: 0, size: 0 });
                        changed = true;
                        actions.push(format!(
                            "discarded out-of-bounds contiguous extent of {path:?}"
                        ));
                    }
                    true
                }
                Some(LayoutMessage::Chunked {
                    chunk_dims,
                    index_addr,
                    index_len,
                }) => {
                    chunk_dims.len() == h.shape.len()
                        && !chunk_dims.contains(&0)
                        && !out_of_bounds(index_addr, index_len, len)
                        && ChunkIndex::decode_block(
                            &image[index_addr as usize..(index_addr + index_len) as usize],
                        )
                        .is_ok_and(|e| e.len() as u64 == expected_chunks(&h.shape, &chunk_dims))
                }
            };
            if !sound {
                return drop_child(image, sb, path, actions);
            }
        }
    }
    if changed {
        return write_header(image, addr, &h);
    }
    // The finding did not match any diagnosis we know how to narrow;
    // unlink so the prune loop cannot spin without progress.
    drop_child(image, sb, path, actions)
}

/// Zeroes chunk entry `ordinal` of `dataset` (0 = unallocated).
fn zero_chunk_entry(
    image: &mut [u8],
    sb: &Superblock,
    dataset: &str,
    ordinal: u64,
    actions: &mut Vec<String>,
) -> bool {
    let Some(addr) = resolve(image, sb.root_addr, dataset) else {
        return false;
    };
    let Some(h) = read_header(image, addr) else {
        return false;
    };
    let Some(LayoutMessage::Chunked {
        index_addr,
        index_len,
        ..
    }) = h.layout
    else {
        return false;
    };
    let entry = ChunkIndex::byte_len(1) - ChunkIndex::byte_len(0);
    let off = index_addr + ChunkIndex::byte_len(ordinal);
    if out_of_bounds(off, entry, (index_addr + index_len).min(image.len() as u64)) {
        return false;
    }
    image[off as usize..(off + entry) as usize].fill(0);
    actions.push(format!(
        "cleared out-of-bounds chunk {ordinal} of {dataset:?}"
    ));
    true
}

/// Detaches all raw storage of `dataset`: contiguous extents become
/// unallocated, chunk entries are zeroed. Structure survives, data does
/// not — the only safe answer once two owners dispute the bytes.
fn drop_raw_storage(
    image: &mut [u8],
    sb: &Superblock,
    dataset: &str,
    actions: &mut Vec<String>,
) -> bool {
    let Some(addr) = resolve(image, sb.root_addr, dataset) else {
        return false;
    };
    let Some(mut h) = read_header(image, addr) else {
        return false;
    };
    match h.layout.clone() {
        Some(LayoutMessage::Contiguous { addr: ext, .. }) if ext != 0 => {
            h.layout = Some(LayoutMessage::Contiguous { addr: 0, size: 0 });
            if !write_header(image, addr, &h) {
                return false;
            }
        }
        Some(LayoutMessage::Chunked {
            index_addr,
            index_len,
            ..
        }) => {
            let start = (index_addr + ChunkIndex::byte_len(0)) as usize;
            let end = (index_addr + index_len) as usize;
            if end > image.len() || start > end {
                return false;
            }
            image[start..end].fill(0);
        }
        _ => return false,
    }
    actions.push(format!("detached disputed raw storage of {dataset:?}"));
    true
}

/// Whether a heap descriptor references a live, in-bounds payload.
fn heap_ref_ok(image: &[u8], r: &HeapRef) -> bool {
    let len = image.len() as u64;
    if out_of_bounds(r.block_addr, HEAP_HEADER, len) {
        return false;
    }
    let head = &image[r.block_addr as usize..r.block_addr as usize + 4];
    if u32::from_le_bytes(head.try_into().expect("4-byte slice")) != HEAP_MAGIC {
        return false;
    }
    if (r.offset as u64) < HEAP_HEADER {
        return false;
    }
    !out_of_bounds(r.block_addr, r.offset as u64 + r.len as u64, len)
}

/// Offsets (within `region`) of descriptors that must be nulled.
fn bad_slots(image: &[u8], region: &[u8]) -> Vec<usize> {
    let slot = HeapRef::SIZE as usize;
    let mut out = Vec::new();
    for (i, chunk) in region.chunks_exact(slot).enumerate() {
        let Ok(r) = HeapRef::decode(chunk) else {
            continue;
        };
        if !r.is_null() && !heap_ref_ok(image, &r) {
            out.push(i * slot);
        }
    }
    out
}

/// Nulls every dangling variable-length descriptor of `dataset` and trims
/// storage that is not a whole number of descriptors.
fn fix_heap_refs(
    image: &mut [u8],
    sb: &Superblock,
    dataset: &str,
    actions: &mut Vec<String>,
) -> bool {
    let Some(addr) = resolve(image, sb.root_addr, dataset) else {
        return false;
    };
    let Some(mut h) = read_header(image, addr) else {
        return false;
    };
    let slot = HeapRef::SIZE;
    let mut nulled = 0usize;
    let mut trimmed = false;
    match h.layout.clone() {
        Some(LayoutMessage::Compact { mut data }) => {
            let whole = data.len() - data.len() % slot as usize;
            if whole != data.len() {
                data.truncate(whole);
                trimmed = true;
            }
            for off in bad_slots(image, &data) {
                data[off..off + slot as usize].fill(0);
                nulled += 1;
            }
            if nulled > 0 || trimmed {
                h.layout = Some(LayoutMessage::Compact { data });
                if !write_header(image, addr, &h) {
                    return false;
                }
            }
        }
        Some(LayoutMessage::Contiguous { addr: ext, size }) if ext != 0 => {
            let whole = size - size % slot;
            if whole != size {
                h.layout = Some(LayoutMessage::Contiguous {
                    addr: ext,
                    size: whole,
                });
                if !write_header(image, addr, &h) {
                    return false;
                }
                trimmed = true;
            }
            if out_of_bounds(ext, whole, image.len() as u64) {
                return false;
            }
            let region = image[ext as usize..(ext + whole) as usize].to_vec();
            for off in bad_slots(image, &region) {
                let at = ext as usize + off;
                image[at..at + slot as usize].fill(0);
                nulled += 1;
            }
        }
        Some(LayoutMessage::Chunked {
            index_addr,
            index_len,
            ..
        }) => {
            if out_of_bounds(index_addr, index_len, image.len() as u64) {
                return false;
            }
            let Ok(entries) = ChunkIndex::decode_block(
                &image[index_addr as usize..(index_addr + index_len) as usize],
            ) else {
                return false;
            };
            for (ordinal, (caddr, csize)) in entries.into_iter().enumerate() {
                if caddr == 0 {
                    continue;
                }
                let whole = csize as u64 - csize as u64 % slot;
                if whole != csize as u64 {
                    // Trim the entry's size field to whole descriptors.
                    let at = (index_addr + ChunkIndex::byte_len(ordinal as u64) + 8) as usize;
                    if at + 4 <= image.len() {
                        image[at..at + 4].copy_from_slice(&(whole as u32).to_le_bytes());
                        trimmed = true;
                    }
                }
                if out_of_bounds(caddr, whole, image.len() as u64) {
                    continue;
                }
                let region = image[caddr as usize..(caddr + whole) as usize].to_vec();
                for off in bad_slots(image, &region) {
                    let at = caddr as usize + off;
                    image[at..at + slot as usize].fill(0);
                    nulled += 1;
                }
            }
        }
        _ => return false,
    }
    if nulled == 0 && !trimmed {
        return false;
    }
    actions.push(format!(
        "nulled {nulled} dangling heap descriptor(s) of {dataset:?}"
    ));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_hdf::{DataType, DatasetBuilder, FileOptions, H5File};
    use dayu_vfd::MemFs;

    /// A small two-dataset file (contiguous + chunked + var-len).
    fn sample_image() -> Vec<u8> {
        let fs = MemFs::new();
        let f = H5File::create(fs.create("r.h5"), "r.h5", FileOptions::default()).unwrap();
        let g = f.root().create_group("g").unwrap();
        let mut c = g
            .create_dataset("c", DatasetBuilder::new(DataType::Int { width: 4 }, &[16]))
            .unwrap();
        c.write(&[7u8; 64]).unwrap();
        c.close().unwrap();
        let mut k = g
            .create_dataset(
                "k",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[32]).chunks(&[8]),
            )
            .unwrap();
        k.write(&[3u8; 32]).unwrap();
        k.close().unwrap();
        let mut vl = f
            .root()
            .create_dataset("vl", DatasetBuilder::new(DataType::VarLen, &[2]))
            .unwrap();
        vl.write_varlen(0, &[b"hello", b"world"]).unwrap();
        vl.close().unwrap();
        f.close().unwrap();
        fs.snapshot("r.h5").unwrap()
    }

    fn live_sb(image: &[u8]) -> Superblock {
        Superblock::decode_region(image).unwrap()
    }

    #[test]
    fn clean_file_needs_no_repair() {
        let mut image = sample_image();
        let rep = repair_bytes(&mut image);
        assert!(rep.is_clean(), "{rep}");
        assert!(
            !rep.modified(),
            "actions on a clean file: {:?}",
            rep.actions
        );
    }

    #[test]
    fn garbage_is_unrecoverable() {
        let mut image = vec![0u8; 4096];
        let rep = repair_bytes(&mut image);
        assert!(rep.unrecoverable);
        assert!(!rep.is_clean());
        let mut short = vec![1u8; 10];
        assert!(repair_bytes(&mut short).unrecoverable);
    }

    #[test]
    fn truncated_tail_is_repaired() {
        let mut image = sample_image();
        // Lop off the last structure: eof now overruns the image.
        image.truncate(image.len() - 100);
        assert!(!fsck_bytes(&image).is_clean());
        let rep = repair_bytes(&mut image);
        assert!(rep.is_clean(), "{rep}");
        assert!(rep.modified());
        assert!(fsck_bytes(&image).is_clean());
    }

    #[test]
    fn corrupt_child_header_is_unlinked() {
        let mut image = sample_image();
        let sb = live_sb(&image);
        let root = read_header(&image, sb.root_addr).unwrap();
        let entries = table_of(&image, &root).unwrap();
        let g = entries.iter().find(|e| e.name == "g").unwrap().addr;
        let gh = read_header(&image, g).unwrap();
        let c = table_of(&image, &gh)
            .unwrap()
            .into_iter()
            .find(|e| e.name == "c")
            .unwrap()
            .addr;
        image[c as usize..(c + 16) as usize].fill(0xFF);
        assert!(!fsck_bytes(&image).is_clean());
        let rep = repair_bytes(&mut image);
        assert!(rep.is_clean(), "{rep}");
        // The sibling dataset survived the prune.
        assert!(resolve(&image, live_sb(&image).root_addr, "/g/k").is_some());
        assert!(resolve(&image, live_sb(&image).root_addr, "/g/c").is_none());
    }

    #[test]
    fn out_of_bounds_chunk_entry_is_cleared() {
        let mut image = sample_image();
        let sb = live_sb(&image);
        let k = resolve(&image, sb.root_addr, "/g/k").unwrap();
        let h = read_header(&image, k).unwrap();
        let Some(LayoutMessage::Chunked { index_addr, .. }) = h.layout else {
            panic!("expected chunked layout");
        };
        let e0 = (index_addr + ChunkIndex::byte_len(0)) as usize;
        let bogus = image.len() as u64 + 4096;
        image[e0..e0 + 8].copy_from_slice(&bogus.to_le_bytes());
        assert!(!fsck_bytes(&image).is_clean());
        let rep = repair_bytes(&mut image);
        assert!(rep.is_clean(), "{rep}");
    }

    #[test]
    fn dangling_heap_ref_is_nulled() {
        let mut image = sample_image();
        let sb = live_sb(&image);
        let vl = resolve(&image, sb.root_addr, "/vl").unwrap();
        let h = read_header(&image, vl).unwrap();
        // Smash the heap block the first descriptor points at.
        let storage = match h.layout {
            Some(LayoutMessage::Contiguous { addr, .. }) => addr,
            other => panic!("expected contiguous var-len storage, got {other:?}"),
        };
        let href = HeapRef::decode(&image[storage as usize..storage as usize + 16]).unwrap();
        assert!(!href.is_null());
        image[href.block_addr as usize] ^= 0xFF; // break the heap magic
        assert!(!fsck_bytes(&image).is_clean());
        let rep = repair_bytes(&mut image);
        assert!(rep.is_clean(), "{rep}");
        let after = HeapRef::decode(&image[storage as usize..storage as usize + 16]).unwrap();
        assert!(after.is_null(), "descriptor should be nulled");
    }

    #[test]
    fn repair_is_idempotent() {
        let mut image = sample_image();
        image.truncate(image.len() - 64);
        let first = repair_bytes(&mut image);
        assert!(first.is_clean(), "{first}");
        let snapshot = image.clone();
        let second = repair_bytes(&mut image);
        assert!(second.is_clean());
        assert!(!second.modified(), "second run acted: {:?}", second.actions);
        assert_eq!(snapshot, image, "second run changed bytes");
    }

    #[test]
    fn corrupt_sibling_slot_is_cleared() {
        let mut image = sample_image();
        // Slot B holds the stale generation; scribble over it.
        image[(meta::SUPERBLOCK_SIZE + 8) as usize] ^= 0xFF;
        assert!(!fsck_bytes(&image).is_clean());
        let rep = repair_bytes(&mut image);
        assert!(rep.is_clean(), "{rep}");
        assert!(slot_vacant(
            &image[meta::SUPERBLOCK_SIZE as usize..meta::SUPERBLOCK_REGION as usize]
        ));
    }

    #[test]
    fn split_parent_and_label_owner_parse() {
        assert_eq!(split_parent("/a/b/c"), Some(("/a/b".into(), "c".into())));
        assert_eq!(split_parent("/top"), Some(("/".into(), "top".into())));
        assert_eq!(split_parent("/"), None);
        assert_eq!(label_owner("chunk 3 of \"/g/k\""), Some("/g/k".into()));
        assert_eq!(label_owner("entry table \"/\""), Some("/".into()));
        assert_eq!(label_owner("heap block @123"), None);
    }
}
