//! End-to-end lint checks: seeded defects are flagged, clean recorded
//! workloads pass with zero findings.

use dayu_lint::{
    analyze_bundle, analyze_sim_tasks, analyze_spec, analyze_stream, verified, AccessDecl, Finding,
    LintConfig,
};
use dayu_sim::program::{SimOp, SimTask};
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::store::TraceBundle;
use dayu_trace::time::Timestamp;
use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
use dayu_vfd::MemFs;
use dayu_workflow::{record, to_sim_tasks, transform, Schedule, TaskSpec, WorkflowSpec};
use dayu_workloads::{arldm, ddmd, pyflextrkr};
use std::collections::BTreeMap;

fn vfd_op(task: &str, file: &str, kind: IoKind, start: u64, end: u64) -> VfdRecord {
    VfdRecord {
        task: TaskKey::new(task),
        file: FileKey::new(file),
        kind,
        offset: 0,
        len: 1024,
        access: AccessType::RawData,
        object: ObjectKey::new("/d"),
        start: Timestamp(start),
        end: Timestamp(end),
    }
}

#[test]
fn planted_write_write_race_in_spec_is_flagged() {
    // Two tasks of the same stage (no barrier between them) both write the
    // same output file.
    let spec = WorkflowSpec::new("racy").stage(
        "fan-out",
        vec![
            TaskSpec::new("worker_a", |_| Ok(())),
            TaskSpec::new("worker_b", |_| Ok(())),
        ],
    );
    let mut decls = BTreeMap::new();
    for t in ["worker_a", "worker_b"] {
        decls.insert(
            t.to_owned(),
            AccessDecl {
                reads: vec![],
                writes: vec!["shared_out.h5".to_owned()],
            },
        );
    }
    let report = analyze_spec(&spec, &decls, &LintConfig::default());
    assert!(
        report.findings.iter().any(|f| matches!(
            f,
            Finding::WriteWriteRace { file, first, second }
                if file == "shared_out.h5" && first == "worker_a" && second == "worker_b"
        )),
        "{report}"
    );
}

#[test]
fn planted_read_before_write_in_trace_is_flagged() {
    // A recorded trace where the consumer's read observably started before
    // the producer's write.
    let mut bundle = TraceBundle::new("rbw");
    bundle
        .vfd
        .push(vfd_op("eager_reader", "data.h5", IoKind::Read, 0, 50));
    bundle
        .vfd
        .push(vfd_op("producer", "data.h5", IoKind::Write, 100, 200));
    let report = analyze_bundle(&bundle, &LintConfig::default());
    assert!(
        report.findings.iter().any(|f| matches!(
            f,
            Finding::ReadBeforeWrite { file, reader, .. }
                if file == "data.h5" && reader == "eager_reader"
        )),
        "{report}"
    );
}

#[test]
fn planted_overlapping_writes_in_trace_are_flagged() {
    let mut bundle = TraceBundle::new("ww");
    bundle
        .vfd
        .push(vfd_op("writer_a", "log.h5", IoKind::Write, 0, 100));
    bundle
        .vfd
        .push(vfd_op("writer_b", "log.h5", IoKind::Write, 50, 150));
    let report = analyze_bundle(&bundle, &LintConfig::default());
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::WriteWriteRace { .. })),
        "{report}"
    );
}

#[test]
fn clean_ddmd_run_has_zero_findings() {
    let cfg = ddmd::DdmdConfig {
        sim_tasks: 2,
        iterations: 1,
        contact_map_dim: 8,
        point_cloud_points: 16,
        scalar_series_len: 8,
        compute_ns: 10,
        ..Default::default()
    };
    let fs = MemFs::new();
    let run = record(&ddmd::workflow(&cfg), &fs).unwrap();

    // Trace-level: what actually happened contains no hazard.
    let trace_report = analyze_bundle(&run.bundle, &LintConfig::default());
    assert!(trace_report.is_clean(), "{trace_report}");

    // Plan-level: the replay job's dependency structure orders every
    // producer before its consumers.
    let schedule = Schedule::round_robin(&run, 2);
    let tasks = to_sim_tasks(&run, &schedule);
    let plan_report = analyze_sim_tasks(&tasks, &LintConfig::default());
    assert!(plan_report.is_clean(), "{plan_report}");
}

#[test]
fn clean_pyflextrkr_run_has_zero_findings() {
    let cfg = pyflextrkr::PyflextrkrConfig {
        input_files: 2,
        input_bytes: 4 << 10,
        feature_bytes: 2 << 10,
        small_datasets: 4,
        small_dataset_bytes: 100,
        small_dataset_accesses: 2,
        compute_ns: 10,
    };
    let fs = MemFs::new();
    pyflextrkr::prepare_inputs_untraced(&fs, &cfg).unwrap();
    let run = record(&pyflextrkr::workflow(&cfg), &fs).unwrap();

    let trace_report = analyze_bundle(&run.bundle, &LintConfig::default());
    assert!(trace_report.is_clean(), "{trace_report}");

    let schedule = Schedule::round_robin(&run, 2);
    let tasks = to_sim_tasks(&run, &schedule);
    let plan_report = analyze_sim_tasks(&tasks, &LintConfig::default());
    assert!(plan_report.is_clean(), "{plan_report}");
}

#[test]
fn clean_arldm_run_has_zero_findings() {
    let cfg = arldm::ArldmConfig {
        stories: 8,
        mean_image_bytes: 512,
        mean_text_bytes: 64,
        compute_ns: 10,
        ..Default::default()
    };
    let fs = MemFs::new();
    let run = record(&arldm::workflow(&cfg), &fs).unwrap();

    let trace_report = analyze_bundle(&run.bundle, &LintConfig::default());
    assert!(trace_report.is_clean(), "{trace_report}");

    let schedule = Schedule::round_robin(&run, 2);
    let tasks = to_sim_tasks(&run, &schedule);
    let plan_report = analyze_sim_tasks(&tasks, &LintConfig::default());
    assert!(plan_report.is_clean(), "{plan_report}");
}

#[test]
fn check_reports_are_byte_identical_across_trace_formats() {
    // The CI gate records once and lints both persisted formats; the
    // verdict must not depend on the encoding.
    let cfg = ddmd::DdmdConfig {
        sim_tasks: 2,
        iterations: 1,
        contact_map_dim: 8,
        point_cloud_points: 16,
        scalar_series_len: 8,
        compute_ns: 10,
        ..Default::default()
    };
    let fs = MemFs::new();
    let run = record(&ddmd::workflow(&cfg), &fs).unwrap();
    let lint_cfg = LintConfig {
        report_dead_data: true, // widest finding surface
        ..LintConfig::default()
    };
    let want = analyze_bundle(&run.bundle, &lint_cfg).to_json();
    let (from_jsonl, n_jsonl) =
        analyze_stream(&run.bundle.to_jsonl_bytes()[..], &lint_cfg).unwrap();
    let (from_binary, n_binary) =
        analyze_stream(&run.bundle.to_binary_bytes()[..], &lint_cfg).unwrap();
    assert_eq!(n_jsonl, n_binary, "same records in both encodings");
    assert_eq!(from_jsonl.to_json(), want);
    assert_eq!(from_binary.to_json(), want);
}

/// Deterministic extent generator for the planted-race tests (no RNG
/// dependency; a multiplicative congruence scrambles the task index).
fn chunk_extent(seed: u64, task: usize, chunk_bytes: u64) -> u64 {
    let scrambled = (seed ^ task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 64;
    scrambled * chunk_bytes
}

fn staged_write(task: &str, offset: u64, len: u64, object: &str) -> VfdRecord {
    VfdRecord {
        task: TaskKey::new(task),
        file: FileKey::new("grid.h5"),
        kind: IoKind::Write,
        offset,
        len,
        access: AccessType::RawData,
        object: ObjectKey::new(object),
        start: Timestamp(0),
        end: Timestamp(100),
    }
}

#[test]
fn planted_overlapping_chunk_writes_are_caught_and_disjoint_ones_are_not() {
    // One parallel stage of chunk writers, extents drawn from a seeded
    // scramble. Baseline: all extents distinct → clean. Then plant a race
    // by pointing task 3 at task 7's chunk: exactly that pair is flagged,
    // with dataset-level diagnostics.
    let seed = 0xDA1C;
    let chunk = 4096u64;
    let tasks: Vec<String> = (0..16).map(|i| format!("writer_{i:02}")).collect();
    let mut offsets: Vec<u64> = (0..16).map(|i| chunk_extent(seed, i, chunk)).collect();
    // The scramble may collide on its own; separate any duplicates first
    // so the baseline is genuinely disjoint.
    let mut seen = std::collections::BTreeSet::new();
    for o in &mut offsets {
        while !seen.insert(*o) {
            *o += 64 * chunk;
        }
    }

    let build = |offsets: &[u64]| {
        let mut b = TraceBundle::new("chunked");
        b.meta.stages = vec![tasks.iter().map(TaskKey::new).collect()];
        for (i, t) in tasks.iter().enumerate() {
            b.vfd
                .push(staged_write(t, offsets[i], chunk, &format!("/chunk/{i}")));
        }
        b
    };

    let clean = analyze_bundle(&build(&offsets), &LintConfig::default());
    assert!(clean.is_clean(), "disjoint concurrent writes: {clean}");

    let mut racy = offsets.clone();
    racy[3] = racy[7]; // the planted collision
    let report = analyze_bundle(&build(&racy), &LintConfig::default());
    assert_eq!(report.len(), 1, "exactly the planted pair races: {report}");
    assert!(
        report.findings.iter().any(|f| matches!(
            f,
            Finding::ExtentRace { file, datasets, first, second, write_write: true, .. }
                if file == "grid.h5"
                    && first == "writer_03"
                    && second == "writer_07"
                    && datasets == &vec!["/chunk/3".to_owned(), "/chunk/7".to_owned()]
        )),
        "{report}"
    );
}

#[test]
fn illegal_parallelize_on_recorded_plan_is_rejected() {
    // Build a producer→consumer plan and ask the verifier to authorize
    // breaking the ordering: it must refuse and restore the plan.
    let mut tasks = vec![
        SimTask::new("sim").with_program(vec![SimOp::write("traj.h5", 1 << 20)]),
        SimTask::new("train")
            .after(&[0])
            .with_program(vec![SimOp::read("traj.h5", 1 << 20)]),
    ];
    let before = tasks.clone();
    let err = verified(&mut tasks, "parallelize", |t| {
        transform::parallelize(t, "sim", "train")
    })
    .unwrap_err();
    assert_eq!(tasks, before, "rolled back");
    assert!(
        err.report.findings.iter().any(|f| matches!(
            f,
            Finding::OrderingLost { .. } | Finding::ReadBeforeWrite { .. }
        )),
        "{err}"
    );
}
