//! Property: any file produced by a valid sequence of format operations
//! passes fsck with zero findings. The generator drives the real format
//! library (groups, attributes, all three layouts, fixed and
//! variable-length datatypes) and fsck walks the resulting raw image.

use dayu_hdf::{AttrValue, DataType, DatasetBuilder, FileOptions, H5File, LayoutKind};
use dayu_lint::fsck_bytes;
use dayu_vfd::MemFs;
use proptest::prelude::*;

/// One dataset to create: which group it lands in, element count, layout
/// selector, chunk edge, and whether it holds variable-length data.
#[derive(Debug, Clone)]
struct DsSpec {
    group: u8,
    elems: u64,
    layout: u8,
    chunk: u64,
    varlen: bool,
}

fn ds_spec() -> impl Strategy<Value = DsSpec> {
    (0u8..3, 1u64..48, 0u8..3, 1u64..12, any::<bool>()).prop_map(
        |(group, elems, layout, chunk, varlen)| DsSpec {
            group,
            elems,
            layout,
            chunk,
            varlen,
        },
    )
}

fn build_image(specs: &[DsSpec], attrs: usize) -> Vec<u8> {
    let fs = MemFs::new();
    let f = H5File::create(fs.create("p.h5"), "p.h5", FileOptions::default()).unwrap();
    let root = f.root();
    let groups = [
        root.create_group("g0").unwrap(),
        root.create_group("g1").unwrap(),
        root.create_group("g2").unwrap(),
    ];
    for i in 0..attrs {
        root.set_attr(&format!("a{i}"), AttrValue::U64(i as u64))
            .unwrap();
    }
    for (i, spec) in specs.iter().enumerate() {
        let parent = &groups[spec.group as usize % groups.len()];
        let dtype = if spec.varlen {
            DataType::VarLen
        } else {
            DataType::Int { width: 1 }
        };
        let stored_bytes = spec.elems * if spec.varlen { 16 } else { 1 };
        let mut builder = DatasetBuilder::new(dtype, &[spec.elems]);
        builder = match spec.layout {
            // Compact storage is capped at 256 bytes; larger datasets fall
            // back to the default layout.
            1 if stored_bytes <= 256 => builder.layout(LayoutKind::Compact),
            2 => builder.chunks(&[spec.chunk.min(spec.elems)]),
            _ => builder,
        };
        let mut ds = parent.create_dataset(&format!("d{i}"), builder).unwrap();
        if spec.varlen {
            let payloads: Vec<Vec<u8>> = (0..spec.elems)
                .map(|e| vec![e as u8; (e % 7) as usize])
                .collect();
            let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
            ds.write_varlen(0, &refs).unwrap();
        } else {
            ds.write(&vec![i as u8; spec.elems as usize]).unwrap();
        }
        ds.close().unwrap();
    }
    f.close().unwrap();
    fs.snapshot("p.h5").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn valid_op_sequences_produce_fsck_clean_files(
        specs in proptest::collection::vec(ds_spec(), 0..10),
        attrs in 0usize..4,
    ) {
        let image = build_image(&specs, attrs);
        let report = fsck_bytes(&image);
        prop_assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn truncation_never_passes_silently(
        specs in proptest::collection::vec(ds_spec(), 1..6),
        cut_fraction in 0.1f64..0.9,
    ) {
        // Chopping the file anywhere strictly inside the superblock-declared
        // extent must surface at least one finding.
        let image = build_image(&specs, 1);
        let cut = ((image.len() as f64) * cut_fraction) as usize;
        let report = fsck_bytes(&image[..cut]);
        prop_assert!(!report.is_clean(), "truncated to {cut} of {} bytes", image.len());
    }
}
