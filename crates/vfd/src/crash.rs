//! Crash-injection wrapper driver: deterministic process-death simulation.
//!
//! Where [`crate::faulty::FaultyVfd`] models a *device* that errors and
//! recovers, this module models the *process* (or node) dying mid-write —
//! the scenario a crash-consistency protocol must survive. A
//! [`CrashSchedule`] names a write-op index at which the simulated machine
//! loses power; from that op on, every operation through any
//! [`CrashVfd`] sharing the schedule's [`CrashController`] fails, and the
//! bytes the underlying driver retains are exactly what a real storage
//! stack could have persisted:
//!
//! * **ordered mode** (default): writes reach the device in issue order;
//!   the crashing write lands either not at all or — with
//!   [`CrashSchedule::torn`] — as a seeded proper prefix (a torn sector).
//! * **write-back mode** ([`CrashSchedule::write_back`]): writes park in a
//!   per-file cache and only reach the device at `flush`. The crash
//!   persists a seeded *subset* of the unflushed cache, modelling a disk
//!   cache acknowledging writes it then reorders or drops. Clean
//!   `flush`/`close` are barriers: the cache drains in order first.
//!
//! Unlike fault injection, the crash-op counter counts **every** write —
//! metadata and raw data alike — because power loss does not care what the
//! bytes mean. Reads never advance the counter. The counter and RNG
//! stream live in the shared controller, so one schedule spans every file
//! a task opens, and the whole torn image is a pure function of
//! `(seed, task, write sequence)`.
//!
//! After the crash fires, [`CrashController::revive`] clears the dead
//! latch *without* re-arming the crash point — the retry attempt that
//! reopens the torn file runs to completion, which is what lets the
//! workflow runner exercise recover-and-resume paths.

use crate::faulty::{fnv1a64, ChaosRng};
use crate::{Result, Vfd, VfdError};
use dayu_trace::vfd::AccessType;
use parking_lot::Mutex;
use std::sync::Arc;

/// A seeded, deterministic description of one simulated power loss.
#[derive(Clone, Debug)]
pub struct CrashSchedule {
    /// Root seed; mixed with the task name for the per-task RNG stream
    /// and printed in every crash error for reproduction.
    pub seed: u64,
    /// Write-op index (0-based, metadata included, per task) at which the
    /// process dies. `None` disables crashing entirely.
    pub crash_at_write: Option<u64>,
    /// If `true`, the crashing write lands as a seeded proper prefix
    /// instead of not at all (a torn sector).
    pub tear: bool,
    /// If `true`, run in write-back mode: writes are cached per file and
    /// only persisted at `flush`; the crash keeps a seeded subset of the
    /// unflushed cache.
    pub drop_unflushed: bool,
}

impl CrashSchedule {
    /// A schedule that never crashes (seed still recorded).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            crash_at_write: None,
            tear: false,
            drop_unflushed: false,
        }
    }

    /// Dies at write-op `n` (0-based, counting every write on the task).
    pub fn with_crash_at(mut self, n: u64) -> Self {
        self.crash_at_write = Some(n);
        self
    }

    /// Lets the crashing write tear: a seeded prefix of it persists.
    pub fn torn(mut self) -> Self {
        self.tear = true;
        self
    }

    /// Switches to write-back caching with subset loss at the crash.
    pub fn write_back(mut self) -> Self {
        self.drop_unflushed = true;
        self
    }

    /// Whether this schedule can never kill anything.
    pub fn is_noop(&self) -> bool {
        self.crash_at_write.is_none()
    }

    /// A controller for `task`, with an RNG stream derived from the
    /// schedule seed and a stable hash of the task name. Clone the
    /// controller into every file the task opens so the write counter
    /// spans the task's whole I/O history.
    pub fn controller_for(&self, task: &str) -> CrashController {
        let stream_seed = self.seed ^ fnv1a64(task);
        CrashController {
            shared: Arc::new(Mutex::new(CrashState {
                schedule: self.clone(),
                task: task.to_owned(),
                rng: ChaosRng::new(stream_seed),
                writes: 0,
                fired: false,
                crashed: false,
            })),
        }
    }
}

struct CrashState {
    schedule: CrashSchedule,
    task: String,
    rng: ChaosRng,
    /// Write ops observed so far (metadata included).
    writes: u64,
    /// The crash point has been consumed (survives revival).
    fired: bool,
    /// The simulated machine is currently dead.
    crashed: bool,
}

impl CrashState {
    fn error(&self, what: &str) -> VfdError {
        VfdError::Io(std::io::Error::other(format!(
            "simulated crash: {what} [task \"{}\", crash seed {:#018x}]",
            self.task, self.schedule.seed
        )))
    }
}

/// What a write op should do, decided under the controller lock.
enum WriteDecision {
    Proceed,
    /// Die on this op; `torn` is the byte count of the seeded prefix to
    /// persist (ordered mode only).
    Crash {
        op: u64,
        torn: Option<usize>,
    },
}

/// Shared per-task crash state: the write counter, RNG stream and dead
/// latch. Cloning shares state, so one controller backs every file of a
/// task across every retry attempt.
#[derive(Clone)]
pub struct CrashController {
    shared: Arc<Mutex<CrashState>>,
}

impl std::fmt::Debug for CrashController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.lock();
        write!(
            f,
            "CrashController(task \"{}\", seed {:#x}, writes {}, fired {}, crashed {})",
            st.task, st.schedule.seed, st.writes, st.fired, st.crashed
        )
    }
}

impl CrashController {
    /// A controller that never crashes (for plumbing that requires one).
    pub fn inert() -> Self {
        CrashSchedule::new(0).controller_for("")
    }

    /// Whether the simulated machine is currently dead.
    pub fn crashed(&self) -> bool {
        self.shared.lock().crashed
    }

    /// Whether the crash point has fired (stays `true` after revival).
    pub fn has_fired(&self) -> bool {
        self.shared.lock().fired
    }

    /// Write ops observed so far across every file of the task.
    pub fn writes_seen(&self) -> u64 {
        self.shared.lock().writes
    }

    /// The schedule seed (for error reporting).
    pub fn seed(&self) -> u64 {
        self.shared.lock().schedule.seed
    }

    /// Brings the machine back up for a retry attempt. The crash point
    /// stays consumed: the revived run will not crash again.
    pub fn revive(&self) {
        self.shared.lock().crashed = false;
    }

    /// Fails if the machine is dead (non-write ops).
    fn check(&self, what: &str) -> Result<()> {
        let st = self.shared.lock();
        if st.crashed {
            return Err(st.error(what));
        }
        Ok(())
    }

    /// Counts one write op and decides its fate. Writes aimed at a dead
    /// machine still count as seen — `writes_seen` reports every attempt
    /// the task made, not just the ones the device accepted.
    fn decide_write(&self, len: usize) -> Result<WriteDecision> {
        let mut st = self.shared.lock();
        let n = st.writes;
        st.writes += 1;
        if st.crashed {
            return Err(st.error("write on dead machine"));
        }
        if !st.fired && st.schedule.crash_at_write == Some(n) {
            st.fired = true;
            st.crashed = true;
            let torn = if st.schedule.tear && len > 0 {
                Some((st.rng.next_u64() % len as u64) as usize)
            } else {
                None
            };
            return Ok(WriteDecision::Crash { op: n, torn });
        }
        Ok(WriteDecision::Proceed)
    }

    /// The crash error for the op that died.
    fn crash_error(&self, op: u64) -> VfdError {
        let st = self.shared.lock();
        st.error(&format!("power loss at write-op {op}"))
    }

    /// A seeded coin flip (write-back subset selection at crash time).
    fn coin(&self) -> bool {
        self.shared.lock().rng.chance(0.5)
    }
}

/// Wrapper driver that kills the simulated machine per a [`CrashSchedule`].
pub struct CrashVfd<V> {
    inner: V,
    controller: CrashController,
    /// Write-back cache (issue order); empty in ordered mode.
    buffer: Vec<(u64, Vec<u8>)>,
    write_back: bool,
}

impl<V: Vfd> CrashVfd<V> {
    /// Wraps `inner` with a shared controller. Pass clones of one
    /// controller to every file of a task so the crash op index counts
    /// the task's global write sequence.
    pub fn with_controller(inner: V, controller: CrashController) -> Self {
        let write_back = controller.shared.lock().schedule.drop_unflushed;
        Self {
            inner,
            controller,
            buffer: Vec::new(),
            write_back,
        }
    }

    /// The shared controller (clone to wrap further files of the task).
    pub fn controller(&self) -> &CrashController {
        &self.controller
    }

    /// Unwraps the underlying driver (test inspection of the torn image).
    pub fn into_inner(self) -> V {
        self.inner
    }

    /// End-of-file including unflushed cached writes.
    fn effective_eof(&self) -> u64 {
        let cached = self
            .buffer
            .iter()
            .map(|(off, d)| off + d.len() as u64)
            .max()
            .unwrap_or(0);
        self.inner.eof().max(cached)
    }

    /// Drains the write-back cache to the device in issue order.
    fn drain_buffer(&mut self) -> Result<()> {
        for (off, data) in std::mem::take(&mut self.buffer) {
            self.inner.write(off, &data, AccessType::RawData)?;
        }
        Ok(())
    }

    /// Applies the crash to the write-back cache: each cached entry
    /// persists on a seeded coin flip, in issue order; the rest is lost.
    fn crash_buffer(&mut self) -> Result<()> {
        for (off, data) in std::mem::take(&mut self.buffer) {
            if self.controller.coin() {
                self.inner.write(off, &data, AccessType::RawData)?;
            }
        }
        Ok(())
    }
}

/// Copies the part of `data` (at file offset `src_off`) that intersects
/// the request window `[dst_off, dst_off + buf.len())` into `buf`.
fn overlay(buf: &mut [u8], dst_off: u64, src_off: u64, data: &[u8]) {
    let dst_end = dst_off + buf.len() as u64;
    let src_end = src_off + data.len() as u64;
    let lo = dst_off.max(src_off);
    let hi = dst_end.min(src_end);
    if lo >= hi {
        return;
    }
    let n = (hi - lo) as usize;
    let d = (lo - dst_off) as usize;
    let s = (lo - src_off) as usize;
    buf[d..d + n].copy_from_slice(&data[s..s + n]);
}

impl<V: Vfd> Vfd for CrashVfd<V> {
    fn read(&mut self, offset: u64, buf: &mut [u8], access: AccessType) -> Result<()> {
        self.controller.check("read on dead machine")?;
        if !self.write_back || self.buffer.is_empty() {
            return self.inner.read(offset, buf, access);
        }
        let end = offset + buf.len() as u64;
        let eof = self.effective_eof();
        if end > eof {
            return Err(VfdError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                eof,
            });
        }
        // Base layer from the device (zeros past its EOF), then cached
        // writes in issue order so the session sees its own data.
        buf.fill(0);
        let ieof = self.inner.eof();
        if offset < ieof {
            let n = (ieof.min(end) - offset) as usize;
            self.inner.read(offset, &mut buf[..n], access)?;
        }
        for (boff, data) in &self.buffer {
            overlay(buf, offset, *boff, data);
        }
        Ok(())
    }

    fn write(&mut self, offset: u64, data: &[u8], access: AccessType) -> Result<()> {
        match self.controller.decide_write(data.len())? {
            WriteDecision::Proceed => {
                if self.write_back {
                    self.buffer.push((offset, data.to_vec()));
                    Ok(())
                } else {
                    self.inner.write(offset, data, access)
                }
            }
            WriteDecision::Crash { op, torn } => {
                if self.write_back {
                    // The in-flight write joins the cache, then a seeded
                    // subset of the cache survives the power loss.
                    self.buffer.push((offset, data.to_vec()));
                    self.crash_buffer()?;
                } else if let Some(prefix) = torn {
                    if prefix > 0 {
                        self.inner.write(offset, &data[..prefix], access)?;
                    }
                }
                Err(self.controller.crash_error(op))
            }
        }
    }

    fn eof(&self) -> u64 {
        self.effective_eof()
    }

    fn truncate(&mut self, eof: u64) -> Result<()> {
        self.controller.check("truncate on dead machine")?;
        // Truncation is a size-metadata barrier: drain the cache first so
        // ordering against cached writes stays well defined.
        self.drain_buffer()?;
        self.inner.truncate(eof)
    }

    fn flush(&mut self) -> Result<()> {
        self.controller.check("flush on dead machine")?;
        self.drain_buffer()?;
        self.inner.flush()
    }

    fn close(&mut self) -> Result<()> {
        self.controller.check("close on dead machine")?;
        self.drain_buffer()?;
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemVfd;

    const RAW: AccessType = AccessType::RawData;
    const META: AccessType = AccessType::Metadata;

    #[test]
    fn noop_schedule_passes_through() {
        let ctrl = CrashSchedule::new(1).controller_for("t");
        let mut v = CrashVfd::with_controller(MemVfd::new(), ctrl);
        for i in 0..8 {
            v.write(i * 4, &[7; 4], RAW).unwrap();
        }
        v.flush().unwrap();
        assert_eq!(v.eof(), 32);
        assert!(!v.controller().has_fired());
        assert_eq!(v.controller().writes_seen(), 8);
    }

    #[test]
    fn crash_kills_machine_and_drops_the_write() {
        let ctrl = CrashSchedule::new(2).with_crash_at(2).controller_for("t");
        let mut v = CrashVfd::with_controller(MemVfd::new(), ctrl);
        v.write(0, &[1; 4], RAW).unwrap();
        v.write(4, &[2; 4], META).unwrap(); // metadata counts too
        let err = v.write(8, &[3; 4], RAW).unwrap_err();
        assert!(
            err.to_string().contains("power loss at write-op 2"),
            "{err}"
        );
        assert!(err.to_string().contains("0x"), "seed in message: {err}");
        // Dead: everything fails now.
        assert!(v.write(0, &[9; 1], RAW).is_err());
        let mut buf = [0u8; 1];
        assert!(v.read(0, &mut buf, RAW).is_err());
        assert!(v.flush().is_err());
        assert!(v.truncate(4).is_err());
        assert!(v.close().is_err());
        assert!(v.controller().crashed());
        // The dying write left nothing behind (no tear requested).
        let inner = v.into_inner();
        assert_eq!(inner.eof(), 8, "write-op 2 never landed");
    }

    #[test]
    fn torn_crash_persists_a_seeded_prefix() {
        let run = |seed: u64| -> u64 {
            let ctrl = CrashSchedule::new(seed)
                .with_crash_at(1)
                .torn()
                .controller_for("t");
            let mut v = CrashVfd::with_controller(MemVfd::new(), ctrl);
            v.write(0, &[1; 8], RAW).unwrap();
            assert!(v.write(8, &[2; 64], RAW).is_err());
            v.into_inner().eof()
        };
        // The tear is deterministic per seed and is a *proper* prefix.
        for seed in 0..32 {
            let eof = run(seed);
            assert_eq!(run(seed), eof, "seed {seed} not deterministic");
            assert!((8..72).contains(&eof), "seed {seed}: eof {eof}");
        }
        // At least one seed in a small range actually tears bytes in.
        assert!((0..32).any(|s| run(s) > 8), "no seed tore any bytes");
    }

    #[test]
    fn revive_allows_retry_without_refiring() {
        let ctrl = CrashSchedule::new(3).with_crash_at(1).controller_for("t");
        let mut v = CrashVfd::with_controller(MemVfd::new(), ctrl.clone());
        v.write(0, &[1; 4], RAW).unwrap();
        assert!(v.write(4, &[2; 4], RAW).is_err());
        assert!(ctrl.crashed());
        ctrl.revive();
        assert!(!ctrl.crashed());
        assert!(ctrl.has_fired(), "crash point stays consumed");
        // The retry attempt replays its writes without dying again.
        v.write(4, &[2; 4], RAW).unwrap();
        v.write(8, &[3; 4], RAW).unwrap();
        v.flush().unwrap();
        v.close().unwrap();
    }

    #[test]
    fn controller_is_shared_across_files() {
        let ctrl = CrashSchedule::new(4).with_crash_at(3).controller_for("t");
        let mut a = CrashVfd::with_controller(MemVfd::new(), ctrl.clone());
        let mut b = CrashVfd::with_controller(MemVfd::new(), ctrl.clone());
        a.write(0, &[1; 4], RAW).unwrap(); // op 0
        b.write(0, &[2; 4], RAW).unwrap(); // op 1
        a.write(4, &[3; 4], RAW).unwrap(); // op 2
        assert!(b.write(4, &[4; 4], RAW).is_err(), "op 3 crashes in file b");
        // The whole machine died, not one file.
        assert!(a.write(8, &[5; 4], RAW).is_err());
        assert_eq!(ctrl.writes_seen(), 5);
    }

    #[test]
    fn write_back_caches_until_flush_and_reads_see_cache() {
        let ctrl = CrashSchedule::new(5).write_back().controller_for("t");
        let mut v = CrashVfd::with_controller(MemVfd::new(), ctrl);
        v.write(0, &[1; 8], RAW).unwrap();
        v.write(4, &[2; 8], RAW).unwrap(); // overlaps the first
                                           // Nothing on the device yet, but reads see the cached state.
        assert_eq!(v.eof(), 12);
        let mut buf = [0u8; 12];
        v.read(0, &mut buf, RAW).unwrap();
        assert_eq!(&buf, &[1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2]);
        v.flush().unwrap();
        let inner = v.into_inner();
        assert_eq!(inner.eof(), 12, "flush drained the cache in order");
    }

    #[test]
    fn write_back_crash_keeps_a_seeded_subset() {
        let run = |seed: u64| -> Vec<u8> {
            let ctrl = CrashSchedule::new(seed)
                .with_crash_at(4)
                .write_back()
                .controller_for("t");
            let mut v = CrashVfd::with_controller(MemVfd::new(), ctrl);
            // Two flushed (durable) writes, then three cached ones.
            v.write(0, &[1; 4], RAW).unwrap();
            v.write(4, &[2; 4], RAW).unwrap();
            v.flush().unwrap();
            v.write(8, &[3; 4], RAW).unwrap();
            v.write(12, &[4; 4], RAW).unwrap();
            assert!(v.write(16, &[5; 4], RAW).is_err());
            let inner = v.into_inner();
            let mut img = vec![0u8; inner.eof() as usize];
            let mut m = inner;
            if !img.is_empty() {
                m.read(0, &mut img, RAW).unwrap();
            }
            img
        };
        for seed in 0..16 {
            let img = run(seed);
            assert_eq!(run(seed), img, "seed {seed} not deterministic");
            // Flushed writes always survive.
            assert_eq!(&img[..8], &[1, 1, 1, 1, 2, 2, 2, 2], "seed {seed}");
        }
        // Across seeds, some cached write is lost and some survives.
        assert!((0..16).any(|s| run(s).len() < 20), "never dropped a write");
        assert!((0..16).any(|s| run(s).len() > 8), "never kept a write");
    }

    #[test]
    fn truncate_is_a_write_back_barrier() {
        let ctrl = CrashSchedule::new(6).write_back().controller_for("t");
        let mut v = CrashVfd::with_controller(MemVfd::new(), ctrl);
        v.write(0, &[9; 16], RAW).unwrap();
        v.truncate(8).unwrap();
        assert_eq!(v.eof(), 8);
        let inner = v.into_inner();
        assert_eq!(inner.eof(), 8, "cache drained before truncation");
    }

    #[test]
    fn overlay_handles_partial_intersections() {
        let mut buf = [0u8; 8]; // window [10, 18)
        overlay(&mut buf, 10, 6, &[1; 6]); // [6, 12) -> bytes 0..2
        overlay(&mut buf, 10, 16, &[2; 6]); // [16, 22) -> bytes 6..8
        overlay(&mut buf, 10, 12, &[3; 2]); // [12, 14) -> bytes 2..4
        overlay(&mut buf, 10, 0, &[4; 4]); // disjoint
        assert_eq!(buf, [1, 1, 3, 3, 0, 0, 2, 2]);
    }
}
