//! Deterministic retry/backoff/deadline policy.
//!
//! One implementation of exponential backoff with seeded jitter, shared by
//! every layer that retries environmental failures: the workflow runner
//! retrying a faulted task attempt (`dayu-workflow`), and the streaming
//! ingest service retrying connections and throttled sends
//! (`dayu-served`). It lives next to [`ChaosRng`](crate::ChaosRng) because
//! the jitter must be *deterministic*: reruns under the same seed pause for
//! the same nanoseconds, which is what keeps chaos-matrix and replay tests
//! byte-reproducible.
//!
//! The policy is error-agnostic. What counts as "retryable" is a property
//! of the caller's error type, so classification stays with the caller
//! (e.g. `dayu_workflow::retry::retryable` for driver I/O errors).

use crate::ChaosRng;

/// How a failed operation is retried.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt, nanoseconds; doubles each
    /// further attempt.
    pub base_backoff_ns: u64,
    /// Upper bound on a single backoff pause, nanoseconds.
    pub max_backoff_ns: u64,
    /// Jitter as a fraction of the backoff (`0.25` adds up to +25%),
    /// drawn deterministically from the caller's seed so reruns are
    /// reproducible.
    pub jitter: f64,
    /// Per-operation wall-clock budget, nanoseconds. Checked cooperatively
    /// between attempts: once exceeded, no further attempt starts. `None`
    /// disables the deadline.
    pub deadline_ns: Option<u64>,
}

impl Default for RetryPolicy {
    /// Three attempts, 100 µs base backoff capped at 10 ms, 25% jitter,
    /// no deadline — fast enough for tests, shaped like production.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_ns: 100_000,
            max_backoff_ns: 10_000_000,
            jitter: 0.25,
            deadline_ns: None,
        }
    }
}

impl RetryPolicy {
    /// No retries: an operation gets exactly one attempt.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_ns: 0,
            max_backoff_ns: 0,
            jitter: 0.0,
            deadline_ns: None,
        }
    }

    /// Sets the attempt cap (clamped to at least 1).
    pub fn attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Sets the base and maximum backoff, nanoseconds.
    pub fn with_backoff(mut self, base_ns: u64, max_ns: u64) -> Self {
        self.base_backoff_ns = base_ns;
        self.max_backoff_ns = max_ns;
        self
    }

    /// Sets the per-operation deadline, nanoseconds.
    pub fn with_deadline_ns(mut self, ns: u64) -> Self {
        self.deadline_ns = Some(ns);
        self
    }

    /// Backoff before attempt `attempt + 1`, given that attempt `attempt`
    /// (1-based) just failed: exponential in the attempt number, capped,
    /// plus deterministic jitter derived from `jitter_seed`.
    pub fn backoff_ns(&self, attempt: u32, jitter_seed: u64) -> u64 {
        if self.base_backoff_ns == 0 {
            return 0;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let base = self
            .base_backoff_ns
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ns.max(self.base_backoff_ns));
        if self.jitter <= 0.0 {
            return base;
        }
        let mut rng =
            ChaosRng::new(jitter_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        base + (base as f64 * self.jitter * rng.next_f64()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ns(1, 0), 100_000);
        assert_eq!(p.backoff_ns(2, 0), 200_000);
        assert_eq!(p.backoff_ns(3, 0), 400_000);
        assert_eq!(p.backoff_ns(60, 0), 10_000_000, "capped at max");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let a = p.backoff_ns(2, 42);
        let b = p.backoff_ns(2, 42);
        assert_eq!(a, b, "same seed, same jitter");
        let base = 200_000;
        assert!((base..=base + base / 4).contains(&a), "{a}");
        assert_ne!(p.backoff_ns(2, 42), p.backoff_ns(2, 43));
    }

    #[test]
    fn none_policy_never_pauses() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_ns(1, 7), 0);
    }

    #[test]
    fn builders() {
        let p = RetryPolicy::none()
            .attempts(5)
            .with_backoff(10, 100)
            .with_deadline_ns(1_000);
        assert_eq!(p.max_attempts, 5);
        assert_eq!(p.base_backoff_ns, 10);
        assert_eq!(p.max_backoff_ns, 100);
        assert_eq!(p.deadline_ns, Some(1_000));
        assert_eq!(RetryPolicy::none().attempts(0).max_attempts, 1);
    }
}
