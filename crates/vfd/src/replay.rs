//! Replay-validating driver: cross-checks live I/O against a recorded stream.
//!
//! Deterministic replay re-executes a workload with the exact seeds, retry
//! policy and durability of a recorded run. The [`ReplayVfd`] sits directly
//! beneath the profiler in the driver stack and, as each operation
//! *succeeds*, matches it against the next expected [`ReplayEvent`] of the
//! task's recorded stream. The first mismatch is latched as a structured
//! [`ReplayDivergence`] and surfaced as an I/O error, so a drifting replay
//! fails fast at the first divergent operation instead of silently
//! producing a subtly different trace.
//!
//! Failed operations pass through unmatched: the profiler never records
//! failed ops (the salvage-consistency invariant), so the recorded stream
//! contains only successes and a correct replay consumes it exactly.
//!
//! Retry interplay: a recorded trace keeps only the *final* attempt's
//! records (earlier attempts' mapper sessions are discarded), and in resume
//! mode a retried attempt performs different I/O than a first attempt
//! (open-plus-recovery instead of create). The validator therefore only
//! cross-checks
//! ops during the attempt number the recorded run succeeded (or gave up)
//! on; earlier attempts are validated implicitly by the seeded fault/crash
//! layers and the final outcome comparison.

use crate::{Result, Vfd, VfdError};
use dayu_trace::vfd::{AccessType, IoKind};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Arc;

/// One observable driver-level operation, as the validator compares them:
/// timestamps and object attribution are deliberately absent (timing is
/// environment-dependent; attribution happens above this layer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayEvent {
    /// File the op targeted.
    pub file: String,
    /// Operation verb.
    pub kind: IoKind,
    /// Byte offset (0 for lifecycle ops).
    pub offset: u64,
    /// Bytes moved (0 for lifecycle ops).
    pub len: u64,
    /// Metadata vs raw data.
    pub access: AccessType,
}

impl fmt::Display for ReplayEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}@{}+{} ({:?})",
            self.kind, self.file, self.offset, self.len, self.access
        )
    }
}

/// The first point where a replay stopped matching its recording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Task whose stream diverged.
    pub task: String,
    /// Index into the task's expected event stream where the mismatch
    /// occurred (also the count of successfully matched events).
    pub event_index: usize,
    /// What the recording says should have happened next (`None`: the
    /// recorded stream was already exhausted).
    pub expected: Option<ReplayEvent>,
    /// What the replay actually did (`None`: the replay ended with
    /// recorded events still unconsumed).
    pub actual: Option<ReplayEvent>,
    /// Human-readable explanation of the mismatch.
    pub detail: String,
}

impl fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task \"{}\" diverged at event {}: expected {}, got {} ({})",
            self.task,
            self.event_index,
            self.expected
                .as_ref()
                .map_or_else(|| "<end of recording>".to_owned(), |e| e.to_string()),
            self.actual
                .as_ref()
                .map_or_else(|| "<no op>".to_owned(), |e| e.to_string()),
            self.detail
        )
    }
}

struct TaskStream {
    /// The recorded (final-attempt) event stream, lifecycle `Open`s
    /// excluded — the profiler emits those at construction, beneath which
    /// this layer never sees a driver call.
    expected: Vec<ReplayEvent>,
    cursor: usize,
    /// The attempt number the recorded run ended on; only this attempt is
    /// cross-checked op-by-op.
    final_attempt: u32,
    /// Whether the current attempt is being cross-checked.
    checking: bool,
}

/// Shared cross-check state for one replayed run: per-task expected
/// streams, per-task cursors, and a first-divergence latch.
#[derive(Default)]
pub struct ReplayValidator {
    tasks: Mutex<HashMap<String, TaskStream>>,
    divergence: Mutex<Option<ReplayDivergence>>,
}

impl ReplayValidator {
    /// An empty validator; populate with [`ReplayValidator::expect_task`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `task`'s recorded stream and the attempt number its
    /// recording ended on. `Open` events are filtered out here so callers
    /// can pass the raw recorded sequence.
    pub fn expect_task(&self, task: &str, events: Vec<ReplayEvent>, final_attempt: u32) {
        let expected: Vec<ReplayEvent> = events
            .into_iter()
            .filter(|e| e.kind != IoKind::Open)
            .collect();
        self.tasks.lock().insert(
            task.to_owned(),
            TaskStream {
                expected,
                cursor: 0,
                final_attempt: final_attempt.max(1),
                checking: false,
            },
        );
    }

    /// Marks the start of `attempt` (1-based) for `task`: resets the
    /// cursor and decides whether this attempt is cross-checked. An
    /// attempt beyond the recorded count is itself a divergence (the
    /// replay is retrying where the recording did not).
    pub fn begin_attempt(&self, task: &str, attempt: u32) {
        let mut tasks = self.tasks.lock();
        let Some(s) = tasks.get_mut(task) else {
            return;
        };
        s.cursor = 0;
        if self.divergence.lock().is_some() {
            // Already diverged somewhere: let the rest of the run proceed
            // unchecked so the workload still completes.
            s.checking = false;
            return;
        }
        s.checking = attempt == s.final_attempt;
        if attempt > s.final_attempt {
            s.checking = false;
            let idx = s.cursor;
            drop(tasks);
            self.latch(ReplayDivergence {
                task: task.to_owned(),
                event_index: idx,
                expected: None,
                actual: None,
                detail: format!(
                    "replay needed attempt {attempt} but the recording \
                     finished on attempt {}",
                    attempt - 1
                ),
            });
        }
    }

    /// Marks `task` finished. A successful checked task must have consumed
    /// its whole expected stream; leftovers are a divergence.
    pub fn finish_task(&self, task: &str, succeeded: bool) {
        let mut tasks = self.tasks.lock();
        let Some(s) = tasks.get_mut(task) else {
            return;
        };
        if !(s.checking && succeeded) || s.cursor >= s.expected.len() {
            return;
        }
        let d = ReplayDivergence {
            task: task.to_owned(),
            event_index: s.cursor,
            expected: Some(s.expected[s.cursor].clone()),
            actual: None,
            detail: format!(
                "replay finished with {} recorded event(s) unconsumed",
                s.expected.len() - s.cursor
            ),
        };
        drop(tasks);
        self.latch(d);
    }

    /// The first divergence observed, if any.
    pub fn divergence(&self) -> Option<ReplayDivergence> {
        self.divergence.lock().clone()
    }

    fn latch(&self, d: ReplayDivergence) {
        let mut slot = self.divergence.lock();
        if slot.is_none() {
            *slot = Some(d);
        }
    }

    /// Called by [`ReplayVfd`] after each *successful* inner operation.
    /// Returns an error (and latches the divergence) on mismatch.
    fn observe(&self, task: &str, actual: ReplayEvent) -> Result<()> {
        let mut tasks = self.tasks.lock();
        let Some(s) = tasks.get_mut(task) else {
            return Ok(());
        };
        if !s.checking {
            return Ok(());
        }
        let idx = s.cursor;
        let expected = s.expected.get(idx).cloned();
        match &expected {
            Some(e) if *e == actual => {
                s.cursor += 1;
                Ok(())
            }
            _ => {
                s.checking = false;
                let d = ReplayDivergence {
                    task: task.to_owned(),
                    event_index: idx,
                    detail: match &expected {
                        Some(_) => "operation does not match the recording".to_owned(),
                        None => "replay performed more operations than recorded".to_owned(),
                    },
                    expected,
                    actual: Some(actual),
                };
                drop(tasks);
                let msg = d.to_string();
                self.latch(d);
                Err(VfdError::Io(io::Error::other(format!(
                    "replay divergence: {msg}"
                ))))
            }
        }
    }
}

/// Per-task handle tying a driver stack to the shared validator.
#[derive(Clone)]
pub struct ReplaySession {
    validator: Arc<ReplayValidator>,
    task: String,
}

impl ReplaySession {
    /// A session for `task` against `validator`.
    pub fn new(validator: Arc<ReplayValidator>, task: impl Into<String>) -> Self {
        Self {
            validator,
            task: task.into(),
        }
    }

    /// The underlying shared validator.
    pub fn validator(&self) -> &Arc<ReplayValidator> {
        &self.validator
    }

    /// The task this session validates.
    pub fn task(&self) -> &str {
        &self.task
    }
}

/// Driver wrapper that forwards to `inner` and, on success, cross-checks
/// the operation against the recorded stream (see module docs).
pub struct ReplayVfd<V> {
    inner: V,
    session: ReplaySession,
    file: String,
}

impl<V: Vfd> ReplayVfd<V> {
    /// Wraps `inner` (serving `file`) in replay validation.
    pub fn new(inner: V, session: ReplaySession, file: impl Into<String>) -> Self {
        Self {
            inner,
            session,
            file: file.into(),
        }
    }

    fn event(&self, kind: IoKind, offset: u64, len: u64, access: AccessType) -> ReplayEvent {
        ReplayEvent {
            file: self.file.clone(),
            kind,
            offset,
            len,
            access,
        }
    }

    fn observe(&self, ev: ReplayEvent) -> Result<()> {
        self.session.validator.observe(&self.session.task, ev)
    }
}

impl<V: Vfd> Vfd for ReplayVfd<V> {
    fn read(&mut self, offset: u64, buf: &mut [u8], access: AccessType) -> Result<()> {
        self.inner.read(offset, buf, access)?;
        self.observe(self.event(IoKind::Read, offset, buf.len() as u64, access))
    }

    fn write(&mut self, offset: u64, data: &[u8], access: AccessType) -> Result<()> {
        self.inner.write(offset, data, access)?;
        self.observe(self.event(IoKind::Write, offset, data.len() as u64, access))
    }

    fn eof(&self) -> u64 {
        self.inner.eof()
    }

    fn truncate(&mut self, eof: u64) -> Result<()> {
        self.inner.truncate(eof)?;
        self.observe(self.event(IoKind::Truncate, 0, 0, AccessType::Metadata))
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()?;
        self.observe(self.event(IoKind::Flush, 0, 0, AccessType::Metadata))
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()?;
        self.observe(self.event(IoKind::Close, 0, 0, AccessType::Metadata))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemVfd;

    fn ev(file: &str, kind: IoKind, offset: u64, len: u64, access: AccessType) -> ReplayEvent {
        ReplayEvent {
            file: file.to_owned(),
            kind,
            offset,
            len,
            access,
        }
    }

    fn checked_session(events: Vec<ReplayEvent>) -> (Arc<ReplayValidator>, ReplaySession) {
        let v = Arc::new(ReplayValidator::new());
        v.expect_task("t", events, 1);
        v.begin_attempt("t", 1);
        (v.clone(), ReplaySession::new(v, "t"))
    }

    #[test]
    fn matching_stream_validates_cleanly() {
        let (v, sess) = checked_session(vec![
            ev("f", IoKind::Write, 0, 3, AccessType::RawData),
            ev("f", IoKind::Read, 0, 3, AccessType::RawData),
            ev("f", IoKind::Close, 0, 0, AccessType::Metadata),
        ]);
        let mut r = ReplayVfd::new(MemVfd::new(), sess, "f");
        r.write(0, b"abc", AccessType::RawData).unwrap();
        let mut buf = [0u8; 3];
        r.read(0, &mut buf, AccessType::RawData).unwrap();
        r.close().unwrap();
        v.finish_task("t", true);
        assert_eq!(v.divergence(), None);
    }

    #[test]
    fn open_events_filtered_from_expectation() {
        let (v, sess) = checked_session(vec![
            ev("f", IoKind::Open, 0, 0, AccessType::Metadata),
            ev("f", IoKind::Write, 0, 1, AccessType::RawData),
        ]);
        let mut r = ReplayVfd::new(MemVfd::new(), sess, "f");
        r.write(0, b"x", AccessType::RawData).unwrap();
        v.finish_task("t", true);
        assert_eq!(v.divergence(), None);
    }

    #[test]
    fn mismatching_offset_diverges_with_detail() {
        let (v, sess) = checked_session(vec![ev("f", IoKind::Write, 0, 1, AccessType::RawData)]);
        let mut r = ReplayVfd::new(MemVfd::new(), sess, "f");
        r.write(0, b"x", AccessType::Metadata).unwrap_err();
        let d = v.divergence().expect("divergence latched");
        assert_eq!(d.task, "t");
        assert_eq!(d.event_index, 0);
        assert_eq!(
            d.expected,
            Some(ev("f", IoKind::Write, 0, 1, AccessType::RawData))
        );
        assert_eq!(
            d.actual,
            Some(ev("f", IoKind::Write, 0, 1, AccessType::Metadata))
        );
    }

    #[test]
    fn extra_op_past_end_diverges() {
        let (v, sess) = checked_session(vec![]);
        let mut r = ReplayVfd::new(MemVfd::new(), sess, "f");
        r.write(0, b"x", AccessType::RawData).unwrap_err();
        let d = v.divergence().unwrap();
        assert_eq!(d.expected, None);
        assert!(d.detail.contains("more operations"));
    }

    #[test]
    fn unconsumed_events_on_success_diverge() {
        let (v, sess) = checked_session(vec![
            ev("f", IoKind::Write, 0, 1, AccessType::RawData),
            ev("f", IoKind::Write, 1, 1, AccessType::RawData),
        ]);
        let mut r = ReplayVfd::new(MemVfd::new(), sess, "f");
        r.write(0, b"x", AccessType::RawData).unwrap();
        v.finish_task("t", true);
        let d = v.divergence().unwrap();
        assert_eq!(d.event_index, 1);
        assert!(d.detail.contains("unconsumed"));
    }

    #[test]
    fn failed_ops_pass_through_unmatched() {
        let (v, sess) = checked_session(vec![ev("f", IoKind::Read, 0, 4, AccessType::RawData)]);
        let mut r = ReplayVfd::new(MemVfd::new(), sess, "f");
        // Out-of-bounds read fails in the inner driver; not matched.
        let mut buf = [0u8; 4];
        r.read(100, &mut buf, AccessType::RawData).unwrap_err();
        assert_eq!(v.divergence(), None, "failed op must not consume events");
    }

    #[test]
    fn only_final_attempt_checked_and_extra_attempts_diverge() {
        let v = Arc::new(ReplayValidator::new());
        v.expect_task(
            "t",
            vec![ev("f", IoKind::Write, 0, 1, AccessType::RawData)],
            2,
        );
        // Attempt 1: unchecked, arbitrary ops fine.
        v.begin_attempt("t", 1);
        let sess = ReplaySession::new(v.clone(), "t");
        let mut r = ReplayVfd::new(MemVfd::new(), sess.clone(), "f");
        r.write(5, b"zz", AccessType::Metadata).unwrap();
        assert_eq!(v.divergence(), None);
        // Attempt 2 (the recorded final): checked.
        v.begin_attempt("t", 2);
        let mut r = ReplayVfd::new(MemVfd::new(), sess, "f");
        r.write(0, b"x", AccessType::RawData).unwrap();
        v.finish_task("t", true);
        assert_eq!(v.divergence(), None);
        // Attempt 3 exceeds the recording: divergence.
        v.begin_attempt("t", 3);
        let d = v.divergence().unwrap();
        assert!(d.detail.contains("attempt 3"));
    }

    #[test]
    fn unknown_tasks_pass_through() {
        let v = Arc::new(ReplayValidator::new());
        let sess = ReplaySession::new(v.clone(), "nobody");
        let mut r = ReplayVfd::new(MemVfd::new(), sess, "f");
        r.write(0, b"x", AccessType::RawData).unwrap();
        v.begin_attempt("nobody", 1);
        v.finish_task("nobody", true);
        assert_eq!(v.divergence(), None);
    }

    #[test]
    fn first_divergence_wins() {
        let (v, sess) = checked_session(vec![ev("f", IoKind::Write, 0, 1, AccessType::RawData)]);
        let mut r = ReplayVfd::new(MemVfd::new(), sess, "f");
        r.write(9, b"x", AccessType::RawData).unwrap_err();
        let first = v.divergence().unwrap();
        // A later attempt restarts unchecked; the latch is stable.
        v.begin_attempt("t", 1);
        let mut buf = [0u8; 1];
        let _ = r.read(0, &mut buf, AccessType::RawData);
        assert_eq!(v.divergence(), Some(first));
    }
}
