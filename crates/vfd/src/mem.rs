//! In-memory driver and shared in-memory filesystem.
//!
//! Workflow tasks exchange data through files on shared storage; to replay
//! that deterministically in one process, [`MemFs`] keeps a map from file
//! name to a shared byte image. Opening a file yields a [`MemVfd`] whose
//! writes persist in the filesystem after close, so a downstream task opens
//! exactly the bytes its producer wrote — the substrate on which DaYu's
//! cross-task dataset mappings are exercised.

use crate::batch::{BatchCompletion, BatchOp, BatchOpKind};
use crate::{Result, Vfd, VfdError};
use dayu_trace::vfd::AccessType;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

type Image = Arc<Mutex<Vec<u8>>>;

/// A shared in-memory filesystem: file name → byte image.
///
/// Cloning shares the namespace (it is an `Arc` internally), so every task
/// of a simulated workflow holds the same filesystem.
#[derive(Clone, Default)]
pub struct MemFs {
    files: Arc<RwLock<BTreeMap<String, Image>>>,
}

impl std::fmt::Debug for MemFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemFs({} files)", self.files.read().len())
    }
}

impl MemFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens `name`, creating it empty if absent. The returned driver shares
    /// the byte image with any other concurrent opener (like a shared
    /// filesystem would).
    pub fn open(&self, name: &str) -> MemVfd {
        let image = {
            let mut files = self.files.write();
            files.entry(name.to_owned()).or_default().clone()
        };
        MemVfd { image, open: true }
    }

    /// Opens `name` only if it already exists.
    pub fn open_existing(&self, name: &str) -> Option<MemVfd> {
        let image = self.files.read().get(name)?.clone();
        Some(MemVfd { image, open: true })
    }

    /// Truncates-or-creates `name` to empty and opens it.
    pub fn create(&self, name: &str) -> MemVfd {
        let image: Image = Arc::default();
        self.files.write().insert(name.to_owned(), image.clone());
        MemVfd { image, open: true }
    }

    /// Whether `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    /// Removes `name`, returning whether it existed. Already-open drivers
    /// keep their image alive (POSIX unlink semantics).
    pub fn remove(&self, name: &str) -> bool {
        self.files.write().remove(name).is_some()
    }

    /// Current size of `name` in bytes, if it exists.
    pub fn size_of(&self, name: &str) -> Option<u64> {
        let img = self.files.read().get(name)?.clone();
        let len = img.lock().len() as u64;
        Some(len)
    }

    /// Names of all files, sorted.
    pub fn list(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// Sum of all file sizes.
    pub fn total_bytes(&self) -> u64 {
        let files = self.files.read();
        files.values().map(|img| img.lock().len() as u64).sum()
    }

    /// Installs `bytes` as the full content of `name`, creating or
    /// replacing it. Replay engines use this to reconstruct a filesystem
    /// from bundled images before re-executing a workload.
    pub fn restore(&self, name: &str, bytes: Vec<u8>) {
        let image: Image = Arc::new(Mutex::new(bytes));
        self.files.write().insert(name.to_owned(), image);
    }

    /// Reads an entire file's bytes (test/diagnostic convenience).
    pub fn snapshot(&self, name: &str) -> Option<Vec<u8>> {
        let img = self.files.read().get(name)?.clone();
        let bytes = img.lock().clone();
        Some(bytes)
    }
}

/// Driver over a (possibly shared) in-memory byte image.
pub struct MemVfd {
    image: Image,
    open: bool,
}

impl MemVfd {
    /// A standalone in-memory file not attached to any [`MemFs`].
    pub fn new() -> Self {
        Self {
            image: Arc::default(),
            open: true,
        }
    }

    /// A standalone file pre-filled with `bytes`.
    pub fn with_bytes(bytes: Vec<u8>) -> Self {
        Self {
            image: Arc::new(Mutex::new(bytes)),
            open: true,
        }
    }

    fn check_open(&self) -> Result<()> {
        if self.open {
            Ok(())
        } else {
            Err(VfdError::Closed)
        }
    }
}

impl Default for MemVfd {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfd for MemVfd {
    fn read(&mut self, offset: u64, buf: &mut [u8], _access: AccessType) -> Result<()> {
        self.check_open()?;
        let image = self.image.lock();
        let eof = image.len() as u64;
        let end = offset + buf.len() as u64;
        if end > eof {
            return Err(VfdError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                eof,
            });
        }
        buf.copy_from_slice(&image[offset as usize..end as usize]);
        Ok(())
    }

    fn write(&mut self, offset: u64, data: &[u8], _access: AccessType) -> Result<()> {
        self.check_open()?;
        let mut image = self.image.lock();
        let end = (offset + data.len() as u64) as usize;
        if end > image.len() {
            image.resize(end, 0);
        }
        image[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn eof(&self) -> u64 {
        self.image.lock().len() as u64
    }

    fn truncate(&mut self, eof: u64) -> Result<()> {
        self.check_open()?;
        self.image.lock().resize(eof as usize, 0);
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.check_open()?;
        self.open = false;
        Ok(())
    }

    /// Native batch dispatch: the image lock is taken once for the whole
    /// batch and each physical op is served with a single copy, instead of
    /// one lock + copy per logical segment.
    fn submit(&mut self, batch: &mut [BatchOp]) -> Vec<BatchCompletion> {
        let mut completions = Vec::with_capacity(batch.len());
        if let Err(e) = self.check_open() {
            if let Some(op) = batch.first() {
                completions.push(BatchCompletion {
                    tag: op.tag,
                    segments_done: 0,
                    result: Err(e),
                });
            }
            return completions;
        }
        let mut image = self.image.lock();
        for op in batch.iter_mut() {
            let result = match op.kind {
                BatchOpKind::Read => {
                    let eof = image.len() as u64;
                    if op.end() > eof {
                        Err(VfdError::OutOfBounds {
                            offset: op.offset,
                            len: op.len(),
                            eof,
                        })
                    } else {
                        let start = op.offset as usize;
                        let end = start + op.buf.len();
                        op.buf.copy_from_slice(&image[start..end]);
                        Ok(())
                    }
                }
                BatchOpKind::Write => {
                    let end = op.end() as usize;
                    if end > image.len() {
                        image.resize(end, 0);
                    }
                    image[op.offset as usize..end].copy_from_slice(&op.buf);
                    Ok(())
                }
            };
            let failed = result.is_err();
            completions.push(BatchCompletion {
                tag: op.tag,
                segments_done: if failed { 0 } else { op.segments.len() as u64 },
                result,
            });
            if failed {
                break;
            }
        }
        completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RAW: AccessType = AccessType::RawData;

    #[test]
    fn write_extends_and_read_round_trips() {
        let mut v = MemVfd::new();
        v.write(4, b"data", RAW).unwrap();
        assert_eq!(v.eof(), 8);
        let mut buf = [0u8; 8];
        v.read(0, &mut buf, RAW).unwrap();
        assert_eq!(&buf, b"\0\0\0\0data", "gap is zero-filled");
    }

    #[test]
    fn read_past_eof_errors() {
        let mut v = MemVfd::with_bytes(vec![1, 2, 3]);
        let mut buf = [0u8; 2];
        let err = v.read(2, &mut buf, RAW).unwrap_err();
        match err {
            VfdError::OutOfBounds { offset, len, eof } => {
                assert_eq!((offset, len, eof), (2, 2, 3));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn truncate_shrinks_and_grows() {
        let mut v = MemVfd::with_bytes(vec![1, 2, 3, 4]);
        v.truncate(2).unwrap();
        assert_eq!(v.eof(), 2);
        v.truncate(4).unwrap();
        let mut buf = [9u8; 4];
        v.read(0, &mut buf, RAW).unwrap();
        assert_eq!(buf, [1, 2, 0, 0]);
    }

    #[test]
    fn use_after_close_errors() {
        let mut v = MemVfd::new();
        v.close().unwrap();
        assert!(matches!(
            v.write(0, b"x", RAW).unwrap_err(),
            VfdError::Closed
        ));
        assert!(matches!(v.close().unwrap_err(), VfdError::Closed));
    }

    #[test]
    fn memfs_persists_across_open_close() {
        let fs = MemFs::new();
        let mut w = fs.create("a.h5");
        w.write(0, b"hello", RAW).unwrap();
        w.close().unwrap();

        let mut r = fs.open("a.h5");
        let mut buf = [0u8; 5];
        r.read(0, &mut buf, RAW).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(fs.size_of("a.h5"), Some(5));
    }

    #[test]
    fn memfs_create_truncates() {
        let fs = MemFs::new();
        fs.create("a").write(0, b"xxxx", RAW).unwrap();
        let v = fs.create("a");
        assert_eq!(v.eof(), 0);
    }

    #[test]
    fn memfs_open_existing_and_remove() {
        let fs = MemFs::new();
        assert!(fs.open_existing("nope").is_none());
        fs.create("f");
        assert!(fs.exists("f"));
        assert!(fs.open_existing("f").is_some());
        assert!(fs.remove("f"));
        assert!(!fs.remove("f"));
        assert!(!fs.exists("f"));
    }

    #[test]
    fn memfs_listing_and_totals() {
        let fs = MemFs::new();
        fs.create("b").write(0, &[0; 10], RAW).unwrap();
        fs.create("a").write(0, &[0; 5], RAW).unwrap();
        assert_eq!(fs.list(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(fs.total_bytes(), 15);
        assert_eq!(fs.snapshot("a").unwrap().len(), 5);
        assert!(fs.snapshot("zz").is_none());
    }

    #[test]
    fn concurrent_openers_share_the_image() {
        let fs = MemFs::new();
        let mut a = fs.open("shared");
        let mut b = fs.open("shared");
        a.write(0, b"A", RAW).unwrap();
        let mut buf = [0u8; 1];
        b.read(0, &mut buf, RAW).unwrap();
        assert_eq!(&buf, b"A");
    }

    #[test]
    fn unlinked_file_stays_usable_by_open_handles() {
        let fs = MemFs::new();
        let mut h = fs.open("tmp");
        h.write(0, b"z", RAW).unwrap();
        fs.remove("tmp");
        let mut buf = [0u8; 1];
        h.read(0, &mut buf, RAW).unwrap();
        assert_eq!(&buf, b"z");
    }

    #[test]
    fn native_batch_round_trips_and_fails_fast() {
        let mut v = MemVfd::new();
        let mut w = BatchOp::write(0, 0, b"abcd".to_vec(), RAW);
        w.append_write_segment(b"efgh");
        let done = v.submit(&mut [w]);
        assert!(done[0].result.is_ok());
        assert_eq!(done[0].segments_done, 2);
        assert_eq!(v.eof(), 8);

        let mut batch = [
            BatchOp::read(1, 0, 8, RAW),
            BatchOp::read(2, 6, 8, RAW),
            BatchOp::read(3, 0, 1, RAW),
        ];
        let done = v.submit(&mut batch);
        assert_eq!(done.len(), 2, "stops at the out-of-bounds read");
        assert_eq!(&batch[0].buf, b"abcdefgh");
        assert!(matches!(
            done[1].result,
            Err(VfdError::OutOfBounds { eof: 8, .. })
        ));
    }

    #[test]
    fn closed_driver_fails_the_batch() {
        let mut v = MemVfd::new();
        v.close().unwrap();
        let done = v.submit(&mut [BatchOp::read(5, 0, 1, RAW)]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 5);
        assert!(matches!(done[0].result, Err(VfdError::Closed)));
        assert!(v.submit(&mut []).is_empty());
    }

    #[test]
    fn parallel_writers_to_distinct_files() {
        let fs = MemFs::new();
        std::thread::scope(|s| {
            for i in 0..8 {
                let fs = fs.clone();
                s.spawn(move || {
                    let mut v = fs.create(&format!("f{i}"));
                    v.write(0, &[i as u8; 100], RAW).unwrap();
                });
            }
        });
        assert_eq!(fs.list().len(), 8);
        assert_eq!(fs.total_bytes(), 800);
    }
}
