//! Batched submission/completion I/O: the io_uring-style path under [`Vfd`].
//!
//! A [`BatchOp`] describes one *physical* operation — a contiguous device
//! extent read or written in a single driver call — composed of one or more
//! *logical segments*, the raw extents the format layer coalesced into it.
//! Submitting a slice of ops through [`Vfd::submit`] returns one
//! [`BatchCompletion`] per attempted op with its own error.
//!
//! Two execution strategies coexist behind the same call:
//!
//! * **Native** drivers ([`MemVfd`](crate::MemVfd), [`FileVfd`](crate::FileVfd))
//!   override `submit` and dispatch each physical op in one step — a single
//!   image-lock per batch for the memory driver, a single positional syscall
//!   per coalesced op for the file driver.
//! * Every other driver inherits the **scalar fallback**
//!   ([`submit_scalar`]), which decomposes each op back into per-segment
//!   `read`/`write` calls. The fault-injection, crash and replay wrappers
//!   deliberately rely on this: a batch flowing through them produces
//!   *exactly* the scalar op sequence, so seeded chaos schedules, crash
//!   points and replay cross-checks line up op-for-op with a scalar run.
//!
//! Submission is **fail-fast**: the first op that errors terminates the
//! batch, and ops after it are not attempted (their completions are absent
//! from the returned vector). This mirrors the scalar loop, which stops at
//! the first failed call — the property the trace-equivalence contract in
//! DESIGN.md depends on.

use crate::{Result, Vfd};
use dayu_trace::vfd::AccessType;

/// Direction of a batched operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOpKind {
    /// Transfer device bytes into the op's buffer.
    Read,
    /// Transfer the op's buffer onto the device.
    Write,
}

/// One physical operation in a submission batch: a contiguous device extent
/// plus the logical segments coalesced into it.
#[derive(Debug)]
pub struct BatchOp {
    /// Caller-chosen tag echoed in the matching [`BatchCompletion`].
    pub tag: u64,
    /// Read or write.
    pub kind: BatchOpKind,
    /// Device offset of the op's first byte.
    pub offset: u64,
    /// Metadata / raw-data classification, uniform across the op.
    pub access: AccessType,
    /// The transfer buffer: source bytes for a write, destination (pre-sized
    /// to the transfer length) for a read. After a *failed* read op the
    /// buffer contents are unspecified.
    pub buf: Vec<u8>,
    /// Byte length of each logical segment, in device order. Segments tile
    /// `buf` exactly: their sum equals `buf.len()`.
    pub segments: Vec<u64>,
}

impl BatchOp {
    /// A single-segment read of `len` bytes at `offset`.
    pub fn read(tag: u64, offset: u64, len: u64, access: AccessType) -> Self {
        Self {
            tag,
            kind: BatchOpKind::Read,
            offset,
            access,
            buf: vec![0u8; len as usize],
            segments: vec![len],
        }
    }

    /// A single-segment write of `data` at `offset`.
    pub fn write(tag: u64, offset: u64, data: Vec<u8>, access: AccessType) -> Self {
        let len = data.len() as u64;
        Self {
            tag,
            kind: BatchOpKind::Write,
            offset,
            access,
            buf: data,
            segments: vec![len],
        }
    }

    /// Coalesces `data` onto the end of a write op. The caller guarantees
    /// the new segment is device-adjacent (it starts at [`BatchOp::end`]).
    pub fn append_write_segment(&mut self, data: &[u8]) {
        debug_assert_eq!(self.kind, BatchOpKind::Write);
        self.buf.extend_from_slice(data);
        self.segments.push(data.len() as u64);
    }

    /// Coalesces a `len`-byte device-adjacent segment onto the end of a
    /// read op, growing the destination buffer.
    pub fn append_read_segment(&mut self, len: u64) {
        debug_assert_eq!(self.kind, BatchOpKind::Read);
        self.buf.resize(self.buf.len() + len as usize, 0);
        self.segments.push(len);
    }

    /// Total transfer length in bytes.
    pub fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Whether the op transfers no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One past the op's last device byte.
    pub fn end(&self) -> u64 {
        self.offset + self.len()
    }

    /// Iterates `(device_offset, buffer_range)` per logical segment.
    pub fn segment_ranges(&self) -> impl Iterator<Item = (u64, std::ops::Range<usize>)> + '_ {
        let mut dev = self.offset;
        let mut cursor = 0usize;
        self.segments.iter().map(move |&len| {
            let item = (dev, cursor..cursor + len as usize);
            dev += len;
            cursor += len as usize;
            item
        })
    }
}

/// Per-op outcome of a submission.
#[derive(Debug)]
pub struct BatchCompletion {
    /// The submitted op's tag.
    pub tag: u64,
    /// Leading logical segments fully transferred before any failure. A
    /// native driver that fails an op whole may conservatively report `0`.
    pub segments_done: u64,
    /// The op's own result.
    pub result: Result<()>,
}

/// How the format layer dispatches chunk-sweep I/O.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IoEngineMode {
    /// One synchronous `read`/`write` per raw extent (the historical path).
    #[default]
    Scalar,
    /// Plan sweeps as submission batches with coalescing and readahead.
    Batched,
}

/// Knobs for the batched I/O engine, threaded from `RecordOptions` through
/// `FileOptions` into the chunk-sweep planner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoEngineConfig {
    /// Scalar or batched dispatch.
    pub mode: IoEngineMode,
    /// Maximum ops per submission round.
    pub queue_depth: usize,
    /// Whether adjacent raw extents merge into one physical op.
    pub coalesce: bool,
    /// Cap on a single coalesced op's transfer length.
    pub max_coalesced_bytes: u64,
    /// Chunk payloads speculatively enqueued per round during a sequential
    /// dataset scan. Readahead never crosses a request boundary.
    pub readahead_chunks: u64,
}

impl Default for IoEngineConfig {
    fn default() -> Self {
        Self {
            mode: IoEngineMode::Scalar,
            queue_depth: 64,
            coalesce: true,
            max_coalesced_bytes: 1 << 20,
            readahead_chunks: 32,
        }
    }
}

impl IoEngineConfig {
    /// The batched engine with default knobs.
    pub fn batched() -> Self {
        Self {
            mode: IoEngineMode::Batched,
            ..Self::default()
        }
    }

    /// Whether batched dispatch is selected.
    pub fn is_batched(&self) -> bool {
        self.mode == IoEngineMode::Batched
    }

    /// Sets the submission queue depth (clamped to at least 1).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Enables or disables extent coalescing.
    pub fn with_coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Sets the sequential-scan readahead window, in chunks.
    pub fn with_readahead(mut self, chunks: u64) -> Self {
        self.readahead_chunks = chunks;
        self
    }
}

/// The scalar fallback: decomposes each op into per-segment `read`/`write`
/// calls on `vfd`, failing fast at the first errored segment. This is the
/// default [`Vfd::submit`] body, and the semantic baseline every native
/// override must be byte- and stream-equivalent to.
pub fn submit_scalar<V: Vfd + ?Sized>(vfd: &mut V, batch: &mut [BatchOp]) -> Vec<BatchCompletion> {
    let mut completions = Vec::with_capacity(batch.len());
    for op in batch.iter_mut() {
        let mut done = 0u64;
        let mut result = Ok(());
        let mut dev = op.offset;
        let mut cursor = 0usize;
        for &seg in &op.segments {
            let seg = seg as usize;
            let r = match op.kind {
                BatchOpKind::Read => vfd.read(dev, &mut op.buf[cursor..cursor + seg], op.access),
                BatchOpKind::Write => vfd.write(dev, &op.buf[cursor..cursor + seg], op.access),
            };
            match r {
                Ok(()) => {
                    done += 1;
                    dev += seg as u64;
                    cursor += seg;
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        let failed = result.is_err();
        completions.push(BatchCompletion {
            tag: op.tag,
            segments_done: done,
            result,
        });
        if failed {
            break;
        }
    }
    completions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemVfd, VfdError};

    const RAW: AccessType = AccessType::RawData;

    #[test]
    fn op_builders_and_segment_ranges() {
        let mut op = BatchOp::write(7, 100, vec![1, 2, 3], RAW);
        op.append_write_segment(&[4, 5]);
        assert_eq!(op.len(), 5);
        assert_eq!(op.end(), 105);
        assert_eq!(op.segments, vec![3, 2]);
        let ranges: Vec<_> = op.segment_ranges().collect();
        assert_eq!(ranges, vec![(100, 0..3), (103, 3..5)]);

        let mut rd = BatchOp::read(1, 0, 4, RAW);
        rd.append_read_segment(4);
        assert_eq!(rd.buf.len(), 8);
        assert!(!rd.is_empty());
    }

    #[test]
    fn scalar_fallback_round_trips_multi_segment_ops() {
        let mut v = MemVfd::new();
        let mut batch = vec![BatchOp::write(0, 0, b"hello world".to_vec(), RAW)];
        batch[0].segments = vec![5, 6];
        let done = submit_scalar(&mut v, &mut batch);
        assert_eq!(done.len(), 1);
        assert!(done[0].result.is_ok());
        assert_eq!(done[0].segments_done, 2);

        let mut rd = vec![BatchOp::read(9, 0, 11, RAW)];
        let done = submit_scalar(&mut v, &mut rd);
        assert_eq!(done[0].tag, 9);
        assert!(done[0].result.is_ok());
        assert_eq!(&rd[0].buf, b"hello world");
    }

    #[test]
    fn scalar_fallback_fails_fast() {
        let mut v = MemVfd::with_bytes(vec![0u8; 4]);
        // Op 0 reads in bounds, op 1 reads past EOF, op 2 is never attempted.
        let mut batch = vec![
            BatchOp::read(0, 0, 4, RAW),
            BatchOp::read(1, 2, 4, RAW),
            BatchOp::read(2, 0, 1, RAW),
        ];
        let done = submit_scalar(&mut v, &mut batch);
        assert_eq!(done.len(), 2, "batch stops at the first failed op");
        assert!(done[0].result.is_ok());
        assert!(matches!(done[1].result, Err(VfdError::OutOfBounds { .. })));
        assert_eq!(done[1].segments_done, 0);
    }

    #[test]
    fn engine_config_builders() {
        let cfg = IoEngineConfig::default();
        assert!(!cfg.is_batched());
        let b = IoEngineConfig::batched()
            .with_queue_depth(0)
            .with_coalesce(false)
            .with_readahead(8);
        assert!(b.is_batched());
        assert_eq!(b.queue_depth, 1, "queue depth clamps to 1");
        assert!(!b.coalesce);
        assert_eq!(b.readahead_chunks, 8);
    }
}
