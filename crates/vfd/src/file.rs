//! Real-filesystem driver.
//!
//! Used by the overhead evaluation (Figures 9 and 10): measuring the
//! profiler against actual `pread`/`pwrite` syscalls keeps the baseline
//! honest — against a pure in-memory driver the relative overhead of
//! tracing would be wildly overstated.
//!
//! On Unix every transfer is a single positional `pread`/`pwrite`
//! (`read_at`/`write_at`), so the scalar path costs one syscall per op
//! instead of a seek + transfer pair, and a coalesced batch op costs one
//! syscall regardless of how many logical segments it carries.

use crate::batch::{BatchCompletion, BatchOp, BatchOpKind};
use crate::{Result, Vfd, VfdError};
use dayu_trace::vfd::AccessType;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

#[cfg(unix)]
fn pread(file: &mut File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn pwrite(file: &mut File, offset: u64, data: &[u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(data, offset)
}

#[cfg(not(unix))]
fn pread(file: &mut File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
}

#[cfg(not(unix))]
fn pwrite(file: &mut File, offset: u64, data: &[u8]) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom};
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(data)
}

/// Driver over a real file.
pub struct FileVfd {
    file: Option<File>,
    eof: u64,
}

impl FileVfd {
    /// Creates (truncating) a real file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file: Some(file),
            eof: 0,
        })
    }

    /// Opens an existing file at `path` read/write.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let eof = file.metadata()?.len();
        Ok(Self {
            file: Some(file),
            eof,
        })
    }

    fn file(&mut self) -> Result<&mut File> {
        self.file.as_mut().ok_or(VfdError::Closed)
    }
}

impl Vfd for FileVfd {
    fn read(&mut self, offset: u64, buf: &mut [u8], _access: AccessType) -> Result<()> {
        let eof = self.eof;
        if offset + buf.len() as u64 > eof {
            return Err(VfdError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                eof,
            });
        }
        let f = self.file()?;
        pread(f, offset, buf)?;
        Ok(())
    }

    fn write(&mut self, offset: u64, data: &[u8], _access: AccessType) -> Result<()> {
        let f = self.file()?;
        pwrite(f, offset, data)?;
        self.eof = self.eof.max(offset + data.len() as u64);
        Ok(())
    }

    fn eof(&self) -> u64 {
        self.eof
    }

    fn truncate(&mut self, eof: u64) -> Result<()> {
        let f = self.file()?;
        f.set_len(eof)?;
        self.eof = eof;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.file()?.flush()?;
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        if self.file.take().is_none() {
            return Err(VfdError::Closed);
        }
        Ok(())
    }

    /// Native batch dispatch: one positional syscall per physical op, so a
    /// coalesced op transfers all its segments in a single `pread`/`pwrite`.
    fn submit(&mut self, batch: &mut [BatchOp]) -> Vec<BatchCompletion> {
        let mut completions = Vec::with_capacity(batch.len());
        let eof_before = self.eof;
        let file = match self.file() {
            Ok(f) => f,
            Err(e) => {
                if let Some(op) = batch.first() {
                    completions.push(BatchCompletion {
                        tag: op.tag,
                        segments_done: 0,
                        result: Err(e),
                    });
                }
                return completions;
            }
        };
        let mut eof = eof_before;
        for op in batch.iter_mut() {
            let result = match op.kind {
                BatchOpKind::Read => {
                    if op.end() > eof {
                        Err(VfdError::OutOfBounds {
                            offset: op.offset,
                            len: op.len(),
                            eof,
                        })
                    } else {
                        pread(file, op.offset, &mut op.buf).map_err(VfdError::from)
                    }
                }
                BatchOpKind::Write => pwrite(file, op.offset, &op.buf)
                    .map(|()| eof = eof.max(op.end()))
                    .map_err(VfdError::from),
            };
            let failed = result.is_err();
            completions.push(BatchCompletion {
                tag: op.tag,
                segments_done: if failed { 0 } else { op.segments.len() as u64 },
                result,
            });
            if failed {
                break;
            }
        }
        self.eof = eof;
        completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RAW: AccessType = AccessType::RawData;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dayu-vfd-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn create_write_read_round_trip() {
        let path = tmp("rt");
        let mut v = FileVfd::create(&path).unwrap();
        v.write(8, b"payload", RAW).unwrap();
        assert_eq!(v.eof(), 15);
        let mut buf = [0u8; 7];
        v.read(8, &mut buf, RAW).unwrap();
        assert_eq!(&buf, b"payload");
        v.close().unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reopen_sees_previous_bytes() {
        let path = tmp("reopen");
        {
            let mut v = FileVfd::create(&path).unwrap();
            v.write(0, b"persist", RAW).unwrap();
            v.flush().unwrap();
            v.close().unwrap();
        }
        let mut v = FileVfd::open(&path).unwrap();
        assert_eq!(v.eof(), 7);
        let mut buf = [0u8; 7];
        v.read(0, &mut buf, RAW).unwrap();
        assert_eq!(&buf, b"persist");
        v.close().unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn read_past_eof_errors() {
        let path = tmp("oob");
        let mut v = FileVfd::create(&path).unwrap();
        v.write(0, b"ab", RAW).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(
            v.read(0, &mut buf, RAW).unwrap_err(),
            VfdError::OutOfBounds { eof: 2, .. }
        ));
        v.close().unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn truncate_and_close_semantics() {
        let path = tmp("trunc");
        let mut v = FileVfd::create(&path).unwrap();
        v.write(0, &[1; 100], RAW).unwrap();
        v.truncate(10).unwrap();
        assert_eq!(v.eof(), 10);
        v.close().unwrap();
        assert!(matches!(v.close().unwrap_err(), VfdError::Closed));
        assert!(matches!(v.flush().unwrap_err(), VfdError::Closed));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_missing_file_is_io_error() {
        match FileVfd::open("/nonexistent/dayu/file") {
            Err(VfdError::Io(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("open of a missing file succeeded"),
        }
    }

    #[test]
    fn native_batch_coalesced_round_trip() {
        let path = tmp("batch");
        let mut v = FileVfd::create(&path).unwrap();
        let mut w = BatchOp::write(0, 0, b"alpha".to_vec(), RAW);
        w.append_write_segment(b"beta");
        let done = v.submit(&mut [w]);
        assert!(done[0].result.is_ok());
        assert_eq!(done[0].segments_done, 2);
        assert_eq!(v.eof(), 9);

        let mut batch = [BatchOp::read(1, 0, 9, RAW), BatchOp::read(2, 5, 9, RAW)];
        let done = v.submit(&mut batch);
        assert_eq!(done.len(), 2, "stops at the out-of-bounds read");
        assert_eq!(&batch[0].buf, b"alphabeta");
        assert!(matches!(
            done[1].result,
            Err(VfdError::OutOfBounds { eof: 9, .. })
        ));
        v.close().unwrap();
        let done = v.submit(&mut [BatchOp::read(3, 0, 1, RAW)]);
        assert!(matches!(done[0].result, Err(VfdError::Closed)));
        std::fs::remove_file(path).unwrap();
    }
}
