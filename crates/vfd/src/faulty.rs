//! Fault-injecting wrapper driver.
//!
//! Profilers sit on the application's critical path; the mapper must not
//! corrupt traces or deadlock when the underlying storage fails mid-task.
//! [`FaultyVfd`] injects an `Io` failure on a chosen operation so those
//! failure paths are testable deterministically.

use crate::{Result, Vfd, VfdError};
use dayu_trace::vfd::AccessType;

/// When to inject failures.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Fail the nth data-moving operation (0-based). `None` disables
    /// injection.
    pub fail_on_op: Option<u64>,
    /// If `true`, every operation after the first failure also fails
    /// (a dead device); otherwise only the one op fails (a transient error).
    pub sticky: bool,
}

impl FaultPlan {
    /// Never fail.
    pub fn none() -> Self {
        Self {
            fail_on_op: None,
            sticky: false,
        }
    }

    /// Fail permanently starting at data-op `n` (0-based).
    pub fn dead_after(n: u64) -> Self {
        Self {
            fail_on_op: Some(n),
            sticky: true,
        }
    }

    /// Fail only data-op `n` (0-based), then recover.
    pub fn transient_at(n: u64) -> Self {
        Self {
            fail_on_op: Some(n),
            sticky: false,
        }
    }
}

/// Wrapper driver that fails according to a [`FaultPlan`].
pub struct FaultyVfd<V> {
    inner: V,
    plan: FaultPlan,
    ops_seen: u64,
    tripped: bool,
}

impl<V: Vfd> FaultyVfd<V> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: V, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            ops_seen: 0,
            tripped: false,
        }
    }

    /// Number of data-moving ops attempted so far (including failed ones).
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    fn gate(&mut self) -> Result<()> {
        let n = self.ops_seen;
        self.ops_seen += 1;
        if self.tripped && self.plan.sticky {
            return Err(VfdError::Io(std::io::Error::other("injected: device dead")));
        }
        if self.plan.fail_on_op == Some(n) {
            self.tripped = true;
            return Err(VfdError::Io(std::io::Error::other(format!(
                "injected fault at op {n}"
            ))));
        }
        Ok(())
    }
}

impl<V: Vfd> Vfd for FaultyVfd<V> {
    fn read(&mut self, offset: u64, buf: &mut [u8], access: AccessType) -> Result<()> {
        self.gate()?;
        self.inner.read(offset, buf, access)
    }

    fn write(&mut self, offset: u64, data: &[u8], access: AccessType) -> Result<()> {
        self.gate()?;
        self.inner.write(offset, data, access)
    }

    fn eof(&self) -> u64 {
        self.inner.eof()
    }

    fn truncate(&mut self, eof: u64) -> Result<()> {
        self.inner.truncate(eof)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemVfd;

    const RAW: AccessType = AccessType::RawData;

    #[test]
    fn no_plan_never_fails() {
        let mut v = FaultyVfd::new(MemVfd::new(), FaultPlan::none());
        for i in 0..10 {
            v.write(i * 4, &[1; 4], RAW).unwrap();
        }
        assert_eq!(v.ops_seen(), 10);
    }

    #[test]
    fn transient_fault_recovers() {
        let mut v = FaultyVfd::new(MemVfd::new(), FaultPlan::transient_at(1));
        v.write(0, &[1; 4], RAW).unwrap();
        assert!(v.write(4, &[1; 4], RAW).is_err());
        v.write(4, &[1; 4], RAW).unwrap();
        assert_eq!(v.eof(), 8);
    }

    #[test]
    fn dead_device_stays_dead() {
        let mut v = FaultyVfd::new(MemVfd::new(), FaultPlan::dead_after(0));
        assert!(v.write(0, &[1; 4], RAW).is_err());
        assert!(v.write(0, &[1; 4], RAW).is_err());
        let mut buf = [0u8; 1];
        assert!(v.read(0, &mut buf, RAW).is_err());
        assert_eq!(v.eof(), 0, "no write ever landed");
    }

    #[test]
    fn lifecycle_ops_bypass_injection() {
        let mut v = FaultyVfd::new(MemVfd::new(), FaultPlan::dead_after(0));
        v.truncate(128).unwrap();
        v.flush().unwrap();
        v.close().unwrap();
    }
}
