//! Fault-injecting wrapper driver and the seeded chaos engine behind it.
//!
//! Profilers sit on the application's critical path; the mapper must not
//! corrupt traces or deadlock when the underlying storage fails mid-task.
//! This module provides two layers:
//!
//! * [`FaultPlan`] / [`FaultyVfd::new`] — the original single-shot,
//!   fully deterministic plan ("fail data-op *n*, optionally stay dead"),
//!   kept for targeted failure-path tests;
//! * [`FaultSchedule`] / [`FaultInjector`] — a seeded chaos engine
//!   supporting probabilistic, transient, sticky (dead-device) and latency
//!   faults, keyed by operation type and data-op count. One injector is
//!   shared by every file a task opens (and across retry attempts), so op
//!   accounting and the RNG stream span the task's whole I/O history.
//!
//! **Op accounting.** Only *data-moving* operations — `read`/`write` calls,
//! whether flagged [`AccessType::RawData`] or [`AccessType::Metadata`] by
//! the format library — can carry faults, and only **raw-data** ops advance
//! the fault counter used by [`FaultSchedule::dead_at_op`] and
//! [`FaultSchedule::transient_ops`] (metadata ops are bookkeeping traffic
//! whose count depends on format-internal layout decisions, so keying
//! faults to them makes schedules brittle). Lifecycle operations
//! (`eof`/`truncate`/`flush`/`close`) always bypass injection. Once a
//! device is dead, *every* subsequent read/write fails, metadata included.
//!
//! Every injected error message carries the schedule seed so a failure seen
//! in CI can be reproduced exactly with `--chaos-seed`.

use crate::{Result, Vfd, VfdError};
use dayu_trace::vfd::AccessType;
use parking_lot::Mutex;
use std::sync::Arc;

/// When to inject failures (legacy single-shot plan).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Fail the nth raw-data operation (0-based). `None` disables
    /// injection.
    pub fail_on_op: Option<u64>,
    /// If `true`, every operation after the first failure also fails
    /// (a dead device); otherwise only the one op fails (a transient error).
    pub sticky: bool,
}

impl FaultPlan {
    /// Never fail.
    pub fn none() -> Self {
        Self {
            fail_on_op: None,
            sticky: false,
        }
    }

    /// Fail permanently starting at raw-data op `n` (0-based).
    pub fn dead_after(n: u64) -> Self {
        Self {
            fail_on_op: Some(n),
            sticky: true,
        }
    }

    /// Fail only raw-data op `n` (0-based), then recover.
    pub fn transient_at(n: u64) -> Self {
        Self {
            fail_on_op: Some(n),
            sticky: false,
        }
    }
}

/// A small, dependency-free deterministic RNG (SplitMix64).
///
/// Used for probabilistic fault and latency decisions; the whole chaos run
/// is a pure function of the schedule seed and the per-task op sequence.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of a u64, scaled.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Deterministic 64-bit FNV-1a over a string — a stable task-name hash
/// (unlike `DefaultHasher`, whose output may change across Rust releases).
pub fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A seeded, deterministic description of the faults to inject into a
/// workflow run.
///
/// The schedule is global; [`FaultSchedule::injector_for`] derives an
/// independent RNG stream per task (seed mixed with a stable hash of the
/// task name), so runs are reproducible regardless of how the scheduler
/// interleaves tasks across threads.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    /// Root seed; printed in every injected error for reproduction.
    pub seed: u64,
    /// Probability that a raw-data read fails.
    pub read_fault_prob: f64,
    /// Probability that a raw-data write fails.
    pub write_fault_prob: f64,
    /// If `true`, a probabilistic fault leaves the device dead (every
    /// later op fails); otherwise probabilistic faults are transient.
    pub sticky_faults: bool,
    /// Raw-data op indices (0-based, per task) that fail exactly once.
    pub transient_ops: Vec<u64>,
    /// Raw-data op index at which the device dies permanently.
    pub dead_at_op: Option<u64>,
    /// The device is dead on arrival: every read/write — metadata
    /// included — fails from the first op.
    pub born_dead: bool,
    /// Probability that a raw-data op is delayed by [`Self::latency_ns`].
    pub latency_prob: f64,
    /// Injected delay, nanoseconds of real time.
    pub latency_ns: u64,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        Self::new(0)
    }
}

impl FaultSchedule {
    /// A schedule with every fault disabled (seed still recorded).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            read_fault_prob: 0.0,
            write_fault_prob: 0.0,
            sticky_faults: false,
            transient_ops: Vec::new(),
            dead_at_op: None,
            born_dead: false,
            latency_prob: 0.0,
            latency_ns: 0,
        }
    }

    /// The legacy [`FaultPlan`] expressed as a schedule.
    pub fn from_plan(plan: &FaultPlan, seed: u64) -> Self {
        let mut s = Self::new(seed);
        match plan.fail_on_op {
            Some(n) if plan.sticky => s.dead_at_op = Some(n),
            Some(n) => s.transient_ops = vec![n],
            None => {}
        }
        s
    }

    /// Sets the probability that any raw-data op (read or write) fails.
    pub fn with_fault_prob(mut self, p: f64) -> Self {
        self.read_fault_prob = p;
        self.write_fault_prob = p;
        self
    }

    /// Sets the raw-data read failure probability.
    pub fn with_read_fault_prob(mut self, p: f64) -> Self {
        self.read_fault_prob = p;
        self
    }

    /// Sets the raw-data write failure probability.
    pub fn with_write_fault_prob(mut self, p: f64) -> Self {
        self.write_fault_prob = p;
        self
    }

    /// Makes probabilistic faults kill the device permanently.
    pub fn sticky(mut self) -> Self {
        self.sticky_faults = true;
        self
    }

    /// Adds a one-shot fault at raw-data op `n` (0-based, per task).
    pub fn with_transient_at(mut self, n: u64) -> Self {
        self.transient_ops.push(n);
        self
    }

    /// Kills the device permanently at raw-data op `n` (0-based, per task).
    pub fn with_dead_at(mut self, n: u64) -> Self {
        self.dead_at_op = Some(n);
        self
    }

    /// Makes the device dead on arrival (even metadata ops fail).
    pub fn dead_on_arrival(mut self) -> Self {
        self.born_dead = true;
        self
    }

    /// Delays each raw-data op by `ns` nanoseconds with probability `p`.
    pub fn with_latency(mut self, p: f64, ns: u64) -> Self {
        self.latency_prob = p;
        self.latency_ns = ns;
        self
    }

    /// Whether this schedule can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.read_fault_prob <= 0.0
            && self.write_fault_prob <= 0.0
            && self.transient_ops.is_empty()
            && self.dead_at_op.is_none()
            && !self.born_dead
            && self.latency_prob <= 0.0
    }

    /// An injector for `task`, with an RNG stream derived from the
    /// schedule seed and a stable hash of the task name. Clone the
    /// returned injector into every file the task opens so op counts and
    /// the RNG stream span the task's whole history.
    pub fn injector_for(&self, task: &str) -> FaultInjector {
        let stream_seed = self.seed ^ fnv1a64(task);
        FaultInjector {
            shared: Arc::new(Mutex::new(InjectorState {
                schedule: self.clone(),
                task: task.to_owned(),
                rng: ChaosRng::new(stream_seed),
                data_ops: 0,
                meta_ops: 0,
                faults_injected: 0,
                dead: self.born_dead,
            })),
        }
    }
}

/// Direction of a data-moving op, for per-direction fault probabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum IoDir {
    Read,
    Write,
}

struct InjectorState {
    schedule: FaultSchedule,
    task: String,
    rng: ChaosRng,
    /// Raw-data ops attempted (the counter faults are keyed to).
    data_ops: u64,
    /// Metadata read/write ops attempted (excluded from fault keying).
    meta_ops: u64,
    faults_injected: u64,
    dead: bool,
}

impl InjectorState {
    fn fault(&mut self, what: &str) -> VfdError {
        self.faults_injected += 1;
        VfdError::Io(std::io::Error::other(format!(
            "injected {what} [task \"{}\", chaos seed {:#018x}]",
            self.task, self.schedule.seed
        )))
    }
}

/// Shared per-task fault state: op counters, the RNG stream and the
/// dead-device latch. Cloning shares state (it is an `Arc` internally),
/// so one injector can back every file a task opens across every retry
/// attempt — a fault keyed to op *n* fires once per task, not once per
/// file or per attempt, which is what lets retries make progress.
#[derive(Clone)]
pub struct FaultInjector {
    shared: Arc<Mutex<InjectorState>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.lock();
        write!(
            f,
            "FaultInjector(task \"{}\", seed {:#x}, data_ops {}, faults {})",
            st.task, st.schedule.seed, st.data_ops, st.faults_injected
        )
    }
}

impl FaultInjector {
    /// An injector that never injects (for plumbing that requires one).
    pub fn inert() -> Self {
        FaultSchedule::new(0).injector_for("")
    }

    /// Raw-data ops attempted so far (including failed ones).
    pub fn data_ops(&self) -> u64 {
        self.shared.lock().data_ops
    }

    /// Metadata read/write ops attempted so far.
    pub fn meta_ops(&self) -> u64 {
        self.shared.lock().meta_ops
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.shared.lock().faults_injected
    }

    /// Whether the simulated device is (now) permanently dead.
    pub fn is_dead(&self) -> bool {
        self.shared.lock().dead
    }

    /// The schedule seed (for error reporting).
    pub fn seed(&self) -> u64 {
        self.shared.lock().schedule.seed
    }

    /// Decides the fate of one read/write op. Returns the latency to
    /// apply (outside the lock) on success.
    fn decide(&self, dir: IoDir, access: AccessType) -> Result<u64> {
        let mut st = self.shared.lock();
        let moves_data = access == AccessType::RawData;
        if !moves_data {
            st.meta_ops += 1;
            if st.dead {
                return Err(st.fault("metadata op on dead device"));
            }
            return Ok(0);
        }
        let n = st.data_ops;
        st.data_ops += 1;
        if st.dead {
            return Err(st.fault(&format!("op {n} on dead device")));
        }
        if st.schedule.dead_at_op == Some(n) {
            st.dead = true;
            return Err(st.fault(&format!("permanent device death at data-op {n}")));
        }
        if st.schedule.transient_ops.contains(&n) {
            return Err(st.fault(&format!("transient fault at data-op {n}")));
        }
        let p = match dir {
            IoDir::Read => st.schedule.read_fault_prob,
            IoDir::Write => st.schedule.write_fault_prob,
        };
        if p > 0.0 && st.rng.chance(p) {
            if st.schedule.sticky_faults {
                st.dead = true;
            }
            let what = format!(
                "{} fault at data-op {n}",
                if dir == IoDir::Read { "read" } else { "write" }
            );
            return Err(st.fault(&what));
        }
        let latency_prob = st.schedule.latency_prob;
        if latency_prob > 0.0 && st.rng.chance(latency_prob) {
            return Ok(st.schedule.latency_ns);
        }
        Ok(0)
    }

    fn gate(&self, dir: IoDir, access: AccessType) -> Result<()> {
        let delay_ns = self.decide(dir, access)?;
        if delay_ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(delay_ns));
        }
        Ok(())
    }
}

/// Wrapper driver that fails according to a [`FaultSchedule`] (or a legacy
/// [`FaultPlan`] via [`FaultyVfd::new`]).
pub struct FaultyVfd<V> {
    inner: V,
    injector: FaultInjector,
}

impl<V: Vfd> FaultyVfd<V> {
    /// Wraps `inner` with the given single-shot plan (seed 0; the plan has
    /// no probabilistic component, so the seed never matters).
    pub fn new(inner: V, plan: FaultPlan) -> Self {
        Self::with_injector(inner, FaultSchedule::from_plan(&plan, 0).injector_for(""))
    }

    /// Wraps `inner` with a shared injector. Pass clones of one injector
    /// to every file of a task so faults are keyed to the task's global
    /// data-op sequence.
    pub fn with_injector(inner: V, injector: FaultInjector) -> Self {
        Self { inner, injector }
    }

    /// Raw-data ops attempted so far across the shared injector
    /// (including failed ones). Metadata ops are not counted — see the
    /// module docs for the accounting rules.
    pub fn ops_seen(&self) -> u64 {
        self.injector.data_ops()
    }

    /// Number of faults this wrapper's injector has produced.
    pub fn faults_injected(&self) -> u64 {
        self.injector.faults_injected()
    }

    /// The shared injector (clone to wrap further files of the same task).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }
}

impl<V: Vfd> Vfd for FaultyVfd<V> {
    fn read(&mut self, offset: u64, buf: &mut [u8], access: AccessType) -> Result<()> {
        self.injector.gate(IoDir::Read, access)?;
        self.inner.read(offset, buf, access)
    }

    fn write(&mut self, offset: u64, data: &[u8], access: AccessType) -> Result<()> {
        self.injector.gate(IoDir::Write, access)?;
        self.inner.write(offset, data, access)
    }

    fn eof(&self) -> u64 {
        self.inner.eof()
    }

    fn truncate(&mut self, eof: u64) -> Result<()> {
        self.inner.truncate(eof)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemVfd;

    const RAW: AccessType = AccessType::RawData;
    const META: AccessType = AccessType::Metadata;

    #[test]
    fn no_plan_never_fails() {
        let mut v = FaultyVfd::new(MemVfd::new(), FaultPlan::none());
        for i in 0..10 {
            v.write(i * 4, &[1; 4], RAW).unwrap();
        }
        assert_eq!(v.ops_seen(), 10);
        assert_eq!(v.faults_injected(), 0);
    }

    #[test]
    fn transient_fault_recovers() {
        let mut v = FaultyVfd::new(MemVfd::new(), FaultPlan::transient_at(1));
        v.write(0, &[1; 4], RAW).unwrap();
        assert!(v.write(4, &[1; 4], RAW).is_err());
        v.write(4, &[1; 4], RAW).unwrap();
        assert_eq!(v.eof(), 8);
        assert_eq!(v.faults_injected(), 1);
    }

    #[test]
    fn dead_device_stays_dead() {
        let mut v = FaultyVfd::new(MemVfd::new(), FaultPlan::dead_after(0));
        assert!(v.write(0, &[1; 4], RAW).is_err());
        assert!(v.write(0, &[1; 4], RAW).is_err());
        let mut buf = [0u8; 1];
        assert!(v.read(0, &mut buf, RAW).is_err());
        assert_eq!(v.eof(), 0, "no write ever landed");
        assert_eq!(v.faults_injected(), 3);
    }

    #[test]
    fn lifecycle_ops_bypass_injection() {
        let mut v = FaultyVfd::new(MemVfd::new(), FaultPlan::dead_after(0));
        v.truncate(128).unwrap();
        v.flush().unwrap();
        v.close().unwrap();
    }

    #[test]
    fn metadata_ops_do_not_advance_fault_counting() {
        // dead_at_op counts only raw-data ops: interleaved metadata writes
        // must neither trip the fault early nor delay it.
        let sched = FaultSchedule::new(7).with_dead_at(2);
        let mut v = FaultyVfd::with_injector(MemVfd::new(), sched.injector_for("t"));
        v.write(0, &[0; 4], META).unwrap(); // meta, not counted
        v.write(0, &[1; 4], RAW).unwrap(); // data-op 0
        v.write(8, &[0; 4], META).unwrap(); // meta, not counted
        v.write(4, &[1; 4], RAW).unwrap(); // data-op 1
        assert!(v.write(8, &[1; 4], RAW).is_err(), "data-op 2 dies");
        // Once dead, metadata ops fail too.
        assert!(v.write(0, &[0; 4], META).is_err());
        assert_eq!(v.ops_seen(), 3, "metadata ops excluded");
        assert_eq!(v.injector().meta_ops(), 3);
    }

    #[test]
    fn born_dead_fails_everything_including_metadata() {
        let sched = FaultSchedule::new(1).dead_on_arrival();
        let mut v = FaultyVfd::with_injector(MemVfd::new(), sched.injector_for("t"));
        assert!(v.write(0, &[0; 4], META).is_err());
        assert!(v.write(0, &[1; 4], RAW).is_err());
        let mut buf = [0u8; 1];
        assert!(v.read(0, &mut buf, RAW).is_err());
        assert!(v.injector().is_dead());
    }

    #[test]
    fn probabilistic_faults_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let sched = FaultSchedule::new(seed).with_write_fault_prob(0.3);
            let mut v = FaultyVfd::with_injector(MemVfd::new(), sched.injector_for("t"));
            (0..64)
                .map(|i| v.write(i * 4, &[1; 4], RAW).is_err())
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same fault pattern");
        assert_ne!(run(42), run(43), "different seed, different pattern");
        assert!(run(42).iter().any(|&f| f), "p=0.3 over 64 ops injects");
        assert!(!run(42).iter().all(|&f| f), "p=0.3 is not p=1");
    }

    #[test]
    fn sticky_probabilistic_fault_kills_the_device() {
        let sched = FaultSchedule::new(9).with_write_fault_prob(0.5).sticky();
        let mut v = FaultyVfd::with_injector(MemVfd::new(), sched.injector_for("t"));
        let mut first_failure = None;
        for i in 0..64u64 {
            if v.write(i * 4, &[1; 4], RAW).is_err() {
                first_failure = Some(i);
                break;
            }
        }
        let first = first_failure.expect("p=0.5 fails within 64 ops");
        for i in 0..8u64 {
            assert!(
                v.write((first + 1 + i) * 4, &[1; 4], RAW).is_err(),
                "dead after first sticky fault"
            );
        }
        assert!(v.injector().is_dead());
    }

    #[test]
    fn injector_is_shared_across_files() {
        // Two files of one task share the injector: the data-op counter
        // spans both, so a fault at op 3 can fire in the second file.
        let sched = FaultSchedule::new(5).with_transient_at(3);
        let inj = sched.injector_for("t");
        let mut a = FaultyVfd::with_injector(MemVfd::new(), inj.clone());
        let mut b = FaultyVfd::with_injector(MemVfd::new(), inj.clone());
        a.write(0, &[1; 4], RAW).unwrap(); // op 0
        a.write(4, &[1; 4], RAW).unwrap(); // op 1
        b.write(0, &[1; 4], RAW).unwrap(); // op 2
        assert!(b.write(4, &[1; 4], RAW).is_err(), "op 3 faults in file b");
        b.write(4, &[1; 4], RAW).unwrap(); // op 4: transient recovered
        assert_eq!(inj.data_ops(), 5);
        assert_eq!(inj.faults_injected(), 1);
    }

    #[test]
    fn error_message_carries_the_seed() {
        let sched = FaultSchedule::new(0xdead_beef).with_dead_at(0);
        let mut v = FaultyVfd::with_injector(MemVfd::new(), sched.injector_for("mytask"));
        let err = v.write(0, &[1; 4], RAW).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("0x00000000deadbeef"), "{msg}");
        assert!(msg.contains("mytask"), "{msg}");
    }

    #[test]
    fn latency_injection_delays_but_never_fails() {
        let sched = FaultSchedule::new(3).with_latency(1.0, 1);
        let mut v = FaultyVfd::with_injector(MemVfd::new(), sched.injector_for("t"));
        for i in 0..8 {
            v.write(i * 4, &[1; 4], RAW).unwrap();
        }
        assert_eq!(v.faults_injected(), 0);
        assert_eq!(v.eof(), 32);
    }

    #[test]
    fn chaos_rng_is_deterministic_and_not_constant() {
        let mut a = ChaosRng::new(11);
        let mut b = ChaosRng::new(11);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = ChaosRng::new(12);
        for _ in 0..64 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn schedule_noop_detection() {
        assert!(FaultSchedule::new(99).is_noop());
        assert!(!FaultSchedule::new(0).with_fault_prob(0.1).is_noop());
        assert!(!FaultSchedule::new(0).with_dead_at(3).is_noop());
        assert!(!FaultSchedule::new(0).dead_on_arrival().is_noop());
        assert!(!FaultSchedule::new(0).with_transient_at(1).is_noop());
        assert!(!FaultSchedule::new(0).with_latency(0.5, 10).is_noop());
        assert!(FaultSchedule::from_plan(&FaultPlan::none(), 0).is_noop());
        assert_eq!(
            FaultSchedule::from_plan(&FaultPlan::dead_after(4), 0).dead_at_op,
            Some(4)
        );
        assert_eq!(
            FaultSchedule::from_plan(&FaultPlan::transient_at(2), 0).transient_ops,
            vec![2]
        );
    }
}
