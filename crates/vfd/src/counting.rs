//! Op-counting wrapper driver.
//!
//! The paper's layout studies repeatedly compare *operation counts* between
//! layouts ("half the number of POSIX write operations", "reduces I/O
//! operations by 2x"). [`CountingVfd`] provides those counters without the
//! cost or storage of full tracing — also the mechanism behind the
//! "turn off I/O tracing" configuration whose storage overhead is constant.
//!
//! Latency is tracked by **sampling**, not per-op timing: clocking every
//! operation would itself dominate sub-microsecond memory-driver ops and
//! blow the paper's <0.2% profiling-overhead budget. A seeded 1-in-N
//! [`LatencySampler`] decides *before* each op whether it will be timed, so
//! unsampled ops pay only one LCG step and sampled runs are reproducible.

use crate::batch::{BatchCompletion, BatchOp, BatchOpKind};
use crate::{Result, Vfd};
use dayu_trace::vfd::AccessType;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared, thread-safe operation counters.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// Read operations.
    pub reads: AtomicU64,
    /// Write operations.
    pub writes: AtomicU64,
    /// Bytes read.
    pub bytes_read: AtomicU64,
    /// Bytes written.
    pub bytes_written: AtomicU64,
    /// Operations flagged as metadata.
    pub metadata_ops: AtomicU64,
    /// Bytes moved by metadata operations.
    pub metadata_bytes: AtomicU64,
    /// Latency observations taken (sampled ops and batch submissions).
    pub latency_samples: AtomicU64,
    /// Total nanoseconds across those observations.
    pub latency_sampled_ns: AtomicU64,
}

impl OpCounters {
    /// Fresh zeroed counters behind an `Arc` for sharing with the driver.
    pub fn shared() -> Arc<Self> {
        Arc::default()
    }

    /// Total data-moving ops.
    pub fn total_ops(&self) -> u64 {
        self.reads.load(Ordering::Relaxed) + self.writes.load(Ordering::Relaxed)
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed) + self.bytes_written.load(Ordering::Relaxed)
    }

    /// Raw-data (non-metadata) ops.
    pub fn raw_ops(&self) -> u64 {
        self.total_ops() - self.metadata_ops.load(Ordering::Relaxed)
    }

    /// Mean latency over the sampled observations, or `None` if nothing
    /// was sampled.
    pub fn mean_sampled_latency_ns(&self) -> Option<u64> {
        let n = self.latency_samples.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        Some(self.latency_sampled_ns.load(Ordering::Relaxed) / n)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.metadata_ops.store(0, Ordering::Relaxed);
        self.metadata_bytes.store(0, Ordering::Relaxed);
        self.latency_samples.store(0, Ordering::Relaxed);
        self.latency_sampled_ns.store(0, Ordering::Relaxed);
    }

    fn record(&self, kind: BatchOpKind, len: u64, access: AccessType) {
        match kind {
            BatchOpKind::Read => {
                self.reads.fetch_add(1, Ordering::Relaxed);
                self.bytes_read.fetch_add(len, Ordering::Relaxed);
            }
            BatchOpKind::Write => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.bytes_written.fetch_add(len, Ordering::Relaxed);
            }
        }
        if access == AccessType::Metadata {
            self.metadata_ops.fetch_add(1, Ordering::Relaxed);
            self.metadata_bytes.fetch_add(len, Ordering::Relaxed);
        }
    }

    fn record_latency(&self, ns: u64) {
        self.latency_samples.fetch_add(1, Ordering::Relaxed);
        self.latency_sampled_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Seeded 1-in-N sampling decision: a multiplicative LCG keyed by `seed`
/// makes the sampled op set reproducible across runs while staying cheap
/// enough (one multiply-add per op) to leave unsampled ops untimed.
#[derive(Debug)]
pub struct LatencySampler {
    every: u64,
    state: u64,
}

impl LatencySampler {
    /// Samples roughly 1 in `every` ops (`every` clamps to at least 1,
    /// where every op is timed), deterministically from `seed`.
    pub fn new(every: u64, seed: u64) -> Self {
        Self {
            every: every.max(1),
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Decides whether the next op is timed. Called once per op, before it
    /// runs, so the decision cannot depend on the op's own duration.
    pub fn should_sample(&mut self) -> bool {
        // Knuth's MMIX LCG constants; the high bits feed the modulus.
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 33).is_multiple_of(self.every)
    }
}

/// Wrapper driver that counts operations flowing into an inner driver.
pub struct CountingVfd<V> {
    inner: V,
    counters: Arc<OpCounters>,
    sampler: Option<LatencySampler>,
}

impl<V: Vfd> CountingVfd<V> {
    /// Wraps `inner`, accumulating into `counters`. No latency sampling.
    pub fn new(inner: V, counters: Arc<OpCounters>) -> Self {
        Self {
            inner,
            counters,
            sampler: None,
        }
    }

    /// Wraps `inner` with seeded 1-in-`every` latency sampling on top of
    /// the op/byte counters.
    pub fn with_latency_sampling(
        inner: V,
        counters: Arc<OpCounters>,
        every: u64,
        seed: u64,
    ) -> Self {
        Self {
            inner,
            counters,
            sampler: Some(LatencySampler::new(every, seed)),
        }
    }

    /// The shared counters.
    pub fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }

    /// Unwraps the inner driver.
    pub fn into_inner(self) -> V {
        self.inner
    }

    fn timed<T>(&mut self, f: impl FnOnce(&mut V) -> Result<T>) -> Result<T> {
        let timed = match &mut self.sampler {
            Some(s) => s.should_sample(),
            None => false,
        };
        if !timed {
            return f(&mut self.inner);
        }
        let t0 = Instant::now();
        let r = f(&mut self.inner);
        self.counters.record_latency(t0.elapsed().as_nanos() as u64);
        r
    }
}

impl<V: Vfd> Vfd for CountingVfd<V> {
    fn read(&mut self, offset: u64, buf: &mut [u8], access: AccessType) -> Result<()> {
        self.timed(|inner| inner.read(offset, buf, access))?;
        self.counters
            .record(BatchOpKind::Read, buf.len() as u64, access);
        Ok(())
    }

    fn write(&mut self, offset: u64, data: &[u8], access: AccessType) -> Result<()> {
        self.timed(|inner| inner.write(offset, data, access))?;
        self.counters
            .record(BatchOpKind::Write, data.len() as u64, access);
        Ok(())
    }

    fn eof(&self) -> u64 {
        self.inner.eof()
    }

    fn truncate(&mut self, eof: u64) -> Result<()> {
        self.inner.truncate(eof)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }

    /// Forwards the batch to the inner driver (so native dispatch is kept),
    /// then counts one op per completed logical segment — the same totals a
    /// scalar decomposition would have produced. A sampled batch records one
    /// whole-round latency observation.
    fn submit(&mut self, batch: &mut [BatchOp]) -> Vec<BatchCompletion> {
        let timed = match &mut self.sampler {
            Some(s) => s.should_sample(),
            None => false,
        };
        let t0 = timed.then(Instant::now);
        let completions = self.inner.submit(batch);
        if let Some(t0) = t0 {
            self.counters.record_latency(t0.elapsed().as_nanos() as u64);
        }
        for (op, c) in batch.iter().zip(&completions) {
            let done = if c.result.is_ok() {
                op.segments.len()
            } else {
                c.segments_done as usize
            };
            for &seg in op.segments.iter().take(done) {
                self.counters.record(op.kind, seg, op.access);
            }
        }
        completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemVfd;

    #[test]
    fn counts_ops_bytes_and_metadata() {
        let counters = OpCounters::shared();
        let mut v = CountingVfd::new(MemVfd::new(), counters.clone());
        v.write(0, &[0; 64], AccessType::Metadata).unwrap();
        v.write(64, &[0; 256], AccessType::RawData).unwrap();
        let mut buf = [0u8; 64];
        v.read(0, &mut buf, AccessType::Metadata).unwrap();

        assert_eq!(counters.reads.load(Ordering::Relaxed), 1);
        assert_eq!(counters.writes.load(Ordering::Relaxed), 2);
        assert_eq!(counters.total_ops(), 3);
        assert_eq!(counters.total_bytes(), 384);
        assert_eq!(counters.metadata_ops.load(Ordering::Relaxed), 2);
        assert_eq!(counters.metadata_bytes.load(Ordering::Relaxed), 128);
        assert_eq!(counters.raw_ops(), 1);
    }

    #[test]
    fn failed_ops_are_not_counted() {
        let counters = OpCounters::shared();
        let mut v = CountingVfd::new(MemVfd::new(), counters.clone());
        let mut buf = [0u8; 8];
        assert!(v.read(0, &mut buf, AccessType::RawData).is_err());
        assert_eq!(counters.total_ops(), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let counters = OpCounters::shared();
        let mut v = CountingVfd::with_latency_sampling(MemVfd::new(), counters.clone(), 1, 42);
        v.write(0, &[0; 8], AccessType::RawData).unwrap();
        assert!(counters.latency_samples.load(Ordering::Relaxed) > 0);
        counters.reset();
        assert_eq!(counters.total_ops(), 0);
        assert_eq!(counters.total_bytes(), 0);
        assert_eq!(counters.mean_sampled_latency_ns(), None);
    }

    #[test]
    fn passthrough_preserves_contents() {
        let counters = OpCounters::shared();
        let mut v = CountingVfd::new(MemVfd::new(), counters);
        v.write(0, b"xyz", AccessType::RawData).unwrap();
        v.truncate(2).unwrap();
        assert_eq!(v.eof(), 2);
        let inner = v.into_inner();
        assert_eq!(inner.eof(), 2);
    }

    #[test]
    fn sampling_is_one_in_n_and_seeded() {
        let count = |every: u64, seed: u64, ops: usize| {
            let mut s = LatencySampler::new(every, seed);
            (0..ops).filter(|_| s.should_sample()).count()
        };
        // Deterministic for a fixed seed.
        assert_eq!(count(64, 7, 10_000), count(64, 7, 10_000));
        // Roughly 1-in-N: within 3x of the expectation over 10k ops.
        let hits = count(64, 7, 10_000);
        assert!(
            (50..=500).contains(&hits),
            "expected ~156 samples at 1/64 over 10k ops, got {hits}"
        );
        // Different seeds sample different op sets (with overwhelming
        // probability at least one of the first 10k decisions differs).
        let a: Vec<bool> = {
            let mut s = LatencySampler::new(8, 1);
            (0..10_000).map(|_| s.should_sample()).collect()
        };
        let b: Vec<bool> = {
            let mut s = LatencySampler::new(8, 2);
            (0..10_000).map(|_| s.should_sample()).collect()
        };
        assert_ne!(a, b);
        // every == 0 clamps to "sample everything".
        assert_eq!(count(0, 3, 100), 100);
    }

    #[test]
    fn sampled_latency_accumulates() {
        let counters = OpCounters::shared();
        let mut v = CountingVfd::with_latency_sampling(MemVfd::new(), counters.clone(), 2, 11);
        for i in 0..100u64 {
            v.write(i * 8, &[0; 8], AccessType::RawData).unwrap();
        }
        let n = counters.latency_samples.load(Ordering::Relaxed);
        assert!(n > 0, "1-in-2 sampling over 100 ops must fire");
        assert!(n < 100, "not every op should be timed");
        assert!(counters.mean_sampled_latency_ns().is_some());
    }

    #[test]
    fn batch_counts_match_scalar_counts() {
        let scalar = OpCounters::shared();
        let mut s = CountingVfd::new(MemVfd::new(), scalar.clone());
        s.write(0, &[1; 16], AccessType::RawData).unwrap();
        s.write(16, &[2; 16], AccessType::RawData).unwrap();
        let mut buf = [0u8; 32];
        s.read(0, &mut buf, AccessType::RawData).unwrap();

        let batched = OpCounters::shared();
        let mut b = CountingVfd::new(MemVfd::new(), batched.clone());
        let mut w = BatchOp::write(0, 0, vec![1; 16], AccessType::RawData);
        w.append_write_segment(&[2; 16]);
        let done = b.submit(&mut [w]);
        assert!(done[0].result.is_ok());
        let mut r = BatchOp::read(1, 0, 32, AccessType::RawData);
        r.segments = vec![32];
        let done = b.submit(&mut [r]);
        assert!(done[0].result.is_ok());

        assert_eq!(scalar.writes.load(Ordering::Relaxed), 2);
        assert_eq!(
            scalar.writes.load(Ordering::Relaxed),
            batched.writes.load(Ordering::Relaxed),
            "one count per logical segment"
        );
        assert_eq!(scalar.total_bytes(), batched.total_bytes());
    }
}
