//! Op-counting wrapper driver.
//!
//! The paper's layout studies repeatedly compare *operation counts* between
//! layouts ("half the number of POSIX write operations", "reduces I/O
//! operations by 2x"). [`CountingVfd`] provides those counters without the
//! cost or storage of full tracing — also the mechanism behind the
//! "turn off I/O tracing" configuration whose storage overhead is constant.

use crate::{Result, Vfd};
use dayu_trace::vfd::AccessType;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe operation counters.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// Read operations.
    pub reads: AtomicU64,
    /// Write operations.
    pub writes: AtomicU64,
    /// Bytes read.
    pub bytes_read: AtomicU64,
    /// Bytes written.
    pub bytes_written: AtomicU64,
    /// Operations flagged as metadata.
    pub metadata_ops: AtomicU64,
    /// Bytes moved by metadata operations.
    pub metadata_bytes: AtomicU64,
}

impl OpCounters {
    /// Fresh zeroed counters behind an `Arc` for sharing with the driver.
    pub fn shared() -> Arc<Self> {
        Arc::default()
    }

    /// Total data-moving ops.
    pub fn total_ops(&self) -> u64 {
        self.reads.load(Ordering::Relaxed) + self.writes.load(Ordering::Relaxed)
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed) + self.bytes_written.load(Ordering::Relaxed)
    }

    /// Raw-data (non-metadata) ops.
    pub fn raw_ops(&self) -> u64 {
        self.total_ops() - self.metadata_ops.load(Ordering::Relaxed)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.metadata_ops.store(0, Ordering::Relaxed);
        self.metadata_bytes.store(0, Ordering::Relaxed);
    }
}

/// Wrapper driver that counts operations flowing into an inner driver.
pub struct CountingVfd<V> {
    inner: V,
    counters: Arc<OpCounters>,
}

impl<V: Vfd> CountingVfd<V> {
    /// Wraps `inner`, accumulating into `counters`.
    pub fn new(inner: V, counters: Arc<OpCounters>) -> Self {
        Self { inner, counters }
    }

    /// The shared counters.
    pub fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }

    /// Unwraps the inner driver.
    pub fn into_inner(self) -> V {
        self.inner
    }
}

impl<V: Vfd> Vfd for CountingVfd<V> {
    fn read(&mut self, offset: u64, buf: &mut [u8], access: AccessType) -> Result<()> {
        self.inner.read(offset, buf, access)?;
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_read
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        if access == AccessType::Metadata {
            self.counters.metadata_ops.fetch_add(1, Ordering::Relaxed);
            self.counters
                .metadata_bytes
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    fn write(&mut self, offset: u64, data: &[u8], access: AccessType) -> Result<()> {
        self.inner.write(offset, data, access)?;
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        if access == AccessType::Metadata {
            self.counters.metadata_ops.fetch_add(1, Ordering::Relaxed);
            self.counters
                .metadata_bytes
                .fetch_add(data.len() as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    fn eof(&self) -> u64 {
        self.inner.eof()
    }

    fn truncate(&mut self, eof: u64) -> Result<()> {
        self.inner.truncate(eof)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemVfd;

    #[test]
    fn counts_ops_bytes_and_metadata() {
        let counters = OpCounters::shared();
        let mut v = CountingVfd::new(MemVfd::new(), counters.clone());
        v.write(0, &[0; 64], AccessType::Metadata).unwrap();
        v.write(64, &[0; 256], AccessType::RawData).unwrap();
        let mut buf = [0u8; 64];
        v.read(0, &mut buf, AccessType::Metadata).unwrap();

        assert_eq!(counters.reads.load(Ordering::Relaxed), 1);
        assert_eq!(counters.writes.load(Ordering::Relaxed), 2);
        assert_eq!(counters.total_ops(), 3);
        assert_eq!(counters.total_bytes(), 384);
        assert_eq!(counters.metadata_ops.load(Ordering::Relaxed), 2);
        assert_eq!(counters.metadata_bytes.load(Ordering::Relaxed), 128);
        assert_eq!(counters.raw_ops(), 1);
    }

    #[test]
    fn failed_ops_are_not_counted() {
        let counters = OpCounters::shared();
        let mut v = CountingVfd::new(MemVfd::new(), counters.clone());
        let mut buf = [0u8; 8];
        assert!(v.read(0, &mut buf, AccessType::RawData).is_err());
        assert_eq!(counters.total_ops(), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let counters = OpCounters::shared();
        let mut v = CountingVfd::new(MemVfd::new(), counters.clone());
        v.write(0, &[0; 8], AccessType::RawData).unwrap();
        counters.reset();
        assert_eq!(counters.total_ops(), 0);
        assert_eq!(counters.total_bytes(), 0);
    }

    #[test]
    fn passthrough_preserves_contents() {
        let counters = OpCounters::shared();
        let mut v = CountingVfd::new(MemVfd::new(), counters);
        v.write(0, b"xyz", AccessType::RawData).unwrap();
        v.truncate(2).unwrap();
        assert_eq!(v.eof(), 2);
        let inner = v.into_inner();
        assert_eq!(inner.eof(), 2);
    }
}
