//! # dayu-vfd
//!
//! The Virtual File Driver (VFD) layer: every byte the self-describing
//! format library (`dayu-hdf`) reads or writes flows through the [`Vfd`]
//! trait defined here, exactly as HDF5 routes all low-level I/O through its
//! VFD plugin interface. This is the interception point for the paper's
//! low-level profiler: a wrapper driver (in `dayu-mapper`) records each
//! operation together with its file address, size, metadata/raw-data flag
//! and the responsible data object.
//!
//! Drivers provided:
//!
//! * [`MemVfd`] / [`MemFs`] — in-memory files shared across open/close
//!   cycles and across tasks, the substrate for deterministic workflow runs;
//! * [`FileVfd`] — a real `std::fs::File`, for measuring profiler overhead
//!   against an actual filesystem;
//! * [`FaultyVfd`] — fault injection for failure-path tests, driven either
//!   by a single-shot [`FaultPlan`] or by the seeded [`FaultSchedule`]
//!   chaos engine;
//! * [`CrashVfd`] — deterministic process-death simulation (torn writes,
//!   write-back cache loss) for crash-consistency tests;
//! * [`CountingVfd`] — cheap op/byte counters without full tracing.
//!
//! Beyond the scalar calls, [`Vfd::submit`] dispatches whole batches of
//! tagged operations ([`batch`]): native drivers serve a batch in one step,
//! everything else falls back to a scalar decomposition that preserves the
//! per-extent op stream exactly.

pub mod batch;
pub mod counting;
pub mod crash;
pub mod faulty;
pub mod file;
pub mod mem;
pub mod replay;
pub mod retry;

pub use batch::{BatchCompletion, BatchOp, BatchOpKind, IoEngineConfig, IoEngineMode};
pub use counting::{CountingVfd, LatencySampler, OpCounters};
pub use crash::{CrashController, CrashSchedule, CrashVfd};
pub use faulty::{ChaosRng, FaultInjector, FaultPlan, FaultSchedule, FaultyVfd};
pub use file::FileVfd;
pub use mem::{MemFs, MemVfd};
pub use replay::{ReplayDivergence, ReplayEvent, ReplaySession, ReplayValidator, ReplayVfd};
pub use retry::RetryPolicy;

use dayu_trace::vfd::AccessType;
use std::fmt;

/// Errors surfaced by drivers.
#[derive(Debug)]
pub enum VfdError {
    /// Read past the end of file.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Current end of file.
        eof: u64,
    },
    /// An injected or real I/O failure.
    Io(std::io::Error),
    /// Driver was closed and used again.
    Closed,
}

impl fmt::Display for VfdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfdError::OutOfBounds { offset, len, eof } => write!(
                f,
                "read [{offset}, {}) past end of file ({eof})",
                offset + len
            ),
            VfdError::Io(e) => write!(f, "I/O error: {e}"),
            VfdError::Closed => write!(f, "driver already closed"),
        }
    }
}

impl std::error::Error for VfdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VfdError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for VfdError {
    fn from(e: std::io::Error) -> Self {
        VfdError::Io(e)
    }
}

/// Driver result type.
pub type Result<T> = std::result::Result<T, VfdError>;

/// One open file image, addressed by byte offset.
///
/// Each operation carries an [`AccessType`] flag supplied by the format
/// library (which knows whether it is touching format metadata or dataset
/// payload); plain storage drivers ignore it, profiling wrappers record it
/// (Table II parameter 6).
pub trait Vfd: Send {
    /// Reads `buf.len()` bytes starting at `offset`. Reading any byte at or
    /// past end-of-file is an error ([`VfdError::OutOfBounds`]).
    fn read(&mut self, offset: u64, buf: &mut [u8], access: AccessType) -> Result<()>;

    /// Writes `data` at `offset`, extending the file if needed.
    fn write(&mut self, offset: u64, data: &[u8], access: AccessType) -> Result<()>;

    /// Current end-of-file (one past the highest written byte, or as set by
    /// [`Vfd::truncate`]).
    fn eof(&self) -> u64;

    /// Sets the end-of-file, discarding bytes beyond it or extending with
    /// zeros.
    fn truncate(&mut self, eof: u64) -> Result<()>;

    /// Forces buffered bytes down (no-op for memory drivers).
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    /// Releases the file image. Further use is an error. Drivers that share
    /// backing storage (e.g. [`MemVfd`]) persist their contents for the next
    /// open.
    fn close(&mut self) -> Result<()> {
        Ok(())
    }

    /// Submits a batch of operations, returning one completion per attempted
    /// op. The default decomposes each op into per-segment scalar
    /// `read`/`write` calls and fails fast at the first error (see
    /// [`batch::submit_scalar`]); native drivers override this to dispatch
    /// each physical op in one step. Overrides must stay byte- and
    /// stream-equivalent to the fallback.
    fn submit(&mut self, batch: &mut [BatchOp]) -> Vec<BatchCompletion> {
        batch::submit_scalar(self, batch)
    }
}

/// Blanket forwarding so `Box<dyn Vfd>` is itself a `Vfd` (lets wrappers and
/// the format library be generic or boxed interchangeably).
impl Vfd for Box<dyn Vfd> {
    fn read(&mut self, offset: u64, buf: &mut [u8], access: AccessType) -> Result<()> {
        (**self).read(offset, buf, access)
    }
    fn write(&mut self, offset: u64, data: &[u8], access: AccessType) -> Result<()> {
        (**self).write(offset, data, access)
    }
    fn eof(&self) -> u64 {
        (**self).eof()
    }
    fn truncate(&mut self, eof: u64) -> Result<()> {
        (**self).truncate(eof)
    }
    fn flush(&mut self) -> Result<()> {
        (**self).flush()
    }
    fn close(&mut self) -> Result<()> {
        (**self).close()
    }
    // Forwarded explicitly so a native override behind the box is reached
    // (the default body would decompose to scalar calls instead).
    fn submit(&mut self, batch: &mut [BatchOp]) -> Vec<BatchCompletion> {
        (**self).submit(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = VfdError::OutOfBounds {
            offset: 10,
            len: 5,
            eof: 12,
        };
        assert_eq!(e.to_string(), "read [10, 15) past end of file (12)");
        assert_eq!(VfdError::Closed.to_string(), "driver already closed");
        let io: VfdError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }

    #[test]
    fn boxed_vfd_forwards() {
        let mut v: Box<dyn Vfd> = Box::new(MemVfd::new());
        v.write(0, b"abc", AccessType::RawData).unwrap();
        let mut buf = [0u8; 3];
        v.read(0, &mut buf, AccessType::RawData).unwrap();
        assert_eq!(&buf, b"abc");
        assert_eq!(v.eof(), 3);
        v.truncate(1).unwrap();
        assert_eq!(v.eof(), 1);
        v.flush().unwrap();
        v.close().unwrap();
    }
}
