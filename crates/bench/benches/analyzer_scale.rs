//! Criterion check of the paper's Workflow Analyzer performance claim:
//! "less than 15 seconds to analyze a graph with 1k nodes and 6k edges,
//! and less than 2 seconds to construct the corresponding FTG and SDG in
//! HTML format."

use criterion::{criterion_group, criterion_main, Criterion};
use dayu_analyzer::{build_ftg, build_sdg, export, Analysis, SdgOptions};
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::store::TraceBundle;
use dayu_trace::time::Timestamp;
use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};

/// A synthetic bundle yielding ≈1k graph nodes and ≈6k edges: 300 tasks,
/// 300 files, ~400 datasets, each task touching several files/datasets.
fn big_bundle() -> TraceBundle {
    let mut b = TraceBundle::new("scale");
    let mut at = 0u64;
    for t in 0..300u64 {
        b.push_task(TaskKey::new(format!("task_{t:03}")));
        for k in 0..10u64 {
            let file = format!("file_{:03}.h5", (t * 3 + k) % 300);
            let object = format!("/dset_{}", (t + k) % 400);
            at += 100;
            b.vfd.push(VfdRecord {
                task: TaskKey::new(format!("task_{t:03}")),
                file: FileKey::new(&file),
                kind: if k % 3 == 0 {
                    IoKind::Write
                } else {
                    IoKind::Read
                },
                offset: k * 4096,
                len: 4096,
                access: if k % 4 == 0 {
                    AccessType::Metadata
                } else {
                    AccessType::RawData
                },
                object: ObjectKey::new(&object),
                start: Timestamp(at),
                end: Timestamp(at + 50),
            });
        }
    }
    b
}

fn bench_analyzer(c: &mut Criterion) {
    let bundle = big_bundle();
    {
        // Sanity: graph size in the claim's regime.
        let sdg = build_sdg(&bundle, &SdgOptions::default());
        assert!(sdg.nodes.len() >= 900, "nodes: {}", sdg.nodes.len());
        assert!(sdg.edges.len() >= 4000, "edges: {}", sdg.edges.len());
    }

    let mut g = c.benchmark_group("analyzer_scale");
    g.sample_size(10);
    g.bench_function("full_analysis_1k_nodes", |b| {
        b.iter(|| std::hint::black_box(Analysis::run(&bundle)));
    });
    g.bench_function("build_ftg", |b| {
        b.iter(|| std::hint::black_box(build_ftg(&bundle)));
    });
    let sdg = build_sdg(&bundle, &SdgOptions::default());
    g.bench_function("export_html", |b| {
        b.iter(|| std::hint::black_box(export::to_html(&sdg)));
    });
    g.bench_function("export_dot", |b| {
        b.iter(|| std::hint::black_box(export::to_dot(&sdg)));
    });
    g.finish();
}

criterion_group!(benches, bench_analyzer);
criterion_main!(benches);
