//! Criterion microbenchmarks of the format library's core operations:
//! the per-layout write/read costs behind every layout study (Fig. 13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dayu_hdf::{DataType, DatasetBuilder, FileOptions, H5File, LayoutKind};
use dayu_vfd::MemVfd;

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 31 % 251) as u8).collect()
}

fn bench_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataset_write");
    for &size in &[4 << 10, 256 << 10, 4 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        let data = payload(size);
        g.bench_with_input(BenchmarkId::new("contiguous", size), &data, |b, data| {
            b.iter(|| {
                let f = H5File::create(MemVfd::new(), "b.h5", FileOptions::default()).unwrap();
                let mut ds = f
                    .root()
                    .create_dataset(
                        "d",
                        DatasetBuilder::new(DataType::Int { width: 1 }, &[data.len() as u64]),
                    )
                    .unwrap();
                ds.write(data).unwrap();
                ds.close().unwrap();
                f.close().unwrap();
            });
        });
        g.bench_with_input(BenchmarkId::new("chunked", size), &data, |b, data| {
            b.iter(|| {
                let f = H5File::create(MemVfd::new(), "b.h5", FileOptions::default()).unwrap();
                let mut ds = f
                    .root()
                    .create_dataset(
                        "d",
                        DatasetBuilder::new(DataType::Int { width: 1 }, &[data.len() as u64])
                            .chunks(&[(data.len() as u64 / 8).max(1)]),
                    )
                    .unwrap();
                ds.write(data).unwrap();
                ds.close().unwrap();
                f.close().unwrap();
            });
        });
    }
    g.finish();
}

fn bench_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataset_read");
    let size = 1 << 20;
    for layout in [LayoutKind::Contiguous, LayoutKind::Chunked] {
        let f = H5File::create(MemVfd::new(), "r.h5", FileOptions::default()).unwrap();
        let builder = DatasetBuilder::new(DataType::Int { width: 1 }, &[size as u64]);
        let builder = match layout {
            LayoutKind::Chunked => builder.chunks(&[size as u64 / 8]),
            other => builder.layout(other),
        };
        let mut ds = f.root().create_dataset("d", builder).unwrap();
        ds.write(&payload(size)).unwrap();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(BenchmarkId::new(format!("{layout:?}"), size), |b| {
            b.iter(|| std::hint::black_box(ds.read().unwrap()));
        });
        ds.close().unwrap();
        f.close().unwrap();
    }
    g.finish();
}

fn bench_varlen(c: &mut Criterion) {
    let mut g = c.benchmark_group("varlen_write");
    let items: Vec<Vec<u8>> = (0..64).map(|i| payload(512 + i * 7)).collect();
    for layout in [LayoutKind::Contiguous, LayoutKind::Chunked] {
        g.bench_function(format!("{layout:?}"), |b| {
            b.iter(|| {
                let f = H5File::create(MemVfd::new(), "v.h5", FileOptions::default()).unwrap();
                let builder = DatasetBuilder::new(DataType::VarLen, &[64]);
                let builder = match layout {
                    LayoutKind::Chunked => builder.chunks(&[16]),
                    other => builder.layout(other),
                };
                let mut ds = f.root().create_dataset("vl", builder).unwrap();
                for (i, item) in items.iter().enumerate() {
                    ds.write_varlen(i as u64, &[item]).unwrap();
                }
                ds.close().unwrap();
                f.close().unwrap();
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_writes, bench_reads, bench_varlen
}
criterion_main!(benches);
