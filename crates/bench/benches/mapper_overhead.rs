//! Criterion measurement of the Data Semantic Mapper's per-operation cost —
//! the microscopic view behind the Fig. 9 overhead curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dayu_hdf::{DataType, DatasetBuilder, FileOptions, H5File};
use dayu_mapper::{Mapper, MapperConfig};
use dayu_vfd::MemVfd;

const OPS: usize = 64;
const OP_BYTES: usize = 4 << 10;

fn workload(file: H5File) {
    let mut ds = file
        .root()
        .create_dataset(
            "d",
            DatasetBuilder::new(DataType::Int { width: 1 }, &[(OPS * OP_BYTES) as u64]),
        )
        .unwrap();
    let chunk = vec![7u8; OP_BYTES];
    for i in 0..OPS {
        ds.write_slab(
            &dayu_hdf::Selection::slab(&[(i * OP_BYTES) as u64], &[OP_BYTES as u64]),
            &chunk,
        )
        .unwrap();
    }
    for i in 0..OPS {
        ds.read_slab(&dayu_hdf::Selection::slab(
            &[(i * OP_BYTES) as u64],
            &[OP_BYTES as u64],
        ))
        .unwrap();
    }
    ds.close().unwrap();
    file.close().unwrap();
}

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapper_modes");
    g.throughput(Throughput::Elements(2 * OPS as u64));

    g.bench_function(BenchmarkId::new("baseline", "none"), |b| {
        b.iter(|| workload(H5File::create(MemVfd::new(), "m.h5", FileOptions::default()).unwrap()));
    });

    let modes: [(&str, MapperConfig); 3] = [
        (
            "vol_only",
            MapperConfig {
                trace_io: false,
                ..Default::default()
            },
        ),
        (
            "vfd_only",
            MapperConfig {
                trace_vol: false,
                ..Default::default()
            },
        ),
        ("full", MapperConfig::default()),
    ];
    for (name, cfg) in modes {
        g.bench_function(BenchmarkId::new("instrumented", name), |b| {
            b.iter(|| {
                let mapper = Mapper::with_config("bench", cfg.clone());
                mapper.set_task("t");
                let file = H5File::create(
                    mapper.wrap_vfd(MemVfd::new(), "m.h5"),
                    "m.h5",
                    mapper.file_options(),
                )
                .unwrap();
                workload(file);
                std::hint::black_box(mapper.into_bundle());
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_modes
}
criterion_main!(benches);
