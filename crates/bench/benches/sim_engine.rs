//! Criterion throughput of the discrete-event replay engine: the cost of
//! scoring one candidate plan, which bounds how many what-if placements a
//! DaYu user can explore interactively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dayu_sim::cluster::{Cluster, FileLocation, Placement};
use dayu_sim::engine::Engine;
use dayu_sim::program::{SimOp, SimTask};
use dayu_sim::tiers::TierKind;

fn job(tasks: usize, ops_per_task: usize) -> Vec<SimTask> {
    (0..tasks)
        .map(|t| {
            let mut program = Vec::with_capacity(ops_per_task);
            for i in 0..ops_per_task {
                program.push(if i % 2 == 0 {
                    SimOp::read(format!("in_{}.h5", t % 8), 64 << 10)
                } else {
                    SimOp::write(format!("out_{t}.h5"), 64 << 10)
                });
            }
            SimTask {
                name: format!("t{t}"),
                node: t % 4,
                deps: if t >= 8 { vec![t - 8] } else { vec![] },
                program,
            }
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let cluster = Cluster::gpu_cluster(4);
    let mut placement = Placement::new();
    for t in 0..8 {
        placement.place(
            format!("in_{t}.h5"),
            FileLocation::NodeLocal(t % 4, TierKind::NvmeSsd),
        );
    }

    let mut g = c.benchmark_group("des_replay");
    for &(tasks, ops) in &[(16usize, 100usize), (64, 200), (256, 200)] {
        let j = job(tasks, ops);
        g.throughput(Throughput::Elements((tasks * ops) as u64));
        g.bench_with_input(
            BenchmarkId::new("ops", format!("{tasks}x{ops}")),
            &j,
            |b, j| {
                b.iter(|| std::hint::black_box(Engine::new(&cluster, &placement).run(j).unwrap()));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
