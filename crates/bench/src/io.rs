//! I/O engine benchmark: scalar vs batched chunk sweeps (`BENCH_io.json`).
//!
//! The batched engine earns its keep on exactly one access shape — the
//! streaming whole-dataset chunk sweep every workload's produce/consume
//! stages are made of. This bench times that sweep under each engine
//! configuration on both the in-memory and on-disk drivers:
//!
//! * `scalar` — the per-chunk cache path (baseline);
//! * `batched` — submission batching + write coalescing + readahead;
//! * `batched-nc` — batching with coalescing disabled (isolates the
//!   contribution of merging adjacent extents vs batching alone).
//!
//! Every run read-verifies the bytes it wrote, so a configuration that is
//! fast but wrong fails the bench rather than winning it. The `--check`
//! gate enforces that batched+coalesced streaming throughput on the mem
//! driver is at least [`MIN_BATCHED_SPEEDUP`]x the scalar baseline and
//! that no configuration returned corrupt data.

use crate::Scale;
use dayu_hdf::{DataType, DatasetBuilder, FileOptions, H5File};
use dayu_vfd::{FileVfd, IoEngineConfig, MemVfd};
use serde_json::{json, Value};
use std::time::Instant;

/// I/O engine benchmark parameters.
#[derive(Clone, Debug)]
pub struct IoConfig {
    /// Run size.
    pub scale: Scale,
    /// Times each sweep is repeated; the minimum wall time is reported.
    pub repeats: usize,
}

impl IoConfig {
    /// Quick parameters for tests and the CI smoke job.
    pub fn smoke() -> Self {
        Self {
            scale: Scale::Quick,
            repeats: 3,
        }
    }

    /// The tracked full-size run.
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            repeats: 5,
        }
    }

    /// Dataset payload in bytes. Chunks are [`CHUNK_BYTES`]; the cache is
    /// pinned to [`CACHE_BYTES`], so the sweep always overflows it and the
    /// batched fast path engages.
    fn dataset_bytes(&self) -> u64 {
        match self.scale {
            Scale::Quick => 4 << 20,
            Scale::Full => 32 << 20,
        }
    }
}

/// Chunk size of the benched dataset.
pub const CHUNK_BYTES: u64 = 2 << 10;

/// Chunk-cache capacity the dataset is pinned to (512 chunks).
pub const CACHE_BYTES: u64 = 1 << 20;

/// The `--check` gate: minimum streaming-throughput ratio of
/// batched+coalesced over scalar on the mem driver.
pub const MIN_BATCHED_SPEEDUP: f64 = 3.0;

/// One (driver, engine) cell of the matrix.
#[derive(Clone, Debug)]
pub struct IoReportRow {
    /// Driver id: `"mem"` or `"file"`.
    pub driver: String,
    /// Engine id: `"scalar"`, `"batched"` or `"batched-nc"`.
    pub engine: String,
    /// Dataset payload swept, bytes.
    pub bytes: u64,
    /// Full-sweep write wall time, nanoseconds (min over repeats).
    pub write_ns: u64,
    /// Full-sweep read wall time, nanoseconds (min over repeats).
    pub read_ns: u64,
    /// Whether the read-back matched the written bytes on every repeat.
    pub verified: bool,
}

impl IoReportRow {
    /// Write throughput, bytes per second.
    pub fn write_bytes_per_sec(&self) -> f64 {
        throughput(self.bytes, self.write_ns)
    }

    /// Read throughput, bytes per second.
    pub fn read_bytes_per_sec(&self) -> f64 {
        throughput(self.bytes, self.read_ns)
    }

    /// Streaming throughput over the whole write+read sweep.
    pub fn streaming_bytes_per_sec(&self) -> f64 {
        throughput(self.bytes * 2, self.write_ns + self.read_ns)
    }

    fn to_json(&self) -> Value {
        json!({
            "driver": self.driver,
            "engine": self.engine,
            "bytes": self.bytes,
            "write_ns": self.write_ns,
            "read_ns": self.read_ns,
            "write_bytes_per_sec": self.write_bytes_per_sec(),
            "read_bytes_per_sec": self.read_bytes_per_sec(),
            "streaming_bytes_per_sec": self.streaming_bytes_per_sec(),
            "verified": self.verified,
        })
    }
}

fn throughput(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        0.0
    } else {
        bytes as f64 * 1e9 / ns as f64
    }
}

fn min_over<R>(repeats: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    let mut best_ns = u64::MAX;
    let mut best = None;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let r = f();
        let ns = t0.elapsed().as_nanos() as u64;
        if ns < best_ns {
            best_ns = ns;
            best = Some(r);
        }
    }
    (best_ns, best.expect("at least one repeat"))
}

/// The engine matrix every driver runs under.
fn engines() -> Vec<(&'static str, IoEngineConfig)> {
    vec![
        ("scalar", IoEngineConfig::default()),
        ("batched", IoEngineConfig::batched()),
        ("batched-nc", IoEngineConfig::batched().with_coalesce(false)),
    ]
}

fn payload(bytes: u64) -> Vec<u8> {
    (0..bytes).map(|i| (i * 131 % 251) as u8).collect()
}

/// One write-sweep + read-sweep trip through a freshly created file on the
/// given driver. Returns (write_ns, read_ns, verified).
fn sweep<V: dayu_vfd::Vfd + 'static>(
    mk_vfd: &dyn Fn() -> V,
    engine: IoEngineConfig,
    data: &[u8],
    repeats: usize,
) -> (u64, u64, bool) {
    let mut verified = true;
    let total = data.len() as u64;
    let (write_ns, _) = min_over(repeats, || {
        let opts = FileOptions::default().with_io_engine(engine);
        let f = H5File::create(mk_vfd(), "bench.h5", opts).expect("create");
        let mut ds = f
            .root()
            .create_dataset(
                "sweep",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[total])
                    .chunks(&[CHUNK_BYTES])
                    .cache_bytes(CACHE_BYTES),
            )
            .expect("dataset");
        ds.write(data).expect("write sweep");
        ds.close().expect("close dataset");
        f
    });
    // Read sweeps run against one freshly written file; a fresh dataset
    // handle per repeat keeps the chunk cache cold, matching a consumer
    // task opening the producer's output.
    let opts = FileOptions::default().with_io_engine(engine);
    let f = H5File::create(mk_vfd(), "bench.h5", opts).expect("create");
    let mut ds = f
        .root()
        .create_dataset(
            "sweep",
            DatasetBuilder::new(DataType::Int { width: 1 }, &[total])
                .chunks(&[CHUNK_BYTES])
                .cache_bytes(CACHE_BYTES),
        )
        .expect("dataset");
    ds.write(data).expect("write sweep");
    ds.close().expect("close dataset");
    let (read_ns, _) = min_over(repeats, || {
        let mut ds = f.root().open_dataset("sweep").expect("open dataset");
        let back = ds.read().expect("read sweep");
        verified &= back == data;
        ds.close().expect("close dataset");
    });
    (write_ns, read_ns, verified)
}

/// Runs the (driver × engine) matrix and returns one row per cell.
pub fn run(cfg: &IoConfig) -> Vec<IoReportRow> {
    let bytes = cfg.dataset_bytes();
    let data = payload(bytes);
    let mut rows = Vec::new();
    for (engine_name, engine) in engines() {
        let (write_ns, read_ns, verified) = sweep(&MemVfd::new, engine, &data, cfg.repeats);
        rows.push(IoReportRow {
            driver: "mem".into(),
            engine: engine_name.into(),
            bytes,
            write_ns,
            read_ns,
            verified,
        });
    }
    let dir = std::env::temp_dir().join(format!("dayu-bench-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    for (engine_name, engine) in engines() {
        let path = dir.join(format!("{engine_name}.h5"));
        let mk = || FileVfd::create(&path).expect("file vfd");
        let (write_ns, read_ns, verified) = sweep(&mk, engine, &data, cfg.repeats);
        rows.push(IoReportRow {
            driver: "file".into(),
            engine: engine_name.into(),
            bytes,
            write_ns,
            read_ns,
            verified,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

/// Renders the reports as the tracked `BENCH_io.json` document.
pub fn report_json(cfg: &IoConfig, reports: &[IoReportRow]) -> Value {
    json!({
        "bench": "io",
        "mode": match cfg.scale { Scale::Quick => "smoke", Scale::Full => "full" },
        "repeats": cfg.repeats,
        "chunk_bytes": CHUNK_BYTES,
        "cache_bytes": CACHE_BYTES,
        "min_batched_speedup": MIN_BATCHED_SPEEDUP,
        "rows": reports.iter().map(IoReportRow::to_json).collect::<Vec<_>>(),
    })
}

/// Streaming-throughput ratio of `engine` over `"scalar"` on `driver`, if
/// both rows are present.
pub fn speedup(reports: &[IoReportRow], driver: &str, engine: &str) -> Option<f64> {
    let find = |e: &str| reports.iter().find(|r| r.driver == driver && r.engine == e);
    let scalar = find("scalar")?.streaming_bytes_per_sec();
    let batched = find(engine)?.streaming_bytes_per_sec();
    (scalar > 0.0).then(|| batched / scalar)
}

/// The `--check` gate: every row verified its bytes, and batched+coalesced
/// streaming throughput on the mem driver beats scalar by at least
/// [`MIN_BATCHED_SPEEDUP`]x. The file driver is report-only — its cost is
/// dominated by the kernel, not the engine.
pub fn check(reports: &[IoReportRow]) -> Vec<String> {
    let mut failures = Vec::new();
    for r in reports {
        if !r.verified {
            failures.push(format!("{}/{}: read-back mismatch", r.driver, r.engine));
        }
        if r.write_ns == 0 || r.read_ns == 0 {
            failures.push(format!("{}/{}: untimed sweep", r.driver, r.engine));
        }
    }
    match speedup(reports, "mem", "batched") {
        None => failures.push("mem/batched or mem/scalar row missing".into()),
        Some(s) if s < MIN_BATCHED_SPEEDUP => failures.push(format!(
            "mem/batched streaming speedup {s:.2}x under the {MIN_BATCHED_SPEEDUP:.1}x gate"
        )),
        Some(_) => {}
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_verifies_bytes_on_every_cell() {
        // The speedup gate itself only holds under `--release`; the debug
        // test asserts correctness (every engine returns the right bytes)
        // and leaves the perf gate to the CI `io --check` release run.
        let cfg = IoConfig::smoke();
        let rows = run(&cfg);
        assert_eq!(rows.len(), 6, "2 drivers x 3 engines");
        for r in &rows {
            assert!(r.verified, "{}/{} corrupt read-back", r.driver, r.engine);
            assert!(r.bytes > 0 && r.write_ns > 0 && r.read_ns > 0);
        }
    }

    #[test]
    fn report_document_shape() {
        let cfg = IoConfig::smoke();
        let rows = run(&cfg);
        let doc = report_json(&cfg, &rows);
        assert_eq!(doc["bench"], "io");
        assert_eq!(doc["mode"], "smoke");
        let out = doc["rows"].as_array().unwrap();
        assert_eq!(out.len(), 6);
        for r in out {
            assert!(r["verified"].as_bool().unwrap());
            assert!(r["streaming_bytes_per_sec"].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn check_gate_flags_corruption_and_slow_batching() {
        let mk = |driver: &str, engine: &str, ns: u64| IoReportRow {
            driver: driver.into(),
            engine: engine.into(),
            bytes: 1 << 20,
            write_ns: ns,
            read_ns: ns,
            verified: true,
        };
        let ok = vec![
            mk("mem", "scalar", 8_000_000),
            mk("mem", "batched", 1_000_000),
        ];
        assert!(check(&ok).is_empty());
        let slow = vec![
            mk("mem", "scalar", 1_000_000),
            mk("mem", "batched", 900_000),
        ];
        let failures = check(&slow);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("gate"));
        let mut corrupt = ok;
        corrupt[1].verified = false;
        assert!(check(&corrupt)
            .iter()
            .any(|f| f.contains("read-back mismatch")));
    }
}
