//! Ablation studies for the design decisions DESIGN.md calls out.
//!
//! * **Context channel** — DaYu attributes each low-level operation to a
//!   data object through the shared VOL→VFD context. Severing the channel
//!   (the VFD profiler reads a context the VOL layer never writes) shows
//!   what is lost: raw-data operations collapse onto the `File-Metadata`
//!   pseudo-object and the SDG's dataset layer goes dark — no per-dataset
//!   I/O behaviour, no Fig. 7 pop-up, no unused-dataset detection.
//! * **Replay vs coarse model** — DaYu's optimization scoring replays the
//!   *exact* traced op stream. A coarse volume-only model (total bytes ÷
//!   bandwidth, one op) cannot distinguish a scattered small-dataset layout
//!   from a consolidated one, because their byte totals are nearly equal;
//!   only per-op replay exposes the metadata-latency gap Fig. 13a measures.

use crate::fig13::{replay_processes, stage9_consolidated, stage9_scattered};
use crate::{FigResult, Scale};
use dayu_hdf::{DataType, DatasetBuilder, H5File};
use dayu_mapper::Mapper;
use dayu_sim::cluster::{Cluster, FileLocation, Placement};
use dayu_sim::program::SimOp;
use dayu_sim::tiers::{TierKind, TierModel};
use dayu_trace::ids::ObjectKey;
use dayu_vfd::MemFs;

/// Runs a small workload with the VOL→VFD channel connected or severed,
/// returning `(attributed_raw_ops, total_raw_ops, sdg_dataset_nodes)`.
pub fn attribution_with_channel(connected: bool) -> (usize, usize, usize) {
    let fs = MemFs::new();
    // The VFD profiler always belongs to `vfd_mapper`. When `connected`,
    // the format library publishes objects into the same mapper's context;
    // when severed, it publishes into a different session's context that
    // the profiler never sees.
    let vfd_mapper = Mapper::new("ablation");
    vfd_mapper.set_task("t");
    let vol_mapper = Mapper::new("ablation-vol");
    vol_mapper.set_task("t");
    let opts = if connected {
        vfd_mapper.file_options()
    } else {
        vol_mapper.file_options()
    };
    let file =
        H5File::create(vfd_mapper.wrap_vfd(fs.create("a.h5"), "a.h5"), "a.h5", opts).unwrap();
    for d in 0..8 {
        let mut ds = file
            .root()
            .create_dataset(
                &format!("dset_{d}"),
                DatasetBuilder::new(DataType::Int { width: 1 }, &[4096]).chunks(&[1024]),
            )
            .unwrap();
        ds.write(&vec![d as u8; 4096]).unwrap();
        ds.close().unwrap();
    }
    file.close().unwrap();

    let bundle = vfd_mapper.into_bundle();
    let raw: Vec<_> = bundle
        .vfd
        .iter()
        .filter(|r| r.kind.moves_data() && r.access == dayu_trace::vfd::AccessType::RawData)
        .collect();
    let attributed = raw
        .iter()
        .filter(|r| r.object != ObjectKey::file_metadata())
        .count();
    let sdg = dayu_analyzer::build_sdg(&bundle, &dayu_analyzer::SdgOptions::default());
    let dataset_nodes = sdg
        .nodes_of(dayu_analyzer::NodeKind::Dataset)
        .filter(|n| !n.label.ends_with(":File-Metadata"))
        .count();
    (attributed, raw.len(), dataset_nodes)
}

/// Coarse volume-only time estimate: all bytes as one streaming transfer.
pub fn coarse_model_ns(program: &[SimOp], tier: &TierModel) -> u64 {
    let bytes: u64 = program.iter().map(SimOp::bytes).sum();
    tier.op_cost_ns(true, bytes, false, 1)
}

/// Regenerates the ablation table.
pub fn run(_scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "ablation",
        "Design ablations: context channel attribution; replay vs coarse cost model",
        &["study", "variant", "metric", "value"],
    );

    // --- Study 1: the VOL→VFD channel.
    for (connected, label) in [(true, "channel connected"), (false, "channel severed")] {
        let (attributed, total, ds_nodes) = attribution_with_channel(connected);
        fig.row(vec![
            "attribution".into(),
            label.into(),
            "raw ops attributed to datasets".into(),
            format!("{attributed}/{total}"),
        ]);
        fig.row(vec![
            "attribution".into(),
            label.into(),
            "SDG dataset nodes".into(),
            ds_nodes.to_string(),
        ]);
    }

    // --- Study 2: replay vs coarse model on the Fig. 13a pair.
    let scattered = stage9_scattered(32, 2 << 10, 5);
    let consolidated = stage9_consolidated(32, 2 << 10, 5);
    let cluster = Cluster::cpu_cluster(1);
    let mut placement = Placement::new();
    placement.place(
        "speed_stats.h5",
        FileLocation::NodeLocal(0, TierKind::NvmeSsd),
    );
    let tier = TierModel::preset(TierKind::NvmeSsd);
    let replay_s = replay_processes(&scattered, 1, &cluster, &placement, true);
    let replay_c = replay_processes(&consolidated, 1, &cluster, &placement, true);
    let coarse_s = coarse_model_ns(&scattered, &tier);
    let coarse_c = coarse_model_ns(&consolidated, &tier);
    for (variant, replay, coarse) in [
        ("scattered", replay_s, coarse_s),
        ("consolidated", replay_c, coarse_c),
    ] {
        fig.row(vec![
            "cost model".into(),
            variant.into(),
            "replayed / coarse (ms)".into(),
            format!("{:.3} / {:.3}", replay as f64 / 1e6, coarse as f64 / 1e6),
        ]);
    }
    fig.note(format!(
        "replay separates the layouts by {:.2}x; the coarse model by only {:.2}x — \
         per-op structure, not byte volume, carries the bottleneck",
        replay_s as f64 / replay_c as f64,
        coarse_s as f64 / coarse_c as f64
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_is_what_attributes_ops() {
        let (attributed, total, ds_nodes) = attribution_with_channel(true);
        assert_eq!(attributed, total, "all raw ops attributed with the channel");
        assert_eq!(ds_nodes, 8);

        let (attributed, total, ds_nodes) = attribution_with_channel(false);
        assert_eq!(attributed, 0, "no attribution without the channel");
        assert!(total > 0);
        assert_eq!(ds_nodes, 0, "the SDG's dataset layer goes dark");
    }

    #[test]
    fn coarse_model_hides_the_layout_gap() {
        let scattered = stage9_scattered(16, 1 << 10, 4);
        let consolidated = stage9_consolidated(16, 1 << 10, 4);
        let cluster = Cluster::cpu_cluster(1);
        let mut placement = Placement::new();
        placement.place(
            "speed_stats.h5",
            FileLocation::NodeLocal(0, TierKind::NvmeSsd),
        );
        let tier = TierModel::preset(TierKind::NvmeSsd);
        let replay_gap = replay_processes(&scattered, 1, &cluster, &placement, true) as f64
            / replay_processes(&consolidated, 1, &cluster, &placement, true) as f64;
        let coarse_gap = coarse_model_ns(&scattered, &tier) as f64
            / coarse_model_ns(&consolidated, &tier) as f64;
        assert!(
            replay_gap > coarse_gap * 1.3,
            "replay {replay_gap:.2}x vs coarse {coarse_gap:.2}x"
        );
        assert!(
            coarse_gap < 1.5,
            "byte totals are near-equal: {coarse_gap:.2}x"
        );
    }

    #[test]
    fn figure_renders() {
        let fig = run(Scale::Quick);
        assert!(fig.rows.len() >= 6);
        assert!(fig.render().contains("channel severed"));
    }
}
