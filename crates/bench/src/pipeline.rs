//! End-to-end pipeline benchmark: **record → save → load → analyze**.
//!
//! The other benches time one subsystem each; this one walks a trace through
//! the whole life cycle the way a real deployment does, in both persistence
//! formats, and emits a machine-readable `BENCH_pipeline.json` that the CI
//! perf job tracks over time. Workloads:
//!
//! * **corner-case ×N** — the many-small-datasets worst case of Fig. 9c/d,
//!   scaled up by a read multiplier so the VFD trace dominates;
//! * **ddmd** — the DeepDriveMD pipeline recorded through the workflow
//!   runner, a VOL-heavy trace with many tasks and files.
//!
//! For every workload the report carries record throughput (ops/sec), and
//! per-format save time, load time, size and bytes/record, plus the
//! JSONL/binary ratios the `--check` gate enforces (binary must not be
//! larger or slower than JSONL).

use crate::Scale;
use dayu_analyzer::{build_ftg_with, build_sdg_with, Analysis, SdgOptions};
use dayu_trace::{TraceBundle, TraceFormat};
use dayu_vfd::MemFs;
use dayu_workflow::record;
use dayu_workloads::ddmd::{self, DdmdConfig};
use dayu_workloads::{corner_case, Backend, Instrumentation};
use serde_json::{json, Value};
use std::time::Instant;

/// Pipeline benchmark parameters.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Run size.
    pub scale: Scale,
    /// Corner-case read multiplier (the ×N of the issue): `dataset_reads`
    /// is `base × n` so the VFD record count grows linearly.
    pub corner_multiplier: usize,
}

impl PipelineConfig {
    /// Quick parameters for tests and the CI smoke job.
    pub fn smoke() -> Self {
        Self {
            scale: Scale::Quick,
            corner_multiplier: 2,
        }
    }

    /// The tracked full-size run.
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            corner_multiplier: 8,
        }
    }
}

/// Timings for one persistence format over one workload's bundle.
#[derive(Clone, Copy, Debug)]
pub struct FormatTimings {
    /// Serialize into an in-memory buffer, nanoseconds.
    pub save_ns: u64,
    /// Deserialize back from that buffer, nanoseconds.
    pub load_ns: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
}

impl FormatTimings {
    fn measure(bundle: &TraceBundle, format: TraceFormat) -> (Self, TraceBundle) {
        let mut buf = Vec::with_capacity(1 << 20);
        let t0 = Instant::now();
        bundle.save(&mut buf, format).expect("save");
        let save_ns = t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        let reloaded = TraceBundle::load(&buf[..]).expect("load");
        let load_ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(
            &reloaded, bundle,
            "{format:?} round-trip must be lossless before it is worth timing"
        );
        (
            Self {
                save_ns,
                load_ns,
                bytes: buf.len() as u64,
            },
            reloaded,
        )
    }

    /// Save + load wall time, nanoseconds.
    pub fn round_trip_ns(&self) -> u64 {
        self.save_ns + self.load_ns
    }

    fn to_json(self, records: u64) -> Value {
        json!({
            "save_ns": self.save_ns,
            "load_ns": self.load_ns,
            "bytes": self.bytes,
            "bytes_per_record": if records == 0 { 0.0 } else { self.bytes as f64 / records as f64 },
        })
    }
}

/// One workload's trip through the pipeline.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Workload id, e.g. `"corner_case_x8"`.
    pub name: String,
    /// Total trace records (VFD + VOL + file).
    pub records: u64,
    /// Wall time of the record phase, nanoseconds.
    pub record_ns: u64,
    /// JSONL persistence timings.
    pub jsonl: FormatTimings,
    /// Binary (`.dtb`) persistence timings.
    pub binary: FormatTimings,
    /// Serial FTG build, nanoseconds.
    pub ftg_serial_ns: u64,
    /// Parallel FTG build, nanoseconds.
    pub ftg_parallel_ns: u64,
    /// Parallel SDG build (with regions), nanoseconds.
    pub sdg_ns: u64,
    /// Full `Analysis::run` (graphs + detectors), nanoseconds.
    pub analysis_ns: u64,
}

impl WorkloadReport {
    fn from_bundle(name: String, bundle: TraceBundle, record_ns: u64) -> Self {
        let records = (bundle.vfd.len() + bundle.vol.len() + bundle.files.len()) as u64;
        let (jsonl, _) = FormatTimings::measure(&bundle, TraceFormat::Jsonl);
        let (binary, reloaded) = FormatTimings::measure(&bundle, TraceFormat::Binary);

        // Analyze the *reloaded* bundle: that is what a consumer holds.
        let t0 = Instant::now();
        let ftg_a = build_ftg_with(&reloaded, false);
        let ftg_serial_ns = t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        let ftg_b = build_ftg_with(&reloaded, true);
        let ftg_parallel_ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(ftg_a, ftg_b, "parallel FTG must match serial");
        let opts = SdgOptions {
            include_regions: true,
            region_count: 4,
        };
        let t0 = Instant::now();
        let _sdg = build_sdg_with(&reloaded, &opts, true);
        let sdg_ns = t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        let _analysis = Analysis::run(&reloaded);
        let analysis_ns = t0.elapsed().as_nanos() as u64;

        Self {
            name,
            records,
            record_ns,
            jsonl,
            binary,
            ftg_serial_ns,
            ftg_parallel_ns,
            sdg_ns,
            analysis_ns,
        }
    }

    /// Trace records produced per second of record-phase wall time.
    pub fn record_ops_per_sec(&self) -> f64 {
        if self.record_ns == 0 {
            0.0
        } else {
            self.records as f64 * 1e9 / self.record_ns as f64
        }
    }

    /// JSONL size divided by binary size (≥ 1 means binary is smaller).
    pub fn size_ratio(&self) -> f64 {
        if self.binary.bytes == 0 {
            0.0
        } else {
            self.jsonl.bytes as f64 / self.binary.bytes as f64
        }
    }

    /// JSONL save+load divided by binary save+load (≥ 1 means binary is
    /// faster).
    pub fn round_trip_ratio(&self) -> f64 {
        let b = self.binary.round_trip_ns();
        if b == 0 {
            0.0
        } else {
            self.jsonl.round_trip_ns() as f64 / b as f64
        }
    }

    fn to_json(&self) -> Value {
        json!({
            "name": self.name,
            "records": self.records,
            "record": {
                "wall_ns": self.record_ns,
                "ops_per_sec": self.record_ops_per_sec(),
            },
            "formats": {
                "jsonl": self.jsonl.to_json(self.records),
                "binary": self.binary.to_json(self.records),
            },
            "ratios": {
                "size_jsonl_over_binary": self.size_ratio(),
                "round_trip_jsonl_over_binary": self.round_trip_ratio(),
            },
            "analyze": {
                "ftg_serial_ns": self.ftg_serial_ns,
                "ftg_parallel_ns": self.ftg_parallel_ns,
                "sdg_ns": self.sdg_ns,
                "analysis_ns": self.analysis_ns,
            },
        })
    }
}

fn corner_case_bundle(cfg: &PipelineConfig) -> (String, TraceBundle, u64) {
    let (base, name) = match cfg.scale {
        Scale::Quick => (
            corner_case::CornerCaseConfig {
                datasets: 20,
                file_bytes: 64 << 10,
                dataset_reads: 100,
            },
            format!("corner_case_x{}", cfg.corner_multiplier),
        ),
        Scale::Full => (
            corner_case::CornerCaseConfig::default(),
            format!("corner_case_x{}", cfg.corner_multiplier),
        ),
    };
    let scaled = corner_case::CornerCaseConfig {
        dataset_reads: base.dataset_reads * cfg.corner_multiplier,
        ..base
    };
    let run = corner_case::run(&scaled, Backend::mem(), Instrumentation::Full).expect("workload");
    let bundle = run.bundle.expect("instrumented run carries a bundle");
    (name, bundle, run.wall_ns)
}

fn ddmd_bundle(cfg: &PipelineConfig) -> (String, TraceBundle, u64) {
    let dcfg = match cfg.scale {
        Scale::Quick => DdmdConfig {
            sim_tasks: 4,
            epochs: 3,
            reread_epochs: vec![3],
            ..Default::default()
        },
        Scale::Full => DdmdConfig {
            iterations: 3,
            ..Default::default()
        },
    };
    let fs = MemFs::new();
    let t0 = Instant::now();
    let run = record(&ddmd::workflow(&dcfg), &fs).expect("record ddmd");
    let record_ns = t0.elapsed().as_nanos() as u64;
    ("ddmd".to_string(), run.bundle, record_ns)
}

/// Runs the full pipeline benchmark and returns per-workload reports.
pub fn run(cfg: &PipelineConfig) -> Vec<WorkloadReport> {
    let mut out = Vec::new();
    for (name, bundle, record_ns) in [corner_case_bundle(cfg), ddmd_bundle(cfg)] {
        out.push(WorkloadReport::from_bundle(name, bundle, record_ns));
    }
    out
}

/// Renders the reports as the tracked `BENCH_pipeline.json` document.
pub fn report_json(cfg: &PipelineConfig, reports: &[WorkloadReport]) -> Value {
    json!({
        "bench": "pipeline",
        "mode": match cfg.scale { Scale::Quick => "smoke", Scale::Full => "full" },
        "corner_multiplier": cfg.corner_multiplier,
        "workloads": reports.iter().map(WorkloadReport::to_json).collect::<Vec<_>>(),
    })
}

/// The `--check` gate: binary must round-trip no slower than JSONL and
/// encode no larger, for every workload. Returns the failures.
pub fn check(reports: &[WorkloadReport]) -> Vec<String> {
    let mut failures = Vec::new();
    for r in reports {
        if r.binary.bytes > r.jsonl.bytes {
            failures.push(format!(
                "{}: binary is larger than JSONL ({} > {} bytes)",
                r.name, r.binary.bytes, r.jsonl.bytes
            ));
        }
        if r.binary.round_trip_ns() > r.jsonl.round_trip_ns() {
            failures.push(format!(
                "{}: binary save+load slower than JSONL ({} ns > {} ns)",
                r.name,
                r.binary.round_trip_ns(),
                r.jsonl.round_trip_ns()
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_both_workloads() {
        let cfg = PipelineConfig::smoke();
        let reports = run(&cfg);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.records > 0, "{} recorded nothing", r.name);
            assert!(r.jsonl.bytes > 0 && r.binary.bytes > 0);
            assert!(
                r.binary.bytes < r.jsonl.bytes,
                "{}: binary {} vs jsonl {}",
                r.name,
                r.binary.bytes,
                r.jsonl.bytes
            );
        }
    }

    #[test]
    fn report_document_shape() {
        let cfg = PipelineConfig::smoke();
        let reports = run(&cfg);
        let doc = report_json(&cfg, &reports);
        assert_eq!(doc["bench"], "pipeline");
        assert_eq!(doc["mode"], "smoke");
        let ws = doc["workloads"].as_array().unwrap();
        assert_eq!(ws.len(), 2);
        for w in ws {
            assert!(w["formats"]["jsonl"]["bytes_per_record"].as_f64().unwrap() > 0.0);
            assert!(w["formats"]["binary"]["save_ns"].as_u64().is_some());
            assert!(w["ratios"]["size_jsonl_over_binary"].as_f64().unwrap() > 1.0);
            assert!(w["analyze"]["ftg_parallel_ns"].as_u64().is_some());
        }
    }

    #[test]
    fn check_gate_accepts_smoke_sizes_and_flags_regressions() {
        let cfg = PipelineConfig::smoke();
        let reports = run(&cfg);
        // Size must always pass; timing can jitter at smoke scale, so only
        // assert the failure *messages* are well-formed when present.
        for f in check(&reports) {
            assert!(f.contains("slower"), "unexpected failure: {f}");
        }
        let mut broken = reports[0].clone();
        broken.binary.bytes = broken.jsonl.bytes + 1;
        assert_eq!(check(&[broken]).len(), 1);
    }
}
