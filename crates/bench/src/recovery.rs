//! Crash-consistency benchmark: **journal overhead + recovery sweep**.
//!
//! Two questions the durability contract must answer with numbers:
//!
//! 1. *What does the journal cost on the write path?* The same workload
//!    (N contiguous datasets, one flush per dataset so every commit is an
//!    epoch) runs under [`Durability::WriteThrough`] and
//!    [`Durability::Journal`]; min-of-reps wall times give the overhead
//!    ratio the CI gate holds at ≤ 10% (`--check`, full mode).
//! 2. *Does recovery actually work, and how fast?* A seeded torn-write
//!    crash sweep kills the journaled workload at every crash point in a
//!    window, then times [`recover_bytes`] over each torn image and
//!    verifies the invariant behind the crash-matrix test: every
//!    recovered image is fsck-clean and every committed dataset
//!    round-trips.
//!
//! Emits the tracked `BENCH_recovery.json`.

use crate::Scale;
use dayu_hdf::journal::recover_bytes;
use dayu_hdf::meta::SUPERBLOCK_SIZE;
use dayu_hdf::{AccessType, DataType, DatasetBuilder, Durability, FileOptions, H5File, Result};
use dayu_lint::fsck_bytes;
use dayu_vfd::{CrashSchedule, CrashVfd, MemFs, Vfd};
use serde_json::{json, Value};
use std::time::Instant;

/// Shape of the write workload and crash sweep.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryBenchConfig {
    /// Run size.
    pub scale: Scale,
    /// Datasets written (one epoch each: flush after every dataset).
    pub datasets: usize,
    /// Payload bytes per dataset.
    pub dataset_bytes: usize,
    /// Timed repetitions per durability mode (min wins).
    pub reps: usize,
    /// Crash points swept (write-op indices `1..=crash_points`).
    pub crash_points: u64,
    /// Seed for the torn-write prefixes.
    pub seed: u64,
}

impl RecoveryBenchConfig {
    /// Quick parameters for tests and the CI smoke job.
    pub fn smoke() -> Self {
        Self {
            scale: Scale::Quick,
            datasets: 16,
            dataset_bytes: 64 * 1024,
            reps: 5,
            crash_points: 24,
            seed: 0x05ee_dda1,
        }
    }

    /// The tracked run: enough volume that the overhead ratio is stable.
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            datasets: 256,
            dataset_bytes: 64 * 1024,
            reps: 7,
            crash_points: 96,
            seed: 0x05ee_dda1,
        }
    }
}

/// The deterministic payload of dataset `i` (8-byte words).
fn pattern(i: usize, words: usize) -> Vec<u64> {
    (0..words as u64).map(|w| ((i as u64) << 32) | w).collect()
}

/// Writes the workload through `vfd`: `datasets` contiguous u64 datasets,
/// flushing after each so every dataset is its own commit epoch. Each raw
/// extent is written exactly once, so a crash in any later epoch cannot
/// tear previously committed data (the metadata-only journal's contract).
fn write_workload<V: Vfd + 'static>(
    vfd: V,
    durability: Durability,
    cfg: &RecoveryBenchConfig,
) -> Result<()> {
    let f = H5File::create(
        vfd,
        "bench.h5",
        FileOptions::default().with_durability(durability),
    )?;
    let words = cfg.dataset_bytes / 8;
    for i in 0..cfg.datasets {
        let mut ds = f.root().create_dataset(
            &format!("d{i:04}"),
            DatasetBuilder::new(DataType::Int { width: 8 }, &[words as u64]),
        )?;
        ds.write_u64s(&pattern(i, words))?;
        ds.close()?;
        f.flush()?;
    }
    f.close()
}

/// Min-of-reps wall time of the workload under `durability`, nanoseconds.
fn time_workload(durability: Durability, cfg: &RecoveryBenchConfig) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..cfg.reps.max(1) {
        let fs = MemFs::new();
        let t0 = Instant::now();
        write_workload(fs.create("bench.h5"), durability, cfg).expect("workload");
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

/// Outcome of one crash point in the sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PointOutcome {
    /// Recovery produced an fsck-clean image and every committed dataset
    /// round-tripped.
    Recovered,
    /// The crash predates the first durable superblock (torn bootstrap):
    /// there is no committed state to recover, by design.
    Bootstrap,
    /// The workload outran the sweep window (no crash fired).
    NotReached,
}

/// One measured run: overhead ratio plus the crash sweep.
#[derive(Clone, Debug)]
pub struct RecoveryReportDoc {
    /// Baseline (write-through) wall time, nanoseconds.
    pub write_through_ns: u64,
    /// Journaled wall time, nanoseconds.
    pub journal_ns: u64,
    /// Crash points that recovered to a clean, verified image.
    pub recovered_points: u64,
    /// Crash points that tore the pre-commit bootstrap (no durable state).
    pub bootstrap_points: u64,
    /// Crash points the workload finished before reaching.
    pub unreached_points: u64,
    /// Worst-case single-image recovery time, nanoseconds.
    pub max_recover_ns: u64,
    /// Journal frames replayed across the sweep.
    pub replayed_frames: u64,
    /// Verification failures (must be zero).
    pub failures: Vec<String>,
}

impl RecoveryReportDoc {
    /// Journaled wall time over the write-through baseline.
    pub fn time_ratio(&self) -> f64 {
        self.journal_ns as f64 / self.write_through_ns.max(1) as f64
    }

    fn to_json(&self) -> Value {
        json!({
            "write_through_ns": self.write_through_ns,
            "journal_ns": self.journal_ns,
            "time_ratio": self.time_ratio(),
            "sweep": {
                "recovered_points": self.recovered_points,
                "bootstrap_points": self.bootstrap_points,
                "unreached_points": self.unreached_points,
                "max_recover_ns": self.max_recover_ns,
                "replayed_frames": self.replayed_frames,
            },
            "failures": self.failures,
        })
    }
}

/// Crashes the journaled workload at `crash_at`, recovers the torn image,
/// and verifies the invariant. Returns the outcome plus recovery stats.
fn sweep_point(
    cfg: &RecoveryBenchConfig,
    crash_at: u64,
    failures: &mut Vec<String>,
) -> (PointOutcome, u64, u64) {
    let fs = MemFs::new();
    let ctrl = CrashSchedule::new(cfg.seed)
        .with_crash_at(crash_at)
        .torn()
        .controller_for("bench");
    let vfd = CrashVfd::with_controller(fs.create("bench.h5"), ctrl);
    let outcome = write_workload(vfd, Durability::Journal, cfg);
    if outcome.is_ok() {
        return (PointOutcome::NotReached, 0, 0);
    }
    let mut image = fs.snapshot("bench.h5").unwrap_or_default();
    if (image.len() as u64) < SUPERBLOCK_SIZE {
        return (PointOutcome::Bootstrap, 0, 0);
    }
    let t0 = Instant::now();
    let recovered = recover_bytes(&mut image);
    let recover_ns = t0.elapsed().as_nanos() as u64;
    let report = match recovered {
        Ok((report, _)) => report,
        // Only the torn gen-1 bootstrap superblock is unrecoverable.
        Err(_) => return (PointOutcome::Bootstrap, recover_ns, 0),
    };
    if !fsck_bytes(&image).is_clean() {
        failures.push(format!(
            "crash point {crash_at}: recovered image not fsck-clean"
        ));
    }
    verify_committed(&image, cfg, crash_at, failures);
    (
        PointOutcome::Recovered,
        recover_ns,
        report.replayed_frames as u64,
    )
}

/// Reopens a recovered image and checks every dataset present round-trips
/// its full committed payload (commits are all-or-nothing: a dataset that
/// survives recovery must be complete).
fn verify_committed(
    image: &[u8],
    cfg: &RecoveryBenchConfig,
    crash_at: u64,
    failures: &mut Vec<String>,
) {
    let fs = MemFs::new();
    {
        let mut v = fs.create("r.h5");
        v.write(0, image, AccessType::RawData).expect("stage image");
    }
    let f = match H5File::open(fs.open("r.h5"), "r.h5", FileOptions::default()) {
        Ok(f) => f,
        Err(e) => {
            failures.push(format!(
                "crash point {crash_at}: recovered image does not open: {e}"
            ));
            return;
        }
    };
    let words = cfg.dataset_bytes / 8;
    for (name, _) in f.root().list().unwrap_or_default() {
        let Some(i) = name.strip_prefix('d').and_then(|s| s.parse::<usize>().ok()) else {
            continue;
        };
        match f.root().open_dataset(&name).and_then(|mut d| d.read_u64s()) {
            Ok(data) if data == pattern(i, words) => {}
            Ok(_) => failures.push(format!(
                "crash point {crash_at}: committed dataset {name} corrupt after recovery"
            )),
            Err(e) => failures.push(format!(
                "crash point {crash_at}: committed dataset {name} unreadable: {e}"
            )),
        }
    }
    let _ = f.close();
}

/// Times both durability modes and runs the crash sweep.
pub fn run(cfg: &RecoveryBenchConfig) -> RecoveryReportDoc {
    let write_through_ns = time_workload(Durability::WriteThrough, cfg);
    let journal_ns = time_workload(Durability::Journal, cfg);

    let mut failures = Vec::new();
    let (mut recovered, mut bootstrap, mut unreached) = (0u64, 0u64, 0u64);
    let (mut max_recover_ns, mut replayed_frames) = (0u64, 0u64);
    for crash_at in 1..=cfg.crash_points {
        let (outcome, ns, frames) = sweep_point(cfg, crash_at, &mut failures);
        match outcome {
            PointOutcome::Recovered => recovered += 1,
            PointOutcome::Bootstrap => bootstrap += 1,
            PointOutcome::NotReached => unreached += 1,
        }
        max_recover_ns = max_recover_ns.max(ns);
        replayed_frames += frames;
    }
    RecoveryReportDoc {
        write_through_ns,
        journal_ns,
        recovered_points: recovered,
        bootstrap_points: bootstrap,
        unreached_points: unreached,
        max_recover_ns,
        replayed_frames,
        failures,
    }
}

/// Renders the tracked `BENCH_recovery.json` document.
pub fn report_json(cfg: &RecoveryBenchConfig, report: &RecoveryReportDoc) -> Value {
    json!({
        "bench": "recovery",
        "mode": match cfg.scale { Scale::Quick => "smoke", Scale::Full => "full" },
        "shape": {
            "datasets": cfg.datasets,
            "dataset_bytes": cfg.dataset_bytes,
            "reps": cfg.reps,
            "crash_points": cfg.crash_points,
            "seed": cfg.seed,
        },
        "recovery": report.to_json(),
    })
}

/// The `--check` gate: the sweep must be correct at every scale, and the
/// full-size run holds the journal-overhead budget (≤ 10% write-path
/// slowdown vs the no-journal baseline; smoke volumes are too small for a
/// stable ratio, so the budget gates full mode only).
pub fn check(cfg: &RecoveryBenchConfig, report: &RecoveryReportDoc) -> Vec<String> {
    let mut failures = report.failures.clone();
    if report.recovered_points == 0 {
        failures.push("crash sweep never exercised recovery".to_owned());
    }
    if matches!(cfg.scale, Scale::Full) && report.time_ratio() > 1.10 {
        failures.push(format!(
            "journal overhead {:.1}% exceeds the 10% budget",
            (report.time_ratio() - 1.0) * 100.0
        ));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_recovers_and_verifies() {
        let cfg = RecoveryBenchConfig::smoke();
        let r = run(&cfg);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert!(r.recovered_points > 0, "sweep must hit recovery: {r:?}");
        assert_eq!(
            r.recovered_points + r.bootstrap_points + r.unreached_points,
            cfg.crash_points
        );
        assert!(r.write_through_ns > 0 && r.journal_ns > 0);
    }

    #[test]
    fn report_document_shape() {
        let cfg = RecoveryBenchConfig::smoke();
        let r = run(&cfg);
        let doc = report_json(&cfg, &r);
        assert_eq!(doc["bench"], "recovery");
        assert_eq!(doc["mode"], "smoke");
        assert!(doc["recovery"]["time_ratio"].as_f64().unwrap() > 0.0);
        assert!(
            doc["recovery"]["sweep"]["recovered_points"]
                .as_u64()
                .unwrap()
                > 0
        );
        assert_eq!(doc["recovery"]["failures"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn check_gates_only_what_it_should() {
        let cfg = RecoveryBenchConfig::smoke();
        let good = RecoveryReportDoc {
            write_through_ns: 100,
            journal_ns: 300, // 3x — ignored at smoke scale
            recovered_points: 4,
            bootstrap_points: 1,
            unreached_points: 0,
            max_recover_ns: 10,
            replayed_frames: 12,
            failures: Vec::new(),
        };
        assert!(check(&cfg, &good).is_empty());

        let full = RecoveryBenchConfig::full();
        let slow = RecoveryReportDoc {
            journal_ns: 150,
            ..good.clone()
        };
        assert!(check(&full, &slow).iter().any(|f| f.contains("10% budget")));

        let never = RecoveryReportDoc {
            recovered_points: 0,
            journal_ns: 105,
            ..good
        };
        assert!(check(&full, &never)
            .iter()
            .any(|f| f.contains("never exercised")));
    }
}
