//! Tables I–III.
//!
//! Tables I and II define *what the profilers capture*; the regenerators
//! demonstrate each parameter live by profiling a tiny run and printing
//! one captured record per schema row. Table III lists the machine
//! configurations; the regenerator prints the calibrated simulator models
//! standing in for that hardware.

use crate::{FigResult, Scale};
use dayu_hdf::{DataType, DatasetBuilder};
use dayu_mapper::Mapper;
use dayu_sim::tiers::{TierKind, TierModel};
use dayu_trace::store::TraceBundle;
use dayu_vfd::MemFs;
use dayu_workflow::TaskIo;

fn sample_bundle() -> TraceBundle {
    let fs = MemFs::new();
    let mapper = Mapper::new("tables");
    mapper.set_task("sample_task");
    let io = TaskIo::new(&fs, &mapper);
    let f = io.create("sample.h5").unwrap();
    let mut ds = f
        .root()
        .create_dataset(
            "dset",
            DatasetBuilder::new(DataType::Float { width: 8 }, &[16, 4]).chunks(&[4, 4]),
        )
        .unwrap();
    ds.write_f64s(&vec![0.5; 64]).unwrap();
    ds.close().unwrap();
    f.close().unwrap();
    mapper.into_bundle()
}

/// Table I: the six VOL object-level parameters, shown from a live record.
pub fn table1(_scale: Scale) -> FigResult {
    let b = sample_bundle();
    let rec = b
        .vol
        .iter()
        .find(|r| r.object.as_str() == "/dset")
        .expect("dataset record");
    let mut fig = FigResult::new(
        "table1",
        "VOL Profiler Object-Level Semantics (Table I), captured live",
        &["#", "parameter", "captured value"],
    );
    fig.row(vec!["1".into(), "Task Name".into(), rec.task.to_string()]);
    fig.row(vec!["2".into(), "File Name".into(), rec.file.to_string()]);
    fig.row(vec![
        "3".into(),
        "Object Name".into(),
        rec.object.to_string(),
    ]);
    fig.row(vec![
        "4".into(),
        "Object Lifetime".into(),
        format!(
            "{} interval(s), first [{} ns, {} ns]",
            rec.lifetimes.len(),
            rec.lifetimes[0].start.nanos(),
            rec.lifetimes[0].end.nanos()
        ),
    ]);
    fig.row(vec![
        "5".into(),
        "Object Description".into(),
        format!(
            "shape {:?}, dtype {:?}, layout {:?}, chunks {:?}, {} bytes",
            rec.description.shape,
            rec.description.dtype,
            rec.description.layout,
            rec.description.chunk_shape,
            rec.description.logical_size
        ),
    ]);
    fig.row(vec![
        "6".into(),
        "Object Access".into(),
        format!(
            "{} write(s) of {} bytes, {} read(s)",
            rec.access_count(dayu_trace::vol::VolAccessKind::Write),
            rec.bytes_written(),
            rec.access_count(dayu_trace::vol::VolAccessKind::Read)
        ),
    ]);
    fig
}

/// Table II: the seven VFD file-level parameters, shown from live records.
pub fn table2(_scale: Scale) -> FigResult {
    let b = sample_bundle();
    let file_rec = &b.files[0];
    let op = b
        .vfd
        .iter()
        .find(|r| r.kind.moves_data() && r.object.as_str() == "/dset")
        .expect("attributed op");
    let mut fig = FigResult::new(
        "table2",
        "VFD Profiler File-Level Semantics (Table II), captured live",
        &["#", "parameter", "captured value"],
    );
    fig.row(vec!["1".into(), "Task Name".into(), op.task.to_string()]);
    fig.row(vec!["2".into(), "File Name".into(), op.file.to_string()]);
    fig.row(vec![
        "3".into(),
        "File Lifetime".into(),
        format!(
            "[{} ns, {} ns]",
            file_rec.lifetimes[0].start.nanos(),
            file_rec.lifetimes[0].end.nanos()
        ),
    ]);
    fig.row(vec![
        "4".into(),
        "File Statistics".into(),
        format!(
            "{} reads / {} writes, {} bytes, {:.0}% sequential, {} metadata ops",
            file_rec.stats.read_ops,
            file_rec.stats.write_ops,
            file_rec.stats.total_bytes(),
            file_rec.stats.sequential_fraction() * 100.0,
            file_rec.stats.metadata_ops
        ),
    ]);
    fig.row(vec![
        "5".into(),
        "I/O Operations".into(),
        format!(
            "{} traced ops; e.g. {:?} {} bytes at address {}",
            b.vfd.len(),
            op.kind,
            op.len,
            op.offset
        ),
    ]);
    fig.row(vec![
        "6".into(),
        "Access Type".into(),
        format!("{:?} (metadata ops also present)", op.access),
    ]);
    fig.row(vec![
        "7".into(),
        "Data Object".into(),
        op.object.to_string(),
    ]);
    fig
}

/// Table III: the machine configurations as calibrated simulator models.
pub fn table3(_scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "table3",
        "Machine configurations (Table III) as calibrated tier models",
        &[
            "machine",
            "tier",
            "latency_us",
            "read_GBps",
            "write_GBps",
            "metadata_us",
            "contention",
        ],
    );
    let rows: [(&str, TierKind); 7] = [
        ("CPU cluster (default)", TierKind::Nfs),
        ("CPU cluster (node)", TierKind::NvmeSsd),
        ("CPU cluster (node)", TierKind::SataSsd),
        ("CPU cluster (node)", TierKind::Hdd),
        ("GPU cluster (default)", TierKind::Beegfs),
        ("GPU cluster (node)", TierKind::NvmeSsd),
        ("both (staging)", TierKind::Ram),
    ];
    for (machine, kind) in rows {
        let m = TierModel::preset(kind);
        fig.row(vec![
            machine.to_owned(),
            format!("{kind:?}"),
            format!("{:.1}", m.latency_ns as f64 / 1e3),
            format!("{:.2}", m.read_bw / 1e9),
            format!("{:.2}", m.write_bw / 1e9),
            format!("{:.1}", m.metadata_latency_ns as f64 / 1e3),
            format!("{:.2}", m.contention),
        ]);
    }
    fig.note("stands in for: 2x Xeon Silver 4114 + NFS/NVMe/SATA/HDD; 2x EPYC + RTX 2080 Ti + BeeGFS/SSD");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_six_parameters() {
        let t = table1(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[0][2], "sample_task");
        assert!(t.rows[4][2].contains("Chunked"));
        assert!(t.rows[5][2].contains("write"));
    }

    #[test]
    fn table2_covers_all_seven_parameters() {
        let t = table2(Scale::Quick);
        assert_eq!(t.rows.len(), 7);
        assert_eq!(t.rows[6][2], "/dset", "ops attributed to the dataset");
        assert!(t.rows[3][2].contains("metadata ops"));
    }

    #[test]
    fn table3_lists_all_tiers() {
        let t = table3(Scale::Quick);
        assert_eq!(t.rows.len(), 7);
        assert!(t.render().contains("Beegfs"));
    }
}
