//! # dayu-bench
//!
//! The benchmark harness: one regenerator per table and figure of the
//! paper's evaluation (Sections VI and VII), callable from the `figures`
//! binary (`cargo run -p dayu-bench --bin figures -- all`) and exercised in
//! shape-asserting tests.
//!
//! | Module | Regenerates |
//! |--------|-------------|
//! | [`tables`] | Tables I, II (captured semantics) and III (machine models) |
//! | [`fig01`]  | Fig. 1 — fragmentation / VL address scatter |
//! | [`fig_graphs`] | Figs. 3–8 — FTG/SDG artifacts for the three workflows |
//! | [`fig09`]  | Fig. 9a–d — mapper time and storage overhead |
//! | [`fig10`]  | Fig. 10a/b — component breakdown |
//! | [`fig11`]  | Fig. 11 — PyFLEXTRKR stages 3–5 placement optimization |
//! | [`fig12`]  | Fig. 12 — DDMD pipeline optimization over iterations |
//! | [`fig13`]  | Fig. 13a–c — data layout optimizations |
//! | [`ablation`] | design ablations (context channel, replay vs coarse model) |
//! | [`pipeline`] | tracked record → save → load → analyze benchmark (`BENCH_pipeline.json`) |
//! | [`lint`] | tracked detector-throughput benchmark (`BENCH_lint.json`) |
//! | [`recovery`] | tracked journal-overhead + crash-recovery benchmark (`BENCH_recovery.json`) |
//! | [`replay`] | tracked bundle pack/unpack + validated-replay-overhead benchmark (`BENCH_replay.json`) |
//! | [`io`] | tracked scalar-vs-batched I/O engine benchmark (`BENCH_io.json`) |
//! | [`serve`] | tracked streaming-ingest throughput + robustness benchmark (`BENCH_serve.json`) |
//!
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! not the authors' testbed); regenerators aim to reproduce the *shape*:
//! who wins, by roughly what factor, and where the crossovers fall.

pub mod ablation;
pub mod fig01;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig_graphs;
pub mod io;
pub mod lint;
pub mod pipeline;
pub mod recovery;
pub mod replay;
pub mod serve;
pub mod tables;

/// How big to run a regenerator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale parameters for tests and quick looks.
    Quick,
    /// Larger parameters for the recorded EXPERIMENTS.md runs (still
    /// laptop-scale; the paper's absolute sizes are scaled down ~100x).
    Full,
}

/// One regenerated figure/table: a titled data table plus commentary.
#[derive(Clone, Debug)]
pub struct FigResult {
    /// Identifier, e.g. `"fig9a"`.
    pub id: String,
    /// What the paper's artifact shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Shape statements: the qualitative claims the paper makes, evaluated
    /// against this run ("chunked wins by 1.8x", …).
    pub notes: Vec<String>,
}

impl FigResult {
    /// A new empty result.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
        self
    }

    /// Appends a shape note.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let hdr: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", hdr.join(" | "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "  {}", rule.join("-+-"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", cells.join(" | "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  * {n}");
        }
        out
    }
}

/// Formats nanoseconds as engineering-friendly milliseconds.
pub fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Formats a fraction as a percentage.
pub fn pct(f: f64) -> String {
    format!("{:.3}%", f * 100.0)
}

/// Formats a speedup factor.
pub fn speedup(baseline: u64, optimized: u64) -> String {
    if optimized == 0 {
        return "inf".into();
    }
    format!("{:.2}x", baseline as f64 / optimized as f64)
}

/// Speedup as a float.
pub fn speedup_f(baseline: u64, optimized: u64) -> f64 {
    baseline as f64 / optimized.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut f = FigResult::new("figX", "demo", &["a", "long_column"]);
        f.row(vec!["1".into(), "2".into()]);
        f.row(vec!["wide cell".into(), "3".into()]);
        f.note("a note");
        let r = f.render();
        assert!(r.contains("== figX — demo"));
        assert!(r.contains("a         | long_column"));
        assert!(r.contains("* a note"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(1_500_000), "1.500");
        assert_eq!(pct(0.0425), "4.250%");
        assert_eq!(speedup(300, 100), "3.00x");
        assert_eq!(speedup(300, 0), "inf");
        assert!((speedup_f(300, 100) - 3.0).abs() < 1e-12);
    }
}
