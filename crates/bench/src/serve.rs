//! Tracked streaming-ingest benchmark (`BENCH_serve.json`).
//!
//! Drives the in-process [`dayu_served::Served`] service with N tenants
//! submitting interleaved per-task trace sections, a configurable fraction
//! of them deliberately corrupted, and measures sustained ingest
//! throughput (records/second) plus the robustness invariants the serve
//! gate checks in CI:
//!
//! * zero panics (the run finishing *is* the assertion — corrupt frames
//!   are fed straight through the ingest path),
//! * every planted corrupt section quarantined, none absorbed,
//! * every healthy tenant's live graph identical to the batch
//!   `analyzer::build` of its sections.
//!
//! The report serializes to JSON by hand — no serde dependency — so the
//! binary runs in minimal environments.

use dayu_analyzer::build_ftg;
use dayu_served::{Budgets, IngestStatus, Served};
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::time::Timestamp;
use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
use dayu_trace::TraceBundle;
use std::time::Instant;

/// Workload shape for one benchmark run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Concurrent tenants (workflows).
    pub tenants: usize,
    /// Tasks per tenant; each task flushes one section.
    pub tasks_per_tenant: usize,
    /// VFD records per section.
    pub records_per_section: usize,
    /// Corrupt one in this many sections (0 = none).
    pub corrupt_every: usize,
}

impl ServeConfig {
    /// CI-sized run: small but past every code path, including >5%
    /// corruption.
    pub fn smoke() -> Self {
        Self {
            tenants: 16,
            tasks_per_tenant: 8,
            records_per_section: 64,
            corrupt_every: 10,
        }
    }

    /// The tracked full-size run.
    pub fn full() -> Self {
        Self {
            tenants: 32,
            tasks_per_tenant: 24,
            records_per_section: 512,
            corrupt_every: 10,
        }
    }
}

/// Results of one run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Sections submitted (including corrupt ones).
    pub sections_sent: usize,
    /// Sections the service absorbed.
    pub accepted: usize,
    /// Corrupt sections planted.
    pub corrupt_sent: usize,
    /// Sections the service quarantined.
    pub quarantined: usize,
    /// Data records absorbed.
    pub records: usize,
    /// Wall time of the ingest phase, nanoseconds.
    pub ingest_ns: u64,
    /// Wall time of the final snapshot phase, nanoseconds.
    pub snapshot_ns: u64,
    /// Tenants whose final live graph matched the batch build exactly.
    pub graphs_identical: usize,
    /// Tenants driven in the run.
    pub tenants: usize,
}

impl ServeReport {
    /// Sustained ingest throughput in records/second.
    pub fn records_per_sec(&self) -> f64 {
        if self.ingest_ns == 0 {
            return 0.0;
        }
        self.records as f64 / (self.ingest_ns as f64 / 1e9)
    }
}

/// One tenant's synthetic workload: a producer/consumer chain over a
/// shared file, one task per section.
fn tenant_bundle(tenant: usize, cfg: &ServeConfig) -> TraceBundle {
    let workflow = format!("wf-{tenant:03}");
    let mut b = TraceBundle::new(&workflow);
    for t in 0..cfg.tasks_per_tenant {
        b.push_task(TaskKey::new(format!("task-{t:03}")));
    }
    let file = FileKey::new(format!("{workflow}.h5"));
    let mut at = 0u64;
    for t in 0..cfg.tasks_per_tenant {
        let task = TaskKey::new(format!("task-{t:03}"));
        for r in 0..cfg.records_per_section {
            let write = t == 0 || r % 3 != 0;
            b.vfd.push(VfdRecord {
                task: task.clone(),
                file: file.clone(),
                object: ObjectKey::new(format!("/d{:02}", r % 8)),
                kind: if write { IoKind::Write } else { IoKind::Read },
                offset: (r as u64) * 4096,
                len: 4096,
                access: if r % 7 == 0 {
                    AccessType::Metadata
                } else {
                    AccessType::RawData
                },
                start: Timestamp(at),
                end: Timestamp(at + 100),
            });
            at += 150;
        }
    }
    b
}

/// Deterministically corrupts a section: truncation or a byte flip,
/// alternating, so both quarantine paths stay exercised.
fn corrupt(mut bytes: Vec<u8>, salt: usize) -> Vec<u8> {
    if salt.is_multiple_of(2) {
        bytes.truncate(bytes.len() / 2);
    } else {
        let pos = 8 + (salt * 2654435761) % (bytes.len() - 8);
        bytes[pos] ^= 0xA5;
    }
    bytes
}

/// Runs the benchmark.
pub fn run(cfg: &ServeConfig) -> ServeReport {
    let served = Served::new(Budgets::unlimited());
    let bundles: Vec<TraceBundle> = (0..cfg.tenants).map(|i| tenant_bundle(i, cfg)).collect();
    let sections: Vec<Vec<Vec<u8>>> = bundles
        .iter()
        .map(|b| {
            b.split_per_task()
                .iter()
                .map(TraceBundle::to_binary_bytes)
                .collect()
        })
        .collect();

    let mut sections_sent = 0usize;
    let mut corrupt_sent = 0usize;
    let mut accepted = 0usize;
    let mut quarantined = 0usize;
    let mut records = 0usize;
    let ingest_start = Instant::now();
    // Interleave across tenants: section s of every tenant, then s+1.
    for s in 0..cfg.tasks_per_tenant {
        for (tenant, tenant_sections) in sections.iter().enumerate() {
            let workflow = format!("wf-{tenant:03}");
            let clean = &tenant_sections[s];
            sections_sent += 1;
            let seq = s * cfg.tenants + tenant;
            let payload = if cfg.corrupt_every > 0 && seq % cfg.corrupt_every == 1 {
                corrupt_sent += 1;
                corrupt(clean.clone(), seq)
            } else {
                clean.clone()
            };
            let digest = dayu_trace::sha256(&payload);
            match served.ingest(&workflow, &payload, Some(digest)) {
                IngestStatus::Accepted {
                    records: r,
                    duplicate: false,
                } => {
                    accepted += 1;
                    records += r;
                }
                IngestStatus::Quarantined(_) => quarantined += 1,
                _ => {}
            }
        }
    }
    let ingest_ns = ingest_start.elapsed().as_nanos() as u64;

    // A corrupted section *may* still decode (a flipped bit inside a
    // payload byte can survive structurally); what must never happen is a
    // clean section failing or a truncation being absorbed. Compare every
    // tenant's live graph against the batch build of exactly the sections
    // the service accepted.
    let snapshot_start = Instant::now();
    let mut graphs_identical = 0usize;
    for tenant in 0..cfg.tenants {
        let workflow = format!("wf-{tenant:03}");
        let reference = served
            .bundle(&workflow)
            .map(|merged| build_ftg(&merged))
            .expect("tenant resident");
        let live = served.snapshot_ftg(&workflow).expect("tenant resident");
        if live.nodes == reference.nodes && live.edges == reference.edges {
            graphs_identical += 1;
        }
    }
    let snapshot_ns = snapshot_start.elapsed().as_nanos() as u64;

    ServeReport {
        sections_sent,
        accepted,
        corrupt_sent,
        quarantined,
        records,
        ingest_ns,
        snapshot_ns,
        graphs_identical,
        tenants: cfg.tenants,
    }
}

/// The serve-gate invariants; empty = pass.
pub fn check(cfg: &ServeConfig, report: &ServeReport) -> Vec<String> {
    let mut failures = Vec::new();
    let clean = report.sections_sent - report.corrupt_sent;
    if report.accepted < clean {
        failures.push(format!(
            "only {}/{clean} clean sections accepted",
            report.accepted
        ));
    }
    // Truncations always quarantine; byte flips may decode structurally.
    // At least the truncated half of the planted corruptions must be
    // caught, and nothing may be quarantined spuriously.
    if report.quarantined + report.accepted != report.sections_sent {
        failures.push(format!(
            "{} sections unaccounted for (sent {}, accepted {}, quarantined {})",
            report.sections_sent - report.accepted - report.quarantined,
            report.sections_sent,
            report.accepted,
            report.quarantined
        ));
    }
    if report.quarantined < report.corrupt_sent.div_ceil(2) {
        failures.push(format!(
            "only {}/{} corrupt sections quarantined",
            report.quarantined, report.corrupt_sent
        ));
    }
    if report.graphs_identical != report.tenants {
        failures.push(format!(
            "only {}/{} tenant graphs identical to the batch build",
            report.graphs_identical, report.tenants
        ));
    }
    if cfg.corrupt_every > 0 && report.corrupt_sent * 20 < report.sections_sent {
        failures.push(format!(
            "corruption rate under 5% ({}/{})",
            report.corrupt_sent, report.sections_sent
        ));
    }
    if report.records_per_sec() < 10_000.0 {
        failures.push(format!(
            "sustained ingest {:.0} records/s under the 10k floor",
            report.records_per_sec()
        ));
    }
    failures
}

/// Renders the tracked JSON document (by hand; no serde).
pub fn report_json(cfg: &ServeConfig, report: &ServeReport) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"tenants\": {},\n",
            "  \"tasks_per_tenant\": {},\n",
            "  \"records_per_section\": {},\n",
            "  \"corrupt_every\": {},\n",
            "  \"sections_sent\": {},\n",
            "  \"accepted\": {},\n",
            "  \"corrupt_sent\": {},\n",
            "  \"quarantined\": {},\n",
            "  \"records\": {},\n",
            "  \"ingest_ns\": {},\n",
            "  \"snapshot_ns\": {},\n",
            "  \"records_per_sec\": {:.1},\n",
            "  \"graphs_identical\": {},\n",
            "  \"graphs_total\": {}\n",
            "}}\n"
        ),
        cfg.tenants,
        cfg.tasks_per_tenant,
        cfg.records_per_section,
        cfg.corrupt_every,
        report.sections_sent,
        report.accepted,
        report.corrupt_sent,
        report.quarantined,
        report.records,
        report.ingest_ns,
        report.snapshot_ns,
        report.records_per_sec(),
        report.graphs_identical,
        report.tenants,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_passes_the_gate() {
        let cfg = ServeConfig {
            tenants: 4,
            tasks_per_tenant: 4,
            records_per_section: 16,
            corrupt_every: 5,
        };
        let report = run(&cfg);
        assert_eq!(report.sections_sent, 16);
        assert!(report.corrupt_sent >= 3);
        let failures: Vec<String> = check(&cfg, &report)
            .into_iter()
            .filter(|f| !f.contains("records/s"))
            .collect();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn json_report_is_well_formed() {
        let cfg = ServeConfig {
            tenants: 2,
            tasks_per_tenant: 2,
            records_per_section: 4,
            corrupt_every: 0,
        };
        let report = run(&cfg);
        let json = report_json(&cfg, &report);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"bench\": \"serve\""));
        assert!(json.contains("\"records_per_sec\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
