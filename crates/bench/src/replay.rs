//! Replay-bundle benchmark: **record → pack → verify → unpack → replay**.
//!
//! The replay engine earns its keep only if cross-checking a run costs
//! little more than recording it: a failed CI job re-runs under validation
//! by default, so the overhead must stay in the noise. This bench times,
//! per workload:
//!
//! * plain recording (the baseline everything is measured against);
//! * packing the run into a `.drb` artifact, and the artifact's size;
//! * hash-chain verification and full unpacking of that artifact;
//! * a validated replay ([`replay_bundle`]) of the bundle.
//!
//! The `--check` gate enforces that every replay validates with zero
//! divergences and that validated replay costs at most **25%** more wall
//! time than plain recording. Each phase is run [`ReplayConfig::repeats`]
//! times and the *minimum* is kept, so scheduler noise does not fail CI.

use crate::Scale;
use dayu_vfd::MemFs;
use dayu_workflow::{record_opts, record_to_bundle, replay_bundle, RecordOptions, ReplayBundle};
use dayu_workloads::arldm::{self, ArldmConfig};
use dayu_workloads::ddmd::{self, DdmdConfig};
use serde_json::{json, Value};
use std::time::Instant;

/// Replay benchmark parameters.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Run size.
    pub scale: Scale,
    /// Times each phase is repeated; the minimum wall time is reported.
    pub repeats: usize,
}

impl ReplayConfig {
    /// Quick parameters for tests and the CI smoke job.
    pub fn smoke() -> Self {
        Self {
            scale: Scale::Quick,
            repeats: 3,
        }
    }

    /// The tracked full-size run.
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            repeats: 5,
        }
    }
}

/// The replay-overhead budget the `--check` gate enforces.
pub const MAX_REPLAY_OVERHEAD: f64 = 0.25;

/// One workload's trip through record → pack → verify → unpack → replay.
#[derive(Clone, Debug)]
pub struct ReplayReportRow {
    /// Workload id, e.g. `"ddmd"`.
    pub name: String,
    /// VFD records in the recorded trace (the op stream the replay checks).
    pub vfd_records: u64,
    /// Plain record wall time, nanoseconds (min over repeats).
    pub record_ns: u64,
    /// Validated replay wall time, nanoseconds (min over repeats).
    pub replay_ns: u64,
    /// `.drb` artifact size in bytes.
    pub bundle_bytes: u64,
    /// Pack (serialize + hash) wall time, nanoseconds (min over repeats).
    pub pack_ns: u64,
    /// Hash-chain verification wall time, nanoseconds (min over repeats).
    pub verify_ns: u64,
    /// Full unpack (parse + decode) wall time, nanoseconds (min over repeats).
    pub unpack_ns: u64,
    /// Whether every replay validated with zero divergences.
    pub validated: bool,
}

impl ReplayReportRow {
    /// Fractional extra wall time of a validated replay over a plain
    /// record: `0.0` means free, `0.25` means a quarter slower.
    pub fn replay_overhead(&self) -> f64 {
        if self.record_ns == 0 {
            return 0.0;
        }
        (self.replay_ns as f64 - self.record_ns as f64).max(0.0) / self.record_ns as f64
    }

    /// Pack throughput, bytes per second.
    pub fn pack_bytes_per_sec(&self) -> f64 {
        throughput(self.bundle_bytes, self.pack_ns)
    }

    /// Unpack throughput, bytes per second.
    pub fn unpack_bytes_per_sec(&self) -> f64 {
        throughput(self.bundle_bytes, self.unpack_ns)
    }

    fn to_json(&self) -> Value {
        json!({
            "name": self.name,
            "vfd_records": self.vfd_records,
            "record_ns": self.record_ns,
            "replay_ns": self.replay_ns,
            "replay_overhead": self.replay_overhead(),
            "validated": self.validated,
            "bundle": {
                "bytes": self.bundle_bytes,
                "pack_ns": self.pack_ns,
                "pack_bytes_per_sec": self.pack_bytes_per_sec(),
                "verify_ns": self.verify_ns,
                "unpack_ns": self.unpack_ns,
                "unpack_bytes_per_sec": self.unpack_bytes_per_sec(),
            },
        })
    }
}

fn throughput(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        0.0
    } else {
        bytes as f64 * 1e9 / ns as f64
    }
}

fn min_over<R>(repeats: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    let mut best_ns = u64::MAX;
    let mut best = None;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let r = f();
        let ns = t0.elapsed().as_nanos() as u64;
        if ns < best_ns {
            best_ns = ns;
            best = Some(r);
        }
    }
    (best_ns, best.expect("at least one repeat"))
}

fn workloads(cfg: &ReplayConfig) -> Vec<(String, dayu_workflow::WorkflowSpec)> {
    let dcfg = match cfg.scale {
        Scale::Quick => DdmdConfig {
            sim_tasks: 4,
            epochs: 3,
            reread_epochs: vec![3],
            ..Default::default()
        },
        Scale::Full => DdmdConfig {
            iterations: 3,
            ..Default::default()
        },
    };
    let acfg = match cfg.scale {
        Scale::Quick => ArldmConfig {
            stories: 16,
            mean_image_bytes: 4 << 10,
            mean_text_bytes: 256,
            chunk_elems: 8,
            batch: 4,
            ..Default::default()
        },
        Scale::Full => ArldmConfig::default(),
    };
    vec![
        ("ddmd".to_string(), ddmd::workflow(&dcfg)),
        ("arldm".to_string(), arldm::workflow(&acfg)),
    ]
}

fn bench_workload(
    name: String,
    spec: &dayu_workflow::WorkflowSpec,
    cfg: &ReplayConfig,
) -> ReplayReportRow {
    let opts = RecordOptions::default();

    // Baseline: plain recording, no bundle, no validator.
    let (record_ns, _) = min_over(cfg.repeats, || {
        let fs = MemFs::new();
        record_opts(spec, &fs, &opts).expect("plain record")
    });

    // The bundle everything downstream consumes.
    let fs = MemFs::new();
    let (run, bundle) =
        record_to_bundle(spec, &fs, &opts, "bench", "dayu-bench", false).expect("record to bundle");
    let vfd_records = run.bundle.vfd.len() as u64;

    let (pack_ns, bytes) = min_over(cfg.repeats, || bundle.to_bytes());
    let bundle_bytes = bytes.len() as u64;
    let (verify_ns, _) = min_over(cfg.repeats, || {
        ReplayBundle::verify_bytes(&bytes).expect("fresh bundle verifies")
    });
    let (unpack_ns, unpacked) = min_over(cfg.repeats, || {
        ReplayBundle::from_bytes(&bytes).expect("fresh bundle parses")
    });

    // Validated replay: re-execute under the cross-checking driver stack.
    let mut validated = true;
    let (replay_ns, _) = min_over(cfg.repeats, || {
        let fs = MemFs::new();
        let report = replay_bundle(&unpacked, spec, &fs).expect("replay");
        validated &= report.op_checked && report.validated();
        report
    });

    ReplayReportRow {
        name,
        vfd_records,
        record_ns,
        replay_ns,
        bundle_bytes,
        pack_ns,
        verify_ns,
        unpack_ns,
        validated,
    }
}

/// Runs the replay benchmark and returns per-workload reports.
pub fn run(cfg: &ReplayConfig) -> Vec<ReplayReportRow> {
    workloads(cfg)
        .into_iter()
        .map(|(name, spec)| bench_workload(name, &spec, cfg))
        .collect()
}

/// Renders the reports as the tracked `BENCH_replay.json` document.
pub fn report_json(cfg: &ReplayConfig, reports: &[ReplayReportRow]) -> Value {
    json!({
        "bench": "replay",
        "mode": match cfg.scale { Scale::Quick => "smoke", Scale::Full => "full" },
        "repeats": cfg.repeats,
        "max_replay_overhead": MAX_REPLAY_OVERHEAD,
        "workloads": reports.iter().map(ReplayReportRow::to_json).collect::<Vec<_>>(),
    })
}

/// The `--check` gate: every replay must validate with zero divergences
/// and cost at most [`MAX_REPLAY_OVERHEAD`] more than a plain record.
/// Returns the failures.
pub fn check(reports: &[ReplayReportRow]) -> Vec<String> {
    let mut failures = Vec::new();
    for r in reports {
        if !r.validated {
            failures.push(format!("{}: replay did not validate", r.name));
        }
        if r.replay_overhead() > MAX_REPLAY_OVERHEAD {
            failures.push(format!(
                "{}: validated replay costs {:.1}% over plain record (budget {:.0}%)",
                r.name,
                r.replay_overhead() * 100.0,
                MAX_REPLAY_OVERHEAD * 100.0
            ));
        }
        if r.bundle_bytes == 0 || (r.pack_ns == 0 && r.unpack_ns == 0) {
            failures.push(format!("{}: empty or untimed bundle", r.name));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_replays_validated() {
        let cfg = ReplayConfig::smoke();
        let reports = run(&cfg);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.vfd_records > 0, "{} recorded nothing", r.name);
            assert!(r.validated, "{} replay did not validate", r.name);
            assert!(r.bundle_bytes > 0);
        }
    }

    #[test]
    fn report_document_shape() {
        let cfg = ReplayConfig::smoke();
        let reports = run(&cfg);
        let doc = report_json(&cfg, &reports);
        assert_eq!(doc["bench"], "replay");
        assert_eq!(doc["mode"], "smoke");
        let ws = doc["workloads"].as_array().unwrap();
        assert_eq!(ws.len(), 2);
        for w in ws {
            assert!(w["validated"].as_bool().unwrap());
            assert!(w["bundle"]["bytes"].as_u64().unwrap() > 0);
            assert!(w["replay_overhead"].as_f64().is_some());
        }
    }

    #[test]
    fn check_gate_flags_divergence_and_overhead() {
        let ok = ReplayReportRow {
            name: "ok".into(),
            vfd_records: 10,
            record_ns: 1_000,
            replay_ns: 1_100,
            bundle_bytes: 64,
            pack_ns: 10,
            verify_ns: 10,
            unpack_ns: 10,
            validated: true,
        };
        assert!(check(std::slice::from_ref(&ok)).is_empty());
        let mut diverged = ok.clone();
        diverged.validated = false;
        assert_eq!(check(&[diverged]).len(), 1);
        let mut slow = ok;
        slow.replay_ns = 2_000;
        let failures = check(&[slow]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("budget"));
    }
}
