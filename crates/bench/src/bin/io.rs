//! `io` — the tracked scalar-vs-batched I/O engine benchmark.
//!
//! ```text
//! cargo run --release -p dayu-bench --bin io -- [--smoke] [--check]
//!     [--repeats N] [--out PATH]
//! ```
//!
//! Writes `BENCH_io.json` (or `--out PATH`) and prints a short
//! human-readable summary. `--smoke` runs the quick CI-sized sweep;
//! `--check` exits non-zero if any configuration returned corrupt bytes or
//! the batched+coalesced mem-driver sweep falls under the 3x streaming
//! speedup gate (the CI io gate).

use dayu_bench::io::{check, report_json, run, speedup, IoConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        IoConfig::smoke()
    } else {
        IoConfig::full()
    };
    let mut do_check = false;
    let mut out_path = "BENCH_io.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--check" => do_check = true,
            "--repeats" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.repeats = n,
                _ => return usage("--repeats needs a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    let rows = run(&cfg);
    for r in &rows {
        println!(
            "{:<5} {:<11} write {:>8.1} MB/s  read {:>8.1} MB/s  stream {:>8.1} MB/s  {}",
            r.driver,
            r.engine,
            r.write_bytes_per_sec() / 1e6,
            r.read_bytes_per_sec() / 1e6,
            r.streaming_bytes_per_sec() / 1e6,
            if r.verified { "verified" } else { "CORRUPT" },
        );
    }
    for driver in ["mem", "file"] {
        for engine in ["batched", "batched-nc"] {
            if let Some(s) = speedup(&rows, driver, engine) {
                println!("{driver}/{engine} streaming speedup over scalar: {s:.2}x");
            }
        }
    }
    let doc = report_json(&cfg, &rows);
    match serde_json::to_string_pretty(&doc) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&out_path, text + "\n") {
                eprintln!("io: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out_path}");
        }
        Err(e) => {
            eprintln!("io: cannot serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }

    if do_check {
        let failures = check(&rows);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("io check FAILED: {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("io check passed: bytes verified, batched sweep over the speedup gate");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("io: {err}");
    eprintln!("usage: io [--smoke] [--check] [--repeats N] [--out PATH]");
    ExitCode::FAILURE
}
