//! `replay` — the tracked record → pack → verify → unpack → replay benchmark.
//!
//! ```text
//! cargo run --release -p dayu-bench --bin replay -- [--smoke] [--check]
//!     [--repeats N] [--out PATH]
//! ```
//!
//! Writes `BENCH_replay.json` (or `--out PATH`) and prints a short
//! human-readable summary. `--smoke` runs the quick CI-sized workloads;
//! `--check` exits non-zero if any replay fails to validate or costs more
//! than the 25% overhead budget over a plain record (the CI replay gate).

use dayu_bench::replay::{check, report_json, run, ReplayConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        ReplayConfig::smoke()
    } else {
        ReplayConfig::full()
    };
    let mut do_check = false;
    let mut out_path = "BENCH_replay.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--check" => do_check = true,
            "--repeats" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.repeats = n,
                _ => return usage("--repeats needs a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    let reports = run(&cfg);
    for r in &reports {
        println!(
            "{:<8} {:>7} vfd ops  replay {:>+6.1}%  bundle {:>7} B  pack {:>8.1} MB/s  unpack {:>8.1} MB/s  {}",
            r.name,
            r.vfd_records,
            r.replay_overhead() * 100.0,
            r.bundle_bytes,
            r.pack_bytes_per_sec() / 1e6,
            r.unpack_bytes_per_sec() / 1e6,
            if r.validated { "validated" } else { "DIVERGED" },
        );
    }
    let doc = report_json(&cfg, &reports);
    match serde_json::to_string_pretty(&doc) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&out_path, text + "\n") {
                eprintln!("replay: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out_path}");
        }
        Err(e) => {
            eprintln!("replay: cannot serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }

    if do_check {
        let failures = check(&reports);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("replay check FAILED: {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("replay check passed: all replays validated within the overhead budget");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("replay: {err}");
    eprintln!("usage: replay [--smoke] [--check] [--repeats N] [--out PATH]");
    ExitCode::FAILURE
}
