//! `pipeline` — the tracked record → save → load → analyze benchmark.
//!
//! ```text
//! cargo run --release -p dayu-bench --bin pipeline -- [--smoke] [--check]
//!     [--scale N] [--out PATH]
//! ```
//!
//! Writes `BENCH_pipeline.json` (or `--out PATH`) and prints a short
//! human-readable summary. `--smoke` runs the quick CI-sized workloads;
//! `--check` exits non-zero if the binary format is larger or slower than
//! JSONL on any workload (the CI perf gate).

use dayu_bench::pipeline::{check, report_json, run, PipelineConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        PipelineConfig::smoke()
    } else {
        PipelineConfig::full()
    };
    let mut do_check = false;
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--check" => do_check = true,
            "--scale" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.corner_multiplier = n,
                _ => return usage("--scale needs a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    let reports = run(&cfg);
    for r in &reports {
        println!(
            "{:<18} {:>8} records  record {:>9.0} ops/s  size {:>5.1}x  save+load {:>5.1}x",
            r.name,
            r.records,
            r.record_ops_per_sec(),
            r.size_ratio(),
            r.round_trip_ratio(),
        );
    }
    let doc = report_json(&cfg, &reports);
    match serde_json::to_string_pretty(&doc) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&out_path, text + "\n") {
                eprintln!("pipeline: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out_path}");
        }
        Err(e) => {
            eprintln!("pipeline: cannot serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }

    if do_check {
        let failures = check(&reports);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("pipeline check FAILED: {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("pipeline check passed: binary ≤ JSONL in size and save+load time");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("pipeline: {err}");
    eprintln!("usage: pipeline [--smoke] [--check] [--scale N] [--out PATH]");
    ExitCode::FAILURE
}
