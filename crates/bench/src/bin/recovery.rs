//! `recovery` — the tracked crash-consistency benchmark.
//!
//! ```text
//! cargo run --release -p dayu-bench --bin recovery -- [--smoke] [--check] [--out PATH]
//! ```
//!
//! Times the same per-dataset-commit workload under write-through and
//! journaled durability, sweeps seeded torn-write crash points over the
//! journaled run and verifies every recovered image, then writes
//! `BENCH_recovery.json` (or `--out PATH`). `--check` exits non-zero on
//! any verification failure, and in full mode additionally gates the
//! journal overhead at ≤ 10% write-path slowdown.

use dayu_bench::recovery::{check, report_json, run, RecoveryBenchConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = if args.iter().any(|a| a == "--smoke") {
        RecoveryBenchConfig::smoke()
    } else {
        RecoveryBenchConfig::full()
    };
    let mut do_check = false;
    let mut out_path = "BENCH_recovery.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--check" => do_check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    let report = run(&cfg);
    println!(
        "recovery: write-through {:.3} ms, journal {:.3} ms (ratio {:.3}); \
         sweep {} recovered / {} bootstrap / {} unreached, max recover {:.3} ms",
        report.write_through_ns as f64 / 1e6,
        report.journal_ns as f64 / 1e6,
        report.time_ratio(),
        report.recovered_points,
        report.bootstrap_points,
        report.unreached_points,
        report.max_recover_ns as f64 / 1e6,
    );
    let doc = report_json(&cfg, &report);
    match serde_json::to_string_pretty(&doc) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&out_path, text + "\n") {
                eprintln!("recovery: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out_path}");
        }
        Err(e) => {
            eprintln!("recovery: cannot serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }

    if do_check {
        let failures = check(&cfg, &report);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("recovery check FAILED: {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("recovery check passed: sweep verified, overhead within budget");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("recovery: {err}");
    eprintln!("usage: recovery [--smoke] [--check] [--out PATH]");
    ExitCode::FAILURE
}
