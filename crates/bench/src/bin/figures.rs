//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p dayu-bench --bin figures -- all
//! cargo run --release -p dayu-bench --bin figures -- fig11 fig13a
//! cargo run --release -p dayu-bench --bin figures -- --quick all
//! cargo run --release -p dayu-bench --bin figures -- --out figures_out fig3
//! ```
//!
//! Graph figures (3–8) additionally write DOT/JSON/HTML artifacts into the
//! output directory (default `figures_out/`).

use dayu_bench::{
    ablation, fig01, fig09, fig10, fig11, fig12, fig13, fig_graphs, tables, FigResult, Scale,
};
use std::path::PathBuf;

const ALL: [&str; 16] = [
    "table1", "table2", "table3", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9a",
    "fig9b", "fig9c", "fig9d", "fig10", "fig11",
];
// fig12/fig13* are included in `all` too; the const above is only for help text.

fn usage() -> ! {
    eprintln!(
        "usage: figures [--quick] [--out DIR] <id>... | all\n  ids: {}, fig12, fig13a, fig13b, fig13c, ablation",
        ALL.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("figures_out");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--out" => out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            id => ids.push(id.to_owned()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    if ids.iter().any(|i| i == "all") {
        ids = [
            "table1", "table2", "table3", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9a", "fig9b", "fig9c", "fig9d", "fig10", "fig11", "fig12", "fig13a", "fig13b",
            "fig13c", "ablation",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    }

    let t0 = std::time::Instant::now();
    for id in &ids {
        let fig: FigResult = match id.as_str() {
            "table1" => tables::table1(scale),
            "table2" => tables::table2(scale),
            "table3" => tables::table3(scale),
            "fig1" => fig01::run(scale),
            "fig3" => fig_graphs::run_fig3(&out_dir, scale),
            "fig4" => fig_graphs::run_fig4(&out_dir, scale),
            "fig5" => fig_graphs::run_fig5(&out_dir, scale),
            "fig6" => fig_graphs::run_fig6(&out_dir, scale),
            "fig7" => fig_graphs::run_fig7(&out_dir, scale),
            "fig8" => fig_graphs::run_fig8(&out_dir, scale),
            "fig9a" => fig09::run_9a(scale),
            "fig9b" => fig09::run_9b(scale),
            "fig9c" => fig09::run_9c(scale),
            "fig9d" => fig09::run_9d(scale),
            "fig10" => fig10::run(scale),
            "fig11" => fig11::run(scale),
            "fig12" => fig12::run(scale),
            "fig13a" => fig13::run_13a(scale),
            "fig13b" => fig13::run_13b(scale),
            "fig13c" => fig13::run_13c(scale),
            "ablation" => ablation::run(scale),
            other => {
                eprintln!("unknown figure id {other:?}");
                usage();
            }
        };
        println!("{}", fig.render());
    }
    eprintln!(
        "regenerated {} artifact(s) in {:.1}s",
        ids.len(),
        t0.elapsed().as_secs_f64()
    );
}
