//! `lint` — the tracked detector-throughput benchmark.
//!
//! ```text
//! cargo run --release -p dayu-bench --bin lint -- [--smoke] [--check] [--out PATH]
//! ```
//!
//! Synthesizes a clean many-writer trace (≥ 1M records in full mode),
//! encodes it to `.dtb` and streams it through `analyze_stream`, then
//! times the symbolic-contract passes over a mirrored spec — the pre-run
//! static footprint analysis and the streaming conformance sweep — and
//! writes `BENCH_lint.json` (or `--out PATH`). `--check` exits non-zero if
//! any pass reports findings on the clean-by-construction workload, the
//! race lint or conformance sweep needs more than 2 seconds for a
//! million-record trace, or the static pass exceeds 200 ms (the CI
//! throughput gates).

use dayu_bench::lint::{check, report_json, run, LintBenchConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = if args.iter().any(|a| a == "--smoke") {
        LintBenchConfig::smoke()
    } else {
        LintBenchConfig::full()
    };
    let mut do_check = false;
    let mut out_path = "BENCH_lint.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--check" => do_check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    let report = run(&cfg);
    println!(
        "lint: {} records in {:.3} s  ({:.0} records/s, {} findings, {} B .dtb)",
        report.records,
        report.lint_ns as f64 / 1e9,
        report.records_per_sec(),
        report.findings,
        report.dtb_bytes,
    );
    println!(
        "contracts: static pass {:.3} ms ({} findings), conformance sweep {:.3} s  ({:.0} records/s, {} findings)",
        report.contracts_ns as f64 / 1e6,
        report.contract_findings,
        report.conformance_ns as f64 / 1e9,
        report.conformance_records_per_sec(),
        report.conformance_findings,
    );
    let doc = report_json(&cfg, &report);
    match serde_json::to_string_pretty(&doc) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&out_path, text + "\n") {
                eprintln!("lint: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out_path}");
        }
        Err(e) => {
            eprintln!("lint: cannot serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }

    if do_check {
        let failures = check(&cfg, &report);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("lint check FAILED: {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("lint check passed: zero findings, within the 2 s budget");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("lint: {err}");
    eprintln!("usage: lint [--smoke] [--check] [--out PATH]");
    ExitCode::FAILURE
}
