//! `serve` — the tracked streaming-ingest benchmark.
//!
//! ```text
//! cargo run --release -p dayu-bench --bin serve -- [--smoke] [--check]
//!     [--tenants N] [--out PATH]
//! ```
//!
//! Writes `BENCH_serve.json` (or `--out PATH`) and prints a short
//! human-readable summary. `--smoke` runs the quick CI-sized sweep;
//! `--check` exits non-zero if any serve-gate invariant fails: clean
//! sections rejected, corrupt sections absorbed, a tenant's live graph
//! diverging from the batch build, or throughput under the floor.

use dayu_bench::serve::{check, report_json, run, ServeConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        ServeConfig::smoke()
    } else {
        ServeConfig::full()
    };
    let mut do_check = false;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--check" => do_check = true,
            "--tenants" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.tenants = n,
                _ => return usage("--tenants needs a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    let report = run(&cfg);
    println!(
        "{} tenants x {} sections ({} records each), {} corrupt planted",
        cfg.tenants, cfg.tasks_per_tenant, cfg.records_per_section, report.corrupt_sent
    );
    println!(
        "ingest {:.0} records/s  accepted {}  quarantined {}  graphs identical {}/{}",
        report.records_per_sec(),
        report.accepted,
        report.quarantined,
        report.graphs_identical,
        report.tenants
    );

    let json = report_json(&cfg, &report);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("serve: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if do_check {
        let failures = check(&cfg, &report);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("serve check FAILED: {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("serve check passed: corrupt sections quarantined, live graphs match batch");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("serve: {err}");
    eprintln!("usage: serve [--smoke] [--check] [--tenants N] [--out PATH]");
    ExitCode::FAILURE
}
