//! Fig. 13 — data-layout optimizations.
//!
//! * **13a** — PyFLEXTRKR stage-9: scattered small datasets vs one
//!   consolidated dataset (offsets tracked), on node-local NVMe, across
//!   dataset sizes 1–8 KB and process counts. Paper: 1.7x–3.7x lower I/O
//!   time with consolidation, best for the smallest datasets.
//! * **13b** — DDMD OpenMM/aggregate datasets: chunked (baseline) vs
//!   contiguous, across sizes and process counts on BeeGFS. Paper: up to
//!   1.9x with contiguous under high concurrency.
//! * **13c** — ARLDM variable-length store: contiguous (baseline) vs 5 and
//!   10 chunks, across dataset scales. Paper: chunking cuts write ops ~2x
//!   and improves write time up to 1.4x.
//!
//! Method: each variant's I/O is *recorded* from the real format library,
//! then the exact op stream is replayed through the cluster simulator —
//! so layout differences in operation count/size translate into time the
//! same way for every variant.

use crate::{ms, speedup_f, FigResult, Scale};
use dayu_hdf::{DataType, DatasetBuilder, LayoutKind, Result, Selection};
use dayu_mapper::Mapper;
use dayu_sim::cluster::{Cluster, FileLocation, Placement};
use dayu_sim::engine::Engine;
use dayu_sim::program::{program_from_vfd_records, SimOp, SimTask};
use dayu_sim::tiers::TierKind;
use dayu_vfd::MemFs;
use dayu_workflow::TaskIo;
use dayu_workloads::arldm::{self, ArldmConfig};
use dayu_workloads::util::payload;

/// Records the op stream of one task body.
pub fn record_program(body: impl Fn(&TaskIo) -> Result<()>) -> Vec<SimOp> {
    let fs = MemFs::new();
    let mapper = Mapper::new("layout-study");
    mapper.set_task("t");
    let io = TaskIo::new(&fs, &mapper);
    body(&io).expect("workload body");
    let bundle = mapper.into_bundle();
    program_from_vfd_records(bundle.vfd.iter())
}

/// Rewrites every file name in a program with a suffix (file-per-process
/// replay).
pub fn suffix_files(program: &[SimOp], suffix: &str) -> Vec<SimOp> {
    program
        .iter()
        .cloned()
        .map(|op| match op {
            SimOp::Io {
                file,
                dir,
                bytes,
                metadata,
            } => SimOp::Io {
                file: format!("{file}{suffix}"),
                dir,
                bytes,
                metadata,
            },
            c => c,
        })
        .collect()
}

/// Replays `processes` copies of a program and returns the summed I/O time
/// (the paper's "I/O time (sum of POSIX operations)").
pub fn replay_processes(
    program: &[SimOp],
    processes: usize,
    cluster: &Cluster,
    placement: &Placement,
    shared_file: bool,
) -> u64 {
    let tasks: Vec<SimTask> = (0..processes)
        .map(|p| SimTask {
            name: format!("proc{p}"),
            node: 0,
            deps: vec![],
            program: if shared_file {
                program.to_vec()
            } else {
                suffix_files(program, &format!(".p{p}"))
            },
        })
        .collect();
    Engine::new(cluster, placement)
        .run(&tasks)
        .expect("replay")
        .total_io_ns()
}

// ---------------------------------------------------------------- fig 13a

/// Stage-9 baseline: `datasets` small datasets, each written once and read
/// `accesses - 1` further times (open/read/close each time).
pub fn stage9_scattered(datasets: usize, size: usize, accesses: usize) -> Vec<SimOp> {
    record_program(move |io| {
        let f = io.create("speed_stats.h5")?;
        let root = f.root();
        for d in 0..datasets {
            let mut ds = root.create_dataset(
                &format!("speed_{d:03}"),
                DatasetBuilder::new(DataType::Int { width: 1 }, &[size as u64]),
            )?;
            ds.write(&payload(size, d as u64))?;
            ds.close()?;
        }
        for _ in 1..accesses {
            for d in 0..datasets {
                let mut ds = root.open_dataset(&format!("speed_{d:03}"))?;
                ds.read()?;
                ds.close()?;
            }
        }
        f.close()
    })
}

/// Stage-9 consolidated: one dataset holding all the data; reads address
/// the original regions via hyperslabs through a single open handle.
pub fn stage9_consolidated(datasets: usize, size: usize, accesses: usize) -> Vec<SimOp> {
    record_program(move |io| {
        let f = io.create("speed_stats.h5")?;
        let total = (datasets * size) as u64;
        let mut ds = f.root().create_dataset(
            "speed_consolidated",
            DatasetBuilder::new(DataType::Int { width: 1 }, &[total]),
        )?;
        ds.write(&payload(datasets * size, 0))?;
        for _ in 1..accesses {
            for d in 0..datasets {
                ds.read_slab(&Selection::slab(&[(d * size) as u64], &[size as u64]))?;
            }
        }
        ds.close()?;
        f.close()
    })
}

/// Regenerates Fig. 13a.
pub fn run_13a(scale: Scale) -> FigResult {
    let (accesses, procs): (usize, Vec<usize>) = match scale {
        Scale::Quick => (5, vec![1, 4]),
        Scale::Full => (23, vec![1, 2, 4, 8]),
    };
    let datasets = 32;
    let sizes = [1 << 10, 2 << 10, 4 << 10, 8 << 10];

    let cluster = Cluster::cpu_cluster(1);
    let mut placement = Placement::new();
    placement.place(
        "speed_stats.h5",
        FileLocation::NodeLocal(0, TierKind::NvmeSsd),
    );

    let mut fig = FigResult::new(
        "fig13a",
        "PyFLEXTRKR stage-9 I/O time (ms): scattered (baseline) vs consolidated, node-local NVMe",
        &[
            "dataset_size",
            "processes",
            "baseline_ms",
            "consolidated_ms",
            "speedup",
        ],
    );
    let mut speedups = Vec::new();
    for &size in &sizes {
        let scattered = stage9_scattered(datasets, size, accesses);
        let consolidated = stage9_consolidated(datasets, size, accesses);
        for &p in &procs {
            let b = replay_processes(&scattered, p, &cluster, &placement, true);
            let c = replay_processes(&consolidated, p, &cluster, &placement, true);
            speedups.push(speedup_f(b, c));
            fig.row(vec![
                format!("{}k", size >> 10),
                p.to_string(),
                ms(b),
                ms(c),
                format!("{:.2}x", speedup_f(b, c)),
            ]);
        }
    }
    let lo = speedups.iter().cloned().fold(f64::MAX, f64::min);
    let hi = speedups.iter().cloned().fold(0.0_f64, f64::max);
    fig.note(format!(
        "consolidation wins {lo:.1}x–{hi:.1}x (paper: 1.7x–3.7x across 1–8 KB)"
    ));
    fig
}

// ---------------------------------------------------------------- fig 13b

/// One DDMD-style file: four datasets of `bytes` each, written then read,
/// with the given layout.
pub fn ddmd_layout_program(bytes: usize, chunked: bool) -> Vec<SimOp> {
    record_program(move |io| {
        let f = io.create("ddmd_layout.h5")?;
        let root = f.root();
        let n = bytes as u64;
        for name in ["contact_map", "point_cloud", "fnc", "rmsd"] {
            let b = DatasetBuilder::new(DataType::Int { width: 1 }, &[n]);
            let b = if chunked {
                b.chunks(&[(n / 8).max(1)])
            } else {
                b
            };
            let mut ds = root.create_dataset(name, b)?;
            ds.write(&payload(bytes, 1))?;
            ds.close()?;
        }
        for name in ["contact_map", "point_cloud", "fnc", "rmsd"] {
            let mut ds = root.open_dataset(name)?;
            ds.read()?;
            ds.close()?;
        }
        f.close()
    })
}

/// Regenerates Fig. 13b.
pub fn run_13b(scale: Scale) -> FigResult {
    let (sizes_kb, procs): (Vec<usize>, Vec<usize>) = match scale {
        Scale::Quick => (vec![100, 800], vec![1, 4]),
        Scale::Full => (vec![100, 200, 400, 800], vec![1, 2, 3, 4]),
    };
    let cluster = Cluster::gpu_cluster(1);
    let placement = Placement::new(); // BeeGFS

    let mut fig = FigResult::new(
        "fig13b",
        "DDMD dataset I/O time (ms): chunked (baseline) vs contiguous, BeeGFS",
        &["size_kb", "processes", "chunked_ms", "contig_ms", "speedup"],
    );
    let mut best: f64 = 0.0;
    for &kb in &sizes_kb {
        let chunked = ddmd_layout_program(kb << 10, true);
        let contig = ddmd_layout_program(kb << 10, false);
        for &p in &procs {
            let b = replay_processes(&chunked, p, &cluster, &placement, false);
            let c = replay_processes(&contig, p, &cluster, &placement, false);
            best = best.max(speedup_f(b, c));
            fig.row(vec![
                kb.to_string(),
                p.to_string(),
                ms(b),
                ms(c),
                format!("{:.2}x", speedup_f(b, c)),
            ]);
        }
    }
    fig.note(format!(
        "contiguous wins up to {best:.1}x (paper: up to 1.9x in high-concurrency OpenMM scenarios)"
    ));
    fig
}

// ---------------------------------------------------------------- fig 13c

/// ARLDM save program with the given layout/chunking.
pub fn arldm_program(total_mb: usize, layout: LayoutKind, chunks: u64) -> (Vec<SimOp>, u64) {
    let stories = (total_mb * 48).max(8); // mean image ≈ 4 KiB → ~20 KiB/story
    let cfg = ArldmConfig {
        stories,
        mean_image_bytes: 4 << 10,
        mean_text_bytes: 256,
        layout,
        chunk_elems: (stories as u64 / chunks.max(1)).max(1),
        // ARLDM's dataloader writes stories in small batches; with
        // element-at-a-time writes the contiguous layout's per-descriptor
        // ops would overstate the gap far beyond the paper's ~2x (our
        // format has no HDF5-style sieve buffer to coalesce them).
        // batch = 8 calibrates the write-op ratio to the paper's ~2x.
        batch: 8,
        compute_ns: 0,
    };
    let prog = record_program(move |io| arldm::save_h5(io, &cfg));
    let writes = prog
        .iter()
        .filter(|op| {
            matches!(
                op,
                SimOp::Io {
                    dir: dayu_sim::program::IoDir::Write,
                    ..
                }
            )
        })
        .count() as u64;
    (prog, writes)
}

/// Regenerates Fig. 13c.
pub fn run_13c(scale: Scale) -> FigResult {
    // Paper: 5/10/20 GB; scaled ~1000x down (same structure, element count
    // drives the op-count ratios).
    // Keep chunk_elems comfortably above the app's write batch at every
    // scale, or the chunked layout's descriptor batching cannot kick in.
    let sizes_mb: Vec<usize> = match scale {
        Scale::Quick => vec![4],
        Scale::Full => vec![5, 10, 20],
    };
    let cluster = Cluster::gpu_cluster(1);
    let placement = Placement::new(); // BeeGFS

    let mut fig = FigResult::new(
        "fig13c",
        "ARLDM arldm_saveh5 write time (ms): contiguous (baseline) vs 5/10 chunks, BeeGFS",
        &[
            "scale",
            "variant",
            "time_ms",
            "write_ops",
            "speedup_vs_contig",
        ],
    );
    let mut best: f64 = 0.0;
    let mut op_ratio: f64 = 0.0;
    for &mb in &sizes_mb {
        let (contig, contig_ops) = arldm_program(mb, LayoutKind::Contiguous, 1);
        let base = replay_processes(&contig, 1, &cluster, &placement, true);
        fig.row(vec![
            format!("{mb}MB"),
            "contig".into(),
            ms(base),
            contig_ops.to_string(),
            "1.00x".into(),
        ]);
        for chunks in [5u64, 10] {
            let (prog, ops) = arldm_program(mb, LayoutKind::Chunked, chunks);
            let t = replay_processes(&prog, 1, &cluster, &placement, true);
            best = best.max(speedup_f(base, t));
            op_ratio = op_ratio.max(contig_ops as f64 / ops.max(1) as f64);
            fig.row(vec![
                format!("{mb}MB"),
                format!("{chunks} chunks"),
                ms(t),
                ops.to_string(),
                format!("{:.2}x", speedup_f(base, t)),
            ]);
        }
    }
    fig.note(format!(
        "chunked write time up to {best:.1}x better (paper: up to 1.4x); write-op reduction up to {op_ratio:.1}x (paper: ~2x)"
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidation_wins_like_fig13a() {
        let cluster = Cluster::cpu_cluster(1);
        let mut placement = Placement::new();
        placement.place(
            "speed_stats.h5",
            FileLocation::NodeLocal(0, TierKind::NvmeSsd),
        );
        let scattered = stage9_scattered(16, 1 << 10, 4);
        let consolidated = stage9_consolidated(16, 1 << 10, 4);
        let b = replay_processes(&scattered, 1, &cluster, &placement, true);
        let c = replay_processes(&consolidated, 1, &cluster, &placement, true);
        let s = speedup_f(b, c);
        assert!(
            (1.4..10.0).contains(&s),
            "consolidation should win roughly like the paper's 1.7–3.7x, got {s:.2}x"
        );
    }

    #[test]
    fn small_datasets_benefit_most_from_consolidation() {
        let cluster = Cluster::cpu_cluster(1);
        let mut placement = Placement::new();
        placement.place(
            "speed_stats.h5",
            FileLocation::NodeLocal(0, TierKind::NvmeSsd),
        );
        let s_at = |size: usize| {
            let b = replay_processes(
                &stage9_scattered(16, size, 4),
                1,
                &cluster,
                &placement,
                true,
            );
            let c = replay_processes(
                &stage9_consolidated(16, size, 4),
                1,
                &cluster,
                &placement,
                true,
            );
            speedup_f(b, c)
        };
        let small = s_at(1 << 10);
        let large = s_at(64 << 10);
        assert!(
            small > large,
            "smaller datasets gain more: 1k → {small:.2}x, 64k → {large:.2}x"
        );
    }

    #[test]
    fn contiguous_beats_chunked_for_small_ddmd_data() {
        let cluster = Cluster::gpu_cluster(1);
        let placement = Placement::new();
        let chunked = ddmd_layout_program(200 << 10, true);
        let contig = ddmd_layout_program(200 << 10, false);
        let b = replay_processes(&chunked, 4, &cluster, &placement, false);
        let c = replay_processes(&contig, 4, &cluster, &placement, false);
        let s = speedup_f(b, c);
        assert!(
            (1.1..6.0).contains(&s),
            "contiguous should win like the paper's up-to-1.9x, got {s:.2}x"
        );
    }

    #[test]
    fn chunked_vl_beats_contiguous_for_arldm() {
        let cluster = Cluster::gpu_cluster(1);
        let placement = Placement::new();
        let (contig, contig_ops) = arldm_program(4, LayoutKind::Contiguous, 1);
        let (chunked, chunked_ops) = arldm_program(4, LayoutKind::Chunked, 5);
        let b = replay_processes(&contig, 1, &cluster, &placement, true);
        let c = replay_processes(&chunked, 1, &cluster, &placement, true);
        assert!(
            contig_ops as f64 > 1.4 * chunked_ops as f64,
            "chunking cuts write ops (paper ~2x): {contig_ops} vs {chunked_ops}"
        );
        let s = speedup_f(b, c);
        assert!(
            s > 1.1,
            "chunked VL writes faster (paper up to 1.4x), got {s:.2}x"
        );
    }

    #[test]
    fn figures_render() {
        for fig in [
            run_13a(Scale::Quick),
            run_13b(Scale::Quick),
            run_13c(Scale::Quick),
        ] {
            assert!(!fig.rows.is_empty());
            assert!(!fig.notes.is_empty());
            let _ = fig.render();
        }
    }
}
