//! Fig. 10 — breakdown of the mapper's own execution time.
//!
//! * **10a** — under h5bench (large sequential I/O): the paper measures
//!   38.83 ms of mapper time (0.008% of the run), dominated by the
//!   Characteristic Mapper;
//! * **10b** — under the corner case (object churn): 813.74 ms, ~4% of the
//!   run, dominated by the Access Tracker (56.9%) with the Characteristic
//!   Mapper second (41.7%) and the Input Parser negligible.

use crate::{ms, pct, FigResult, Scale};
use dayu_hdf::{DataType, DatasetBuilder};
use dayu_mapper::Mapper;
use dayu_vfd::MemFs;
use dayu_workflow::TaskIo;
use dayu_workloads::util::payload;

/// Breakdown measured from one instrumented run.
pub struct Breakdown {
    /// Total mapper time, ns.
    pub total_ns: u64,
    /// Input Parser fraction.
    pub input_parser: f64,
    /// Access Tracker fraction.
    pub access_tracker: f64,
    /// Characteristic Mapper fraction.
    pub characteristic_mapper: f64,
}

fn breakdown_of(mapper: &Mapper) -> Breakdown {
    let t = mapper.timers();
    let (ip, at, cm) = t.breakdown();
    Breakdown {
        total_ns: t.total_ns(),
        input_parser: ip,
        access_tracker: at,
        characteristic_mapper: cm,
    }
}

/// Runs an h5bench-like body (few large datasets, bulk I/O) under a fresh
/// mapper and returns the component breakdown.
pub fn h5bench_breakdown(total_bytes: usize) -> Breakdown {
    let fs = MemFs::new();
    let mapper =
        Mapper::from_config_text("fig10a", "page_size=4096\ntrace_io=on\n").expect("config");
    mapper.set_task("h5bench");
    let io = TaskIo::new(&fs, &mapper);
    let f = io.create("big.h5").unwrap();
    let per = total_bytes / 4;
    let data = payload(per, 7);
    for d in 0..4 {
        let mut ds = f
            .root()
            .create_dataset(
                &format!("dset_{d}"),
                DatasetBuilder::new(DataType::Int { width: 1 }, &[per as u64]),
            )
            .unwrap();
        ds.write(&data).unwrap();
        ds.close().unwrap();
    }
    for d in 0..4 {
        let mut ds = f.root().open_dataset(&format!("dset_{d}")).unwrap();
        ds.read().unwrap();
        ds.close().unwrap();
    }
    f.close().unwrap();
    breakdown_of(&mapper)
}

/// Runs the corner-case body (many datasets, reopen churn) under a fresh
/// mapper and returns the component breakdown.
pub fn corner_breakdown(datasets: usize, reads: usize) -> Breakdown {
    let fs = MemFs::new();
    let mapper =
        Mapper::from_config_text("fig10b", "page_size=4096\ntrace_io=on\n").expect("config");
    mapper.set_task("corner");
    let io = TaskIo::new(&fs, &mapper);
    let f = io.create("corner.h5").unwrap();
    for d in 0..datasets {
        let mut ds = f
            .root()
            .create_dataset(
                &format!("d{d:03}"),
                DatasetBuilder::new(DataType::Int { width: 1 }, &[256]),
            )
            .unwrap();
        ds.write(&payload(256, d as u64)).unwrap();
        ds.close().unwrap();
    }
    for i in 0..reads {
        let mut ds = f
            .root()
            .open_dataset(&format!("d{:03}", i % datasets))
            .unwrap();
        ds.read().unwrap();
        ds.close().unwrap();
    }
    f.close().unwrap();
    breakdown_of(&mapper)
}

/// Regenerates Fig. 10a and 10b.
pub fn run(scale: Scale) -> FigResult {
    let (bench_bytes, datasets, reads) = match scale {
        Scale::Quick => (4 << 20, 100, 1000),
        Scale::Full => (64 << 20, 200, 8000),
    };
    let a = h5bench_breakdown(bench_bytes);
    let b = corner_breakdown(datasets, reads);

    let mut fig = FigResult::new(
        "fig10",
        "Mapper execution-time breakdown (a: h5bench, b: corner case)",
        &[
            "scenario",
            "total_ms",
            "input_parser",
            "access_tracker",
            "characteristic_mapper",
        ],
    );
    for (name, bd) in [("h5bench (10a)", &a), ("corner case (10b)", &b)] {
        fig.row(vec![
            name.to_owned(),
            ms(bd.total_ns),
            pct(bd.input_parser),
            pct(bd.access_tracker),
            pct(bd.characteristic_mapper),
        ]);
    }
    fig.note(format!(
        "10a: Characteristic Mapper dominant at {} (paper: dominant); \
         10b: Access Tracker at {} (paper: 56.9%)",
        pct(a.characteristic_mapper),
        pct(b.access_tracker)
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h5bench_dominated_by_characteristic_mapper() {
        let b = h5bench_breakdown(2 << 20);
        assert!(b.total_ns > 0);
        assert!(
            b.characteristic_mapper > b.input_parser,
            "cm {:.2} vs ip {:.2}",
            b.characteristic_mapper,
            b.input_parser
        );
    }

    #[test]
    fn corner_case_access_tracker_grows() {
        // The paper's contrast: object churn shifts time toward the Access
        // Tracker relative to the bulk-I/O scenario.
        let bulk = h5bench_breakdown(2 << 20);
        let churn = corner_breakdown(100, 2000);
        assert!(
            churn.access_tracker > bulk.access_tracker,
            "churn shifts cost into the Access Tracker: {:.3} vs {:.3}",
            churn.access_tracker,
            bulk.access_tracker
        );
        // Fractions form a distribution.
        let sum = churn.input_parser + churn.access_tracker + churn.characteristic_mapper;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure_renders_two_rows() {
        let fig = run(Scale::Quick);
        assert_eq!(fig.rows.len(), 2);
        assert!(fig.render().contains("corner case"));
    }
}
