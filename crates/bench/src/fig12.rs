//! Fig. 12 — DDMD: baseline vs DaYu-optimized pipeline over iterations.
//!
//! DaYu's optimized plan applies four moves from Section VII-C.1:
//! eliminate the aggregate task's access to the unused `contact_map`
//! dataset, co-locate aggregate and inference with node-local sim outputs,
//! pipeline training with inference (the model dependency is satisfied by
//! the previous iteration's pre-trained model), and stage finished data
//! out asynchronously. Paper result: 1.15x per iteration, 1.2x over a
//! 5-iteration pipeline.

use crate::{ms, speedup, speedup_f, FigResult, Scale};
use dayu_sim::cluster::{Cluster, Placement};
use dayu_sim::engine::{Engine, SimReport};
use dayu_sim::tiers::TierKind;
use dayu_vfd::MemFs;
use dayu_workflow::{record, to_sim_tasks, transform, RecordedRun, Schedule};
use dayu_workloads::ddmd::{self, DdmdConfig};

/// Result of the baseline/optimized comparison.
pub struct PipelineOutcome {
    /// Per-iteration makespans, baseline, ns.
    pub baseline_iters: Vec<u64>,
    /// Per-iteration makespans, optimized, ns.
    pub optimized_iters: Vec<u64>,
    /// Full-pipeline makespans, ns.
    pub baseline_total: u64,
    /// Optimized total.
    pub optimized_total: u64,
}

impl PipelineOutcome {
    /// Whole-pipeline speedup.
    pub fn pipeline_speedup(&self) -> f64 {
        speedup_f(self.baseline_total, self.optimized_total)
    }

    /// Mean per-iteration speedup.
    pub fn mean_iteration_speedup(&self) -> f64 {
        let n = self.baseline_iters.len().max(1) as f64;
        self.baseline_iters
            .iter()
            .zip(&self.optimized_iters)
            .map(|(&b, &o)| speedup_f(b, o))
            .sum::<f64>()
            / n
    }
}

fn iteration_spans(report: &SimReport, iterations: usize) -> Vec<u64> {
    (0..iterations)
        .map(|i| {
            let tag = format!("_i{i}");
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for t in &report.tasks {
                if t.name.contains(&tag) || t.name.ends_with(&format!("iter{i:04}.h5")) {
                    lo = lo.min(t.start_ns);
                    hi = hi.max(t.end_ns);
                }
            }
            if lo == u64::MAX {
                0
            } else {
                hi - lo
            }
        })
        .collect()
}

/// Runs the comparison for a configuration on a GPU cluster of `nodes`.
pub fn run_configuration(cfg: &DdmdConfig, nodes: usize) -> PipelineOutcome {
    let fs = MemFs::new();
    let run: RecordedRun = record(&ddmd::workflow(cfg), &fs).expect("record");
    let cluster = Cluster::gpu_cluster(nodes);

    // ---- Baseline: round-robin schedule, everything on BeeGFS.
    let schedule = Schedule::round_robin(&run, nodes);
    let baseline_tasks = to_sim_tasks(&run, &schedule);
    let baseline = Engine::new(&cluster, &Placement::new())
        .run(&baseline_tasks)
        .expect("baseline");

    // ---- Optimized.
    // (1) Eliminate the unused dataset access: aggregate stops touching
    //     contact_map entirely (its reads from sims and its writes into
    //     the aggregated file).
    let mut opt_bundle = run.bundle.clone();
    for i in 0..cfg.iterations {
        transform::drop_object_ops(&mut opt_bundle, &format!("aggregate_i{i}"), "/contact_map");
    }
    let opt_run = RecordedRun {
        bundle: opt_bundle,
        stage_of: run.stage_of.clone(),
        compute_ns: run.compute_ns.clone(),
        stage_names: run.stage_names.clone(),
        outcomes: run.outcomes.clone(),
    };
    let mut schedule = Schedule::round_robin(&opt_run, nodes);
    // (2) Co-locate aggregate and inference on node 0.
    for i in 0..cfg.iterations {
        schedule.assign(&format!("aggregate_i{i}"), 0);
        schedule.assign(&format!("inference_i{i}"), 0);
        schedule.assign(&format!("training_i{i}"), 1 % nodes);
    }
    let mut opt_tasks = to_sim_tasks(&opt_run, &schedule);
    let mut placement = Placement::new();
    // Sim outputs land on their producer's local SSD... but aggregate and
    // inference read them from node 0, so the winning placement is node 0
    // SSD — which the engine models as the producers paying one network
    // hop on write and the consumers reading locally.
    for i in 0..cfg.iterations {
        for t in 0..cfg.sim_tasks {
            placement.place(
                ddmd::sim_file(i, t),
                dayu_sim::cluster::FileLocation::NodeLocal(0, TierKind::NvmeSsd),
            );
        }
        // Aggregated file local to node 0 too.
        placement.place(
            ddmd::aggregated_file(i),
            dayu_sim::cluster::FileLocation::NodeLocal(0, TierKind::NvmeSsd),
        );
        // (4) Async stage-out of the aggregated file to shared storage.
        let bytes = dayu_workflow::file_written_bytes(&run, &ddmd::aggregated_file(i)).max(1);
        transform::stage_out_async(&mut opt_tasks, &ddmd::aggregated_file(i), bytes, 0);
        // (3) Pipeline training and inference within the iteration.
        transform::parallelize(
            &mut opt_tasks,
            &format!("training_i{i}"),
            &format!("inference_i{i}"),
        );
    }
    let optimized = Engine::new(&cluster, &placement)
        .run(&opt_tasks)
        .expect("optimized");

    PipelineOutcome {
        baseline_iters: iteration_spans(&baseline, cfg.iterations),
        optimized_iters: iteration_spans(&optimized, cfg.iterations),
        baseline_total: baseline.makespan_ns,
        optimized_total: optimized.makespan_ns,
    }
}

fn scaled_config(scale: Scale) -> (DdmdConfig, usize) {
    match scale {
        // DDMD is compute-dominated (simulation and training far outweigh
        // I/O), which is why the paper's win is a modest 1.15–1.2x: the
        // modeled compute below keeps the I/O share realistic.
        Scale::Quick => (
            DdmdConfig {
                sim_tasks: 6,
                iterations: 3,
                contact_map_dim: 96,
                point_cloud_points: 256,
                scalar_series_len: 64,
                compute_ns: 100_000_000,
                ..Default::default()
            },
            4,
        ),
        Scale::Full => (
            DdmdConfig {
                sim_tasks: 12,
                iterations: 5,
                contact_map_dim: 512,
                point_cloud_points: 4096,
                scalar_series_len: 512,
                compute_ns: 300_000_000,
                ..Default::default()
            },
            4,
        ),
    }
}

/// Regenerates Fig. 12.
pub fn run(scale: Scale) -> FigResult {
    let (cfg, nodes) = scaled_config(scale);
    let out = run_configuration(&cfg, nodes);
    let mut fig = FigResult::new(
        "fig12",
        "DDMD execution per iteration: baseline (BeeGFS) vs DaYu-optimized (BeeGFS+SSD), ms",
        &["iteration", "baseline_ms", "dayu_ms", "speedup"],
    );
    for (i, (&b, &o)) in out
        .baseline_iters
        .iter()
        .zip(&out.optimized_iters)
        .enumerate()
    {
        fig.row(vec![format!("{}", i + 1), ms(b), ms(o), speedup(b, o)]);
    }
    fig.row(vec![
        "pipeline".into(),
        ms(out.baseline_total),
        ms(out.optimized_total),
        speedup(out.baseline_total, out.optimized_total),
    ]);
    fig.note(format!(
        "pipeline speedup {:.2}x (paper: 1.2x over 5 iterations); mean per-iteration {:.2}x (paper: 1.15x)",
        out.pipeline_speedup(),
        out.mean_iteration_speedup()
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_pipeline_wins_modestly() {
        let (cfg, nodes) = scaled_config(Scale::Quick);
        let out = run_configuration(&cfg, nodes);
        let s = out.pipeline_speedup();
        assert!(
            s > 1.05,
            "expected a pipeline win like the paper's 1.2x, got {s:.2}x"
        );
        assert!(
            s < 4.0,
            "DDMD is compute-heavy; the win should be modest, got {s:.2}x"
        );
        assert!(out.mean_iteration_speedup() > 1.0);
    }

    #[test]
    fn every_iteration_reported() {
        let fig = run(Scale::Quick);
        assert_eq!(fig.rows.len(), 4, "3 iterations + pipeline row");
        assert!(fig.render().contains("pipeline"));
    }
}
