//! Fig. 9 — Data Semantic Mapper overhead.
//!
//! * **9a** — h5bench, VFD/VOL runtime overhead vs total file size
//!   (paper: < 0.23%, decreasing with size);
//! * **9b** — h5bench, overhead vs process count at fixed bytes/process;
//! * **9c** — corner case, runtime overhead vs dataset I/O count
//!   (paper: grows, up to ~4%);
//! * **9d** — corner case, trace storage vs program data volume
//!   (paper: VOL ≈ flat 0.2%, VFD linear in op count).
//!
//! These are *measured*, not simulated: each configuration runs
//! uninstrumented and instrumented (VOL-only / VFD-only / full) against
//! real files in a temp directory, several repetitions, best-of taken.
//! Our substrate's baseline I/O is faster than a production parallel
//! filesystem, so relative overheads come out *larger* than the paper's
//! absolute percentages; the shape (decreasing in 9a/9b, increasing in 9c,
//! VFD-linear storage in 9d) is the reproduction target.

use crate::{pct, FigResult, Scale};
use dayu_workloads::corner_case::{self, CornerCaseConfig};
use dayu_workloads::h5bench::{self, H5benchConfig};
use dayu_workloads::{Backend, Instrumentation};

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Measures every instrumentation mode for a configuration in alternating
/// order (b, m1, m2, b, m1, m2, …) and returns the per-mode medians —
/// alternation cancels drift (page-cache warmup, allocator state), median
/// rejects outliers. Returns times keyed like `modes`.
fn measure_modes<F: FnMut(Instrumentation) -> u64>(
    modes: &[Instrumentation],
    reps: usize,
    mut run_once: F,
) -> Vec<u64> {
    let mut samples: Vec<Vec<u64>> = vec![Vec::new(); modes.len()];
    // One unmeasured warmup round.
    for &m in modes {
        let _ = run_once(m);
    }
    for _ in 0..reps {
        for (i, &m) in modes.iter().enumerate() {
            samples[i].push(run_once(m));
        }
    }
    samples.into_iter().map(median).collect()
}

fn h5bench_once(cfg: &H5benchConfig, instr: Instrumentation, tag: usize) -> u64 {
    let backend = Backend::temp_dir(&format!("fig9-{tag}")).expect("tempdir");
    h5bench::run(cfg, backend, instr).expect("h5bench").wall_ns
}

fn corner_once(cfg: &CornerCaseConfig, instr: Instrumentation, tag: usize) -> u64 {
    let backend = Backend::temp_dir(&format!("fig9c-{tag}")).expect("tempdir");
    corner_case::run(cfg, backend, instr)
        .expect("corner")
        .wall_ns
}

/// Regenerates Fig. 9a: overhead vs total data size.
pub fn run_9a(scale: Scale) -> FigResult {
    let (sizes_mb, reps): (Vec<u64>, usize) = match scale {
        Scale::Quick => (vec![4, 16], 2),
        Scale::Full => (vec![16, 64, 256, 512], 5),
    };
    let mut fig = FigResult::new(
        "fig9a",
        "h5bench: mapper runtime overhead vs total file size",
        &[
            "total_size_MB",
            "vfd_overhead",
            "vol_overhead",
            "mapper_self_time",
        ],
    );
    let mut overheads = Vec::new();
    for mb in sizes_mb {
        let cfg = H5benchConfig {
            processes: 2,
            bytes_per_process: (mb << 20) / 2,
            datasets_per_file: 4,
            read_back: true,
        };
        let mut tag = 0usize;
        let modes = [
            Instrumentation::None,
            Instrumentation::VfdOnly,
            Instrumentation::VolOnly,
        ];
        let times = measure_modes(&modes, reps, |m| {
            tag += 1;
            h5bench_once(&cfg, m, tag)
        });
        let (base, vfd, vol) = (times[0], times[1], times[2]);
        let vfd_oh = (vfd as f64 - base as f64).max(0.0) / base as f64;
        let vol_oh = (vol as f64 - base as f64).max(0.0) / base as f64;
        // Deterministic companion metric: time the mapper itself spent on
        // the critical path, free of wall-clock noise.
        let backend = Backend::temp_dir("fig9a-self").expect("tempdir");
        let self_frac = h5bench::run(&cfg, backend, Instrumentation::Full)
            .expect("h5bench")
            .self_time_fraction();
        overheads.push((mb, self_frac));
        fig.row(vec![
            mb.to_string(),
            pct(vfd_oh),
            pct(vol_oh),
            pct(self_frac),
        ]);
    }
    if overheads.len() >= 2 {
        let first = overheads.first().expect("nonempty").1;
        let last = overheads.last().expect("nonempty").1;
        fig.note(format!(
            "mapper self-time trend with size: {} → {} (paper: <0.23% and \
             decreasing); wall-clock deltas are below measurement noise here",
            pct(first),
            pct(last)
        ));
    }
    fig
}

/// Regenerates Fig. 9b: overhead vs process count at fixed bytes/process.
pub fn run_9b(scale: Scale) -> FigResult {
    let (procs, per_proc_mb, reps): (Vec<usize>, u64, usize) = match scale {
        Scale::Quick => (vec![1, 4], 4, 2),
        Scale::Full => (vec![1, 2, 4, 8, 16], 32, 5),
    };
    let mut fig = FigResult::new(
        "fig9b",
        "h5bench: mapper runtime overhead vs process count (fixed bytes/process)",
        &["processes", "vfd_overhead", "vol_overhead"],
    );
    for p in procs {
        let cfg = H5benchConfig {
            processes: p,
            bytes_per_process: per_proc_mb << 20,
            datasets_per_file: 4,
            read_back: true,
        };
        let mut tag = 1000usize;
        let modes = [
            Instrumentation::None,
            Instrumentation::VfdOnly,
            Instrumentation::VolOnly,
        ];
        let times = measure_modes(&modes, reps, |m| {
            tag += 1;
            h5bench_once(&cfg, m, tag)
        });
        let (base, vfd, vol) = (times[0], times[1], times[2]);
        fig.row(vec![
            p.to_string(),
            pct((vfd as f64 - base as f64).max(0.0) / base as f64),
            pct((vol as f64 - base as f64).max(0.0) / base as f64),
        ]);
    }
    fig.note("paper: overhead decreases with process count (per-process I/O dominates)");
    fig
}

/// Regenerates Fig. 9c: runtime overhead vs dataset I/O count.
pub fn run_9c(scale: Scale) -> FigResult {
    let (reads, reps): (Vec<usize>, usize) = match scale {
        Scale::Quick => (vec![200, 2000], 2),
        Scale::Full => (vec![0, 1000, 2000, 4000, 8000], 5),
    };
    let mut fig = FigResult::new(
        "fig9c",
        "corner case (200 datasets): runtime overhead vs dataset I/O operations",
        &[
            "dataset_io_ops",
            "vfd_overhead",
            "vol_overhead",
            "mapper_self_time",
        ],
    );
    for n in reads {
        let cfg = CornerCaseConfig {
            datasets: 200,
            file_bytes: 8 << 20,
            dataset_reads: n,
        };
        let mut tag = 2000usize;
        let modes = [
            Instrumentation::None,
            Instrumentation::VfdOnly,
            Instrumentation::VolOnly,
        ];
        let times = measure_modes(&modes, reps, |m| {
            tag += 1;
            corner_once(&cfg, m, tag)
        });
        let (base, vfd, vol) = (times[0], times[1], times[2]);
        let backend = Backend::temp_dir("fig9c-self").expect("tempdir");
        let self_frac = corner_case::run(&cfg, backend, Instrumentation::Full)
            .expect("corner")
            .self_time_fraction();
        fig.row(vec![
            n.to_string(),
            pct((vfd as f64 - base as f64).max(0.0) / base as f64),
            pct((vol as f64 - base as f64).max(0.0) / base as f64),
            pct(self_frac),
        ]);
    }
    fig.note("paper: overhead grows with I/O activity inside one open/close period, up to ~4% (2.97% VFD + 1.0% VOL)");
    fig
}

/// Regenerates Fig. 9d: trace storage overhead vs I/O operation count.
pub fn run_9d(scale: Scale) -> FigResult {
    let reads: Vec<usize> = match scale {
        Scale::Quick => vec![200, 2000],
        Scale::Full => vec![500, 1000, 2000, 4000, 8000],
    };
    let mut fig = FigResult::new(
        "fig9d",
        "corner case: trace storage as a fraction of program data volume",
        &["io_ops", "vfd_storage", "vol_storage", "vfd_pct", "vol_pct"],
    );
    let mut vol_pcts = Vec::new();
    let mut vfd_per_op = Vec::new();
    for n in reads {
        let cfg = CornerCaseConfig {
            datasets: 200,
            file_bytes: 8 << 20,
            dataset_reads: n,
        };
        let run = corner_case::run(&cfg, Backend::mem(), Instrumentation::Full).expect("corner");
        let vfd = run.vfd_storage();
        let vol = run.vol_storage();
        let app = run.app_bytes.max(1);
        vol_pcts.push(vol as f64 / app as f64);
        vfd_per_op.push(vfd as f64 / (n.max(1) as f64));
        fig.row(vec![
            n.to_string(),
            vfd.to_string(),
            vol.to_string(),
            pct(vfd as f64 / app as f64),
            pct(vol as f64 / app as f64),
        ]);
    }
    let per_op_spread = vfd_per_op.iter().cloned().fold(0.0_f64, f64::max)
        / vfd_per_op
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min)
            .max(1e-9);
    fig.note(format!(
        "VFD storage is linear in op count (bytes/op stable within {per_op_spread:.2}x); \
         VOL storage stays near-flat (paper: ~0.2%)"
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_workloads::corner_case;

    /// Shape assertion for 9d — deterministic (storage, not timing).
    #[test]
    fn vfd_storage_linear_vol_flat() {
        let run_at = |n: usize| {
            corner_case::run(
                &CornerCaseConfig {
                    datasets: 50,
                    file_bytes: 512 << 10,
                    dataset_reads: n,
                },
                Backend::mem(),
                Instrumentation::Full,
            )
            .unwrap()
        };
        let a = run_at(100);
        let b = run_at(400);
        let vfd_ratio = b.vfd_storage() as f64 / a.vfd_storage() as f64;
        assert!(
            (2.0..6.0).contains(&vfd_ratio),
            "4x the reads ≈ linear VFD growth, got {vfd_ratio:.2}x"
        );
        let vol_ratio = b.vol_storage() as f64 / a.vol_storage() as f64;
        assert!(
            vol_ratio < 1.5,
            "VOL storage near-flat under repeated reads, got {vol_ratio:.2}x"
        );
    }

    /// 9a/9c smoke: instrumented runs complete and overheads are finite and
    /// sane (timing itself is too noisy to bound tightly in CI).
    #[test]
    fn overhead_measurements_complete() {
        let fig = run_9a(Scale::Quick);
        assert_eq!(fig.rows.len(), 2);
        let fig = run_9c(Scale::Quick);
        assert_eq!(fig.rows.len(), 2);
        for row in &fig.rows {
            for cell in &row[1..] {
                let v: f64 = cell.trim_end_matches('%').parse().unwrap();
                assert!((0.0..2000.0).contains(&v), "absurd overhead {cell}");
            }
        }
    }

    #[test]
    fn storage_figure_renders() {
        let fig = run_9d(Scale::Quick);
        assert_eq!(fig.rows.len(), 2);
        assert!(fig.render().contains("vol_pct"));
    }
}
