//! Detector-throughput benchmark: **synthesize → encode → stream-lint**.
//!
//! The race detector's promise is that it can gate CI: lint a million-record
//! binary trace in a couple of seconds, streaming, without materializing the
//! bundle. This bench measures exactly that promise and emits the tracked
//! `BENCH_lint.json`. The synthetic workload is the detector's worst
//! honest case — many concurrent writers per stage touching one shared
//! file with *disjoint* extents (so the interval index does maximal work
//! and must still report zero findings), plus cross-stage reads that
//! exercise the happens-before engine.

use crate::Scale;
use dayu_lint::{analyze_stream, LintConfig};
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::store::TraceBundle;
use dayu_trace::time::Timestamp;
use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
use serde_json::{json, Value};
use std::time::Instant;

/// Shape of the synthetic trace.
#[derive(Clone, Copy, Debug)]
pub struct LintBenchConfig {
    /// Run size.
    pub scale: Scale,
    /// Stage-barrier count: stages run one after another, tasks within a
    /// stage are concurrent.
    pub stages: usize,
    /// Concurrent tasks per stage.
    pub tasks_per_stage: usize,
    /// Extents each task writes into its private region of the shared file.
    pub writes_per_task: usize,
    /// Extents each post-first-stage task reads back from the previous
    /// stage's region (ordered by the stage barrier, so never a race).
    pub reads_per_task: usize,
}

impl LintBenchConfig {
    /// Quick parameters for tests and the CI smoke job.
    pub fn smoke() -> Self {
        Self {
            scale: Scale::Quick,
            stages: 4,
            tasks_per_stage: 4,
            writes_per_task: 64,
            reads_per_task: 16,
        }
    }

    /// The tracked run: ≥ 1M records through the streaming detector.
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            stages: 8,
            tasks_per_stage: 16,
            writes_per_task: 8192,
            reads_per_task: 2048,
        }
    }

    /// Total VFD records the generator will emit.
    pub fn records(&self) -> u64 {
        let writes = self.stages * self.tasks_per_stage * self.writes_per_task;
        let reads = self.stages.saturating_sub(1) * self.tasks_per_stage * self.reads_per_task;
        (writes + reads) as u64
    }
}

const EXTENT_LEN: u64 = 4096;

/// Disjoint-by-construction extent for write `op` of `task` in `stage`.
fn extent(cfg: &LintBenchConfig, stage: usize, task: usize, op: usize) -> u64 {
    (((stage * cfg.tasks_per_stage + task) * cfg.writes_per_task + op) as u64) * EXTENT_LEN
}

/// Builds the synthetic bundle: `stages × tasks` concurrent writers into one
/// shared file, disjoint regions, plus ordered cross-stage read-back.
pub fn synthetic_bundle(cfg: &LintBenchConfig) -> TraceBundle {
    let mut bundle = TraceBundle::new("lint_bench");
    let file = FileKey::new("bench.h5");
    let names: Vec<Vec<String>> = (0..cfg.stages)
        .map(|s| {
            (0..cfg.tasks_per_stage)
                .map(|t| format!("s{s:02}_writer_{t:02}"))
                .collect()
        })
        .collect();
    bundle.meta.stages = names
        .iter()
        .map(|stage| stage.iter().map(|n| TaskKey::new(n)).collect())
        .collect();

    for (stage, stage_names) in names.iter().enumerate() {
        // All of a stage's ops share one time window: tasks within the
        // stage are observably concurrent, across stages they are ordered.
        let t0 = (stage as u64) * 1_000_000;
        for (task, name) in stage_names.iter().enumerate() {
            let key = TaskKey::new(name);
            let dataset = ObjectKey::new(format!("/s{stage}/t{task}"));
            for op in 0..cfg.writes_per_task {
                bundle.vfd.push(VfdRecord {
                    task: key.clone(),
                    file: file.clone(),
                    kind: IoKind::Write,
                    offset: extent(cfg, stage, task, op),
                    len: EXTENT_LEN,
                    access: AccessType::RawData,
                    object: dataset.clone(),
                    start: Timestamp(t0 + op as u64),
                    end: Timestamp(t0 + op as u64 + 10),
                });
            }
            if stage > 0 {
                let upstream = ObjectKey::new(format!("/s{}/t{task}", stage - 1));
                for op in 0..cfg.reads_per_task {
                    bundle.vfd.push(VfdRecord {
                        task: key.clone(),
                        file: file.clone(),
                        kind: IoKind::Read,
                        offset: extent(cfg, stage - 1, task, op),
                        len: EXTENT_LEN,
                        access: AccessType::RawData,
                        object: upstream.clone(),
                        start: Timestamp(t0 + 500_000 + op as u64),
                        end: Timestamp(t0 + 500_000 + op as u64 + 10),
                    });
                }
            }
        }
    }
    bundle
}

/// One measured run of the streaming detector.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Trace records streamed through the detector.
    pub records: u64,
    /// Encoded `.dtb` size the detector streamed over.
    pub dtb_bytes: u64,
    /// Time to synthesize the bundle in memory, nanoseconds.
    pub build_ns: u64,
    /// Time to encode the bundle to `.dtb` bytes, nanoseconds.
    pub encode_ns: u64,
    /// `analyze_stream` wall time over the encoded bytes, nanoseconds.
    pub lint_ns: u64,
    /// Findings the detector reported (must be zero: the workload is clean
    /// by construction).
    pub findings: usize,
}

impl LintReport {
    /// Records streamed per second of detector wall time.
    pub fn records_per_sec(&self) -> f64 {
        if self.lint_ns == 0 {
            0.0
        } else {
            self.records as f64 * 1e9 / self.lint_ns as f64
        }
    }

    fn to_json(&self) -> Value {
        json!({
            "records": self.records,
            "dtb_bytes": self.dtb_bytes,
            "build_ns": self.build_ns,
            "encode_ns": self.encode_ns,
            "lint": {
                "wall_ns": self.lint_ns,
                "records_per_sec": self.records_per_sec(),
            },
            "findings": self.findings,
        })
    }
}

/// Synthesizes, encodes and stream-lints one trace.
pub fn run(cfg: &LintBenchConfig) -> LintReport {
    let t0 = Instant::now();
    let bundle = synthetic_bundle(cfg);
    let build_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let bytes = bundle.to_binary_bytes();
    let encode_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let (report, records) =
        analyze_stream(&bytes[..], &LintConfig::default()).expect("stream lint");
    let lint_ns = t0.elapsed().as_nanos() as u64;

    assert_eq!(records, cfg.records(), "generator must emit what it claims");
    LintReport {
        records,
        dtb_bytes: bytes.len() as u64,
        build_ns,
        encode_ns,
        lint_ns,
        findings: report.len(),
    }
}

/// Renders the tracked `BENCH_lint.json` document.
pub fn report_json(cfg: &LintBenchConfig, report: &LintReport) -> Value {
    json!({
        "bench": "lint",
        "mode": match cfg.scale { Scale::Quick => "smoke", Scale::Full => "full" },
        "shape": {
            "stages": cfg.stages,
            "tasks_per_stage": cfg.tasks_per_stage,
            "writes_per_task": cfg.writes_per_task,
            "reads_per_task": cfg.reads_per_task,
        },
        "detector": report.to_json(),
    })
}

/// The `--check` gate: the clean-by-construction trace must produce zero
/// findings, and a full-size (≥ 1M record) run must lint within 2 seconds.
pub fn check(cfg: &LintBenchConfig, report: &LintReport) -> Vec<String> {
    let mut failures = Vec::new();
    if report.findings != 0 {
        failures.push(format!(
            "detector reported {} finding(s) on a race-free trace",
            report.findings
        ));
    }
    if report.records >= 1_000_000 && report.lint_ns > 2_000_000_000 {
        failures.push(format!(
            "linting {} records took {:.2} s (budget 2 s)",
            report.records,
            report.lint_ns as f64 / 1e9
        ));
    }
    if matches!(cfg.scale, Scale::Full) && report.records < 1_000_000 {
        failures.push(format!(
            "full mode must stream ≥ 1M records, generated only {}",
            report.records
        ));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_lint::analyze_bundle;

    #[test]
    fn smoke_run_is_clean_and_counts_match() {
        let cfg = LintBenchConfig::smoke();
        let r = run(&cfg);
        assert_eq!(r.records, cfg.records());
        assert_eq!(r.findings, 0, "synthetic workload must be race-free");
        assert!(r.dtb_bytes > 0);
        assert!(check(&cfg, &r).is_empty(), "{:?}", check(&cfg, &r));
    }

    #[test]
    fn full_shape_clears_the_million_record_floor() {
        assert!(LintBenchConfig::full().records() >= 1_000_000);
    }

    #[test]
    fn a_planted_collision_is_not_silently_swallowed() {
        // Re-point one write of stage 0 task 1 at task 0's first extent;
        // the gate's zero-findings check must then fail.
        let cfg = LintBenchConfig::smoke();
        let mut bundle = synthetic_bundle(&cfg);
        let victim = extent(&cfg, 0, 0, 0);
        let hit = bundle
            .vfd
            .iter_mut()
            .find(|r| r.task.as_str() == "s00_writer_01" && r.kind == IoKind::Write)
            .expect("writer op present");
        hit.offset = victim;
        let report = analyze_bundle(&bundle, &LintConfig::default());
        assert!(!report.is_clean(), "planted overlap must surface");
    }

    #[test]
    fn report_document_shape() {
        let cfg = LintBenchConfig::smoke();
        let r = run(&cfg);
        let doc = report_json(&cfg, &r);
        assert_eq!(doc["bench"], "lint");
        assert_eq!(doc["mode"], "smoke");
        assert_eq!(doc["detector"]["records"].as_u64().unwrap(), cfg.records());
        assert!(doc["detector"]["lint"]["records_per_sec"].as_f64().unwrap() > 0.0);
        assert_eq!(doc["detector"]["findings"], 0);
    }
}
