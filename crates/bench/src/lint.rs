//! Detector-throughput benchmark: **synthesize → encode → stream-lint**.
//!
//! The race detector's promise is that it can gate CI: lint a million-record
//! binary trace in a couple of seconds, streaming, without materializing the
//! bundle. This bench measures exactly that promise and emits the tracked
//! `BENCH_lint.json`. The synthetic workload is the detector's worst
//! honest case — many concurrent writers per stage touching one shared
//! file with *disjoint* extents (so the interval index does maximal work
//! and must still report zero findings), plus cross-stage reads that
//! exercise the happens-before engine.

use crate::Scale;
use dayu_lint::{
    analyze_contracts, analyze_stream, check_conformance_stream, cost_model, CostConfig,
    LintConfig, StaticPrediction,
};
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::store::TraceBundle;
use dayu_trace::time::Timestamp;
use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
use dayu_workflow::{AffineExpr, IoContract, SymExtent, TaskSpec, WorkflowSpec};
use serde_json::{json, Value};
use std::time::Instant;

/// Shape of the synthetic trace.
#[derive(Clone, Copy, Debug)]
pub struct LintBenchConfig {
    /// Run size.
    pub scale: Scale,
    /// Stage-barrier count: stages run one after another, tasks within a
    /// stage are concurrent.
    pub stages: usize,
    /// Concurrent tasks per stage.
    pub tasks_per_stage: usize,
    /// Extents each task writes into its private region of the shared file.
    pub writes_per_task: usize,
    /// Extents each post-first-stage task reads back from the previous
    /// stage's region (ordered by the stage barrier, so never a race).
    pub reads_per_task: usize,
}

impl LintBenchConfig {
    /// Quick parameters for tests and the CI smoke job.
    pub fn smoke() -> Self {
        Self {
            scale: Scale::Quick,
            stages: 4,
            tasks_per_stage: 4,
            writes_per_task: 64,
            reads_per_task: 16,
        }
    }

    /// The tracked run: ≥ 1M records through the streaming detector.
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            stages: 8,
            tasks_per_stage: 16,
            writes_per_task: 8192,
            reads_per_task: 2048,
        }
    }

    /// Total VFD records the generator will emit.
    pub fn records(&self) -> u64 {
        let writes = self.stages * self.tasks_per_stage * self.writes_per_task;
        let reads = self.stages.saturating_sub(1) * self.tasks_per_stage * self.reads_per_task;
        (writes + reads) as u64
    }
}

const EXTENT_LEN: u64 = 4096;

/// Disjoint-by-construction extent for write `op` of `task` in `stage`.
fn extent(cfg: &LintBenchConfig, stage: usize, task: usize, op: usize) -> u64 {
    (((stage * cfg.tasks_per_stage + task) * cfg.writes_per_task + op) as u64) * EXTENT_LEN
}

/// Builds the synthetic bundle: `stages × tasks` concurrent writers into one
/// shared file, disjoint regions, plus ordered cross-stage read-back.
pub fn synthetic_bundle(cfg: &LintBenchConfig) -> TraceBundle {
    let mut bundle = TraceBundle::new("lint_bench");
    let file = FileKey::new("bench.h5");
    let names: Vec<Vec<String>> = (0..cfg.stages)
        .map(|s| {
            (0..cfg.tasks_per_stage)
                .map(|t| format!("s{s:02}_writer_{t:02}"))
                .collect()
        })
        .collect();
    bundle.meta.stages = names
        .iter()
        .map(|stage| stage.iter().map(TaskKey::new).collect())
        .collect();

    for (stage, stage_names) in names.iter().enumerate() {
        // All of a stage's ops share one time window: tasks within the
        // stage are observably concurrent, across stages they are ordered.
        let t0 = (stage as u64) * 1_000_000;
        for (task, name) in stage_names.iter().enumerate() {
            let key = TaskKey::new(name);
            let dataset = ObjectKey::new(format!("/s{stage}/t{task}"));
            for op in 0..cfg.writes_per_task {
                bundle.vfd.push(VfdRecord {
                    task: key.clone(),
                    file: file.clone(),
                    kind: IoKind::Write,
                    offset: extent(cfg, stage, task, op),
                    len: EXTENT_LEN,
                    access: AccessType::RawData,
                    object: dataset.clone(),
                    start: Timestamp(t0 + op as u64),
                    end: Timestamp(t0 + op as u64 + 10),
                });
            }
            if stage > 0 {
                let upstream = ObjectKey::new(format!("/s{}/t{task}", stage - 1));
                for op in 0..cfg.reads_per_task {
                    bundle.vfd.push(VfdRecord {
                        task: key.clone(),
                        file: file.clone(),
                        kind: IoKind::Read,
                        offset: extent(cfg, stage - 1, task, op),
                        len: EXTENT_LEN,
                        access: AccessType::RawData,
                        object: upstream.clone(),
                        start: Timestamp(t0 + 500_000 + op as u64),
                        end: Timestamp(t0 + 500_000 + op as u64 + 10),
                    });
                }
            }
        }
    }
    bundle
}

/// Workflow spec mirroring [`synthetic_bundle`] task for task, every task
/// carrying a symbolic [`IoContract`]. Extents are declared through bound
/// affine expressions (not pre-folded constants) so the static pass and
/// the conformance checker both pay the full hull-computation cost.
pub fn contract_spec(cfg: &LintBenchConfig) -> WorkflowSpec {
    let mut spec = WorkflowSpec::new("lint_bench");
    let n = AffineExpr::var("n");
    let r = AffineExpr::var("r");
    for stage in 0..cfg.stages {
        let tasks = (0..cfg.tasks_per_stage)
            .map(|task| {
                let mut c = IoContract::new()
                    .bind("n", cfg.writes_per_task as i64)
                    .bind("r", cfg.reads_per_task as i64)
                    .writes(
                        "bench.h5",
                        format!("/s{stage}/t{task}"),
                        SymExtent::span(0, n.clone() * EXTENT_LEN as i64),
                    );
                if stage > 0 {
                    c = c.reads(
                        "bench.h5",
                        format!("/s{}/t{task}", stage - 1),
                        SymExtent::span(0, r.clone() * EXTENT_LEN as i64),
                    );
                }
                TaskSpec::new(format!("s{stage:02}_writer_{task:02}"), |_| Ok(())).with_contract(c)
            })
            .collect();
        spec = spec.stage(format!("stage_{stage}"), tasks);
    }
    spec
}

/// One measured run of the streaming detector.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Trace records streamed through the detector.
    pub records: u64,
    /// Encoded `.dtb` size the detector streamed over.
    pub dtb_bytes: u64,
    /// Time to synthesize the bundle in memory, nanoseconds.
    pub build_ns: u64,
    /// Time to encode the bundle to `.dtb` bytes, nanoseconds.
    pub encode_ns: u64,
    /// `analyze_stream` wall time over the encoded bytes, nanoseconds.
    pub lint_ns: u64,
    /// Findings the detector reported (must be zero: the workload is clean
    /// by construction).
    pub findings: usize,
    /// `analyze_contracts` wall time over the mirrored spec, nanoseconds —
    /// the pre-run static pass, which never looks at the trace.
    pub contracts_ns: u64,
    /// Static contract findings (must be zero: disjoint by construction).
    pub contract_findings: usize,
    /// `check_conformance_stream` wall time over the encoded bytes,
    /// nanoseconds.
    pub conformance_ns: u64,
    /// Raw-data records the conformance sweep inspected.
    pub conformance_records: u64,
    /// Conformance findings (must be zero: the spec mirrors the trace).
    pub conformance_findings: usize,
    /// Static dataflow prediction wall time (sSDG/sFTG construction plus
    /// the abstract cost model), nanoseconds — also spec-sized, pre-run.
    pub predict_ns: u64,
    /// Predicted critical-path bytes of the mirrored spec (must be
    /// non-zero: every stage moves data).
    pub predict_cp_bytes: u64,
}

impl LintReport {
    /// Records streamed per second of detector wall time.
    pub fn records_per_sec(&self) -> f64 {
        if self.lint_ns == 0 {
            0.0
        } else {
            self.records as f64 * 1e9 / self.lint_ns as f64
        }
    }

    /// Records streamed per second of conformance wall time.
    pub fn conformance_records_per_sec(&self) -> f64 {
        if self.conformance_ns == 0 {
            0.0
        } else {
            self.records as f64 * 1e9 / self.conformance_ns as f64
        }
    }

    fn to_json(&self) -> Value {
        json!({
            "records": self.records,
            "dtb_bytes": self.dtb_bytes,
            "build_ns": self.build_ns,
            "encode_ns": self.encode_ns,
            "lint": {
                "wall_ns": self.lint_ns,
                "records_per_sec": self.records_per_sec(),
            },
            "findings": self.findings,
            "contracts": {
                "static_wall_ns": self.contracts_ns,
                "static_findings": self.contract_findings,
                "conformance_wall_ns": self.conformance_ns,
                "conformance_records_per_sec": self.conformance_records_per_sec(),
                "conformance_findings": self.conformance_findings,
            },
            "predict": {
                "wall_ns": self.predict_ns,
                "critical_path_bytes": self.predict_cp_bytes,
            },
        })
    }
}

/// Synthesizes, encodes and stream-lints one trace.
pub fn run(cfg: &LintBenchConfig) -> LintReport {
    let t0 = Instant::now();
    let bundle = synthetic_bundle(cfg);
    let build_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let bytes = bundle.to_binary_bytes();
    let encode_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let (report, records) =
        analyze_stream(&bytes[..], &LintConfig::default()).expect("stream lint");
    let lint_ns = t0.elapsed().as_nanos() as u64;

    let spec = contract_spec(cfg);
    let t0 = Instant::now();
    let contract_report = analyze_contracts(&spec, &LintConfig::default());
    let contracts_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let (conf_report, conf_records) =
        check_conformance_stream(&bytes[..], &spec).expect("stream conformance");
    let conformance_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let pred = StaticPrediction::from_spec(&spec);
    let costs = cost_model(&pred, &CostConfig::default());
    let predict_ns = t0.elapsed().as_nanos() as u64;

    assert_eq!(records, cfg.records(), "generator must emit what it claims");
    LintReport {
        records,
        dtb_bytes: bytes.len() as u64,
        build_ns,
        encode_ns,
        lint_ns,
        findings: report.len(),
        contracts_ns,
        contract_findings: contract_report.len(),
        conformance_ns,
        conformance_records: conf_records,
        conformance_findings: conf_report.len(),
        predict_ns,
        predict_cp_bytes: costs.critical_path_bytes,
    }
}

/// Renders the tracked `BENCH_lint.json` document.
pub fn report_json(cfg: &LintBenchConfig, report: &LintReport) -> Value {
    json!({
        "bench": "lint",
        "mode": match cfg.scale { Scale::Quick => "smoke", Scale::Full => "full" },
        "shape": {
            "stages": cfg.stages,
            "tasks_per_stage": cfg.tasks_per_stage,
            "writes_per_task": cfg.writes_per_task,
            "reads_per_task": cfg.reads_per_task,
        },
        "detector": report.to_json(),
    })
}

/// The `--check` gate: the clean-by-construction trace must produce zero
/// findings (race, static contract, and conformance), a full-size
/// (≥ 1M record) run must lint *and* conformance-sweep within 2 seconds
/// each, and the pre-run spec-sized passes — which never touch the
/// trace — must finish well under that: the static contract pass inside
/// 200 ms, the static dataflow prediction (graphs + cost model) inside
/// 300 ms.
pub fn check(cfg: &LintBenchConfig, report: &LintReport) -> Vec<String> {
    let mut failures = Vec::new();
    if report.findings != 0 {
        failures.push(format!(
            "detector reported {} finding(s) on a race-free trace",
            report.findings
        ));
    }
    if report.contract_findings != 0 {
        failures.push(format!(
            "static contract pass reported {} finding(s) on disjoint declarations",
            report.contract_findings
        ));
    }
    if report.conformance_findings != 0 {
        failures.push(format!(
            "conformance reported {} finding(s) on a trace its spec mirrors",
            report.conformance_findings
        ));
    }
    if report.records >= 1_000_000 && report.lint_ns > 2_000_000_000 {
        failures.push(format!(
            "linting {} records took {:.2} s (budget 2 s)",
            report.records,
            report.lint_ns as f64 / 1e9
        ));
    }
    if report.records >= 1_000_000 && report.conformance_ns > 2_000_000_000 {
        failures.push(format!(
            "conformance over {} records took {:.2} s (budget 2 s)",
            report.records,
            report.conformance_ns as f64 / 1e9
        ));
    }
    if report.contracts_ns > 200_000_000 {
        failures.push(format!(
            "static contract pass took {:.0} ms (budget 200 ms)",
            report.contracts_ns as f64 / 1e6
        ));
    }
    if report.predict_ns > 300_000_000 {
        failures.push(format!(
            "static dataflow prediction took {:.0} ms (budget 300 ms)",
            report.predict_ns as f64 / 1e6
        ));
    }
    if report.predict_cp_bytes == 0 {
        failures.push("predicted critical path is empty on a data-moving spec".into());
    }
    if matches!(cfg.scale, Scale::Full) && report.records < 1_000_000 {
        failures.push(format!(
            "full mode must stream ≥ 1M records, generated only {}",
            report.records
        ));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_lint::analyze_bundle;

    #[test]
    fn smoke_run_is_clean_and_counts_match() {
        let cfg = LintBenchConfig::smoke();
        let r = run(&cfg);
        assert_eq!(r.records, cfg.records());
        assert_eq!(r.findings, 0, "synthetic workload must be race-free");
        assert!(r.dtb_bytes > 0);
        assert!(check(&cfg, &r).is_empty(), "{:?}", check(&cfg, &r));
    }

    #[test]
    fn full_shape_clears_the_million_record_floor() {
        assert!(LintBenchConfig::full().records() >= 1_000_000);
    }

    #[test]
    fn a_planted_collision_is_not_silently_swallowed() {
        // Re-point one write of stage 0 task 1 at task 0's first extent;
        // the gate's zero-findings check must then fail.
        let cfg = LintBenchConfig::smoke();
        let mut bundle = synthetic_bundle(&cfg);
        let victim = extent(&cfg, 0, 0, 0);
        let hit = bundle
            .vfd
            .iter_mut()
            .find(|r| r.task.as_str() == "s00_writer_01" && r.kind == IoKind::Write)
            .expect("writer op present");
        hit.offset = victim;
        let report = analyze_bundle(&bundle, &LintConfig::default());
        assert!(!report.is_clean(), "planted overlap must surface");
    }

    #[test]
    fn report_document_shape() {
        let cfg = LintBenchConfig::smoke();
        let r = run(&cfg);
        let doc = report_json(&cfg, &r);
        assert_eq!(doc["bench"], "lint");
        assert_eq!(doc["mode"], "smoke");
        assert_eq!(doc["detector"]["records"].as_u64().unwrap(), cfg.records());
        assert!(doc["detector"]["lint"]["records_per_sec"].as_f64().unwrap() > 0.0);
        assert_eq!(doc["detector"]["findings"], 0);
        assert_eq!(doc["detector"]["contracts"]["static_findings"], 0);
        assert_eq!(doc["detector"]["contracts"]["conformance_findings"], 0);
        assert!(doc["detector"]["predict"]["wall_ns"].as_u64().is_some());
        assert!(
            doc["detector"]["predict"]["critical_path_bytes"]
                .as_u64()
                .unwrap()
                > 0
        );
    }

    #[test]
    fn prediction_of_the_mirrored_spec_is_sound() {
        // The spec mirrors the synthetic trace task for task, so the
        // predicted sSDG must contain the recorded one edge for edge.
        let cfg = LintBenchConfig::smoke();
        let bundle = synthetic_bundle(&cfg);
        let spec = contract_spec(&cfg);
        let sdg = dayu_analyzer::Analysis::run(&bundle).sdg;
        let cmp = StaticPrediction::from_spec(&spec).compare(&sdg);
        assert!(
            cmp.is_sound(),
            "{} missing, {} mismatched\n{}",
            cmp.missing,
            cmp.mismatched,
            cmp.report
        );
    }

    #[test]
    fn contract_spec_mirrors_the_trace() {
        // Every synthetic task carries a contract, the static pass proves
        // the declarations clean, and a replayed trace conforms to them
        // record for record.
        let cfg = LintBenchConfig::smoke();
        let spec = contract_spec(&cfg);
        assert_eq!(spec.task_count(), cfg.stages * cfg.tasks_per_stage);
        assert!(spec
            .stages
            .iter()
            .flat_map(|s| &s.tasks)
            .all(|t| t.contract.is_some()));
        let r = run(&cfg);
        assert_eq!(r.contract_findings, 0);
        assert_eq!(r.conformance_findings, 0);
        assert!(r.conformance_records > 0);
    }

    #[test]
    fn a_planted_spill_fails_the_conformance_gate() {
        // Stretch the first writer's *last* write one extent past its
        // declared footprint: the static pass still sees clean
        // declarations, but the conformance sweep must flag the spill.
        let cfg = LintBenchConfig::smoke();
        let mut bundle = synthetic_bundle(&cfg);
        let hit = bundle
            .vfd
            .iter_mut()
            .filter(|r| r.task.as_str() == "s00_writer_00" && r.kind == IoKind::Write)
            .max_by_key(|r| r.offset)
            .expect("writer op present");
        hit.len += EXTENT_LEN;
        let bytes = bundle.to_binary_bytes();
        let spec = contract_spec(&cfg);
        assert!(analyze_contracts(&spec, &LintConfig::default()).is_clean());
        let (report, _) = check_conformance_stream(&bytes[..], &spec).expect("stream");
        assert!(
            !report.is_clean(),
            "spill past the declared footprint must surface"
        );
    }
}
