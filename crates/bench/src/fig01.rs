//! Fig. 1 — the motivating fragmentation picture.
//!
//! Two datasets in one file, with variable-length content: their logical
//! data ends up scattered across disjoint file regions (descriptor extents
//! in one place, heap blocks elsewhere, metadata at the front). The
//! regenerator builds such a file, then reports every dataset's extent map
//! and the interleaving, as DaYu's address view exposes it.

use crate::{FigResult, Scale};
use dayu_hdf::{DataType, DatasetBuilder, H5File};
use dayu_mapper::Mapper;
use dayu_vfd::MemFs;
use dayu_workloads::util::{payload, varlen};

/// Builds the Fig. 1 file and returns `(dataset, extent_start, extent_len)`
/// rows plus address ranges of raw-data traffic per dataset from the VFD
/// trace.
pub fn run(scale: Scale) -> FigResult {
    let elements = match scale {
        Scale::Quick => 24u64,
        Scale::Full => 256,
    };
    let fs = MemFs::new();
    let mapper = Mapper::new("fig1");
    mapper.set_task("writer");
    let file = H5File::create(
        mapper.wrap_vfd(fs.create("frag.h5"), "frag.h5"),
        "frag.h5",
        mapper.file_options(),
    )
    .unwrap();
    let root = file.root();

    // Two VL datasets written interleaved — their heap payloads interleave
    // in the file exactly as in the paper's figure.
    let mut d1 = root
        .create_dataset(
            "dataset_1",
            DatasetBuilder::new(DataType::VarLen, &[elements]).chunks(&[8]),
        )
        .unwrap();
    let mut d2 = root
        .create_dataset(
            "dataset_2",
            DatasetBuilder::new(DataType::VarLen, &[elements]).chunks(&[8]),
        )
        .unwrap();
    for i in 0..elements {
        let a = payload(varlen(600, 1, i), i);
        let b = payload(varlen(900, 2, i), 1000 + i);
        d1.write_varlen(i, &[&a]).unwrap();
        d2.write_varlen(i, &[&b]).unwrap();
    }
    d1.close().unwrap();
    d2.close().unwrap();

    // Descriptor extents per dataset (chunk locations).
    let mut fig = FigResult::new(
        "fig1",
        "Fragmentation: file regions holding each dataset's descriptors and payload",
        &["dataset", "kind", "file_region"],
    );
    let mut d1 = root.open_dataset("dataset_1").unwrap();
    let mut d2 = root.open_dataset("dataset_2").unwrap();
    let mut extents = Vec::new();
    for (name, ds) in [("dataset_1", &mut d1), ("dataset_2", &mut d2)] {
        for (addr, len) in ds.extents().unwrap() {
            extents.push((name, addr, len));
            fig.row(vec![
                name.to_owned(),
                "descriptor-chunk".to_owned(),
                format!("[{addr}, {})", addr + len),
            ]);
        }
    }
    d1.close().unwrap();
    d2.close().unwrap();
    file.close().unwrap();

    // Raw-data address ranges per dataset from the trace (includes heap
    // payload regions).
    let bundle = mapper.into_bundle();
    let mut ranges: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    for r in &bundle.vfd {
        if r.kind.moves_data() && r.access == dayu_trace::vfd::AccessType::RawData {
            let name = r.object.as_str();
            if name.starts_with("/dataset_") {
                let e = ranges.entry(name).or_insert((u64::MAX, 0));
                e.0 = e.0.min(r.offset);
                e.1 = e.1.max(r.offset + r.len);
            }
        }
    }
    for (name, (lo, hi)) in &ranges {
        fig.row(vec![
            (*name).to_owned(),
            "raw-data span".to_owned(),
            format!("[{lo}, {hi})"),
        ]);
    }

    // The headline observation: each dataset's content is NOT contiguous —
    // extents of the two datasets interleave.
    let mut sorted = extents.clone();
    sorted.sort_by_key(|&(_, addr, _)| addr);
    let interleaved = sorted.windows(2).any(|w| w[0].0 != w[1].0);
    fig.note(format!(
        "datasets have {} extents each; interleaved in the file: {interleaved} \
         (paper: one dataset's content spreads over many regions)",
        extents.len() / 2
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_fragment_and_interleave() {
        let fig = run(Scale::Quick);
        // Multiple extents per dataset.
        let d1_extents = fig
            .rows
            .iter()
            .filter(|r| r[0] == "dataset_1" && r[1] == "descriptor-chunk")
            .count();
        assert!(d1_extents >= 2, "dataset_1 fragmented into {d1_extents}");
        assert!(fig.notes[0].contains("interleaved in the file: true"));
        // Raw-data spans reported for both datasets.
        assert!(fig.rows.iter().any(|r| r[0] == "/dataset_1"));
        assert!(fig.rows.iter().any(|r| r[0] == "/dataset_2"));
    }
}
