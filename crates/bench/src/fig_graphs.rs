//! Figs. 3–8 — the visualized graphs of Sections V and VI.
//!
//! Each regenerator records the relevant workflow, builds the FTG/SDG,
//! writes DOT/JSON/HTML artifacts into an output directory, and reports
//! the paper's headline observations as checked notes.

use crate::{FigResult, Scale};
use dayu_analyzer::{build_ftg, build_sdg, export, Analysis, Finding, NodeKind, SdgOptions};
use dayu_hdf::{DataType, DatasetBuilder, LayoutKind};
use dayu_mapper::Mapper;
use dayu_trace::store::TraceBundle;
use dayu_trace::vfd::IoKind;
use dayu_vfd::MemFs;
use dayu_workflow::{record, TaskIo};
use dayu_workloads::{arldm, ddmd, pyflextrkr};
use std::path::Path;

fn write_artifacts(dir: &Path, name: &str, bundle: &TraceBundle, regions: bool) {
    std::fs::create_dir_all(dir).expect("outdir");
    let ftg = build_ftg(bundle);
    let sdg = build_sdg(
        bundle,
        &SdgOptions {
            include_regions: regions,
            region_count: 4,
        },
    );
    for (g, kind) in [(&ftg, "ftg"), (&sdg, "sdg")] {
        std::fs::write(dir.join(format!("{name}_{kind}.dot")), export::to_dot(g)).unwrap();
        std::fs::write(dir.join(format!("{name}_{kind}.html")), export::to_html(g)).unwrap();
        std::fs::write(dir.join(format!("{name}_{kind}.json")), export::to_json(g)).unwrap();
    }
}

/// Fig. 3 — the example single-task SDG with address-region nodes.
pub fn run_fig3(out_dir: &Path, _scale: Scale) -> FigResult {
    let fs = MemFs::new();
    let mapper = Mapper::new("example");
    mapper.set_task("task");
    let io = TaskIo::new(&fs, &mapper);
    let f = io.create("file.h5").unwrap();
    for name in ["dataset_1", "dataset_2"] {
        let mut ds = f
            .root()
            .create_dataset(
                name,
                DatasetBuilder::new(DataType::Float { width: 8 }, &[512]),
            )
            .unwrap();
        ds.write_f64s(&vec![1.0; 512]).unwrap();
        ds.close().unwrap();
    }
    f.close().unwrap();
    let bundle = mapper.into_bundle();
    write_artifacts(out_dir, "fig3", &bundle, true);

    let sdg = build_sdg(
        &bundle,
        &SdgOptions {
            include_regions: true,
            region_count: 2,
        },
    );
    let mut fig = FigResult::new(
        "fig3",
        "Example SDG: task → datasets → address regions → file",
        &["node_kind", "count"],
    );
    for kind in [
        NodeKind::Task,
        NodeKind::Dataset,
        NodeKind::AddrRegion,
        NodeKind::File,
    ] {
        fig.row(vec![
            format!("{kind:?}"),
            sdg.nodes_of(kind).count().to_string(),
        ]);
    }
    fig.note(format!(
        "artifacts: {}/fig3_sdg.html (+dot, json)",
        out_dir.display()
    ));
    fig
}

/// Fig. 4 — PyFLEXTRKR nine-stage FTG with its three observations.
pub fn run_fig4(out_dir: &Path, scale: Scale) -> FigResult {
    let cfg = match scale {
        Scale::Quick => pyflextrkr::PyflextrkrConfig {
            input_files: 4,
            input_bytes: 64 << 10,
            feature_bytes: 32 << 10,
            small_datasets: 16,
            small_dataset_bytes: 400,
            small_dataset_accesses: 3,
            compute_ns: 0,
        },
        Scale::Full => pyflextrkr::PyflextrkrConfig::default(),
    };
    let fs = MemFs::new();
    pyflextrkr::prepare_inputs_untraced(&fs, &cfg).unwrap();
    let run = record(&pyflextrkr::workflow(&cfg), &fs).unwrap();
    write_artifacts(out_dir, "fig4", &run.bundle, false);
    let analysis = Analysis::run(&run.bundle);

    let mut fig = FigResult::new(
        "fig4",
        "PyFLEXTRKR FTG observations",
        &["observation", "evidence"],
    );
    let reused = analysis
        .findings
        .iter()
        .filter(|f| matches!(f, Finding::DataReuse { .. }))
        .count();
    fig.row(vec![
        "data reuse (orange edges)".into(),
        format!("{reused} files with ≥2 readers"),
    ]);
    let war = analysis
        .findings
        .iter()
        .any(|f| matches!(f, Finding::WriteAfterRead { task, .. } | Finding::ReadAfterWrite { task, .. } if task == "run_gettracks"));
    fig.row(vec![
        "write-after-read at run_gettracks (circle 1)".into(),
        war.to_string(),
    ]);
    let tdi = analysis
        .findings
        .iter()
        .filter(|f| matches!(f, Finding::TimeDependentInput { .. }))
        .count();
    fig.row(vec![
        "time-dependent inputs (circle 2)".into(),
        format!("{tdi} late inputs (PF files)"),
    ]);
    let disp = analysis
        .findings
        .iter()
        .filter(|f| matches!(f, Finding::DisposableData { .. }))
        .count();
    fig.row(vec![
        "disposable data (blue edges)".into(),
        format!("{disp} single-consumer files"),
    ]);
    fig.note(format!("artifacts: {}/fig4_ftg.html", out_dir.display()));
    fig
}

/// Fig. 5 — stage-9 SDG: many small datasets per file.
pub fn run_fig5(out_dir: &Path, scale: Scale) -> FigResult {
    let cfg = match scale {
        Scale::Quick => pyflextrkr::PyflextrkrConfig {
            input_files: 3,
            input_bytes: 32 << 10,
            feature_bytes: 16 << 10,
            small_datasets: 24,
            small_dataset_bytes: 400,
            small_dataset_accesses: 3,
            compute_ns: 0,
        },
        Scale::Full => pyflextrkr::PyflextrkrConfig::default(),
    };
    let fs = MemFs::new();
    pyflextrkr::prepare_inputs_untraced(&fs, &cfg).unwrap();
    let run = record(&pyflextrkr::workflow(&cfg), &fs).unwrap();
    // Restrict to the stage-9 task's records for the focused SDG.
    let mut stage9 = TraceBundle::new("pyflextrkr-stage9");
    stage9.meta.page_size = run.bundle.meta.page_size;
    stage9.push_task("run_speed".into());
    stage9.vfd = run
        .bundle
        .vfd
        .iter()
        .filter(|r| r.task.as_str() == "run_speed")
        .cloned()
        .collect();
    stage9.vol = run
        .bundle
        .vol
        .iter()
        .filter(|r| r.task.as_str() == "run_speed")
        .cloned()
        .collect();
    write_artifacts(out_dir, "fig5", &stage9, false);

    let analysis = Analysis::run(&run.bundle);
    let mut fig = FigResult::new(
        "fig5",
        "PyFLEXTRKR stage-9 SDG: small-dataset scattering",
        &["file", "small_datasets", "mean_bytes"],
    );
    for f in &analysis.findings {
        if let Finding::SmallScatteredDatasets {
            file,
            dataset_count,
            mean_bytes,
        } = f
        {
            fig.row(vec![
                file.clone(),
                dataset_count.to_string(),
                format!("{mean_bytes:.0}"),
            ]);
        }
    }
    fig.note("paper: many sub-500-byte datasets per file cause frequent metadata access");
    fig.note(format!("artifacts: {}/fig5_sdg.html", out_dir.display()));
    fig
}

fn ddmd_cfg(scale: Scale) -> ddmd::DdmdConfig {
    match scale {
        Scale::Quick => ddmd::DdmdConfig {
            sim_tasks: 4,
            iterations: 1,
            contact_map_dim: 32,
            point_cloud_points: 64,
            scalar_series_len: 32,
            compute_ns: 0,
            ..Default::default()
        },
        Scale::Full => ddmd::DdmdConfig::default(),
    }
}

/// Fig. 6 — DDMD FTG with its observations.
pub fn run_fig6(out_dir: &Path, scale: Scale) -> FigResult {
    let fs = MemFs::new();
    let run = record(&ddmd::workflow(&ddmd_cfg(scale)), &fs).unwrap();
    write_artifacts(out_dir, "fig6", &run.bundle, false);
    let analysis = Analysis::run(&run.bundle);

    let mut fig = FigResult::new(
        "fig6",
        "DDMD FTG observations",
        &["observation", "evidence"],
    );
    let sim_readers = analysis
        .findings
        .iter()
        .filter(
            |f| matches!(f, Finding::DataReuse { file, .. } if file.starts_with("stage0000_task")),
        )
        .count();
    fig.row(vec![
        "aggregate+inference read all sim outputs (circles 1, 3)".into(),
        format!("{sim_readers} sim files multi-read"),
    ]);
    let raw = analysis
        .findings
        .iter()
        .any(|f| matches!(f, Finding::ReadAfterWrite { task, file } if task.starts_with("training") && file.contains("embeddings")));
    fig.row(vec![
        "training re-reads embedding files (circle 2)".into(),
        raw.to_string(),
    ]);
    let indep = analysis
        .findings
        .iter()
        .any(|f| matches!(f, Finding::IndependentTasks { first, second } if first.starts_with("training") && second.starts_with("inference")));
    fig.row(vec![
        "training and inference share no files".into(),
        indep.to_string(),
    ]);
    fig.note(format!("artifacts: {}/fig6_ftg.html", out_dir.display()));
    fig
}

/// Fig. 7 — the aggregate→training SDG with the contact_map pop-up.
pub fn run_fig7(out_dir: &Path, scale: Scale) -> FigResult {
    let fs = MemFs::new();
    let run = record(&ddmd::workflow(&ddmd_cfg(scale)), &fs).unwrap();
    write_artifacts(out_dir, "fig7", &run.bundle, false);

    let sdg = build_sdg(&run.bundle, &SdgOptions::default());
    let mut fig = FigResult::new(
        "fig7",
        "DDMD aggregate→training: the contact_map is metadata-only for training",
        &["edge", "popup"],
    );
    // Find the aggregated contact_map → training edge and print its
    // Fig.-7-style popup.
    let d = sdg
        .find(NodeKind::Dataset, "aggregated_0000.h5:/contact_map")
        .expect("aggregated contact_map node");
    for (i, e) in sdg.edges.iter().enumerate() {
        if e.from == d.id && sdg.nodes[e.to].label.starts_with("training") {
            fig.row(vec![
                format!("{} → {}", sdg.nodes[e.from].label, sdg.nodes[e.to].label),
                export::edge_popup(&sdg, i).replace('\n', " | "),
            ]);
        }
    }
    let analysis = Analysis::run(&run.bundle);
    let unused = analysis.findings.iter().any(|f| {
        matches!(
            f,
            Finding::UnusedDataset { dataset, .. } if dataset == "aggregated_0000.h5:/contact_map"
        )
    });
    fig.note(format!(
        "detector flags aggregated contact_map as unused-by-training: {unused} \
         (paper: data access count 0, metadata access count 1)"
    ));
    fig.note(format!("artifacts: {}/fig7_sdg.html", out_dir.display()));
    fig
}

/// Fig. 8 — ARLDM SDG, contiguous vs chunked, with address regions.
pub fn run_fig8(out_dir: &Path, scale: Scale) -> FigResult {
    // chunk_elems (stories/5) must exceed the app's write batch (8) for
    // the chunked layout's descriptor batching to show.
    let stories = match scale {
        Scale::Quick => 96,
        Scale::Full => 256,
    };
    let mut fig = FigResult::new(
        "fig8",
        "ARLDM arldm_saveh5 SDG: contiguous (a) vs chunked (b)",
        &[
            "layout",
            "datasets",
            "addr_regions",
            "write_ops",
            "file_bytes",
        ],
    );
    let mut write_ops = Vec::new();
    for (layout, tag) in [
        (LayoutKind::Contiguous, "fig8a"),
        (LayoutKind::Chunked, "fig8b"),
    ] {
        let cfg = arldm::ArldmConfig {
            stories,
            layout,
            chunk_elems: (stories as u64 / 5).max(1),
            ..Default::default()
        };
        let fs = MemFs::new();
        let run = record(&arldm::workflow(&cfg), &fs).unwrap();
        write_artifacts(out_dir, tag, &run.bundle, true);
        let sdg = build_sdg(
            &run.bundle,
            &SdgOptions {
                include_regions: true,
                region_count: 4,
            },
        );
        let prep_writes = run
            .bundle
            .vfd
            .iter()
            .filter(|r| r.kind == IoKind::Write && r.task.as_str() == "arldm_saveh5")
            .count();
        write_ops.push(prep_writes);
        fig.row(vec![
            format!("{layout:?}"),
            sdg.nodes_of(NodeKind::Dataset).count().to_string(),
            sdg.nodes_of(NodeKind::AddrRegion).count().to_string(),
            prep_writes.to_string(),
            fs.size_of(arldm::OUTPUT_FILE).unwrap_or(0).to_string(),
        ]);
    }
    fig.note(format!(
        "chunked layout uses {:.2}x fewer write ops than contiguous (paper: ~half)",
        write_ops[0] as f64 / write_ops[1].max(1) as f64
    ));
    fig.note("paper: chunked uses only slightly more file address space (metadata region)");
    fig
}

/// Runs all graph figures into `out_dir`.
pub fn run_all(out_dir: &Path, scale: Scale) -> Vec<FigResult> {
    vec![
        run_fig3(out_dir, scale),
        run_fig4(out_dir, scale),
        run_fig5(out_dir, scale),
        run_fig6(out_dir, scale),
        run_fig7(out_dir, scale),
        run_fig8(out_dir, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dayu-figs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn fig3_has_all_four_node_layers() {
        let dir = outdir("fig3");
        let fig = run_fig3(&dir, Scale::Quick);
        let get = |kind: &str| -> usize {
            fig.rows
                .iter()
                .find(|r| r[0] == kind)
                .map(|r| r[1].parse().unwrap())
                .unwrap()
        };
        assert_eq!(get("Task"), 1);
        assert_eq!(get("File"), 1);
        assert!(get("Dataset") >= 2);
        assert!(get("AddrRegion") >= 1);
        assert!(dir.join("fig3_sdg.html").exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn fig4_observations_hold() {
        let dir = outdir("fig4");
        let fig = run_fig4(&dir, Scale::Quick);
        let war = fig
            .rows
            .iter()
            .find(|r| r[0].contains("write-after-read"))
            .unwrap();
        assert_eq!(war[1], "true");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn fig7_popup_shows_metadata_only_access() {
        let dir = outdir("fig7");
        let fig = run_fig7(&dir, Scale::Quick);
        assert!(!fig.rows.is_empty(), "contact_map→training edge exists");
        let popup = &fig.rows[0][1];
        assert!(
            popup.contains("HDF5 Data Access Count : 0"),
            "no data accesses: {popup}"
        );
        assert!(popup.contains("Operation : read_only"));
        assert!(fig.notes[0].contains("true"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn fig8_chunked_halves_write_ops() {
        let dir = outdir("fig8");
        let fig = run_fig8(&dir, Scale::Quick);
        assert_eq!(fig.rows.len(), 2);
        let contig: f64 = fig.rows[0][3].parse().unwrap();
        let chunked: f64 = fig.rows[1][3].parse().unwrap();
        assert!(
            contig > 1.4 * chunked,
            "contiguous {contig} vs chunked {chunked} write ops"
        );
        assert!(dir.join("fig8a_sdg.html").exists());
        assert!(dir.join("fig8b_sdg.html").exists());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
