//! Fig. 11 — PyFLEXTRKR stages 3–5: baseline vs DaYu-optimized placement.
//!
//! The paper evaluates two configurations on the GPU cluster: C1 (170 MB
//! of inputs, 48 processes, 2 nodes) and C2 (1.2 GB, 240 processes, 8
//! nodes), both scaled down here. The baseline runs stages 3–5 wherever
//! the scheduler put them, with all files on BeeGFS. DaYu's analysis finds
//! the all-to-all → fan-in → one-to-one chain (`run_gettracks` →
//! `run_trackstats` → `run_identifymcs`), so the optimized plan stages the
//! shared inputs onto one node's SSD, co-schedules all three stages there,
//! keeps intermediate outputs node-local, and asynchronously stages the
//! result back out. Paper result: 1.6x overall, up to 2.6x on stage 3.

use crate::{ms, speedup, speedup_f, FigResult, Scale};
use dayu_sim::cluster::{Cluster, Placement};
use dayu_sim::engine::Engine;
use dayu_sim::program::SimTask;
use dayu_sim::tiers::TierKind;
use dayu_vfd::MemFs;
use dayu_workflow::{file_written_bytes, record, to_sim_tasks, transform, Schedule};
use dayu_workloads::pyflextrkr::{self, track_file, PyflextrkrConfig};

/// One configuration's result.
pub struct PlacementOutcome {
    /// Configuration label (`"C1"`, `"C2"`).
    pub label: String,
    /// Baseline per-phase times (stage-in, s3, s4, s5, stage-out), ns.
    pub baseline_phases: [u64; 5],
    /// Optimized per-phase times, ns.
    pub optimized_phases: [u64; 5],
    /// Baseline end-to-end makespan, ns.
    pub baseline_makespan: u64,
    /// Optimized end-to-end makespan, ns.
    pub optimized_makespan: u64,
}

impl PlacementOutcome {
    /// Overall speedup.
    pub fn overall_speedup(&self) -> f64 {
        speedup_f(self.baseline_makespan, self.optimized_makespan)
    }

    /// Stage-3 speedup.
    pub fn stage3_speedup(&self) -> f64 {
        speedup_f(self.baseline_phases[1], self.optimized_phases[1])
    }
}

const STAGE_TASKS: [&str; 3] = ["run_gettracks", "run_trackstats", "run_identifymcs"];

/// Runs one configuration: records the workflow, extracts stages 3–5, and
/// replays baseline vs optimized plans on a GPU cluster of `nodes`.
pub fn run_configuration(cfg: &PyflextrkrConfig, nodes: usize, label: &str) -> PlacementOutcome {
    let fs = MemFs::new();
    pyflextrkr::prepare_inputs_untraced(&fs, cfg).expect("inputs");
    let run = record(&pyflextrkr::workflow(cfg), &fs).expect("record");

    // Stage 3–5 sub-job, extracted from the full replay job.
    let full = to_sim_tasks(&run, &Schedule::round_robin(&run, nodes));
    let sub: Vec<SimTask> = STAGE_TASKS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let t = full
                .iter()
                .find(|t| t.name == *name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .clone();
            SimTask {
                // Chain deps within the sub-job.
                deps: if i == 0 { vec![] } else { vec![i - 1] },
                // Baseline scheduling: each stage landed on a different node.
                node: i % nodes,
                ..t
            }
        })
        .collect();

    let cluster = Cluster::gpu_cluster(nodes);

    // ---- Baseline: everything on BeeGFS, stages on different nodes.
    let baseline_tasks = sub.clone();
    let baseline = Engine::new(&cluster, &Placement::new())
        .run(&baseline_tasks)
        .expect("baseline sim");

    // ---- Optimized: stage inputs in to node 0 SSD, co-schedule, keep
    // intermediates local, stage the result out asynchronously.
    let mut opt = sub.clone();
    for t in &mut opt {
        t.node = 0;
    }
    let mut placement = Placement::new();
    // Stage-in: the track files every stage-3/4 read comes from.
    let mut stage_in_names = Vec::new();
    for i in 0..cfg.input_files {
        let f = track_file(i);
        let bytes = file_written_bytes(&run, &f);
        if bytes > 0 {
            transform::stage_in(&mut opt, &mut placement, &f, bytes, 0, TierKind::NvmeSsd);
            stage_in_names.push(format!("stage_in:{f}"));
        }
    }
    // Intermediate outputs node-local.
    for t in STAGE_TASKS {
        transform::place_outputs_local(&opt, &mut placement, t, TierKind::NvmeSsd);
    }
    // Async stage-out of the stage-5 product.
    let mcs_bytes = file_written_bytes(&run, "mcs.h5").max(1);
    transform::stage_out_async(&mut opt, "mcs.h5", mcs_bytes, 0);
    let optimized = Engine::new(&cluster, &placement)
        .run(&opt)
        .expect("optimized sim");

    let phase = |report: &dayu_sim::engine::SimReport, name: &str| -> u64 {
        report.task(name).map(|t| t.duration_ns()).unwrap_or(0)
    };
    let stage_in_span = |report: &dayu_sim::engine::SimReport| -> u64 {
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for t in &report.tasks {
            if t.name.starts_with("stage_in:") {
                lo = lo.min(t.start_ns);
                hi = hi.max(t.end_ns);
            }
        }
        hi.saturating_sub(if lo == u64::MAX { 0 } else { lo })
    };

    PlacementOutcome {
        label: label.to_owned(),
        baseline_phases: [
            0,
            phase(&baseline, "run_gettracks"),
            phase(&baseline, "run_trackstats"),
            phase(&baseline, "run_identifymcs"),
            0,
        ],
        optimized_phases: [
            stage_in_span(&optimized),
            phase(&optimized, "run_gettracks"),
            phase(&optimized, "run_trackstats"),
            phase(&optimized, "run_identifymcs"),
            phase(&optimized, "stage_out:mcs.h5"),
        ],
        baseline_makespan: baseline.makespan_ns,
        optimized_makespan: optimized.makespan_ns,
    }
}

fn scaled_configs(scale: Scale) -> Vec<(PyflextrkrConfig, usize, &'static str)> {
    match scale {
        Scale::Quick => vec![
            (
                PyflextrkrConfig {
                    input_files: 8,
                    input_bytes: 128 << 10,
                    feature_bytes: 64 << 10,
                    small_datasets: 8,
                    small_dataset_bytes: 400,
                    small_dataset_accesses: 2,
                    compute_ns: 15_000_000,
                },
                2,
                "C1",
            ),
            (
                PyflextrkrConfig {
                    input_files: 16,
                    input_bytes: 256 << 10,
                    feature_bytes: 128 << 10,
                    small_datasets: 8,
                    small_dataset_bytes: 400,
                    small_dataset_accesses: 2,
                    compute_ns: 15_000_000,
                },
                8,
                "C2",
            ),
        ],
        Scale::Full => vec![
            (
                // C1 at ~1/10 of the paper's 170 MB.
                PyflextrkrConfig {
                    input_files: 48,
                    input_bytes: (17 << 20) / 48,
                    feature_bytes: 256 << 10,
                    small_datasets: 32,
                    small_dataset_bytes: 400,
                    small_dataset_accesses: 23,
                    compute_ns: 50_000_000,
                },
                2,
                "C1",
            ),
            (
                // C2 at ~1/10 of 1.2 GB.
                PyflextrkrConfig {
                    input_files: 120,
                    input_bytes: (120 << 20) / 120,
                    feature_bytes: 512 << 10,
                    small_datasets: 32,
                    small_dataset_bytes: 400,
                    small_dataset_accesses: 23,
                    compute_ns: 50_000_000,
                },
                8,
                "C2",
            ),
        ],
    }
}

/// Regenerates Fig. 11.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig11",
        "PyFLEXTRKR stages 3–5: baseline (BeeGFS) vs DaYu-optimized (SSD + co-scheduling), ms",
        &["config", "phase", "baseline_ms", "dayu_ms"],
    );
    let phases = ["Stage-In", "Stage 3", "Stage 4", "Stage 5", "Stage-Out"];
    for (cfg, nodes, label) in scaled_configs(scale) {
        let out = run_configuration(&cfg, nodes, label);
        for (i, phase) in phases.iter().enumerate() {
            fig.row(vec![
                label.to_owned(),
                (*phase).to_owned(),
                ms(out.baseline_phases[i]),
                ms(out.optimized_phases[i]),
            ]);
        }
        fig.note(format!(
            "{label}: overall speedup {} (paper: 1.6x); stage-3 speedup {} (paper C1: 2.6x)",
            speedup(out.baseline_makespan, out.optimized_makespan),
            speedup(out.baseline_phases[1], out.optimized_phases[1]),
        ));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_plan_beats_baseline() {
        for (cfg, nodes, label) in scaled_configs(Scale::Quick) {
            let out = run_configuration(&cfg, nodes, label);
            assert!(
                out.overall_speedup() > 1.15,
                "{label}: expected a tangible win, got {:.2}x",
                out.overall_speedup()
            );
            assert!(
                out.stage3_speedup() > 1.3,
                "{label}: stage 3 should improve most, got {:.2}x",
                out.stage3_speedup()
            );
        }
    }

    #[test]
    fn figure_renders_all_phases() {
        let fig = run(Scale::Quick);
        assert_eq!(fig.rows.len(), 10, "5 phases x 2 configs");
        let text = fig.render();
        assert!(text.contains("Stage-In"));
        assert!(text.contains("C2"));
        assert!(text.contains("overall speedup"));
    }
}
