//! The replay vocabulary: per-task operation programs.
//!
//! A [`SimTask`] is a node assignment, a dependency list, and a sequence of
//! [`SimOp`]s — typically converted from the VFD records DaYu collected
//! during a profiled run (`dayu-workflow` provides that bridge), so the
//! simulated I/O is exactly the I/O the real format library performed.

use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
use serde::{Deserialize, Serialize};

/// Task index within a job.
pub type TaskId = usize;

/// Direction of a data operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoDir {
    /// Read from the file.
    Read,
    /// Write to the file.
    Write,
}

/// One step of a task's program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SimOp {
    /// A low-level I/O operation against a file.
    Io {
        /// Target file name (resolved through the placement).
        file: String,
        /// Read or write.
        dir: IoDir,
        /// Bytes moved.
        bytes: u64,
        /// Metadata (true) vs raw data (false) — metadata ops pay the
        /// metadata-server cost on networked tiers.
        metadata: bool,
    },
    /// Pure computation for the given duration.
    Compute {
        /// Nanoseconds of compute.
        nanos: u64,
    },
}

impl SimOp {
    /// Convenience raw-data read.
    pub fn read(file: impl Into<String>, bytes: u64) -> Self {
        SimOp::Io {
            file: file.into(),
            dir: IoDir::Read,
            bytes,
            metadata: false,
        }
    }

    /// Convenience raw-data write.
    pub fn write(file: impl Into<String>, bytes: u64) -> Self {
        SimOp::Io {
            file: file.into(),
            dir: IoDir::Write,
            bytes,
            metadata: false,
        }
    }

    /// Convenience metadata operation.
    pub fn metadata(file: impl Into<String>, dir: IoDir, bytes: u64) -> Self {
        SimOp::Io {
            file: file.into(),
            dir,
            bytes,
            metadata: true,
        }
    }

    /// Convenience compute phase.
    pub fn compute(nanos: u64) -> Self {
        SimOp::Compute { nanos }
    }

    /// Whether this op is I/O (vs compute).
    pub fn is_io(&self) -> bool {
        matches!(self, SimOp::Io { .. })
    }

    /// Bytes moved (0 for compute).
    pub fn bytes(&self) -> u64 {
        match self {
            SimOp::Io { bytes, .. } => *bytes,
            SimOp::Compute { .. } => 0,
        }
    }
}

/// One task of a simulated job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimTask {
    /// Human-readable name (usually the traced task name).
    pub name: String,
    /// Node the task runs on.
    pub node: usize,
    /// Tasks (by index) that must finish before this one starts.
    pub deps: Vec<TaskId>,
    /// The operation sequence.
    pub program: Vec<SimOp>,
}

impl SimTask {
    /// A task with no dependencies on node 0.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            node: 0,
            deps: Vec::new(),
            program: Vec::new(),
        }
    }

    /// Assigns the node.
    pub fn on_node(mut self, node: usize) -> Self {
        self.node = node;
        self
    }

    /// Adds dependencies.
    pub fn after(mut self, deps: &[TaskId]) -> Self {
        self.deps.extend_from_slice(deps);
        self
    }

    /// Sets the program.
    pub fn with_program(mut self, program: Vec<SimOp>) -> Self {
        self.program = program;
        self
    }

    /// Total bytes of I/O in the program.
    pub fn total_io_bytes(&self) -> u64 {
        self.program.iter().map(SimOp::bytes).sum()
    }

    /// Number of I/O operations in the program.
    pub fn io_op_count(&self) -> usize {
        self.program.iter().filter(|o| o.is_io()).count()
    }
}

/// Converts one task's VFD records (in trace order) to a replay program.
/// Lifecycle records (open/close/flush/truncate) are dropped — their cost is
/// folded into tier latency; data and metadata ops are preserved exactly.
pub fn program_from_vfd_records<'a>(
    records: impl IntoIterator<Item = &'a VfdRecord>,
) -> Vec<SimOp> {
    records
        .into_iter()
        .filter(|r| r.kind.moves_data())
        .map(|r| SimOp::Io {
            file: r.file.as_str().to_owned(),
            dir: if r.kind == IoKind::Read {
                IoDir::Read
            } else {
                IoDir::Write
            },
            bytes: r.len,
            metadata: r.access == AccessType::Metadata,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
    use dayu_trace::time::Timestamp;

    #[test]
    fn op_constructors() {
        let r = SimOp::read("f", 100);
        assert!(r.is_io());
        assert_eq!(r.bytes(), 100);
        let c = SimOp::compute(5_000);
        assert!(!c.is_io());
        assert_eq!(c.bytes(), 0);
        let m = SimOp::metadata("f", IoDir::Write, 12);
        match m {
            SimOp::Io { metadata, .. } => assert!(metadata),
            _ => unreachable!(),
        }
    }

    #[test]
    fn task_builder_and_accounting() {
        let t = SimTask::new("train")
            .on_node(3)
            .after(&[0, 1])
            .with_program(vec![
                SimOp::read("a", 100),
                SimOp::compute(10),
                SimOp::write("b", 50),
            ]);
        assert_eq!(t.node, 3);
        assert_eq!(t.deps, vec![0, 1]);
        assert_eq!(t.total_io_bytes(), 150);
        assert_eq!(t.io_op_count(), 2);
    }

    fn rec(kind: IoKind, len: u64, access: AccessType) -> VfdRecord {
        VfdRecord {
            task: TaskKey::new("t"),
            file: FileKey::new("f.h5"),
            kind,
            offset: 0,
            len,
            access,
            object: ObjectKey::new("/d"),
            start: Timestamp(0),
            end: Timestamp(1),
        }
    }

    #[test]
    fn vfd_conversion_preserves_data_ops_only() {
        let records = vec![
            rec(IoKind::Open, 0, AccessType::Metadata),
            rec(IoKind::Write, 512, AccessType::Metadata),
            rec(IoKind::Write, 4096, AccessType::RawData),
            rec(IoKind::Read, 64, AccessType::Metadata),
            rec(IoKind::Flush, 0, AccessType::Metadata),
            rec(IoKind::Close, 0, AccessType::Metadata),
        ];
        let prog = program_from_vfd_records(&records);
        assert_eq!(prog.len(), 3);
        assert_eq!(
            prog[0],
            SimOp::Io {
                file: "f.h5".into(),
                dir: IoDir::Write,
                bytes: 512,
                metadata: true
            }
        );
        assert_eq!(
            prog[1],
            SimOp::Io {
                file: "f.h5".into(),
                dir: IoDir::Write,
                bytes: 4096,
                metadata: false
            }
        );
        assert_eq!(
            prog[2],
            SimOp::Io {
                file: "f.h5".into(),
                dir: IoDir::Read,
                bytes: 64,
                metadata: true
            }
        );
    }
}
