//! Node-local data buffering — a Hermes-style caching middleware model.
//!
//! The paper's "customized caching" and "customized prefetching" guidelines
//! lean on a data-buffer middleware (Hermes) that keeps hot data in the
//! fastest tier. Modeling it as *placement* alone ignores capacity; this
//! module adds a per-node, byte-budgeted, LRU **read cache**: once a task
//! on a node has read a file, subsequent reads of that file from the same
//! node are served at RAM cost, until the file is evicted by the budget.
//!
//! Granularity is whole-file (the middleware caches what flows through
//! it); a file's cached footprint grows as more of its bytes are touched.
//! Writes are write-through — they pay the home tier's cost and refresh
//! the cached copy.

use std::collections::HashMap;

/// Cache capacity configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Byte budget of each node's buffer.
    pub bytes_per_node: u64,
}

impl CacheConfig {
    /// A buffer of `bytes` per node.
    pub fn per_node(bytes: u64) -> Self {
        Self {
            bytes_per_node: bytes,
        }
    }
}

#[derive(Default)]
struct Entry {
    bytes: u64,
    last_use: u64,
}

/// Per-node LRU file caches.
pub struct CacheState {
    cfg: CacheConfig,
    nodes: Vec<HashMap<String, Entry>>,
    used: Vec<u64>,
    tick: u64,
    /// Read operations served from the cache (diagnostics).
    pub hits: u64,
    /// Read operations that went to storage.
    pub misses: u64,
}

impl CacheState {
    /// Empty caches for `nodes` nodes.
    pub fn new(cfg: CacheConfig, nodes: usize) -> Self {
        Self {
            cfg,
            nodes: (0..nodes).map(|_| HashMap::new()).collect(),
            used: vec![0; nodes],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether a read of `file` on `node` hits the cache. Updates
    /// recency and hit/miss counters.
    pub fn read_hit(&mut self, node: usize, file: &str) -> bool {
        self.tick += 1;
        if let Some(e) = self.nodes[node].get_mut(file) {
            e.last_use = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Records that `bytes` of `file` flowed through `node` (read miss
    /// fill or write-through), growing the cached footprint and evicting
    /// LRU files to stay within budget. Files larger than the whole budget
    /// are not cached.
    pub fn fill(&mut self, node: usize, file: &str, bytes: u64) {
        self.tick += 1;
        let budget = self.cfg.bytes_per_node;
        let grow = {
            let e = self.nodes[node].entry(file.to_owned()).or_default();
            e.last_use = self.tick;
            e.bytes += bytes;
            e.bytes
        };
        if grow > budget {
            // The file alone exceeds the budget: it cannot be held.
            let e = self.nodes[node].remove(file).expect("just inserted");
            self.used[node] = self.used[node].saturating_sub(e.bytes - bytes);
            return;
        }
        self.used[node] += bytes;
        while self.used[node] > budget {
            let victim = self.nodes[node]
                .iter()
                .filter(|(f, _)| f.as_str() != file)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(f, _)| f.clone());
            match victim {
                Some(v) => {
                    let e = self.nodes[node].remove(&v).expect("victim present");
                    self.used[node] -= e.bytes;
                }
                None => break, // only the protected file remains
            }
        }
    }

    /// Bytes currently cached on `node`.
    pub fn used_bytes(&self, node: usize) -> u64 {
        self.used[node]
    }

    /// Whether `file` is resident on `node`.
    pub fn contains(&self, node: usize, file: &str) -> bool {
        self.nodes[node].contains_key(file)
    }

    /// Hit rate over all read operations so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = CacheState::new(CacheConfig::per_node(1000), 2);
        assert!(!c.read_hit(0, "f"));
        c.fill(0, "f", 100);
        assert!(c.read_hit(0, "f"));
        // Other node is independent.
        assert!(!c.read_hit(1, "f"));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let mut c = CacheState::new(CacheConfig::per_node(250), 1);
        c.fill(0, "a", 100);
        c.fill(0, "b", 100);
        assert!(c.read_hit(0, "a")); // a is now more recent than b
        c.fill(0, "c", 100); // over budget: evict b (LRU)
        assert!(c.contains(0, "a"));
        assert!(!c.contains(0, "b"));
        assert!(c.contains(0, "c"));
        assert!(c.used_bytes(0) <= 250);
    }

    #[test]
    fn oversized_file_is_not_cached() {
        let mut c = CacheState::new(CacheConfig::per_node(100), 1);
        c.fill(0, "big", 500);
        assert!(!c.contains(0, "big"));
        assert_eq!(c.used_bytes(0), 0);
        // Small files still cache fine afterwards.
        c.fill(0, "small", 50);
        assert!(c.contains(0, "small"));
    }

    #[test]
    fn footprint_grows_incrementally() {
        let mut c = CacheState::new(CacheConfig::per_node(1000), 1);
        c.fill(0, "f", 200);
        c.fill(0, "f", 300);
        assert_eq!(c.used_bytes(0), 500);
        // Growing past the budget evicts the file itself.
        c.fill(0, "f", 600);
        assert!(!c.contains(0, "f"));
    }
}
