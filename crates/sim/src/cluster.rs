//! Cluster topology and file placement.
//!
//! A [`Cluster`] has `n` nodes, each with the same set of node-local tiers,
//! plus shared (networked) tiers reachable from every node. A [`Placement`]
//! maps each file to a [`FileLocation`]; the engine charges a network hop
//! when a task accesses a file homed on *another* node's local storage —
//! the cost DaYu's co-scheduling optimization eliminates.

use crate::tiers::{NetworkModel, TierKind, TierModel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a compute node.
pub type NodeId = usize;

/// Where a file lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileLocation {
    /// On a shared tier (every node pays the tier's cost directly; the
    /// network round trip is folded into the tier's latency).
    Shared(TierKind),
    /// On `node`'s local tier; other nodes pay a network hop per access.
    NodeLocal(NodeId, TierKind),
}

/// The simulated machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cluster {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Tier models available (looked up by kind for both local and shared).
    pub tiers: Vec<TierModel>,
    /// Interconnect between nodes (and to remote node-local storage).
    pub network: NetworkModel,
    /// The default shared filesystem files land on when a placement does
    /// not say otherwise.
    pub default_shared: TierKind,
}

impl Cluster {
    /// The paper's CPU cluster: NFS default, node-local NVMe/SATA/HDD.
    pub fn cpu_cluster(nodes: usize) -> Self {
        Self {
            nodes,
            tiers: [
                TierKind::Ram,
                TierKind::NvmeSsd,
                TierKind::SataSsd,
                TierKind::Hdd,
                TierKind::Nfs,
            ]
            .into_iter()
            .map(TierModel::preset)
            .collect(),
            network: NetworkModel::ten_gbe(),
            default_shared: TierKind::Nfs,
        }
    }

    /// The paper's GPU cluster: BeeGFS default, node-local SSD.
    pub fn gpu_cluster(nodes: usize) -> Self {
        Self {
            nodes,
            tiers: [
                TierKind::Ram,
                TierKind::NvmeSsd,
                TierKind::SataSsd,
                TierKind::Beegfs,
            ]
            .into_iter()
            .map(TierModel::preset)
            .collect(),
            network: NetworkModel::ten_gbe(),
            default_shared: TierKind::Beegfs,
        }
    }

    /// The tier model for a kind.
    ///
    /// # Panics
    /// If the cluster has no tier of that kind configured.
    pub fn tier(&self, kind: TierKind) -> &TierModel {
        self.tiers
            .iter()
            .find(|t| t.kind == kind)
            .unwrap_or_else(|| panic!("cluster has no {kind:?} tier"))
    }
}

/// File → location map with a default for unplaced files.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Placement {
    map: HashMap<String, FileLocation>,
}

impl Placement {
    /// Empty placement: everything on the cluster's default shared tier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Homes `file` at `loc`, replacing any previous placement.
    pub fn place(&mut self, file: impl Into<String>, loc: FileLocation) -> &mut Self {
        self.map.insert(file.into(), loc);
        self
    }

    /// Where `file` lives on `cluster`.
    pub fn location(&self, cluster: &Cluster, file: &str) -> FileLocation {
        self.map
            .get(file)
            .copied()
            .unwrap_or(FileLocation::Shared(cluster.default_shared))
    }

    /// Number of explicitly placed files.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no file is explicitly placed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates explicit placements.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &FileLocation)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_clusters_have_expected_defaults() {
        let cpu = Cluster::cpu_cluster(2);
        assert_eq!(cpu.default_shared, TierKind::Nfs);
        assert_eq!(cpu.nodes, 2);
        assert!(cpu.tiers.iter().any(|t| t.kind == TierKind::Hdd));

        let gpu = Cluster::gpu_cluster(8);
        assert_eq!(gpu.default_shared, TierKind::Beegfs);
        assert!(gpu.tiers.iter().any(|t| t.kind == TierKind::NvmeSsd));
    }

    #[test]
    fn tier_lookup() {
        let c = Cluster::cpu_cluster(1);
        assert_eq!(c.tier(TierKind::Nfs).kind, TierKind::Nfs);
    }

    #[test]
    #[should_panic(expected = "no Beegfs tier")]
    fn missing_tier_panics() {
        let c = Cluster::cpu_cluster(1);
        c.tier(TierKind::Beegfs);
    }

    #[test]
    fn placement_defaults_to_shared() {
        let c = Cluster::gpu_cluster(2);
        let mut p = Placement::new();
        assert!(p.is_empty());
        assert_eq!(
            p.location(&c, "anything.h5"),
            FileLocation::Shared(TierKind::Beegfs)
        );
        p.place("hot.h5", FileLocation::NodeLocal(1, TierKind::NvmeSsd));
        assert_eq!(p.len(), 1);
        assert_eq!(
            p.location(&c, "hot.h5"),
            FileLocation::NodeLocal(1, TierKind::NvmeSsd)
        );
    }

    #[test]
    fn placement_overwrites() {
        let c = Cluster::cpu_cluster(1);
        let mut p = Placement::new();
        p.place("f", FileLocation::Shared(TierKind::Nfs));
        p.place("f", FileLocation::NodeLocal(0, TierKind::Ram));
        assert_eq!(
            p.location(&c, "f"),
            FileLocation::NodeLocal(0, TierKind::Ram)
        );
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn cluster_and_placement_serde_round_trip() {
        let c = Cluster::gpu_cluster(4);
        let json = serde_json::to_string(&c).unwrap();
        let back: Cluster = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nodes, 4);
        assert_eq!(back.default_shared, TierKind::Beegfs);
        assert_eq!(back.tier(TierKind::NvmeSsd), c.tier(TierKind::NvmeSsd));

        let mut p = Placement::new();
        p.place("a.h5", FileLocation::NodeLocal(2, TierKind::Ram));
        p.place("b.h5", FileLocation::Shared(TierKind::Beegfs));
        let json = serde_json::to_string(&p).unwrap();
        let back: Placement = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.location(&c, "a.h5"),
            FileLocation::NodeLocal(2, TierKind::Ram)
        );
        assert_eq!(back.len(), 2);
    }
}
