//! # dayu-sim
//!
//! A cluster and storage simulator substituting for the paper's testbed
//! hardware (Table III: a CPU cluster with NFS/NVMe/SATA/HDD storage and a
//! GPU cluster with BeeGFS and node-local SSD). It provides
//!
//! * [`tiers`] — parameterized storage tier cost models (latency, streaming
//!   bandwidth, metadata-op latency, contention behaviour) with presets
//!   calibrated to commodity hardware of the paper's class;
//! * [`cache`] — an optional Hermes-style per-node read buffer with a
//!   byte budget and LRU eviction (the middleware behind the paper's
//!   customized-caching guideline);
//! * [`cluster`] — nodes, their local tiers, shared (parallel) filesystems,
//!   the interconnect, and file → location placements;
//! * [`program`] — the replay vocabulary: per-task sequences of I/O and
//!   compute operations, typically converted from DaYu VFD traces;
//! * [`engine`] — a discrete-event simulator executing a task DAG over a
//!   cluster, with per-tier bandwidth sharing and metadata-server
//!   contention, producing per-task timings and the workflow makespan.
//!
//! The DES is used by `dayu-workflow` to score *baseline vs DaYu-optimized*
//! executions (paper Figures 11–13): the same traced op streams are
//! replayed under different placements, schedules and layouts, so measured
//! differences come only from the optimization under study.

pub mod cache;
pub mod cluster;
pub mod engine;
pub mod program;
pub mod tiers;

pub use cache::{CacheConfig, CacheState};
pub use cluster::{Cluster, FileLocation, NodeId, Placement};
pub use engine::{Engine, SimReport, TaskReport};
pub use program::{IoDir, SimOp, SimTask, TaskId};
pub use tiers::{NetworkModel, TierKind, TierModel};
