//! Storage tier cost models.
//!
//! Each tier charges an operation `latency + bytes / bandwidth`, with two
//! refinements that drive the phenomena the paper's optimizations exploit:
//!
//! * **bandwidth sharing** — concurrent streams on a shared tier split the
//!   streaming bandwidth (why co-locating tasks with node-local data beats
//!   hammering the parallel filesystem);
//! * **metadata contention** — metadata operations pay a separate,
//!   higher latency on networked filesystems (a metadata-server round
//!   trip), and that latency degrades under concurrency (why many small
//!   datasets / chunk-index lookups are so costly on PFS, paper Fig. 5/13a).
//!
//! Calibration constants target the hardware class of Table III. Absolute
//! values are order-of-magnitude realistic; the evaluation compares
//! *relative* times, which depend on the ratios (per-op latency vs
//! streaming cost), not the absolute scale.

use serde::{Deserialize, Serialize};

/// The storage technologies of the paper's two machines (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierKind {
    /// DRAM staging (e.g. a Hermes-style memory tier).
    Ram,
    /// Node-local NVMe SSD.
    NvmeSsd,
    /// Node-local SATA SSD.
    SataSsd,
    /// Node-local spinning disk.
    Hdd,
    /// NFS share (the CPU cluster's default storage).
    Nfs,
    /// BeeGFS parallel filesystem (the GPU cluster's default storage).
    Beegfs,
}

impl TierKind {
    /// Whether the tier is reached over the network and shared by all nodes.
    pub fn is_shared(self) -> bool {
        matches!(self, TierKind::Nfs | TierKind::Beegfs)
    }
}

/// Cost model of one tier.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TierModel {
    /// Which technology this models.
    pub kind: TierKind,
    /// Fixed cost per data operation, nanoseconds.
    pub latency_ns: u64,
    /// Streaming read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Streaming write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Fixed cost per *metadata* operation, nanoseconds (metadata-server
    /// round trip on networked tiers; device latency locally).
    pub metadata_latency_ns: u64,
    /// How strongly concurrent accessors degrade per-op latency:
    /// `effective_latency = latency * (1 + contention * (streams - 1))`.
    /// Zero for node-local devices with deep queues; positive for
    /// network/metadata-server bound tiers.
    pub contention: f64,
}

impl TierModel {
    /// Preset model for a tier kind.
    pub fn preset(kind: TierKind) -> TierModel {
        match kind {
            TierKind::Ram => TierModel {
                kind,
                latency_ns: 200,
                read_bw: 12.0e9,
                write_bw: 10.0e9,
                metadata_latency_ns: 150,
                contention: 0.0,
            },
            TierKind::NvmeSsd => TierModel {
                kind,
                latency_ns: 20_000,
                read_bw: 3.2e9,
                write_bw: 2.4e9,
                metadata_latency_ns: 12_000,
                contention: 0.05,
            },
            TierKind::SataSsd => TierModel {
                kind,
                latency_ns: 80_000,
                read_bw: 530.0e6,
                write_bw: 480.0e6,
                metadata_latency_ns: 50_000,
                contention: 0.1,
            },
            TierKind::Hdd => TierModel {
                kind,
                latency_ns: 4_000_000,
                read_bw: 180.0e6,
                write_bw: 160.0e6,
                metadata_latency_ns: 4_000_000,
                contention: 0.5,
            },
            TierKind::Nfs => TierModel {
                kind,
                latency_ns: 400_000,
                read_bw: 500.0e6,
                write_bw: 350.0e6,
                metadata_latency_ns: 900_000,
                contention: 0.6,
            },
            TierKind::Beegfs => TierModel {
                kind,
                latency_ns: 250_000,
                read_bw: 1.6e9,
                write_bw: 1.2e9,
                metadata_latency_ns: 500_000,
                contention: 0.4,
            },
        }
    }

    /// Cost in nanoseconds of one operation moving `bytes` with `streams`
    /// concurrent accessors on this tier.
    pub fn op_cost_ns(&self, is_write: bool, bytes: u64, metadata: bool, streams: u32) -> u64 {
        let streams = streams.max(1);
        let base_latency = if metadata {
            self.metadata_latency_ns
        } else {
            self.latency_ns
        };
        let latency = base_latency as f64 * (1.0 + self.contention * (streams as f64 - 1.0));
        let bw = if is_write {
            self.write_bw
        } else {
            self.read_bw
        };
        // Shared tiers split streaming bandwidth between concurrent streams;
        // node-local devices keep full bandwidth (one task per device in
        // these workloads; queue depth absorbs overlap).
        let effective_bw = if self.kind.is_shared() {
            bw / streams as f64
        } else {
            bw
        };
        let transfer = bytes as f64 / effective_bw * 1e9;
        (latency + transfer) as u64
    }
}

/// Interconnect cost model for reaching another node's local storage or a
/// shared filesystem server.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way message latency, nanoseconds.
    pub latency_ns: u64,
    /// Link bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl NetworkModel {
    /// 10 GbE-class interconnect (the paper's clusters are commodity).
    pub fn ten_gbe() -> Self {
        Self {
            latency_ns: 100_000,
            bandwidth: 1.1e9,
        }
    }

    /// Additional nanoseconds to move `bytes` across the link.
    pub fn transfer_cost_ns(&self, bytes: u64) -> u64 {
        self.latency_ns + (bytes as f64 / self.bandwidth * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let ram = TierModel::preset(TierKind::Ram);
        let nvme = TierModel::preset(TierKind::NvmeSsd);
        let sata = TierModel::preset(TierKind::SataSsd);
        let hdd = TierModel::preset(TierKind::Hdd);
        let nfs = TierModel::preset(TierKind::Nfs);
        assert!(ram.latency_ns < nvme.latency_ns);
        assert!(nvme.latency_ns < sata.latency_ns);
        assert!(sata.latency_ns < hdd.latency_ns);
        assert!(ram.read_bw > nvme.read_bw);
        assert!(nvme.read_bw > sata.read_bw);
        // Networked tiers: metadata ops cost more than data ops.
        assert!(nfs.metadata_latency_ns > nfs.latency_ns);
    }

    #[test]
    fn shared_flags() {
        assert!(TierKind::Nfs.is_shared());
        assert!(TierKind::Beegfs.is_shared());
        assert!(!TierKind::NvmeSsd.is_shared());
        assert!(!TierKind::Ram.is_shared());
    }

    #[test]
    fn op_cost_scales_with_size() {
        let m = TierModel::preset(TierKind::NvmeSsd);
        let small = m.op_cost_ns(false, 4 << 10, false, 1);
        let large = m.op_cost_ns(false, 4 << 20, false, 1);
        assert!(large > small);
        // 4 MiB at 3.2 GB/s ≈ 1.3 ms; latency negligible.
        let expect = (4_194_304.0 / 3.2e9 * 1e9) as u64;
        assert!(large > expect && large < expect + 2 * m.latency_ns + 1_000_000);
    }

    #[test]
    fn metadata_op_cost_dominated_by_latency() {
        let m = TierModel::preset(TierKind::Beegfs);
        let md = m.op_cost_ns(false, 12, true, 1);
        assert!(md >= m.metadata_latency_ns);
        assert!(md < m.metadata_latency_ns + 10_000);
    }

    #[test]
    fn contention_raises_latency_and_splits_bandwidth() {
        let m = TierModel::preset(TierKind::Nfs);
        let solo = m.op_cost_ns(false, 1 << 20, false, 1);
        let crowded = m.op_cost_ns(false, 1 << 20, false, 8);
        assert!(
            crowded > 4 * solo,
            "8-way contention should sharply degrade NFS: {solo} vs {crowded}"
        );

        let local = TierModel::preset(TierKind::NvmeSsd);
        let solo_l = local.op_cost_ns(false, 1 << 20, false, 1);
        let crowded_l = local.op_cost_ns(false, 1 << 20, false, 8);
        assert!(
            crowded_l < 2 * solo_l,
            "local NVMe barely degrades: {solo_l} vs {crowded_l}"
        );
    }

    #[test]
    fn write_slower_than_read() {
        let m = TierModel::preset(TierKind::Beegfs);
        assert!(m.op_cost_ns(true, 1 << 20, false, 1) > m.op_cost_ns(false, 1 << 20, false, 1));
    }

    #[test]
    fn network_transfer_cost() {
        let n = NetworkModel::ten_gbe();
        assert_eq!(n.transfer_cost_ns(0), n.latency_ns);
        let mb = n.transfer_cost_ns(1 << 20);
        assert!(mb > n.latency_ns + 900_000 / 2);
    }

    #[test]
    fn zero_streams_treated_as_one() {
        let m = TierModel::preset(TierKind::Ram);
        assert_eq!(
            m.op_cost_ns(false, 100, false, 0),
            m.op_cost_ns(false, 100, false, 1)
        );
    }
}
