//! Discrete-event replay engine.
//!
//! Executes a DAG of [`SimTask`]s over a [`Cluster`] + [`Placement`],
//! producing per-task timings and the workflow makespan. Each task issues
//! its program synchronously (one in-flight op at a time, like the POSIX
//! I/O beneath HDF5); concurrency arises from tasks running in parallel.
//!
//! Contention model: each storage *tier instance* (a shared filesystem, or
//! one node's local device) tracks how many ops are currently in flight on
//! it; an op's duration is computed at start from that count via
//! [`crate::tiers::TierModel::op_cost_ns`]. Later arrivals do not retroactively slow
//! in-flight ops — a first-order approximation that keeps the engine
//! O(ops·log tasks) while preserving the contention trends the paper's
//! placement optimizations exploit.

use crate::cache::{CacheConfig, CacheState};
use crate::cluster::{Cluster, FileLocation, Placement};
use crate::program::{IoDir, SimOp, SimTask, TaskId};
use crate::tiers::TierKind;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Where an op physically executes (for stream counting).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum TierInstance {
    Shared(TierKind),
    Local(usize, TierKind),
}

/// Timing results for one task.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskReport {
    /// Task name.
    pub name: String,
    /// Node it ran on.
    pub node: usize,
    /// Start time, ns.
    pub start_ns: u64,
    /// End time, ns.
    pub end_ns: u64,
    /// Time spent in I/O operations, ns.
    pub io_ns: u64,
    /// Time spent computing, ns.
    pub compute_ns: u64,
    /// Bytes of I/O performed.
    pub io_bytes: u64,
    /// Number of I/O operations.
    pub io_ops: u64,
}

impl TaskReport {
    /// Wall-clock duration of the task.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Results of one simulated execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-task timing, indexed like the input tasks.
    pub tasks: Vec<TaskReport>,
    /// End time of the last task, ns.
    pub makespan_ns: u64,
}

impl SimReport {
    /// Sum of all tasks' I/O time ("I/O time (sum of POSIX operations)" in
    /// the paper's Fig. 13a).
    pub fn total_io_ns(&self) -> u64 {
        self.tasks.iter().map(|t| t.io_ns).sum()
    }

    /// Sum of all tasks' compute time.
    pub fn total_compute_ns(&self) -> u64 {
        self.tasks.iter().map(|t| t.compute_ns).sum()
    }

    /// Makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan_ns as f64 / 1e9
    }

    /// Report for the named task (first match).
    pub fn task(&self, name: &str) -> Option<&TaskReport> {
        self.tasks.iter().find(|t| t.name == name)
    }
}

/// Errors detected before/while simulating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A dependency index is not a valid task index.
    BadDependency {
        /// The referring task.
        task: TaskId,
        /// The out-of-range dependency.
        dep: TaskId,
    },
    /// A task's node index exceeds the cluster size.
    BadNode {
        /// The offending task.
        task: TaskId,
        /// Its node.
        node: usize,
    },
    /// The dependency graph has a cycle (some tasks can never start).
    Cycle {
        /// Names of tasks that never became ready.
        stuck: Vec<String>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadDependency { task, dep } => {
                write!(f, "task {task} depends on nonexistent task {dep}")
            }
            SimError::BadNode { task, node } => {
                write!(f, "task {task} assigned to nonexistent node {node}")
            }
            SimError::Cycle { stuck } => write!(f, "dependency cycle; stuck: {stuck:?}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The discrete-event simulator.
pub struct Engine<'a> {
    cluster: &'a Cluster,
    placement: &'a Placement,
    cache: Option<CacheConfig>,
}

struct Running {
    op_idx: usize,
    io_ns: u64,
    compute_ns: u64,
    io_bytes: u64,
    io_ops: u64,
    start_ns: u64,
    current_instance: Option<TierInstance>,
}

impl<'a> Engine<'a> {
    /// An engine over the given machine and file placement.
    pub fn new(cluster: &'a Cluster, placement: &'a Placement) -> Self {
        Self {
            cluster,
            placement,
            cache: None,
        }
    }

    /// Enables the Hermes-style per-node read buffer (see
    /// [`crate::cache`]): repeat reads of a file from the same node are
    /// served at RAM cost within the byte budget.
    pub fn with_cache(mut self, cfg: CacheConfig) -> Self {
        self.cache = Some(cfg);
        self
    }

    fn op_location(&self, task_node: usize, file: &str) -> (TierInstance, bool) {
        match self.placement.location(self.cluster, file) {
            FileLocation::Shared(kind) => (TierInstance::Shared(kind), false),
            FileLocation::NodeLocal(node, kind) => {
                (TierInstance::Local(node, kind), node != task_node)
            }
        }
    }

    fn op_cost(
        &self,
        task_node: usize,
        op: &SimOp,
        streams: &HashMap<TierInstance, u32>,
        cache: &mut Option<CacheState>,
    ) -> (u64, Option<TierInstance>) {
        match op {
            SimOp::Compute { nanos } => (*nanos, None),
            SimOp::Io {
                file,
                dir,
                bytes,
                metadata,
            } => {
                // Buffered read: a prior access left the file resident on
                // this node, so the op costs RAM time and touches no tier.
                if let Some(state) = cache.as_mut() {
                    if *dir == IoDir::Read && state.read_hit(task_node, file) {
                        let ram = self.cluster.tier(TierKind::Ram);
                        return (ram.op_cost_ns(false, *bytes, *metadata, 1), None);
                    }
                    // Miss fill / write-through footprint accounting.
                    state.fill(task_node, file, *bytes);
                }
                let (instance, remote) = self.op_location(task_node, file);
                let kind = match instance {
                    TierInstance::Shared(k) | TierInstance::Local(_, k) => k,
                };
                let tier = self.cluster.tier(kind);
                let concurrent = streams.get(&instance).copied().unwrap_or(0) + 1;
                let mut cost = tier.op_cost_ns(*dir == IoDir::Write, *bytes, *metadata, concurrent);
                if remote {
                    cost += self.cluster.network.transfer_cost_ns(*bytes);
                }
                (cost, Some(instance))
            }
        }
    }

    /// Runs the job to completion.
    pub fn run(&self, tasks: &[SimTask]) -> Result<SimReport, SimError> {
        // Validate.
        for (i, t) in tasks.iter().enumerate() {
            for &d in &t.deps {
                if d >= tasks.len() {
                    return Err(SimError::BadDependency { task: i, dep: d });
                }
            }
            if t.node >= self.cluster.nodes {
                return Err(SimError::BadNode {
                    task: i,
                    node: t.node,
                });
            }
        }

        let n = tasks.len();
        let mut deps_left: Vec<usize> = tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (i, t) in tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(i);
            }
        }

        let mut running: Vec<Option<Running>> = (0..n).map(|_| None).collect();
        let mut reports: Vec<Option<TaskReport>> = vec![None; n];
        let mut streams: HashMap<TierInstance, u32> = HashMap::new();
        let mut cache: Option<CacheState> = self
            .cache
            .map(|cfg| CacheState::new(cfg, self.cluster.nodes));
        // (completion_time, sequence, task) — sequence keeps pops stable.
        let mut heap: BinaryHeap<Reverse<(u64, u64, TaskId)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut finished = 0usize;

        // Helper performed inline (closures can't borrow everything mutably):
        macro_rules! begin_op {
            ($tid:expr, $time:expr) => {{
                let tid = $tid;
                let time = $time;
                let state = running[tid].as_mut().expect("running");
                let op = &tasks[tid].program[state.op_idx];
                let (cost, instance) = self.op_cost(tasks[tid].node, op, &streams, &mut cache);
                if let Some(inst) = instance {
                    *streams.entry(inst).or_insert(0) += 1;
                    state.current_instance = Some(inst);
                    state.io_ns += cost;
                    state.io_bytes += op.bytes();
                    state.io_ops += 1;
                } else {
                    state.current_instance = None;
                    state.compute_ns += cost;
                }
                seq += 1;
                heap.push(Reverse((time + cost, seq, tid)));
            }};
        }

        macro_rules! start_task {
            ($tid:expr, $time:expr, $pending:expr) => {{
                let tid = $tid;
                let time: u64 = $time;
                running[tid] = Some(Running {
                    op_idx: 0,
                    io_ns: 0,
                    compute_ns: 0,
                    io_bytes: 0,
                    io_ops: 0,
                    start_ns: time,
                    current_instance: None,
                });
                if tasks[tid].program.is_empty() {
                    // Zero-length task: completes instantly.
                    seq += 1;
                    heap.push(Reverse((time, seq, tid)));
                    // Mark op_idx so the completion handler finishes it.
                    running[tid].as_mut().expect("running").op_idx = usize::MAX;
                } else {
                    begin_op!(tid, time);
                }
                let _ = &$pending;
            }};
        }

        let pending = ();
        for (i, _) in tasks.iter().enumerate() {
            if deps_left[i] == 0 {
                start_task!(i, 0u64, pending);
            }
        }

        while let Some(Reverse((time, _, tid))) = heap.pop() {
            let is_empty_task = running[tid].as_ref().map(|r| r.op_idx == usize::MAX) == Some(true);
            if !is_empty_task {
                // Finish the in-flight op.
                let inst = running[tid]
                    .as_mut()
                    .expect("running")
                    .current_instance
                    .take();
                if let Some(inst) = inst {
                    let c = streams.get_mut(&inst).expect("counted");
                    *c -= 1;
                }
                let state = running[tid].as_mut().expect("running");
                state.op_idx += 1;
                if state.op_idx < tasks[tid].program.len() {
                    begin_op!(tid, time);
                    continue;
                }
            }
            // Task complete.
            let state = running[tid].take().expect("running");
            reports[tid] = Some(TaskReport {
                name: tasks[tid].name.clone(),
                node: tasks[tid].node,
                start_ns: state.start_ns,
                end_ns: time,
                io_ns: state.io_ns,
                compute_ns: state.compute_ns,
                io_bytes: state.io_bytes,
                io_ops: state.io_ops,
            });
            finished += 1;
            for &dep in &dependents[tid] {
                deps_left[dep] -= 1;
                if deps_left[dep] == 0 {
                    start_task!(dep, time, pending);
                }
            }
        }

        if finished != n {
            let stuck = tasks
                .iter()
                .enumerate()
                .filter(|(i, _)| reports[*i].is_none())
                .map(|(_, t)| t.name.clone())
                .collect();
            return Err(SimError::Cycle { stuck });
        }

        let tasks_out: Vec<TaskReport> = reports.into_iter().map(|r| r.expect("done")).collect();
        let makespan_ns = tasks_out.iter().map(|t| t.end_ns).max().unwrap_or(0);
        Ok(SimReport {
            tasks: tasks_out,
            makespan_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, FileLocation, Placement};
    use crate::program::{SimOp, SimTask};
    use crate::tiers::TierKind;

    fn gpu() -> Cluster {
        Cluster::gpu_cluster(4)
    }

    #[test]
    fn single_task_io_time_matches_cost_model() {
        let c = gpu();
        let p = Placement::new();
        let tasks = vec![SimTask::new("t").with_program(vec![SimOp::write("f", 1 << 20)])];
        let report = Engine::new(&c, &p).run(&tasks).unwrap();
        let expect = c.tier(TierKind::Beegfs).op_cost_ns(true, 1 << 20, false, 1);
        assert_eq!(report.tasks[0].io_ns, expect);
        assert_eq!(report.makespan_ns, expect);
        assert_eq!(report.tasks[0].io_bytes, 1 << 20);
        assert_eq!(report.tasks[0].io_ops, 1);
    }

    #[test]
    fn compute_does_not_count_as_io() {
        let c = gpu();
        let p = Placement::new();
        let tasks =
            vec![SimTask::new("t").with_program(vec![SimOp::compute(500), SimOp::read("f", 0)])];
        let r = Engine::new(&c, &p).run(&tasks).unwrap();
        assert_eq!(r.tasks[0].compute_ns, 500);
        assert!(
            r.tasks[0].io_ns > 0,
            "latency still charged for 0-byte read"
        );
        assert_eq!(r.total_compute_ns(), 500);
    }

    #[test]
    fn dependencies_serialize_execution() {
        let c = gpu();
        let p = Placement::new();
        let tasks = vec![
            SimTask::new("a").with_program(vec![SimOp::compute(100)]),
            SimTask::new("b")
                .after(&[0])
                .with_program(vec![SimOp::compute(50)]),
            SimTask::new("c")
                .after(&[0, 1])
                .with_program(vec![SimOp::compute(10)]),
        ];
        let r = Engine::new(&c, &p).run(&tasks).unwrap();
        assert_eq!(r.tasks[0].start_ns, 0);
        assert_eq!(r.tasks[0].end_ns, 100);
        assert_eq!(r.tasks[1].start_ns, 100);
        assert_eq!(r.tasks[1].end_ns, 150);
        assert_eq!(r.tasks[2].start_ns, 150);
        assert_eq!(r.makespan_ns, 160);
    }

    #[test]
    fn parallel_tasks_overlap() {
        let c = gpu();
        let p = Placement::new();
        let tasks = vec![
            SimTask::new("a").with_program(vec![SimOp::compute(100)]),
            SimTask::new("b").with_program(vec![SimOp::compute(100)]),
        ];
        let r = Engine::new(&c, &p).run(&tasks).unwrap();
        assert_eq!(r.makespan_ns, 100, "independent tasks run concurrently");
    }

    #[test]
    fn shared_tier_contention_slows_concurrent_io() {
        let c = gpu();
        let p = Placement::new();
        let solo = Engine::new(&c, &p)
            .run(&[SimTask::new("s").with_program(vec![SimOp::read("f", 8 << 20)])])
            .unwrap()
            .makespan_ns;
        let tasks: Vec<SimTask> = (0..8)
            .map(|i| SimTask::new(format!("t{i}")).with_program(vec![SimOp::read("f", 8 << 20)]))
            .collect();
        let crowded = Engine::new(&c, &p).run(&tasks).unwrap();
        // Note: all 8 start simultaneously; first computes with streams=1,
        // later ones see increasing counts. The slowest sees ~8 streams.
        let slowest = crowded.tasks.iter().map(|t| t.io_ns).max().unwrap();
        assert!(
            slowest > 4 * solo,
            "contention should slow shared reads: solo={solo} slowest={slowest}"
        );
    }

    #[test]
    fn node_local_placement_avoids_contention() {
        let c = gpu();
        let mut p = Placement::new();
        for i in 0..4 {
            p.place(
                format!("f{i}"),
                FileLocation::NodeLocal(i, TierKind::NvmeSsd),
            );
        }
        let tasks: Vec<SimTask> = (0..4)
            .map(|i| {
                SimTask::new(format!("t{i}"))
                    .on_node(i)
                    .with_program(vec![SimOp::read(format!("f{i}"), 8 << 20)])
            })
            .collect();
        let local = Engine::new(&c, &p).run(&tasks).unwrap();
        let shared = Engine::new(&c, &Placement::new()).run(&tasks).unwrap();
        assert!(
            local.makespan_ns < shared.makespan_ns,
            "local NVMe should beat contended BeeGFS: {} vs {}",
            local.makespan_ns,
            shared.makespan_ns
        );
    }

    #[test]
    fn remote_node_local_access_pays_network() {
        let c = gpu();
        let mut p = Placement::new();
        p.place("f", FileLocation::NodeLocal(1, TierKind::NvmeSsd));
        let local = Engine::new(&c, &p)
            .run(&[SimTask::new("t")
                .on_node(1)
                .with_program(vec![SimOp::read("f", 1 << 20)])])
            .unwrap()
            .makespan_ns;
        let remote = Engine::new(&c, &p)
            .run(&[SimTask::new("t")
                .on_node(0)
                .with_program(vec![SimOp::read("f", 1 << 20)])])
            .unwrap()
            .makespan_ns;
        assert!(
            remote > local + c.network.latency_ns / 2,
            "remote access should pay a network hop: {local} vs {remote}"
        );
    }

    #[test]
    fn metadata_heavy_program_dominated_by_latency() {
        let c = gpu();
        let p = Placement::new();
        // 100 tiny metadata ops vs 1 op of the same total bytes.
        let many: Vec<SimOp> = (0..100)
            .map(|_| SimOp::metadata("f", IoDir::Read, 12))
            .collect();
        let one = vec![SimOp::read("f", 1200)];
        let r_many = Engine::new(&c, &p)
            .run(&[SimTask::new("many").with_program(many)])
            .unwrap();
        let r_one = Engine::new(&c, &p)
            .run(&[SimTask::new("one").with_program(one)])
            .unwrap();
        assert!(
            r_many.total_io_ns() > 20 * r_one.total_io_ns(),
            "many small metadata ops are far slower: {} vs {}",
            r_many.total_io_ns(),
            r_one.total_io_ns()
        );
    }

    #[test]
    fn empty_program_task_completes_instantly() {
        let c = gpu();
        let p = Placement::new();
        let tasks = vec![
            SimTask::new("noop"),
            SimTask::new("next")
                .after(&[0])
                .with_program(vec![SimOp::compute(5)]),
        ];
        let r = Engine::new(&c, &p).run(&tasks).unwrap();
        assert_eq!(r.tasks[0].duration_ns(), 0);
        assert_eq!(r.tasks[1].start_ns, 0);
        assert_eq!(r.makespan_ns, 5);
    }

    #[test]
    fn error_cases() {
        let c = gpu();
        let p = Placement::new();
        let eng = Engine::new(&c, &p);
        assert_eq!(
            eng.run(&[SimTask::new("x").after(&[5])]),
            Err(SimError::BadDependency { task: 0, dep: 5 })
        );
        assert_eq!(
            eng.run(&[SimTask::new("x").on_node(99)]),
            Err(SimError::BadNode { task: 0, node: 99 })
        );
        // 2-cycle.
        let cyc = vec![SimTask::new("a").after(&[1]), SimTask::new("b").after(&[0])];
        match eng.run(&cyc) {
            Err(SimError::Cycle { stuck }) => assert_eq!(stuck.len(), 2),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_replay() {
        let c = gpu();
        let p = Placement::new();
        let tasks: Vec<SimTask> = (0..6)
            .map(|i| {
                SimTask::new(format!("t{i}")).with_program(vec![
                    SimOp::read("shared", 1 << 16),
                    SimOp::compute(1000),
                    SimOp::write(format!("out{i}"), 1 << 18),
                ])
            })
            .collect();
        let a = Engine::new(&c, &p).run(&tasks).unwrap();
        let b = Engine::new(&c, &p).run(&tasks).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn report_lookup_and_seconds() {
        let c = gpu();
        let p = Placement::new();
        let r = Engine::new(&c, &p)
            .run(&[SimTask::new("only").with_program(vec![SimOp::compute(2_000_000_000)])])
            .unwrap();
        assert!(r.task("only").is_some());
        assert!(r.task("nope").is_none());
        assert!((r.makespan_secs() - 2.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::cluster::{Cluster, Placement};
    use crate::program::{SimOp, SimTask};
    use proptest::prelude::*;

    fn arb_job() -> impl Strategy<Value = Vec<SimTask>> {
        // Up to 12 tasks; task i may depend on any subset of earlier tasks
        // (guarantees acyclicity); small random programs.
        prop::collection::vec(
            (
                prop::collection::vec((0u8..3, 1u64..100_000), 0..6),
                prop::collection::vec(prop::bool::ANY, 12),
                0usize..4,
            ),
            1..12,
        )
        .prop_map(|specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (ops, depmask, node))| SimTask {
                    name: format!("t{i}"),
                    node,
                    deps: (0..i).filter(|&d| depmask[d % depmask.len()]).collect(),
                    program: ops
                        .into_iter()
                        .map(|(kind, amount)| match kind {
                            0 => SimOp::compute(amount),
                            1 => SimOp::read(format!("f{}", amount % 5), amount),
                            _ => SimOp::write(format!("f{}", amount % 5), amount),
                        })
                        .collect(),
                })
                .collect()
        })
    }

    proptest! {
        /// Dependencies are never violated and the makespan covers every
        /// task, whatever the job shape.
        #[test]
        fn schedule_invariants(job in arb_job()) {
            let cluster = Cluster::gpu_cluster(4);
            let placement = Placement::new();
            let report = Engine::new(&cluster, &placement).run(&job).unwrap();
            prop_assert_eq!(report.tasks.len(), job.len());
            for (i, t) in job.iter().enumerate() {
                let r = &report.tasks[i];
                prop_assert!(r.end_ns >= r.start_ns);
                prop_assert!(r.end_ns <= report.makespan_ns);
                for &d in &t.deps {
                    prop_assert!(
                        report.tasks[d].end_ns <= r.start_ns,
                        "task {} started before dep {} finished", i, d
                    );
                }
            }
            // I/O accounting: per-task io_ns fits within its span.
            for r in &report.tasks {
                prop_assert!(r.io_ns + r.compute_ns <= r.duration_ns() + 1);
            }
        }

        /// The engine is a pure function of its inputs.
        #[test]
        fn replay_is_deterministic(job in arb_job()) {
            let cluster = Cluster::cpu_cluster(4);
            let placement = Placement::new();
            let a = Engine::new(&cluster, &placement).run(&job).unwrap();
            let b = Engine::new(&cluster, &placement).run(&job).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::cluster::{Cluster, Placement};
    use crate::program::{SimOp, SimTask};

    fn rereader(times: usize) -> Vec<SimTask> {
        vec![SimTask::new("reader")
            .with_program((0..times).map(|_| SimOp::read("hot.h5", 1 << 20)).collect())]
    }

    #[test]
    fn cache_accelerates_repeat_reads() {
        let c = Cluster::gpu_cluster(1);
        let p = Placement::new(); // file on BeeGFS
        let cold = Engine::new(&c, &p).run(&rereader(10)).unwrap();
        let warm = Engine::new(&c, &p)
            .with_cache(CacheConfig::per_node(64 << 20))
            .run(&rereader(10))
            .unwrap();
        // First read misses, the other 9 come from RAM.
        assert!(
            warm.total_io_ns() * 5 < cold.total_io_ns(),
            "buffered re-reads should be far cheaper: {} vs {}",
            warm.total_io_ns(),
            cold.total_io_ns()
        );
    }

    #[test]
    fn cache_with_tiny_budget_is_inert() {
        let c = Cluster::gpu_cluster(1);
        let p = Placement::new();
        let cold = Engine::new(&c, &p).run(&rereader(5)).unwrap();
        let warm = Engine::new(&c, &p)
            .with_cache(CacheConfig::per_node(1024)) // smaller than the file
            .run(&rereader(5))
            .unwrap();
        assert_eq!(
            warm.total_io_ns(),
            cold.total_io_ns(),
            "an undersized buffer changes nothing"
        );
    }

    #[test]
    fn cache_is_per_node() {
        let c = Cluster::gpu_cluster(2);
        let p = Placement::new();
        // Two readers on different nodes: each pays its own cold miss.
        let tasks = vec![
            SimTask::new("r0")
                .on_node(0)
                .with_program(vec![SimOp::read("f", 1 << 20), SimOp::read("f", 1 << 20)]),
            SimTask::new("r1")
                .on_node(1)
                .with_program(vec![SimOp::read("f", 1 << 20), SimOp::read("f", 1 << 20)]),
        ];
        let r = Engine::new(&c, &p)
            .with_cache(CacheConfig::per_node(64 << 20))
            .run(&tasks)
            .unwrap();
        // Each task: one expensive miss + one cheap hit; both tasks roughly
        // equal cost (neither served by the other's node buffer).
        let a = r.tasks[0].io_ns as f64;
        let b = r.tasks[1].io_ns as f64;
        assert!((a / b - 1.0).abs() < 0.5, "{a} vs {b}");
    }
}
