//! Dataspaces and hyperslab selections.
//!
//! A dataset's *dataspace* is its logical N-dimensional shape. Applications
//! address data through *selections* (whole-space or hyperslab); the layout
//! logic turns a selection into contiguous element runs in the row-major
//! linearization — the first of the two translation steps (logical structure
//! → file addresses) whose obscurity the paper targets.

use crate::error::{HdfError, Result};

/// A hyperslab selection: `offset` and `count` per dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Selection {
    /// Starting coordinate per dimension.
    pub offset: Vec<u64>,
    /// Number of elements selected per dimension.
    pub count: Vec<u64>,
}

impl Selection {
    /// Selects the whole of `shape`.
    pub fn all(shape: &[u64]) -> Self {
        Self {
            offset: vec![0; shape.len()],
            count: shape.to_vec(),
        }
    }

    /// A hyperslab at `offset` spanning `count` elements per dimension.
    pub fn slab(offset: &[u64], count: &[u64]) -> Self {
        Self {
            offset: offset.to_vec(),
            count: count.to_vec(),
        }
    }

    /// Number of selected elements.
    pub fn element_count(&self) -> u64 {
        if self.count.is_empty() {
            1
        } else {
            self.count.iter().product()
        }
    }

    /// Validates the selection against `shape`.
    pub fn validate(&self, shape: &[u64]) -> Result<()> {
        if self.offset.len() != shape.len() || self.count.len() != shape.len() {
            return Err(HdfError::InvalidArgument(format!(
                "selection rank {} does not match dataspace rank {}",
                self.offset.len(),
                shape.len()
            )));
        }
        for (d, ((&off, &cnt), &dim)) in self.offset.iter().zip(&self.count).zip(shape).enumerate()
        {
            if off + cnt > dim {
                return Err(HdfError::InvalidArgument(format!(
                    "selection [{off}, {}) exceeds dimension {d} extent {dim}",
                    off + cnt
                )));
            }
        }
        Ok(())
    }

    /// Whether the selection covers the entire `shape`.
    pub fn is_all(&self, shape: &[u64]) -> bool {
        self.offset.iter().all(|&o| o == 0) && self.count == shape
    }

    /// Contiguous element runs of the selection in row-major order, as
    /// `(linear_start_element, run_length)` pairs.
    ///
    /// Runs are maximal: a selection of whole trailing dimensions collapses
    /// into longer runs (selecting full rows of a 2-D space yields one run
    /// per row-range, and selecting everything yields a single run).
    pub fn runs(&self, shape: &[u64]) -> Vec<(u64, u64)> {
        if shape.is_empty() {
            return vec![(0, 1)];
        }
        // Find the innermost suffix of dimensions selected completely: those
        // collapse into the run.
        let rank = shape.len();
        let mut collapse_from = rank; // index of first fully-selected suffix dim
        for d in (0..rank).rev() {
            if self.offset[d] == 0 && self.count[d] == shape[d] {
                collapse_from = d;
            } else {
                break;
            }
        }
        // The run also extends over the innermost non-collapsed dimension's
        // contiguous span (its count), if any.
        let (outer_dims, run_len) = if collapse_from == 0 {
            // Whole space selected.
            return vec![(0, shape.iter().product())];
        } else {
            let inner: u64 = shape[collapse_from..].iter().product();
            (collapse_from - 1, self.count[collapse_from - 1] * inner)
        };
        if run_len == 0 || self.count[..=outer_dims].contains(&0) {
            return Vec::new();
        }

        // Row-major strides.
        let mut strides = vec![1u64; rank];
        for d in (0..rank - 1).rev() {
            strides[d] = strides[d + 1] * shape[d + 1];
        }

        // Iterate the outer (non-collapsed, non-innermost-run) coordinates.
        let mut runs = Vec::new();
        let mut coord = self.offset[..outer_dims].to_vec();
        loop {
            let mut start = self.offset[outer_dims] * strides[outer_dims];
            for d in 0..outer_dims {
                start += coord[d] * strides[d];
            }
            runs.push((start, run_len));

            // Advance odometer over dims [0, outer_dims).
            let mut d = outer_dims;
            loop {
                if d == 0 {
                    return runs;
                }
                d -= 1;
                coord[d] += 1;
                if coord[d] < self.offset[d] + self.count[d] {
                    break;
                }
                coord[d] = self.offset[d];
            }
        }
    }
}

/// Row-major linear index of `coord` within `shape`.
pub fn linear_index(coord: &[u64], shape: &[u64]) -> u64 {
    debug_assert_eq!(coord.len(), shape.len());
    let mut idx = 0;
    for (c, s) in coord.iter().zip(shape) {
        idx = idx * s + c;
    }
    idx
}

/// Total elements of `shape` (1 for scalar/empty shape).
pub fn element_count(shape: &[u64]) -> u64 {
    if shape.is_empty() {
        1
    } else {
        shape.iter().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selection_is_single_run() {
        let shape = [4, 8];
        let sel = Selection::all(&shape);
        assert!(sel.is_all(&shape));
        assert_eq!(sel.element_count(), 32);
        assert_eq!(sel.runs(&shape), vec![(0, 32)]);
    }

    #[test]
    fn full_row_selection_collapses() {
        // Rows 1..3 of a 4x8 space: full trailing dim → one run of 16.
        let sel = Selection::slab(&[1, 0], &[2, 8]);
        assert_eq!(sel.runs(&[4, 8]), vec![(8, 16)]);
    }

    #[test]
    fn partial_rows_are_one_run_each() {
        // Columns 2..5 of rows 1..3: two runs of 3.
        let sel = Selection::slab(&[1, 2], &[2, 3]);
        assert_eq!(sel.runs(&[4, 8]), vec![(10, 3), (18, 3)]);
    }

    #[test]
    fn three_d_runs() {
        // shape (2,3,4): select [0..2, 1..3, 0..4] → trailing dim full, so
        // runs of 2*4=8 at each outer coordinate.
        let sel = Selection::slab(&[0, 1, 0], &[2, 2, 4]);
        assert_eq!(sel.runs(&[2, 3, 4]), vec![(4, 8), (16, 8)]);
    }

    #[test]
    fn one_d_slab() {
        let sel = Selection::slab(&[5], &[10]);
        assert_eq!(sel.runs(&[100]), vec![(5, 10)]);
    }

    #[test]
    fn scalar_space() {
        let sel = Selection::all(&[]);
        assert_eq!(sel.element_count(), 1);
        assert_eq!(sel.runs(&[]), vec![(0, 1)]);
    }

    #[test]
    fn empty_count_selection_yields_no_runs() {
        let sel = Selection::slab(&[0, 0], &[0, 4]);
        assert!(sel.runs(&[4, 8]).is_empty());
        let sel2 = Selection::slab(&[0, 0], &[2, 0]);
        assert!(sel2.runs(&[4, 8]).is_empty());
    }

    #[test]
    fn validation() {
        let shape = [4, 8];
        assert!(Selection::all(&shape).validate(&shape).is_ok());
        assert!(Selection::slab(&[0], &[4]).validate(&shape).is_err());
        assert!(Selection::slab(&[3, 0], &[2, 8]).validate(&shape).is_err());
        assert!(Selection::slab(&[3, 0], &[1, 8]).validate(&shape).is_ok());
    }

    #[test]
    fn linear_index_row_major() {
        assert_eq!(linear_index(&[0, 0], &[4, 8]), 0);
        assert_eq!(linear_index(&[1, 2], &[4, 8]), 10);
        assert_eq!(linear_index(&[3, 7], &[4, 8]), 31);
        assert_eq!(linear_index(&[1, 2, 3], &[2, 3, 4]), 23);
    }

    #[test]
    fn runs_cover_exactly_the_selected_elements() {
        // Cross-check runs() against a brute-force enumeration.
        let shape = [3, 4, 5];
        let sel = Selection::slab(&[1, 1, 2], &[2, 2, 3]);
        let mut from_runs: Vec<u64> = sel
            .runs(&shape)
            .into_iter()
            .flat_map(|(s, l)| s..s + l)
            .collect();
        from_runs.sort_unstable();

        let mut brute = Vec::new();
        for i in 1..3u64 {
            for j in 1..3u64 {
                for k in 2..5u64 {
                    brute.push(linear_index(&[i, j, k], &shape));
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(from_runs, brute);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn shape_and_slab() -> impl Strategy<Value = (Vec<u64>, Selection)> {
        prop::collection::vec(1u64..6, 1..4).prop_flat_map(|shape| {
            let sels = shape
                .iter()
                .map(|&dim| (0..dim).prop_flat_map(move |off| (Just(off), 0..=dim - off)))
                .collect::<Vec<_>>();
            (Just(shape), sels).prop_map(|(shape, parts)| {
                let (offset, count): (Vec<u64>, Vec<u64>) = parts.into_iter().unzip();
                (shape, Selection { offset, count })
            })
        })
    }

    proptest! {
        #[test]
        fn runs_match_brute_force((shape, sel) in shape_and_slab()) {
            prop_assert!(sel.validate(&shape).is_ok());
            let mut from_runs: Vec<u64> =
                sel.runs(&shape).into_iter().flat_map(|(s, l)| s..s + l).collect();
            from_runs.sort_unstable();

            // Brute force: enumerate all coordinates, keep those inside.
            let total = element_count(&shape);
            let mut brute = Vec::new();
            for lin in 0..total {
                let mut rem = lin;
                let mut coord = vec![0u64; shape.len()];
                for d in (0..shape.len()).rev() {
                    coord[d] = rem % shape[d];
                    rem /= shape[d];
                }
                let inside = coord
                    .iter()
                    .zip(sel.offset.iter().zip(&sel.count))
                    .all(|(&c, (&o, &n))| c >= o && c < o + n);
                if inside {
                    brute.push(lin);
                }
            }
            prop_assert_eq!(from_runs, brute);
        }

        #[test]
        fn run_total_equals_element_count((shape, sel) in shape_and_slab()) {
            let total: u64 = sel.runs(&shape).iter().map(|&(_, l)| l).sum();
            prop_assert_eq!(total, sel.element_count());
        }
    }
}
