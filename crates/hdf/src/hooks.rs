//! VOL (Virtual Object Layer) hook points.
//!
//! HDF5 lets a VOL plugin observe every object-level operation; DaYu's
//! high-level profiler is such a plugin. This module is the equivalent
//! attach surface: the format library invokes a [`HookSet`] at each
//! object-level event, and `dayu-mapper` installs a [`VolHooks`]
//! implementation that turns the events into Table I records.

use dayu_trace::ids::{FileKey, ObjectKey};
use dayu_trace::time::Timestamp;
use dayu_trace::vol::{ObjectDescription, ObjectKind, VolAccessKind};
use std::sync::Arc;

/// Observer of object-level events. All methods default to no-ops so
/// implementations only override what they need.
#[allow(unused_variables)]
pub trait VolHooks: Send + Sync {
    /// A file was created or opened.
    fn file_opened(&self, file: &FileKey, at: Timestamp) {}

    /// A file was closed. The paper's mapper defers flushing per-object
    /// statistics until this event.
    fn file_closed(&self, file: &FileKey, at: Timestamp) {}

    /// An object was created or opened. `desc` carries the object's
    /// semantic description (shape, datatype, layout) — richest at create
    /// time.
    fn object_opened(
        &self,
        file: &FileKey,
        object: &ObjectKey,
        kind: ObjectKind,
        desc: &ObjectDescription,
        at: Timestamp,
    ) {
    }

    /// An object handle was closed.
    fn object_closed(&self, file: &FileKey, object: &ObjectKey, at: Timestamp) {}

    /// The application read or wrote object data. `sel` is the hyperslab
    /// `(offset, count)` when the access was partial.
    fn object_access(
        &self,
        file: &FileKey,
        object: &ObjectKey,
        kind: VolAccessKind,
        bytes: u64,
        sel: Option<(&[u64], &[u64])>,
        at: Timestamp,
    ) {
    }
}

/// A shareable, possibly-empty collection of hooks invoked in order.
#[derive(Clone, Default)]
pub struct HookSet {
    hooks: Vec<Arc<dyn VolHooks>>,
}

impl HookSet {
    /// No hooks: zero observation overhead.
    pub fn none() -> Self {
        Self::default()
    }

    /// A set containing one hook.
    pub fn single(hook: Arc<dyn VolHooks>) -> Self {
        Self { hooks: vec![hook] }
    }

    /// Adds a hook to the set.
    pub fn push(&mut self, hook: Arc<dyn VolHooks>) {
        self.hooks.push(hook);
    }

    /// Whether any hooks are installed (lets hot paths skip event assembly).
    pub fn is_active(&self) -> bool {
        !self.hooks.is_empty()
    }

    /// Invokes `f` for each installed hook.
    pub fn each(&self, mut f: impl FnMut(&dyn VolHooks)) {
        for h in &self.hooks {
            f(h.as_ref());
        }
    }
}

impl std::fmt::Debug for HookSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HookSet({} hooks)", self.hooks.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[derive(Default)]
    struct Counter {
        events: AtomicU32,
    }

    impl VolHooks for Counter {
        fn file_opened(&self, _: &FileKey, _: Timestamp) {
            self.events.fetch_add(1, Ordering::Relaxed);
        }
        fn object_access(
            &self,
            _: &FileKey,
            _: &ObjectKey,
            _: VolAccessKind,
            _: u64,
            _: Option<(&[u64], &[u64])>,
            _: Timestamp,
        ) {
            self.events.fetch_add(10, Ordering::Relaxed);
        }
    }

    #[test]
    fn empty_set_is_inactive() {
        let set = HookSet::none();
        assert!(!set.is_active());
        set.each(|_| panic!("no hooks should be invoked"));
    }

    #[test]
    fn hooks_receive_events_in_order() {
        let a = Arc::new(Counter::default());
        let b = Arc::new(Counter::default());
        let mut set = HookSet::single(a.clone());
        set.push(b.clone());
        assert!(set.is_active());
        set.each(|h| h.file_opened(&FileKey::new("f"), Timestamp::ZERO));
        set.each(|h| {
            h.object_access(
                &FileKey::new("f"),
                &ObjectKey::new("/d"),
                VolAccessKind::Read,
                8,
                None,
                Timestamp::ZERO,
            )
        });
        assert_eq!(a.events.load(Ordering::Relaxed), 11);
        assert_eq!(b.events.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn default_hook_methods_are_noops() {
        struct Nothing;
        impl VolHooks for Nothing {}
        let set = HookSet::single(Arc::new(Nothing));
        // None of these should panic.
        set.each(|h| {
            h.file_opened(&FileKey::new("f"), Timestamp::ZERO);
            h.file_closed(&FileKey::new("f"), Timestamp::ZERO);
            h.object_opened(
                &FileKey::new("f"),
                &ObjectKey::new("/o"),
                ObjectKind::Dataset,
                &ObjectDescription::default(),
                Timestamp::ZERO,
            );
            h.object_closed(&FileKey::new("f"), &ObjectKey::new("/o"), Timestamp::ZERO);
        });
    }
}
