//! Chunked-layout machinery: chunk geometry, the on-storage chunk index,
//! and the per-dataset chunk cache.
//!
//! A chunked dataset's payload is split into fixed-size chunks, each an
//! independently allocated file extent located through an *index block* —
//! index data and actual data live in separate file regions, the
//! fragmentation of the paper's Challenge 3. The index is cached in memory
//! while the dataset is open (like HDF5's metadata cache) but still costs
//! extra metadata I/O per open/close, and chunk payloads cost one operation
//! per chunk instead of one per extent — the metadata overhead DaYu
//! observes for small chunked datasets. The write-back [`ChunkCache`]
//! batches payload I/O into whole chunks, which is why chunked layouts
//! need *fewer* operations than element-at-a-time contiguous writes for
//! variable-length data.

use crate::codec::Encoder;
use crate::error::{HdfError, Result};
use crate::raw::RawFile;
use crate::space::Selection;
use dayu_trace::vfd::AccessType;
use std::collections::HashMap;

/// Default chunk cache capacity (matches HDF5's 1 MiB default).
pub const DEFAULT_CACHE_BYTES: u64 = 1024 * 1024;

/// Chunk grid geometry for a dataset shape and chunk dims.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkGrid {
    /// Dataset shape.
    pub shape: Vec<u64>,
    /// Chunk dimensions.
    pub chunk_dims: Vec<u64>,
    /// Chunks per dimension (ceil division).
    pub grid: Vec<u64>,
}

impl ChunkGrid {
    /// Builds the grid, validating that ranks match and chunks are non-zero.
    pub fn new(shape: &[u64], chunk_dims: &[u64]) -> Result<Self> {
        if shape.len() != chunk_dims.len() {
            return Err(HdfError::InvalidArgument(format!(
                "chunk rank {} != dataspace rank {}",
                chunk_dims.len(),
                shape.len()
            )));
        }
        if chunk_dims.contains(&0) {
            return Err(HdfError::InvalidArgument("zero chunk dimension".into()));
        }
        let grid = shape
            .iter()
            .zip(chunk_dims)
            .map(|(&s, &c)| s.div_ceil(c))
            .collect();
        Ok(Self {
            shape: shape.to_vec(),
            chunk_dims: chunk_dims.to_vec(),
            grid,
        })
    }

    /// Total number of chunks.
    pub fn chunk_count(&self) -> u64 {
        self.grid.iter().product::<u64>().max(1)
    }

    /// Elements per chunk (edge chunks are stored full-size).
    pub fn chunk_elements(&self) -> u64 {
        self.chunk_dims.iter().product::<u64>().max(1)
    }

    /// Linear ordinal of the chunk holding grid coordinate `ccoord`.
    pub fn ordinal(&self, ccoord: &[u64]) -> u64 {
        let mut idx = 0;
        for (c, g) in ccoord.iter().zip(&self.grid) {
            idx = idx * g + c;
        }
        idx
    }

    /// Chunk-grid coordinates and per-chunk intersections for a selection.
    ///
    /// Each result is `(ordinal, local_sel, buf_sel)` where `local_sel`
    /// addresses elements inside the chunk (shape = `chunk_dims`) and
    /// `buf_sel` addresses the matching elements inside the dense
    /// application buffer (shape = `sel.count`).
    pub fn intersect(&self, sel: &Selection) -> Vec<(u64, Selection, Selection)> {
        let rank = self.shape.len();
        if rank == 0 {
            return vec![(0, Selection::all(&[]), Selection::all(&[]))];
        }
        if sel.count.contains(&0) {
            return Vec::new();
        }
        // Chunk-coordinate range intersecting the selection per dim.
        let lo: Vec<u64> = (0..rank)
            .map(|d| sel.offset[d] / self.chunk_dims[d])
            .collect();
        let hi: Vec<u64> = (0..rank)
            .map(|d| (sel.offset[d] + sel.count[d] - 1) / self.chunk_dims[d])
            .collect();

        let mut out = Vec::new();
        let mut ccoord = lo.clone();
        loop {
            let mut local_off = Vec::with_capacity(rank);
            let mut buf_off = Vec::with_capacity(rank);
            let mut count = Vec::with_capacity(rank);
            #[allow(clippy::needless_range_loop)] // indexes four slices in lockstep
            for d in 0..rank {
                let origin = ccoord[d] * self.chunk_dims[d];
                let a = sel.offset[d].max(origin);
                let b = (sel.offset[d] + sel.count[d]).min(origin + self.chunk_dims[d]);
                local_off.push(a - origin);
                buf_off.push(a - sel.offset[d]);
                count.push(b - a);
            }
            out.push((
                self.ordinal(&ccoord),
                Selection {
                    offset: local_off,
                    count: count.clone(),
                },
                Selection {
                    offset: buf_off,
                    count,
                },
            ));

            // Odometer over [lo, hi].
            let mut d = rank;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                ccoord[d] += 1;
                if ccoord[d] <= hi[d] {
                    break;
                }
                ccoord[d] = lo[d];
            }
        }
    }
}

/// Copies the elements selected by `src_sel` in `src` to the positions
/// selected by `dst_sel` in `dst`. Both selections must have identical
/// `count` vectors. `esize` is bytes per element.
pub fn copy_slab(
    src: &[u8],
    src_shape: &[u64],
    src_sel: &Selection,
    dst: &mut [u8],
    dst_shape: &[u64],
    dst_sel: &Selection,
    esize: u64,
) {
    debug_assert_eq!(src_sel.count, dst_sel.count, "mismatched copy extents");
    let rank = src_shape.len();
    if rank == 0 {
        dst[..esize as usize].copy_from_slice(&src[..esize as usize]);
        return;
    }
    if src_sel.count.contains(&0) {
        return;
    }

    let stride = |shape: &[u64]| -> Vec<u64> {
        let mut s = vec![1u64; rank];
        for d in (0..rank - 1).rev() {
            s[d] = s[d + 1] * shape[d + 1];
        }
        s
    };
    let sstr = stride(src_shape);
    let dstr = stride(dst_shape);
    let row = src_sel.count[rank - 1];
    let row_bytes = (row * esize) as usize;

    // Odometer over the outer dims of the intersection.
    let mut coord = vec![0u64; rank.saturating_sub(1)];
    loop {
        let mut s_idx = src_sel.offset[rank - 1];
        let mut d_idx = dst_sel.offset[rank - 1];
        for d in 0..rank - 1 {
            s_idx += (src_sel.offset[d] + coord[d]) * sstr[d];
            d_idx += (dst_sel.offset[d] + coord[d]) * dstr[d];
        }
        let s_byte = (s_idx * esize) as usize;
        let d_byte = (d_idx * esize) as usize;
        dst[d_byte..d_byte + row_bytes].copy_from_slice(&src[s_byte..s_byte + row_bytes]);

        let mut d = rank - 1;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            coord[d] += 1;
            if coord[d] < src_sel.count[d] {
                break;
            }
            coord[d] = 0;
        }
    }
}

/// The on-storage chunk index: a block of 12-byte `(addr: u64, size: u32)`
/// entries, one per chunk, preceded by a u32 count.
///
/// Entries are cached in memory once loaded — the analogue of HDF5 keeping
/// chunk B-tree nodes in its metadata cache. Storage sees one metadata read
/// when the index is first consulted and one metadata write when a dirty
/// index flushes (at dataset close), instead of an op per entry.
#[derive(Clone, Debug)]
pub struct ChunkIndex {
    /// Address of the index block.
    pub addr: u64,
    /// Number of entries.
    pub n: u64,
    entries: Option<Vec<(u64, u32)>>,
    dirty: bool,
}

impl ChunkIndex {
    const HEADER: u64 = 4;
    const ENTRY: u64 = 12;

    /// Byte length of an index block for `n` chunks.
    pub fn byte_len(n: u64) -> u64 {
        Self::HEADER + n * Self::ENTRY
    }

    /// Allocates and zero-initializes an index block for `n` chunks.
    pub fn create(rf: &mut RawFile, n: u64) -> Result<Self> {
        let len = Self::byte_len(n);
        let mut e = Encoder::with_capacity(len as usize);
        e.u32(n as u32).pad_to(len as usize);
        let addr = rf.alloc_write(&e.finish(), AccessType::Metadata)?;
        Ok(Self {
            addr,
            n,
            entries: Some(vec![(0, 0); n as usize]),
            dirty: false,
        })
    }

    /// Decodes a raw index block into its `(addr, size)` entries without
    /// touching storage. Public so external integrity checkers (dayu-lint's
    /// fsck) can validate an index from raw bytes; rejects blocks whose
    /// stored count disagrees with the block length.
    pub fn decode_block(buf: &[u8]) -> Result<Vec<(u64, u32)>> {
        if (buf.len() as u64) < Self::HEADER {
            return Err(HdfError::Corrupt("chunk index block too short".into()));
        }
        let n = u32::from_le_bytes(buf[0..4].try_into().expect("header")) as u64;
        if Self::byte_len(n) != buf.len() as u64 {
            return Err(HdfError::Corrupt(format!(
                "chunk index holds {n} entries but block is {} bytes",
                buf.len()
            )));
        }
        let mut entries = Vec::with_capacity(n as usize);
        for i in 0..n as usize {
            let off = (Self::HEADER + i as u64 * Self::ENTRY) as usize;
            entries.push((
                u64::from_le_bytes(buf[off..off + 8].try_into().expect("entry")),
                u32::from_le_bytes(buf[off + 8..off + 12].try_into().expect("entry")),
            ));
        }
        Ok(entries)
    }

    /// Opens an existing index block (entries load lazily on first use).
    pub fn open(addr: u64, n: u64) -> Self {
        Self {
            addr,
            n,
            entries: None,
            dirty: false,
        }
    }

    fn load(&mut self, rf: &mut RawFile) -> Result<&mut Vec<(u64, u32)>> {
        if self.entries.is_none() {
            let buf = rf.read_at(self.addr, Self::byte_len(self.n), AccessType::Metadata)?;
            let stored_n = u32::from_le_bytes(buf[0..4].try_into().expect("header")) as u64;
            if stored_n != self.n {
                return Err(crate::error::HdfError::Corrupt(format!(
                    "chunk index holds {stored_n} entries, expected {}",
                    self.n
                )));
            }
            let mut entries = Vec::with_capacity(self.n as usize);
            for i in 0..self.n as usize {
                let off = (Self::HEADER + i as u64 * Self::ENTRY) as usize;
                entries.push((
                    u64::from_le_bytes(buf[off..off + 8].try_into().expect("entry")),
                    u32::from_le_bytes(buf[off + 8..off + 12].try_into().expect("entry")),
                ));
            }
            self.entries = Some(entries);
        }
        Ok(self.entries.as_mut().expect("just loaded"))
    }

    /// Entry `i` → `(chunk_addr, stored_size)`; `(0, _)` means the chunk is
    /// unallocated. The first call reads the whole index block.
    pub fn entry(&mut self, rf: &mut RawFile, i: u64) -> Result<(u64, u32)> {
        debug_assert!(i < self.n, "chunk ordinal out of range");
        Ok(self.load(rf)?[i as usize])
    }

    /// Updates entry `i` in the cached index (persisted by
    /// [`ChunkIndex::flush`]).
    pub fn set_entry(&mut self, rf: &mut RawFile, i: u64, addr: u64, size: u32) -> Result<()> {
        debug_assert!(i < self.n, "chunk ordinal out of range");
        self.load(rf)?[i as usize] = (addr, size);
        self.dirty = true;
        Ok(())
    }

    /// Writes the index block back if any entry changed. One metadata write.
    pub fn flush(&mut self, rf: &mut RawFile) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        let entries = self.entries.as_ref().expect("dirty implies loaded");
        let mut e = Encoder::with_capacity(Self::byte_len(self.n) as usize);
        e.u32(self.n as u32);
        for &(addr, size) in entries {
            e.u64(addr).u32(size);
        }
        rf.write_at(self.addr, &e.finish(), AccessType::Metadata)?;
        self.dirty = false;
        Ok(())
    }
}

struct Cached {
    data: Vec<u8>,
    dirty: bool,
    last_use: u64,
}

/// Write-back LRU cache of raw chunks for one open dataset.
pub struct ChunkCache {
    chunk_bytes: u64,
    capacity_bytes: u64,
    map: HashMap<u64, Cached>,
    tick: u64,
    /// Chunk payload reads issued (diagnostics).
    pub loads: u64,
    /// Chunk payload writes issued (diagnostics).
    pub stores: u64,
}

impl ChunkCache {
    /// A cache for chunks of `chunk_bytes`, holding at most
    /// `capacity_bytes` of chunk data (at least one chunk).
    pub fn new(chunk_bytes: u64, capacity_bytes: u64) -> Self {
        Self {
            chunk_bytes,
            capacity_bytes: capacity_bytes.max(chunk_bytes),
            map: HashMap::new(),
            tick: 0,
            loads: 0,
            stores: 0,
        }
    }

    /// Bytes per cached chunk.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Capacity in whole chunks (at least one).
    pub fn capacity_chunks(&self) -> u64 {
        (self.capacity_bytes / self.chunk_bytes).max(1)
    }

    /// Whether no chunks are resident. The batched sweep planner only
    /// engages on an empty cache, where the scalar path's eviction order
    /// is provably ascending.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, ord: u64) {
        self.tick += 1;
        if let Some(c) = self.map.get_mut(&ord) {
            c.last_use = self.tick;
        }
    }

    /// Ensures chunk `ord` is resident, loading it if needed, and returns a
    /// mutable view. `mark_dirty` flags the chunk for write-back.
    pub fn chunk_mut(
        &mut self,
        rf: &mut RawFile,
        idx: &mut ChunkIndex,
        ord: u64,
        mark_dirty: bool,
    ) -> Result<&mut Vec<u8>> {
        if !self.map.contains_key(&ord) {
            self.evict_to_fit(rf, idx)?;
            let (addr, _size) = idx.entry(rf, ord)?;
            let data = if addr == 0 {
                vec![0u8; self.chunk_bytes as usize]
            } else {
                self.loads += 1;
                rf.read_at(addr, self.chunk_bytes, AccessType::RawData)?
            };
            self.map.insert(
                ord,
                Cached {
                    data,
                    dirty: false,
                    last_use: 0,
                },
            );
        }
        self.touch(ord);
        let c = self.map.get_mut(&ord).expect("just inserted");
        if mark_dirty {
            c.dirty = true;
        }
        Ok(&mut c.data)
    }

    fn evict_to_fit(&mut self, rf: &mut RawFile, idx: &mut ChunkIndex) -> Result<()> {
        while (self.map.len() as u64 + 1) * self.chunk_bytes > self.capacity_bytes
            && !self.map.is_empty()
        {
            let victim = *self
                .map
                .iter()
                .min_by_key(|(_, c)| c.last_use)
                .map(|(k, _)| k)
                .expect("non-empty");
            let c = self.map.remove(&victim).expect("present");
            if c.dirty {
                self.write_back(rf, idx, victim, &c.data)?;
            }
        }
        Ok(())
    }

    fn write_back(
        &mut self,
        rf: &mut RawFile,
        idx: &mut ChunkIndex,
        ord: u64,
        data: &[u8],
    ) -> Result<()> {
        let (mut addr, _) = idx.entry(rf, ord)?;
        if addr == 0 {
            addr = rf.alloc(self.chunk_bytes)?;
            idx.set_entry(rf, ord, addr, self.chunk_bytes as u32)?;
        }
        rf.write_at(addr, data, AccessType::RawData)?;
        self.stores += 1;
        Ok(())
    }

    /// Writes back all dirty chunks (dataset close / flush).
    pub fn flush(&mut self, rf: &mut RawFile, idx: &mut ChunkIndex) -> Result<()> {
        let mut dirty: Vec<u64> = self
            .map
            .iter()
            .filter(|(_, c)| c.dirty)
            .map(|(&k, _)| k)
            .collect();
        dirty.sort_unstable();
        for ord in dirty {
            let data = std::mem::take(&mut self.map.get_mut(&ord).expect("present").data);
            self.write_back(rf, idx, ord, &data)?;
            let c = self.map.get_mut(&ord).expect("present");
            c.data = data;
            c.dirty = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_vfd::MemVfd;

    fn raw() -> RawFile {
        RawFile::new(Box::new(MemVfd::new()), 64)
    }

    #[test]
    fn grid_geometry() {
        let g = ChunkGrid::new(&[10, 10], &[4, 5]).unwrap();
        assert_eq!(g.grid, vec![3, 2]);
        assert_eq!(g.chunk_count(), 6);
        assert_eq!(g.chunk_elements(), 20);
        assert_eq!(g.ordinal(&[0, 0]), 0);
        assert_eq!(g.ordinal(&[2, 1]), 5);
    }

    #[test]
    fn grid_validation() {
        assert!(ChunkGrid::new(&[10], &[4, 4]).is_err());
        assert!(ChunkGrid::new(&[10], &[0]).is_err());
    }

    #[test]
    fn intersect_whole_space() {
        let g = ChunkGrid::new(&[8], &[3]).unwrap();
        let parts = g.intersect(&Selection::all(&[8]));
        assert_eq!(parts.len(), 3);
        // First chunk: local [0,3), buffer [0,3).
        assert_eq!(parts[0].1, Selection::slab(&[0], &[3]));
        assert_eq!(parts[0].2, Selection::slab(&[0], &[3]));
        // Edge chunk holds only 2 valid elements.
        assert_eq!(parts[2].1, Selection::slab(&[0], &[2]));
        assert_eq!(parts[2].2, Selection::slab(&[6], &[2]));
    }

    #[test]
    fn intersect_partial_2d() {
        let g = ChunkGrid::new(&[4, 4], &[2, 2]).unwrap();
        // Select the center 2x2 region: touches all 4 chunks, 1 element each.
        let parts = g.intersect(&Selection::slab(&[1, 1], &[2, 2]));
        assert_eq!(parts.len(), 4);
        for (_, local, buf) in &parts {
            assert_eq!(local.element_count(), 1);
            assert_eq!(buf.element_count(), 1);
        }
        let total: u64 = parts.iter().map(|(_, l, _)| l.element_count()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn intersect_empty_selection() {
        let g = ChunkGrid::new(&[4, 4], &[2, 2]).unwrap();
        assert!(g.intersect(&Selection::slab(&[0, 0], &[0, 2])).is_empty());
    }

    #[test]
    fn copy_slab_2d() {
        // src 3x4 filled 0..12; copy rows 1..3 cols 1..3 into dst 2x2.
        let src: Vec<u8> = (0..12).collect();
        let mut dst = vec![0u8; 4];
        copy_slab(
            &src,
            &[3, 4],
            &Selection::slab(&[1, 1], &[2, 2]),
            &mut dst,
            &[2, 2],
            &Selection::all(&[2, 2]),
            1,
        );
        assert_eq!(dst, vec![5, 6, 9, 10]);
    }

    #[test]
    fn copy_slab_reverse_direction() {
        // Scatter a 2x2 buffer into the middle of a 4x4 zeroed space.
        let src = vec![1u8, 2, 3, 4];
        let mut dst = vec![0u8; 16];
        copy_slab(
            &src,
            &[2, 2],
            &Selection::all(&[2, 2]),
            &mut dst,
            &[4, 4],
            &Selection::slab(&[1, 1], &[2, 2]),
            1,
        );
        assert_eq!(dst[5], 1);
        assert_eq!(dst[6], 2);
        assert_eq!(dst[9], 3);
        assert_eq!(dst[10], 4);
        assert_eq!(dst.iter().map(|&b| b as u32).sum::<u32>(), 10);
    }

    #[test]
    fn copy_slab_multibyte_elements() {
        let src: Vec<u8> = (0..32).collect(); // 8 elements of 4 bytes, shape [8]
        let mut dst = vec![0u8; 8]; // 2 elements
        copy_slab(
            &src,
            &[8],
            &Selection::slab(&[2], &[2]),
            &mut dst,
            &[2],
            &Selection::all(&[2]),
            4,
        );
        assert_eq!(dst, vec![8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn copy_slab_scalar() {
        let src = vec![7u8, 8];
        let mut dst = vec![0u8; 2];
        copy_slab(
            &src,
            &[],
            &Selection::all(&[]),
            &mut dst,
            &[],
            &Selection::all(&[]),
            2,
        );
        assert_eq!(dst, vec![7, 8]);
    }

    #[test]
    fn index_create_read_write() {
        let mut rf = raw();
        let mut idx = ChunkIndex::create(&mut rf, 10).unwrap();
        assert_eq!(idx.entry(&mut rf, 0).unwrap(), (0, 0));
        idx.set_entry(&mut rf, 3, 4096, 512).unwrap();
        assert_eq!(idx.entry(&mut rf, 3).unwrap(), (4096, 512));
        assert_eq!(idx.entry(&mut rf, 2).unwrap(), (0, 0));
        idx.flush(&mut rf).unwrap();
        // Reopen path reads the persisted entries.
        let mut idx2 = ChunkIndex::open(idx.addr, 10);
        assert_eq!(idx2.entry(&mut rf, 3).unwrap(), (4096, 512));
    }

    #[test]
    fn decode_block_round_trip_and_validation() {
        let mut rf = raw();
        let mut idx = ChunkIndex::create(&mut rf, 3).unwrap();
        idx.set_entry(&mut rf, 1, 4096, 64).unwrap();
        idx.flush(&mut rf).unwrap();
        let buf = rf
            .read_at(idx.addr, ChunkIndex::byte_len(3), AccessType::Metadata)
            .unwrap();
        let entries = ChunkIndex::decode_block(&buf).unwrap();
        assert_eq!(entries, vec![(0, 0), (4096, 64), (0, 0)]);
        assert!(ChunkIndex::decode_block(&buf[..2]).is_err());
        assert!(ChunkIndex::decode_block(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn cache_write_read_through() {
        let mut rf = raw();
        let mut idx = ChunkIndex::create(&mut rf, 4).unwrap();
        let mut cache = ChunkCache::new(16, 64);
        cache.chunk_mut(&mut rf, &mut idx, 1, true).unwrap()[0] = 0xEE;
        cache.flush(&mut rf, &mut idx).unwrap();
        idx.flush(&mut rf).unwrap();
        let (addr, size) = idx.entry(&mut rf, 1).unwrap();
        assert_ne!(addr, 0);
        assert_eq!(size, 16);
        assert_eq!(rf.read_at(addr, 1, AccessType::RawData).unwrap()[0], 0xEE);
    }

    #[test]
    fn cache_evicts_lru_and_data_survives() {
        let mut rf = raw();
        let mut idx = ChunkIndex::create(&mut rf, 8).unwrap();
        // Capacity = 2 chunks of 16 bytes.
        let mut cache = ChunkCache::new(16, 32);
        for ord in 0..8u64 {
            cache.chunk_mut(&mut rf, &mut idx, ord, true).unwrap()[0] = ord as u8 + 1;
        }
        assert!(cache.stores >= 6, "evictions wrote back: {}", cache.stores);
        cache.flush(&mut rf, &mut idx).unwrap();
        idx.flush(&mut rf).unwrap();
        // All chunks readable with correct first byte.
        let mut fresh = ChunkCache::new(16, 32);
        for ord in 0..8u64 {
            let data = fresh.chunk_mut(&mut rf, &mut idx, ord, false).unwrap();
            assert_eq!(data[0], ord as u8 + 1, "chunk {ord}");
        }
    }

    #[test]
    fn unallocated_chunks_read_as_zeros() {
        let mut rf = raw();
        let mut idx = ChunkIndex::create(&mut rf, 2).unwrap();
        let mut cache = ChunkCache::new(8, 64);
        let data = cache.chunk_mut(&mut rf, &mut idx, 0, false).unwrap();
        assert_eq!(data, &vec![0u8; 8]);
        assert_eq!(cache.loads, 0, "no payload read for a hole");
    }

    #[test]
    fn flush_is_idempotent() {
        let mut rf = raw();
        let mut idx = ChunkIndex::create(&mut rf, 2).unwrap();
        let mut cache = ChunkCache::new(8, 64);
        cache.chunk_mut(&mut rf, &mut idx, 0, true).unwrap()[0] = 1;
        cache.flush(&mut rf, &mut idx).unwrap();
        idx.flush(&mut rf).unwrap();
        let stores = cache.stores;
        cache.flush(&mut rf, &mut idx).unwrap();
        idx.flush(&mut rf).unwrap();
        assert_eq!(cache.stores, stores, "clean chunks are not rewritten");
    }
}
