//! Groups: hierarchical containers of datasets and other groups.
//!
//! A group's children live in an *entry table* block (the analogue of
//! HDF5's symbol table): a packed list of `(name, header address, kind)`
//! entries. Adding a child rewrites the table into a freshly allocated
//! block and frees the old one — exactly the metadata-churn pattern that
//! makes object creation visible as small metadata I/O in VFD traces.

use crate::codec::{Decoder, Encoder};
use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::{HdfError, Result};
use crate::file::FileCore;
use crate::meta::{self, AttrValue, Attribute, ObjectHeader};
use dayu_trace::ids::ObjectKey;
use dayu_trace::vfd::AccessType;
use dayu_trace::vol::{ObjectDescription, ObjectKind};
use parking_lot::Mutex;
use std::sync::Arc;

/// One child entry of a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Child's leaf name.
    pub name: String,
    /// Address of the child's object header.
    pub addr: u64,
    /// Group or dataset.
    pub kind: ObjectKind,
}

/// Encodes an entry-table block. Public (like [`decode_table`]) so
/// external repair tooling can rebuild pruned tables byte-compatibly.
pub fn encode_table(entries: &[Entry]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u32(entries.len() as u32);
    for en in entries {
        e.str(&en.name).u64(en.addr).u8(match en.kind {
            ObjectKind::Group => 1,
            _ => 2,
        });
    }
    e.finish()
}

/// Decodes an entry-table block into its child entries. Public so external
/// integrity checkers (dayu-lint's fsck) can walk the hierarchy from raw
/// bytes without opening the file.
pub fn decode_table(buf: &[u8]) -> Result<Vec<Entry>> {
    let mut d = Decoder::new(buf);
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let name = d.str()?;
        let addr = d.u64()?;
        let kind = match d.u8()? {
            1 => ObjectKind::Group,
            2 => ObjectKind::Dataset,
            k => return Err(HdfError::Corrupt(format!("bad entry kind {k}"))),
        };
        out.push(Entry { name, addr, kind });
    }
    Ok(out)
}

/// Handle to a group within an open file.
pub struct Group {
    core: Arc<Mutex<FileCore>>,
    header_addr: u64,
    path: String,
    is_root: bool,
}

impl Group {
    pub(crate) fn root(core: Arc<Mutex<FileCore>>) -> Group {
        let header_addr = {
            let core_guard = core.lock();
            // Root header address is recorded in the superblock which the
            // core loaded at open; it is always the first header block.
            core_guard.root_header_addr()
        };
        Group {
            core,
            header_addr,
            path: "/".to_owned(),
            is_root: true,
        }
    }

    /// This group's full path (e.g. `/` or `/sim/step0`).
    pub fn path(&self) -> &str {
        &self.path
    }

    fn child_path(&self, name: &str) -> String {
        if self.is_root {
            format!("/{name}")
        } else {
            format!("{}/{name}", self.path)
        }
    }

    fn load_entries(core: &mut FileCore, header: &ObjectHeader) -> Result<Vec<Entry>> {
        if header.table_addr == 0 {
            return Ok(Vec::new());
        }
        let buf = core
            .rf
            .read_at(header.table_addr, header.table_len, AccessType::Metadata)?;
        decode_table(&buf)
    }

    fn store_entries(
        core: &mut FileCore,
        header_addr: u64,
        header: &mut ObjectHeader,
        entries: &[Entry],
    ) -> Result<()> {
        let bytes = encode_table(entries);
        let new_addr = core.rf.alloc_write(&bytes, AccessType::Metadata)?;
        if header.table_addr != 0 {
            core.rf.free(header.table_addr, header.table_len);
        }
        header.table_addr = new_addr;
        header.table_len = bytes.len() as u64;
        core.store_header(header_addr, header)?;
        Ok(())
    }

    fn insert_child(&self, name: &str, child: &ObjectHeader) -> Result<u64> {
        let mut core = self.core.lock();
        core.check_open()?;
        let mut header = core.load_header(self.header_addr)?;
        let mut entries = Self::load_entries(&mut core, &header)?;
        if entries.iter().any(|e| e.name == name) {
            return Err(HdfError::AlreadyExists(self.child_path(name)));
        }
        let child_addr = core.create_header(child)?;
        entries.push(Entry {
            name: name.to_owned(),
            addr: child_addr,
            kind: child.kind,
        });
        Self::store_entries(&mut core, self.header_addr, &mut header, &entries)?;
        Ok(child_addr)
    }

    fn find_child(&self, name: &str) -> Result<Entry> {
        let mut core = self.core.lock();
        core.check_open()?;
        let header = core.load_header(self.header_addr)?;
        let entries = Self::load_entries(&mut core, &header)?;
        entries
            .into_iter()
            .find(|e| e.name == name)
            .ok_or_else(|| HdfError::NotFound(self.child_path(name)))
    }

    /// Creates a child group.
    pub fn create_group(&self, name: &str) -> Result<Group> {
        let path = self.child_path(name);
        let ctx = self.core.lock().ctx.clone();
        let key = ObjectKey::new(path.clone());
        let addr = ctx.with_object(key.clone(), AccessType::Metadata, || {
            self.insert_child(name, &ObjectHeader::new_group())
        })?;
        {
            let core = self.core.lock();
            let now = core.now();
            let file = core.name.clone();
            core.hooks.each(|h| {
                h.object_opened(
                    &file,
                    &key,
                    ObjectKind::Group,
                    &ObjectDescription::default(),
                    now,
                )
            });
        }
        Ok(Group {
            core: self.core.clone(),
            header_addr: addr,
            path,
            is_root: false,
        })
    }

    /// Opens an existing child group.
    pub fn open_group(&self, name: &str) -> Result<Group> {
        let path = self.child_path(name);
        let key = ObjectKey::new(path.clone());
        let ctx = self.core.lock().ctx.clone();
        let entry = ctx.with_object(key.clone(), AccessType::Metadata, || {
            let entry = self.find_child(name)?;
            if entry.kind != ObjectKind::Group {
                return Err(HdfError::TypeMismatch(format!("{path} is not a group")));
            }
            // Pull the header into the cache under the object's scope so the
            // metadata read is attributed to it.
            self.core.lock().load_header(entry.addr)?;
            Ok(entry)
        })?;
        {
            let core = self.core.lock();
            let now = core.now();
            let file = core.name.clone();
            core.hooks.each(|h| {
                h.object_opened(
                    &file,
                    &key,
                    ObjectKind::Group,
                    &ObjectDescription::default(),
                    now,
                )
            });
        }
        Ok(Group {
            core: self.core.clone(),
            header_addr: entry.addr,
            path,
            is_root: false,
        })
    }

    /// Creates a dataset in this group per the builder's specification.
    pub fn create_dataset(&self, name: &str, builder: DatasetBuilder) -> Result<Dataset> {
        Dataset::create(self.core.clone(), self, name, builder)
    }

    /// Opens an existing dataset.
    pub fn open_dataset(&self, name: &str) -> Result<Dataset> {
        Dataset::open(self.core.clone(), self, name)
    }

    /// Opens `name` if it exists, creating it per `builder` otherwise.
    ///
    /// The idempotent form of [`Group::create_dataset`] for resume-aware
    /// task bodies: a retry that reopens a recovered file finds the
    /// datasets a previous attempt committed and continues in place.
    pub fn ensure_dataset(&self, name: &str, builder: DatasetBuilder) -> Result<Dataset> {
        match self.find_child(name) {
            Ok(_) => self.open_dataset(name),
            Err(HdfError::NotFound(_)) => self.create_dataset(name, builder),
            Err(e) => Err(e),
        }
    }

    /// Opens child group `name` if it exists, creating it otherwise (the
    /// idempotent form of [`Group::create_group`]).
    pub fn ensure_group(&self, name: &str) -> Result<Group> {
        match self.find_child(name) {
            Ok(_) => self.open_group(name),
            Err(HdfError::NotFound(_)) => self.create_group(name),
            Err(e) => Err(e),
        }
    }

    /// Lists the group's children as `(name, kind)` pairs.
    pub fn list(&self) -> Result<Vec<(String, ObjectKind)>> {
        let mut core = self.core.lock();
        core.check_open()?;
        let header = core.load_header(self.header_addr)?;
        let entries = Self::load_entries(&mut core, &header)?;
        Ok(entries.into_iter().map(|e| (e.name, e.kind)).collect())
    }

    /// Whether a child with `name` exists.
    pub fn exists(&self, name: &str) -> Result<bool> {
        match self.find_child(name) {
            Ok(_) => Ok(true),
            Err(HdfError::NotFound(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Sets (or replaces) an attribute on this group.
    pub fn set_attr(&self, name: &str, value: AttrValue) -> Result<()> {
        set_attr_on(&self.core, self.header_addr, &self.path, name, value)
    }

    /// Reads an attribute of this group.
    pub fn attr(&self, name: &str) -> Result<Option<AttrValue>> {
        attr_on(&self.core, self.header_addr, name)
    }

    /// All attributes of this group.
    pub fn attrs(&self) -> Result<Vec<Attribute>> {
        attrs_on(&self.core, self.header_addr)
    }

    pub(crate) fn insert_child_header(&self, name: &str, header: &ObjectHeader) -> Result<u64> {
        self.insert_child(name, header)
    }

    pub(crate) fn lookup_child(&self, name: &str) -> Result<Entry> {
        self.find_child(name)
    }

    pub(crate) fn make_child_path(&self, name: &str) -> String {
        self.child_path(name)
    }
}

/// Shared attribute mutation used by both groups and datasets: loads the
/// attribute block, updates it, writes a fresh block and frees the old one.
pub(crate) fn set_attr_on(
    core: &Arc<Mutex<FileCore>>,
    header_addr: u64,
    path: &str,
    name: &str,
    value: AttrValue,
) -> Result<()> {
    let ctx = core.lock().ctx.clone();
    ctx.with_object(ObjectKey::new(path), AccessType::Metadata, || {
        let mut core = core.lock();
        core.check_open()?;
        let mut header = core.load_header(header_addr)?;
        let mut attrs = if header.attr_addr == 0 {
            Vec::new()
        } else {
            let buf = core
                .rf
                .read_at(header.attr_addr, header.attr_len, AccessType::Metadata)?;
            meta::decode_attrs(&buf)?
        };
        match attrs.iter_mut().find(|a| a.name == name) {
            Some(a) => a.value = value,
            None => attrs.push(Attribute {
                name: name.to_owned(),
                value,
            }),
        }
        let bytes = meta::encode_attrs(&attrs);
        let new_addr = core.rf.alloc_write(&bytes, AccessType::Metadata)?;
        if header.attr_addr != 0 {
            core.rf.free(header.attr_addr, header.attr_len);
        }
        header.attr_addr = new_addr;
        header.attr_len = bytes.len() as u64;
        core.store_header(header_addr, &header)
    })
}

pub(crate) fn attr_on(
    core: &Arc<Mutex<FileCore>>,
    header_addr: u64,
    name: &str,
) -> Result<Option<AttrValue>> {
    Ok(attrs_on(core, header_addr)?
        .into_iter()
        .find(|a| a.name == name)
        .map(|a| a.value))
}

pub(crate) fn attrs_on(core: &Arc<Mutex<FileCore>>, header_addr: u64) -> Result<Vec<Attribute>> {
    let mut core = core.lock();
    core.check_open()?;
    let header = core.load_header(header_addr)?;
    if header.attr_addr == 0 {
        return Ok(Vec::new());
    }
    let buf = core
        .rf
        .read_at(header.attr_addr, header.attr_len, AccessType::Metadata)?;
    meta::decode_attrs(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{FileOptions, H5File};
    use dayu_vfd::{MemFs, MemVfd};

    fn file() -> H5File {
        H5File::create(MemVfd::new(), "t.h5", FileOptions::default()).unwrap()
    }

    #[test]
    fn table_codec_round_trip() {
        let entries = vec![
            Entry {
                name: "alpha".into(),
                addr: 1024,
                kind: ObjectKind::Group,
            },
            Entry {
                name: "beta".into(),
                addr: 2048,
                kind: ObjectKind::Dataset,
            },
        ];
        let bytes = encode_table(&entries);
        assert_eq!(decode_table(&bytes).unwrap(), entries);
        assert!(decode_table(&encode_table(&[])).unwrap().is_empty());
    }

    #[test]
    fn create_and_list_children() {
        let f = file();
        let root = f.root();
        root.create_group("a").unwrap();
        root.create_group("b").unwrap();
        let names: Vec<String> = root.list().unwrap().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(root.exists("a").unwrap());
        assert!(!root.exists("zz").unwrap());
    }

    #[test]
    fn nested_groups_and_paths() {
        let f = file();
        let root = f.root();
        assert_eq!(root.path(), "/");
        let a = root.create_group("a").unwrap();
        assert_eq!(a.path(), "/a");
        let b = a.create_group("b").unwrap();
        assert_eq!(b.path(), "/a/b");
        // Reopen through the hierarchy.
        let again = root.open_group("a").unwrap().open_group("b").unwrap();
        assert_eq!(again.path(), "/a/b");
    }

    #[test]
    fn duplicate_names_rejected() {
        let f = file();
        let root = f.root();
        root.create_group("x").unwrap();
        assert!(matches!(
            root.create_group("x"),
            Err(HdfError::AlreadyExists(_))
        ));
    }

    #[test]
    fn open_missing_group_fails() {
        let f = file();
        assert!(matches!(
            f.root().open_group("nope"),
            Err(HdfError::NotFound(_))
        ));
    }

    #[test]
    fn groups_persist_across_reopen() {
        let fs = MemFs::new();
        {
            let f = H5File::create(fs.create("g.h5"), "g.h5", FileOptions::default()).unwrap();
            f.root().create_group("persisted").unwrap();
            f.close().unwrap();
        }
        let f = H5File::open(fs.open("g.h5"), "g.h5", FileOptions::default()).unwrap();
        assert!(f.root().exists("persisted").unwrap());
        f.close().unwrap();
    }

    #[test]
    fn group_attributes() {
        let f = file();
        let g = f.root().create_group("g").unwrap();
        g.set_attr("version", AttrValue::U64(3)).unwrap();
        g.set_attr("desc", AttrValue::Str("storm".into())).unwrap();
        assert_eq!(g.attr("version").unwrap(), Some(AttrValue::U64(3)));
        // Replace.
        g.set_attr("version", AttrValue::U64(4)).unwrap();
        assert_eq!(g.attr("version").unwrap(), Some(AttrValue::U64(4)));
        assert_eq!(g.attrs().unwrap().len(), 2);
        assert_eq!(g.attr("missing").unwrap(), None);
    }

    #[test]
    fn ensure_helpers_are_idempotent() {
        use crate::dataset::DatasetBuilder;
        use dayu_trace::vol::DataType;
        let f = file();
        let root = f.root();
        let g1 = root.ensure_group("sim").unwrap();
        let g2 = root.ensure_group("sim").unwrap();
        assert_eq!(g1.path(), g2.path());
        let b = || DatasetBuilder::new(DataType::Int { width: 8 }, &[2]);
        let mut d = g1.ensure_dataset("d", b()).unwrap();
        d.write_u64s(&[3, 4]).unwrap();
        let mut again = g2.ensure_dataset("d", b()).unwrap();
        assert_eq!(again.read_u64s().unwrap(), vec![3, 4]);
        assert_eq!(g1.list().unwrap().len(), 1);
    }

    #[test]
    fn many_children_scale() {
        let f = file();
        let root = f.root();
        for i in 0..100 {
            root.create_group(&format!("g{i:03}")).unwrap();
        }
        assert_eq!(root.list().unwrap().len(), 100);
        assert!(root.exists("g057").unwrap());
    }
}
