//! CRC-32 (IEEE 802.3) over metadata blocks.
//!
//! Every on-disk metadata structure — superblock slots, object headers,
//! attribute blocks, journal frames — carries a trailing CRC so silent
//! corruption surfaces as a typed [`crate::HdfError::ChecksumMismatch`]
//! instead of a mis-decoded structure. The table is built at compile time;
//! no external crate is involved.

/// The reflected CRC-32 polynomial used by zlib, PNG and Ethernet.
const POLY: u32 = 0xedb8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`, with the conventional init/final inversion.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 512];
        data[37] = 0x40;
        let clean = crc32(&data);
        data[37] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
