//! Datasets: typed N-dimensional arrays with pluggable storage layouts.
//!
//! This module performs the format's *dual translation*: an application's
//! logical read/write of a hyperslab is first mapped to file addresses by
//! the layout logic (compact / contiguous / chunked) and then issued as
//! low-level driver operations. Variable-length datasets store 16-byte
//! descriptors through the same layout machinery while their payloads go to
//! the global heap — so descriptor locality follows the layout but payload
//! bytes scatter across heap blocks, reproducing the VL fragmentation of
//! the paper's Challenge 3.

use crate::chunk::{copy_slab, ChunkCache, ChunkGrid, ChunkIndex};
use crate::error::{HdfError, Result};
use crate::file::FileCore;
use crate::group::{self, Group};
use crate::heap::HeapRef;
use crate::meta::{AttrValue, Attribute, LayoutMessage, ObjectHeader, COMPACT_MAX};
use crate::space::{element_count, Selection};
use dayu_trace::ids::ObjectKey;
use dayu_trace::vfd::AccessType;
use dayu_trace::vol::{DataType, LayoutKind, ObjectDescription, ObjectKind, VolAccessKind};
use dayu_vfd::{BatchOp, BatchOpKind, IoEngineConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// Specification for creating a dataset.
#[derive(Clone, Debug)]
pub struct DatasetBuilder {
    dtype: DataType,
    shape: Vec<u64>,
    layout: LayoutKind,
    chunk_dims: Option<Vec<u64>>,
    cache_bytes: Option<u64>,
}

impl DatasetBuilder {
    /// A dataset of `dtype` elements with the given shape; contiguous
    /// layout by default.
    pub fn new(dtype: DataType, shape: &[u64]) -> Self {
        Self {
            dtype,
            shape: shape.to_vec(),
            layout: LayoutKind::Contiguous,
            chunk_dims: None,
            cache_bytes: None,
        }
    }

    /// Selects the storage layout.
    pub fn layout(mut self, layout: LayoutKind) -> Self {
        self.layout = layout;
        self
    }

    /// Selects chunked layout with the given chunk dimensions.
    pub fn chunks(mut self, dims: &[u64]) -> Self {
        self.layout = LayoutKind::Chunked;
        self.chunk_dims = Some(dims.to_vec());
        self
    }

    /// Overrides the chunk cache capacity for this dataset.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }
}

struct ChunkState {
    grid: ChunkGrid,
    index: ChunkIndex,
    cache: ChunkCache,
}

/// Handle to an open dataset.
pub struct Dataset {
    core: Arc<Mutex<FileCore>>,
    header_addr: u64,
    path: String,
    shape: Vec<u64>,
    dtype: DataType,
    layout: LayoutKind,
    chunk: Option<ChunkState>,
    /// Variable-length payload bytes written through this handle but not
    /// yet folded into the header (flushed at close, like HDF5's metadata
    /// cache defers object-header updates).
    vl_pending: u64,
    closed: bool,
}

impl Dataset {
    fn esize(dtype: DataType) -> u64 {
        dtype.element_size()
    }

    fn describe(&self, logical_size: u64) -> ObjectDescription {
        ObjectDescription {
            shape: self.shape.clone(),
            dtype: Some(self.dtype),
            logical_size,
            layout: Some(self.layout),
            chunk_shape: self
                .chunk
                .as_ref()
                .map(|c| c.grid.chunk_dims.clone())
                .unwrap_or_default(),
        }
    }

    pub(crate) fn create(
        core: Arc<Mutex<FileCore>>,
        parent: &Group,
        name: &str,
        builder: DatasetBuilder,
    ) -> Result<Dataset> {
        let path = parent.make_child_path(name);
        let key = ObjectKey::new(path.clone());
        let esize = Self::esize(builder.dtype);
        let total_bytes = element_count(&builder.shape) * esize;

        if builder.dtype.is_varlen() && builder.shape.len() != 1 {
            return Err(HdfError::InvalidArgument(
                "variable-length datasets must be one-dimensional".into(),
            ));
        }

        let ctx = core.lock().ctx.clone();
        let (header_addr, chunk) = ctx.with_object(key.clone(), AccessType::Metadata, || {
            let (layout_msg, chunk) = match builder.layout {
                LayoutKind::Compact => {
                    if total_bytes > COMPACT_MAX {
                        return Err(HdfError::InvalidArgument(format!(
                            "compact dataset of {total_bytes} bytes exceeds {COMPACT_MAX}"
                        )));
                    }
                    (
                        LayoutMessage::Compact {
                            data: vec![0u8; total_bytes as usize],
                        },
                        None,
                    )
                }
                LayoutKind::Contiguous => (
                    LayoutMessage::Contiguous {
                        addr: 0,
                        size: total_bytes,
                    },
                    None,
                ),
                LayoutKind::Chunked => {
                    let dims = builder
                        .chunk_dims
                        .clone()
                        .unwrap_or_else(|| builder.shape.clone());
                    let grid = ChunkGrid::new(&builder.shape, &dims)?;
                    let mut core_guard = core.lock();
                    core_guard.check_open()?;
                    let index = ChunkIndex::create(&mut core_guard.rf, grid.chunk_count())?;
                    let cache_bytes = builder.cache_bytes.unwrap_or(core_guard.chunk_cache_bytes);
                    let chunk_bytes = grid.chunk_elements() * esize;
                    let msg = LayoutMessage::Chunked {
                        chunk_dims: dims,
                        index_addr: index.addr,
                        index_len: ChunkIndex::byte_len(grid.chunk_count()),
                    };
                    (
                        msg,
                        Some(ChunkState {
                            grid,
                            index,
                            cache: ChunkCache::new(chunk_bytes, cache_bytes),
                        }),
                    )
                }
            };
            let header =
                ObjectHeader::new_dataset(builder.shape.clone(), builder.dtype, layout_msg);
            let addr = parent.insert_child_header(name, &header)?;
            Ok((addr, chunk))
        })?;

        let ds = Dataset {
            core,
            header_addr,
            path,
            shape: builder.shape,
            dtype: builder.dtype,
            layout: builder.layout,
            chunk,
            vl_pending: 0,
            closed: false,
        };
        ds.fire_opened(total_bytes);
        Ok(ds)
    }

    pub(crate) fn open(core: Arc<Mutex<FileCore>>, parent: &Group, name: &str) -> Result<Dataset> {
        let path = parent.make_child_path(name);
        let key = ObjectKey::new(path.clone());
        let ctx = core.lock().ctx.clone();
        let (header_addr, header) = ctx.with_object(key.clone(), AccessType::Metadata, || {
            let entry = parent.lookup_child(name)?;
            if entry.kind != ObjectKind::Dataset {
                return Err(HdfError::TypeMismatch(format!("{path} is not a dataset")));
            }
            let header = core.lock().load_header(entry.addr)?;
            Ok((entry.addr, header))
        })?;

        let dtype = header
            .dtype
            .ok_or_else(|| HdfError::Corrupt("dataset without datatype".into()))?;
        let esize = Self::esize(dtype);
        let (layout, chunk, logical) = match &header.layout {
            Some(LayoutMessage::Compact { data }) => (LayoutKind::Compact, None, data.len() as u64),
            Some(LayoutMessage::Contiguous { size, .. }) => (LayoutKind::Contiguous, None, *size),
            Some(LayoutMessage::Chunked {
                chunk_dims,
                index_addr,
                ..
            }) => {
                let grid = ChunkGrid::new(&header.shape, chunk_dims)?;
                let index = ChunkIndex::open(*index_addr, grid.chunk_count());
                let cache_bytes = core.lock().chunk_cache_bytes;
                let chunk_bytes = grid.chunk_elements() * esize;
                let logical = if dtype.is_varlen() {
                    header.vl_logical_bytes
                } else {
                    element_count(&header.shape) * esize
                };
                (
                    LayoutKind::Chunked,
                    Some(ChunkState {
                        grid,
                        index,
                        cache: ChunkCache::new(chunk_bytes, cache_bytes),
                    }),
                    logical,
                )
            }
            None => return Err(HdfError::Corrupt("dataset without layout".into())),
        };

        let ds = Dataset {
            core,
            header_addr,
            path,
            shape: header.shape,
            dtype,
            layout,
            chunk,
            vl_pending: 0,
            closed: false,
        };
        ds.fire_opened(logical);
        Ok(ds)
    }

    fn fire_opened(&self, logical_size: u64) {
        let desc = self.describe(logical_size);
        let core = self.core.lock();
        let now = core.now();
        let file = core.name.clone();
        let key = ObjectKey::new(self.path.clone());
        core.hooks
            .each(|h| h.object_opened(&file, &key, ObjectKind::Dataset, &desc, now));
    }

    fn fire_access(&self, kind: VolAccessKind, bytes: u64, sel: Option<&Selection>) {
        let core = self.core.lock();
        if !core.hooks.is_active() {
            return;
        }
        let now = core.now();
        let file = core.name.clone();
        let key = ObjectKey::new(self.path.clone());
        core.hooks.each(|h| {
            h.object_access(
                &file,
                &key,
                kind,
                bytes,
                sel.map(|s| (s.offset.as_slice(), s.count.as_slice())),
                now,
            )
        });
    }

    /// The dataset's full path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The dataspace shape.
    pub fn shape(&self) -> &[u64] {
        &self.shape
    }

    /// The element datatype.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// The storage layout.
    pub fn layout(&self) -> LayoutKind {
        self.layout
    }

    fn check_fixed(&self) -> Result<u64> {
        if self.closed {
            return Err(HdfError::Closed);
        }
        if self.dtype.is_varlen() {
            return Err(HdfError::TypeMismatch(
                "use write_varlen/read_varlen for variable-length datasets".into(),
            ));
        }
        Ok(Self::esize(self.dtype))
    }

    /// Writes raw bytes covering the whole dataspace.
    pub fn write(&mut self, data: &[u8]) -> Result<()> {
        let sel = Selection::all(&self.shape.clone());
        self.write_slab(&sel, data)
    }

    /// Reads the whole dataspace as raw bytes.
    pub fn read(&mut self) -> Result<Vec<u8>> {
        let sel = Selection::all(&self.shape.clone());
        self.read_slab(&sel)
    }

    /// Writes raw bytes into a hyperslab.
    pub fn write_slab(&mut self, sel: &Selection, data: &[u8]) -> Result<()> {
        let esize = self.check_fixed()?;
        sel.validate(&self.shape)?;
        let expect = sel.element_count() * esize;
        if data.len() as u64 != expect {
            return Err(HdfError::InvalidArgument(format!(
                "buffer is {} bytes, selection needs {expect}",
                data.len()
            )));
        }
        self.fire_access(
            VolAccessKind::Write,
            expect,
            (!sel.is_all(&self.shape)).then_some(sel),
        );
        self.raw_write(sel, data, esize)
    }

    /// Reads a hyperslab as raw bytes.
    pub fn read_slab(&mut self, sel: &Selection) -> Result<Vec<u8>> {
        let esize = self.check_fixed()?;
        sel.validate(&self.shape)?;
        let bytes = sel.element_count() * esize;
        self.fire_access(
            VolAccessKind::Read,
            bytes,
            (!sel.is_all(&self.shape)).then_some(sel),
        );
        self.raw_read(sel, esize)
    }

    fn raw_write(&mut self, sel: &Selection, data: &[u8], esize: u64) -> Result<()> {
        let ctx = self.core.lock().ctx.clone();
        let key = ObjectKey::new(self.path.clone());
        ctx.with_object(key, AccessType::RawData, || match self.layout {
            LayoutKind::Compact => self.compact_write(sel, data, esize),
            LayoutKind::Contiguous => self.contiguous_write(sel, data, esize),
            LayoutKind::Chunked => self.chunked_write(sel, data, esize),
        })
    }

    fn raw_read(&mut self, sel: &Selection, esize: u64) -> Result<Vec<u8>> {
        let ctx = self.core.lock().ctx.clone();
        let key = ObjectKey::new(self.path.clone());
        ctx.with_object(key, AccessType::RawData, || match self.layout {
            LayoutKind::Compact => self.compact_read(sel, esize),
            LayoutKind::Contiguous => self.contiguous_read(sel, esize),
            LayoutKind::Chunked => self.chunked_read(sel, esize),
        })
    }

    fn compact_write(&mut self, sel: &Selection, data: &[u8], esize: u64) -> Result<()> {
        let mut core = self.core.lock();
        core.check_open()?;
        let mut header = core.load_header(self.header_addr)?;
        let Some(LayoutMessage::Compact { data: stored }) = &mut header.layout else {
            return Err(HdfError::Corrupt("layout mismatch".into()));
        };
        let mut off = 0usize;
        for (start, len) in sel.runs(&self.shape) {
            let byte_start = (start * esize) as usize;
            let byte_len = (len * esize) as usize;
            stored[byte_start..byte_start + byte_len].copy_from_slice(&data[off..off + byte_len]);
            off += byte_len;
        }
        core.store_header(self.header_addr, &header)
    }

    fn compact_read(&mut self, sel: &Selection, esize: u64) -> Result<Vec<u8>> {
        let mut core = self.core.lock();
        core.check_open()?;
        let header = core.load_header(self.header_addr)?;
        let Some(LayoutMessage::Compact { data: stored }) = &header.layout else {
            return Err(HdfError::Corrupt("layout mismatch".into()));
        };
        let mut out = Vec::with_capacity((sel.element_count() * esize) as usize);
        for (start, len) in sel.runs(&self.shape) {
            let byte_start = (start * esize) as usize;
            let byte_len = (len * esize) as usize;
            out.extend_from_slice(&stored[byte_start..byte_start + byte_len]);
        }
        Ok(out)
    }

    /// Ensures the contiguous extent is allocated (HDF5 "late allocation"),
    /// returning its address.
    fn ensure_contiguous(&mut self) -> Result<(u64, u64)> {
        let mut core = self.core.lock();
        core.check_open()?;
        let mut header = core.load_header(self.header_addr)?;
        let Some(LayoutMessage::Contiguous { addr, size }) = &mut header.layout else {
            return Err(HdfError::Corrupt("layout mismatch".into()));
        };
        if *addr == 0 && *size > 0 {
            let new_addr = core.rf.alloc(*size)?;
            let size = *size;
            if let Some(LayoutMessage::Contiguous { addr, .. }) = &mut header.layout {
                *addr = new_addr;
            }
            core.store_header(self.header_addr, &header)?;
            // Partial first writes must leave the rest of the extent
            // readable as fill (zeros).
            core.rf.ensure_eof(new_addr + size)?;
            return Ok((new_addr, size));
        }
        Ok((*addr, *size))
    }

    fn contiguous_write(&mut self, sel: &Selection, data: &[u8], esize: u64) -> Result<()> {
        let (addr, _) = self.ensure_contiguous()?;
        let mut core = self.core.lock();
        let mut off = 0usize;
        for (start, len) in sel.runs(&self.shape) {
            let byte_len = (len * esize) as usize;
            core.rf.write_at(
                addr + start * esize,
                &data[off..off + byte_len],
                AccessType::RawData,
            )?;
            off += byte_len;
        }
        Ok(())
    }

    fn contiguous_read(&mut self, sel: &Selection, esize: u64) -> Result<Vec<u8>> {
        let (addr, size) = {
            let mut core = self.core.lock();
            core.check_open()?;
            let header = core.load_header(self.header_addr)?;
            match &header.layout {
                Some(LayoutMessage::Contiguous { addr, size }) => (*addr, *size),
                _ => return Err(HdfError::Corrupt("layout mismatch".into())),
            }
        };
        let total = (sel.element_count() * esize) as usize;
        if addr == 0 {
            // Never written: reads return fill value (zeros).
            return Ok(vec![0u8; total]);
        }
        let _ = size;
        let mut core = self.core.lock();
        let mut out = Vec::with_capacity(total);
        for (start, len) in sel.runs(&self.shape) {
            let bytes = core
                .rf
                .read_at(addr + start * esize, len * esize, AccessType::RawData)?;
            out.extend_from_slice(&bytes);
        }
        Ok(out)
    }

    fn chunked_write(&mut self, sel: &Selection, data: &[u8], esize: u64) -> Result<()> {
        let state = self.chunk.as_mut().expect("chunked dataset has state");
        let mut core = self.core.lock();
        core.check_open()?;
        let engine = core.io_engine;
        if engine.is_batched() && batched_write_ready(&mut core, state, sel, &self.shape)? {
            return batched_sweep_write(&mut core, state, sel, data, esize, &engine);
        }
        for (ord, local, buf) in state.grid.intersect(sel) {
            let chunk = state
                .cache
                .chunk_mut(&mut core.rf, &mut state.index, ord, true)?;
            copy_slab(
                data,
                &sel.count,
                &buf,
                chunk,
                &state.grid.chunk_dims,
                &local,
                esize,
            );
        }
        Ok(())
    }

    fn chunked_read(&mut self, sel: &Selection, esize: u64) -> Result<Vec<u8>> {
        let state = self.chunk.as_mut().expect("chunked dataset has state");
        let mut core = self.core.lock();
        core.check_open()?;
        let mut out = vec![0u8; (sel.element_count() * esize) as usize];
        let engine = core.io_engine;
        if engine.is_batched() && batched_read_ready(state, sel, &self.shape) {
            batched_sweep_read(&mut core, state, sel, &mut out, esize, &engine)?;
            return Ok(out);
        }
        for (ord, local, buf) in state.grid.intersect(sel) {
            let chunk = state
                .cache
                .chunk_mut(&mut core.rf, &mut state.index, ord, false)?;
            copy_slab(
                chunk,
                &state.grid.chunk_dims,
                &local,
                &mut out,
                &sel.count,
                &buf,
                esize,
            );
        }
        Ok(out)
    }

    /// Writes `items` as variable-length elements at element offset `start`.
    pub fn write_varlen(&mut self, start: u64, items: &[&[u8]]) -> Result<()> {
        if self.closed {
            return Err(HdfError::Closed);
        }
        if !self.dtype.is_varlen() {
            return Err(HdfError::TypeMismatch(
                "write_varlen requires a variable-length dataset".into(),
            ));
        }
        let sel = Selection::slab(&[start], &[items.len() as u64]);
        sel.validate(&self.shape)?;
        let payload: u64 = items.iter().map(|i| i.len() as u64).sum();
        self.fire_access(VolAccessKind::Write, payload, Some(&sel));

        let ctx = self.core.lock().ctx.clone();
        let key = ObjectKey::new(self.path.clone());
        ctx.with_object(key, AccessType::RawData, || {
            // Payloads to the global heap.
            let mut descriptors = Vec::with_capacity(items.len() * HeapRef::SIZE as usize);
            {
                let mut core = self.core.lock();
                core.check_open()?;
                let FileCore { rf, heap, .. } = &mut *core;
                for item in items {
                    let href = heap.insert(rf, item)?;
                    descriptors.extend_from_slice(&href.encode());
                }
            }
            // Descriptors through the layout machinery.
            match self.layout {
                LayoutKind::Compact => self.compact_write(&sel, &descriptors, HeapRef::SIZE),
                LayoutKind::Contiguous => self.contiguous_write(&sel, &descriptors, HeapRef::SIZE),
                LayoutKind::Chunked => self.chunked_write(&sel, &descriptors, HeapRef::SIZE),
            }?;
            // Defer the logical-volume header update to close: one
            // metadata write per handle instead of one per write call.
            self.vl_pending += payload;
            Ok(())
        })
    }

    /// Reads `count` variable-length elements starting at element `start`.
    pub fn read_varlen(&mut self, start: u64, count: u64) -> Result<Vec<Vec<u8>>> {
        if self.closed {
            return Err(HdfError::Closed);
        }
        if !self.dtype.is_varlen() {
            return Err(HdfError::TypeMismatch(
                "read_varlen requires a variable-length dataset".into(),
            ));
        }
        let sel = Selection::slab(&[start], &[count]);
        sel.validate(&self.shape)?;

        let ctx = self.core.lock().ctx.clone();
        let key = ObjectKey::new(self.path.clone());
        let (items, payload) = ctx.with_object(key, AccessType::RawData, || {
            let descriptors = match self.layout {
                LayoutKind::Compact => self.compact_read(&sel, HeapRef::SIZE),
                LayoutKind::Contiguous => self.contiguous_read(&sel, HeapRef::SIZE),
                LayoutKind::Chunked => self.chunked_read(&sel, HeapRef::SIZE),
            }?;
            let mut core = self.core.lock();
            core.check_open()?;
            let FileCore { rf, heap, .. } = &mut *core;
            let mut items = Vec::with_capacity(count as usize);
            let mut payload = 0u64;
            for d in descriptors.chunks_exact(HeapRef::SIZE as usize) {
                let href = HeapRef::decode(d)?;
                payload += href.len as u64;
                items.push(heap.read(rf, href)?);
            }
            Ok::<_, HdfError>((items, payload))
        })?;
        self.fire_access(VolAccessKind::Read, payload, Some(&sel));
        Ok(items)
    }

    /// Writes the whole dataset from a slice of `f64`s.
    pub fn write_f64s(&mut self, values: &[f64]) -> Result<()> {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write(&bytes)
    }

    /// Reads the whole dataset as `f64`s.
    pub fn read_f64s(&mut self) -> Result<Vec<f64>> {
        let bytes = self.read()?;
        if bytes.len() % 8 != 0 {
            return Err(HdfError::TypeMismatch("size not a multiple of 8".into()));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Writes the whole dataset from a slice of `u64`s.
    pub fn write_u64s(&mut self, values: &[u64]) -> Result<()> {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write(&bytes)
    }

    /// Reads the whole dataset as `u64`s.
    pub fn read_u64s(&mut self) -> Result<Vec<u64>> {
        let bytes = self.read()?;
        if bytes.len() % 8 != 0 {
            return Err(HdfError::TypeMismatch("size not a multiple of 8".into()));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Sets an attribute on this dataset.
    pub fn set_attr(&self, name: &str, value: AttrValue) -> Result<()> {
        group::set_attr_on(&self.core, self.header_addr, &self.path, name, value)
    }

    /// Reads an attribute of this dataset.
    pub fn attr(&self, name: &str) -> Result<Option<AttrValue>> {
        group::attr_on(&self.core, self.header_addr, name)
    }

    /// All attributes of this dataset.
    pub fn attrs(&self) -> Result<Vec<Attribute>> {
        group::attrs_on(&self.core, self.header_addr)
    }

    /// The file extents holding this dataset's (descriptor) payload, as
    /// `(address, length)` pairs — the raw material of fragmentation
    /// analyses (paper Fig. 1 / Fig. 8). Unallocated pieces are omitted;
    /// compact datasets report none (their bytes live in the header).
    pub fn extents(&mut self) -> Result<Vec<(u64, u64)>> {
        if self.closed {
            return Err(HdfError::Closed);
        }
        let mut core = self.core.lock();
        core.check_open()?;
        match self.layout {
            LayoutKind::Compact => Ok(Vec::new()),
            LayoutKind::Contiguous => {
                let header = core.load_header(self.header_addr)?;
                match header.layout {
                    Some(LayoutMessage::Contiguous { addr, size }) if addr != 0 => {
                        Ok(vec![(addr, size)])
                    }
                    _ => Ok(Vec::new()),
                }
            }
            LayoutKind::Chunked => {
                let state = self.chunk.as_mut().expect("chunked state");
                let mut out = Vec::new();
                for ord in 0..state.grid.chunk_count() {
                    let (addr, size) = state.index.entry(&mut core.rf, ord)?;
                    if addr != 0 {
                        out.push((addr, size as u64));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Flushes buffered chunks and fires the close hook. Idempotent close is
    /// an error, matching file semantics.
    pub fn close(&mut self) -> Result<()> {
        if self.closed {
            return Err(HdfError::Closed);
        }
        if let Some(state) = self.chunk.as_mut() {
            let ctx = self.core.lock().ctx.clone();
            let key = ObjectKey::new(self.path.clone());
            ctx.with_object(key, AccessType::RawData, || {
                let mut core = self.core.lock();
                core.check_open()?;
                state.cache.flush(&mut core.rf, &mut state.index)?;
                state.index.flush(&mut core.rf)
            })?;
        }
        if self.vl_pending > 0 {
            let ctx = self.core.lock().ctx.clone();
            let key = ObjectKey::new(self.path.clone());
            ctx.with_object(key, AccessType::Metadata, || {
                let mut core = self.core.lock();
                core.check_open()?;
                let mut header = core.load_header(self.header_addr)?;
                header.vl_logical_bytes += self.vl_pending;
                core.store_header(self.header_addr, &header)
            })?;
            self.vl_pending = 0;
        }
        self.closed = true;
        let core = self.core.lock();
        let now = core.now();
        let file = core.name.clone();
        let key = ObjectKey::new(self.path.clone());
        core.hooks.each(|h| h.object_closed(&file, &key, now));
        Ok(())
    }
}

impl Drop for Dataset {
    fn drop(&mut self) {
        if !self.closed {
            // Best-effort flush; errors cannot be surfaced from drop.
            let _ = self.close();
        }
    }
}

// ---------------------------------------------------------------------------
// Batched chunk-sweep planners.
//
// The fast paths below reorganize a full-dataspace chunk sweep into batch
// submissions while preserving the *trace-equivalence contract*: one logical
// raw-data record per chunk extent, in exactly the order and at exactly the
// addresses the scalar cache path would produce. The key observation is that
// for a whole-dataspace sweep over a cold cache, the scalar path is fully
// deterministic — writes allocate and write back chunks `0..n-k` ascending as
// evictions fire (k = cache capacity in chunks) and leave the last `k` dirty
// in cache; reads load allocated chunks ascending and end with the last `k`
// resident. The planners reproduce that exact schedule, so any subsequent
// operation (more I/O, flush at close, crash replay) observes identical
// device and cache state.

/// Whether a chunked write can take the batched sweep fast path: the
/// selection covers the whole dataspace, the cache holds nothing whose
/// eviction order could interleave, the sweep overflows the cache (otherwise
/// scalar issues no device ops at all mid-sweep), and every chunk is still
/// unallocated so batched allocation order matches scalar eviction order.
fn batched_write_ready(
    core: &mut FileCore,
    state: &mut ChunkState,
    sel: &Selection,
    shape: &[u64],
) -> Result<bool> {
    let n = state.grid.chunk_count();
    if !sel.is_all(shape) || !state.cache.is_empty() || n <= state.cache.capacity_chunks() {
        return Ok(false);
    }
    // The entry scan loads the index on first use — the same single metadata
    // read the scalar path's first chunk_mut would issue at this point.
    for ord in 0..n {
        if state.index.entry(&mut core.rf, ord)?.0 != 0 {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Whether a chunked read can take the batched sweep fast path (same shape
/// conditions as the write side; allocation state is handled per chunk —
/// holes read as fill without touching the device, exactly like scalar).
fn batched_read_ready(state: &ChunkState, sel: &Selection, shape: &[u64]) -> bool {
    sel.is_all(shape)
        && state.cache.is_empty()
        && state.grid.chunk_count() > state.cache.capacity_chunks()
}

/// Full-sweep batched write. The first `n - k` chunks — those scalar
/// eviction would write back mid-sweep — are allocated ascending and issued
/// as coalesced batch ops; the final `k` chunks go through the cache exactly
/// as the scalar path, so the end-of-sweep cache state (last `k` chunks
/// dirty, flushed ascending at close) is identical.
fn batched_sweep_write(
    core: &mut FileCore,
    state: &mut ChunkState,
    sel: &Selection,
    data: &[u8],
    esize: u64,
    engine: &IoEngineConfig,
) -> Result<()> {
    let n = state.grid.chunk_count();
    let direct = n - state.cache.capacity_chunks();
    let chunk_bytes = state.cache.chunk_bytes() as usize;
    let parts = state.grid.intersect(sel);
    debug_assert_eq!(parts.len() as u64, n, "full selection covers every chunk");

    let mut batch: Vec<BatchOp> = Vec::with_capacity(engine.queue_depth);
    for (i, (ord, local, buf)) in parts.iter().enumerate() {
        if (i as u64) >= direct {
            break;
        }
        let addr = core.rf.alloc(chunk_bytes as u64)?;
        state
            .index
            .set_entry(&mut core.rf, *ord, addr, chunk_bytes as u32)?;
        let coalesce = engine.coalesce
            && batch.last().is_some_and(|op| {
                op.end() == addr && op.len() + chunk_bytes as u64 <= engine.max_coalesced_bytes
            });
        if !coalesce {
            if batch.len() >= engine.queue_depth {
                core.rf.submit_raw_batch(&mut batch)?;
                batch.clear();
            }
            batch.push(BatchOp {
                tag: *ord,
                kind: BatchOpKind::Write,
                offset: addr,
                access: AccessType::RawData,
                buf: Vec::with_capacity(chunk_bytes),
                segments: Vec::new(),
            });
        }
        let op = batch.last_mut().expect("an op was just ensured");
        let seg_start = op.buf.len();
        op.buf.resize(seg_start + chunk_bytes, 0);
        op.segments.push(chunk_bytes as u64);
        copy_slab(
            data,
            &sel.count,
            buf,
            &mut op.buf[seg_start..],
            &state.grid.chunk_dims,
            local,
            esize,
        );
        state.cache.stores += 1;
    }
    if !batch.is_empty() {
        core.rf.submit_raw_batch(&mut batch)?;
    }
    for (ord, local, buf) in parts.iter().skip(direct as usize) {
        let chunk = state
            .cache
            .chunk_mut(&mut core.rf, &mut state.index, *ord, true)?;
        copy_slab(
            data,
            &sel.count,
            buf,
            chunk,
            &state.grid.chunk_dims,
            local,
            esize,
        );
    }
    Ok(())
}

/// Shared context for scattering completed read segments into the output
/// slab (kept in a struct so the drain helper stays under control).
struct ReadScatter<'a> {
    parts: &'a [(u64, Selection, Selection)],
    chunk_dims: &'a [u64],
    sel_count: &'a [u64],
    esize: u64,
}

/// Submits the pending read batch and scatters each completed segment into
/// `out` via the part (chunk) it was enqueued for.
fn drain_read_batch(
    core: &mut FileCore,
    batch: &mut Vec<BatchOp>,
    op_parts: &mut Vec<Vec<usize>>,
    ctx: &ReadScatter<'_>,
    out: &mut [u8],
) -> Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    core.rf.submit_raw_batch(batch)?;
    for (op, parts_idx) in batch.iter().zip(op_parts.iter()) {
        for ((_, range), &pi) in op.segment_ranges().zip(parts_idx.iter()) {
            let (_, local, buf) = &ctx.parts[pi];
            copy_slab(
                &op.buf[range],
                ctx.chunk_dims,
                local,
                out,
                ctx.sel_count,
                buf,
                ctx.esize,
            );
        }
    }
    batch.clear();
    op_parts.clear();
    Ok(())
}

/// Full-sweep batched read with readahead. The first `n - k` chunks are
/// enqueued speculatively in windows of `readahead_chunks` (coalescing
/// adjacent extents), bypassing the cache — scalar would evict them again
/// before the sweep ends anyway. The final `k` chunks load through the cache
/// so the sweep leaves the same chunks resident as the scalar path.
fn batched_sweep_read(
    core: &mut FileCore,
    state: &mut ChunkState,
    sel: &Selection,
    out: &mut [u8],
    esize: u64,
    engine: &IoEngineConfig,
) -> Result<()> {
    let n = state.grid.chunk_count();
    let direct = n - state.cache.capacity_chunks();
    let chunk_bytes = state.cache.chunk_bytes() as usize;
    let parts = state.grid.intersect(sel);
    debug_assert_eq!(parts.len() as u64, n, "full selection covers every chunk");

    let window = engine.readahead_chunks.max(1);
    let mut batch: Vec<BatchOp> = Vec::new();
    // Per batch op, the part index backing each of its segments.
    let mut op_parts: Vec<Vec<usize>> = Vec::new();
    let mut enqueued = 0u64;
    let scatter = ReadScatter {
        parts: &parts,
        chunk_dims: &state.grid.chunk_dims,
        sel_count: &sel.count,
        esize,
    };
    for (i, (ord, _, _)) in parts.iter().enumerate() {
        if (i as u64) >= direct {
            break;
        }
        let (addr, _) = state.index.entry(&mut core.rf, *ord)?;
        if addr == 0 {
            continue; // hole: fill value (zeros) without touching the device
        }
        state.cache.loads += 1;
        let coalesce = engine.coalesce
            && batch.last().is_some_and(|op| {
                op.end() == addr && op.len() + chunk_bytes as u64 <= engine.max_coalesced_bytes
            });
        if coalesce {
            let op = batch.last_mut().expect("coalesce implies an op");
            op.append_read_segment(chunk_bytes as u64);
            op_parts.last_mut().expect("parallel to batch").push(i);
        } else {
            if batch.len() >= engine.queue_depth {
                drain_read_batch(core, &mut batch, &mut op_parts, &scatter, out)?;
                enqueued = 0;
            }
            batch.push(BatchOp::read(
                *ord,
                addr,
                chunk_bytes as u64,
                AccessType::RawData,
            ));
            op_parts.push(vec![i]);
        }
        enqueued += 1;
        if enqueued >= window {
            drain_read_batch(core, &mut batch, &mut op_parts, &scatter, out)?;
            enqueued = 0;
        }
    }
    // Drain before the cached tail so device reads stay in ascending order.
    drain_read_batch(core, &mut batch, &mut op_parts, &scatter, out)?;
    for (ord, local, buf) in parts.iter().skip(direct as usize) {
        let chunk = state
            .cache
            .chunk_mut(&mut core.rf, &mut state.index, *ord, false)?;
        copy_slab(
            chunk,
            &state.grid.chunk_dims,
            local,
            out,
            &sel.count,
            buf,
            esize,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{FileOptions, H5File};
    use dayu_vfd::{MemFs, MemVfd};

    fn file() -> H5File {
        H5File::create(MemVfd::new(), "d.h5", FileOptions::default()).unwrap()
    }

    #[test]
    fn contiguous_full_round_trip() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset(
                "d",
                DatasetBuilder::new(DataType::Float { width: 8 }, &[4, 4]),
            )
            .unwrap();
        let vals: Vec<f64> = (0..16).map(|i| i as f64 * 0.5).collect();
        ds.write_f64s(&vals).unwrap();
        assert_eq!(ds.read_f64s().unwrap(), vals);
        assert_eq!(ds.layout(), LayoutKind::Contiguous);
        assert_eq!(ds.shape(), &[4, 4]);
    }

    #[test]
    fn contiguous_slab_io() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset(
                "d",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[4, 4]),
            )
            .unwrap();
        ds.write(&(0u8..16).collect::<Vec<_>>()).unwrap();
        let slab = ds.read_slab(&Selection::slab(&[1, 1], &[2, 2])).unwrap();
        assert_eq!(slab, vec![5, 6, 9, 10]);
        ds.write_slab(&Selection::slab(&[0, 0], &[1, 4]), &[9; 4])
            .unwrap();
        assert_eq!(&ds.read().unwrap()[..4], &[9, 9, 9, 9]);
    }

    #[test]
    fn unwritten_contiguous_reads_zeros() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 4 }, &[8]))
            .unwrap();
        assert_eq!(ds.read().unwrap(), vec![0u8; 32]);
    }

    #[test]
    fn chunked_round_trip_with_partial_access() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset(
                "d",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[6, 6]).chunks(&[4, 4]),
            )
            .unwrap();
        let data: Vec<u8> = (0..36).collect();
        ds.write(&data).unwrap();
        assert_eq!(ds.read().unwrap(), data);
        // A slab crossing all four chunks.
        let slab = ds.read_slab(&Selection::slab(&[3, 3], &[2, 2])).unwrap();
        assert_eq!(slab, vec![21, 22, 27, 28]);
        ds.close().unwrap();
    }

    #[test]
    fn chunked_data_persists_across_reopen() {
        let fs = MemFs::new();
        {
            let f = H5File::create(fs.create("c.h5"), "c.h5", FileOptions::default()).unwrap();
            let mut ds = f
                .root()
                .create_dataset(
                    "grid",
                    DatasetBuilder::new(DataType::Float { width: 8 }, &[10, 10]).chunks(&[3, 3]),
                )
                .unwrap();
            ds.write_f64s(&(0..100).map(f64::from).collect::<Vec<_>>())
                .unwrap();
            ds.close().unwrap();
            f.close().unwrap();
        }
        let f = H5File::open(fs.open("c.h5"), "c.h5", FileOptions::default()).unwrap();
        let mut ds = f.root().open_dataset("grid").unwrap();
        assert_eq!(ds.layout(), LayoutKind::Chunked);
        let vals = ds.read_f64s().unwrap();
        assert_eq!(vals[57], 57.0);
        ds.close().unwrap();
        f.close().unwrap();
    }

    #[test]
    fn compact_dataset_round_trip() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset(
                "small",
                DatasetBuilder::new(DataType::Int { width: 2 }, &[10]).layout(LayoutKind::Compact),
            )
            .unwrap();
        ds.write(&[1u8; 20]).unwrap();
        assert_eq!(ds.read().unwrap(), vec![1u8; 20]);
        assert!(ds.extents().unwrap().is_empty(), "compact has no extents");
    }

    #[test]
    fn compact_too_large_is_rejected() {
        let f = file();
        match f.root().create_dataset(
            "big",
            DatasetBuilder::new(DataType::Float { width: 8 }, &[1000]).layout(LayoutKind::Compact),
        ) {
            Err(HdfError::InvalidArgument(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("oversized compact dataset accepted"),
        }
    }

    #[test]
    fn varlen_round_trip() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset("vl", DatasetBuilder::new(DataType::VarLen, &[5]))
            .unwrap();
        let items: Vec<&[u8]> = vec![b"a", b"longer item", b"", b"xy", b"0123456789"];
        ds.write_varlen(0, &items).unwrap();
        let back = ds.read_varlen(0, 5).unwrap();
        assert_eq!(back.len(), 5);
        for (a, b) in items.iter().zip(&back) {
            assert_eq!(*a, &b[..]);
        }
        // Partial read.
        assert_eq!(ds.read_varlen(1, 1).unwrap()[0], b"longer item");
    }

    #[test]
    fn varlen_chunked_round_trip() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset(
                "vl",
                DatasetBuilder::new(DataType::VarLen, &[10]).chunks(&[4]),
            )
            .unwrap();
        for i in 0..10u64 {
            let item = vec![i as u8; (i as usize + 1) * 3];
            ds.write_varlen(i, &[&item]).unwrap();
        }
        for i in 0..10u64 {
            assert_eq!(
                ds.read_varlen(i, 1).unwrap()[0],
                vec![i as u8; (i as usize + 1) * 3]
            );
        }
        ds.close().unwrap();
    }

    #[test]
    fn varlen_requires_rank_one() {
        let f = file();
        assert!(f
            .root()
            .create_dataset("vl2", DatasetBuilder::new(DataType::VarLen, &[2, 2]))
            .is_err());
    }

    #[test]
    fn fixed_api_on_varlen_is_type_mismatch() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset("vl", DatasetBuilder::new(DataType::VarLen, &[2]))
            .unwrap();
        assert!(matches!(ds.write(&[0; 32]), Err(HdfError::TypeMismatch(_))));
        assert!(matches!(ds.read(), Err(HdfError::TypeMismatch(_))));
    }

    #[test]
    fn varlen_api_on_fixed_is_type_mismatch() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 4 }, &[4]))
            .unwrap();
        assert!(matches!(
            ds.write_varlen(0, &[b"x"]),
            Err(HdfError::TypeMismatch(_))
        ));
        assert!(matches!(
            ds.read_varlen(0, 1),
            Err(HdfError::TypeMismatch(_))
        ));
    }

    #[test]
    fn wrong_buffer_size_is_invalid() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 4 }, &[4]))
            .unwrap();
        assert!(matches!(
            ds.write(&[0; 15]),
            Err(HdfError::InvalidArgument(_))
        ));
    }

    #[test]
    fn dataset_attributes() {
        let f = file();
        let ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 4 }, &[4]))
            .unwrap();
        ds.set_attr("units", AttrValue::Str("m/s".into())).unwrap();
        assert_eq!(
            ds.attr("units").unwrap(),
            Some(AttrValue::Str("m/s".into()))
        );
    }

    #[test]
    fn extents_reflect_layout() {
        let f = file();
        let mut contig = f
            .root()
            .create_dataset("c", DatasetBuilder::new(DataType::Int { width: 1 }, &[100]))
            .unwrap();
        assert!(contig.extents().unwrap().is_empty(), "late allocation");
        contig.write(&[1; 100]).unwrap();
        let ext = contig.extents().unwrap();
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].1, 100);

        let mut chunked = f
            .root()
            .create_dataset(
                "k",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[100]).chunks(&[30]),
            )
            .unwrap();
        chunked.write(&[2; 100]).unwrap();
        chunked.close().unwrap();
        let f2 = f.root().open_dataset("k").unwrap().extents().unwrap();
        assert_eq!(f2.len(), 4, "4 chunks of 30 elements each");
    }

    #[test]
    fn use_after_close_is_error() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 1 }, &[4]))
            .unwrap();
        ds.close().unwrap();
        assert!(matches!(ds.write(&[0; 4]), Err(HdfError::Closed)));
        assert!(matches!(ds.close(), Err(HdfError::Closed)));
    }

    #[test]
    fn open_dataset_as_group_is_type_mismatch() {
        let f = file();
        f.root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 1 }, &[4]))
            .unwrap();
        assert!(matches!(
            f.root().open_group("d"),
            Err(HdfError::TypeMismatch(_))
        ));
        f.root().create_group("g").unwrap();
        assert!(matches!(
            f.root().open_dataset("g"),
            Err(HdfError::TypeMismatch(_))
        ));
    }

    #[test]
    fn u64_round_trip() {
        let f = file();
        let mut ds = f
            .root()
            .create_dataset("u", DatasetBuilder::new(DataType::Int { width: 8 }, &[3]))
            .unwrap();
        ds.write_u64s(&[u64::MAX, 0, 42]).unwrap();
        assert_eq!(ds.read_u64s().unwrap(), vec![u64::MAX, 0, 42]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::file::{FileOptions, H5File};
    use dayu_vfd::MemVfd;
    use proptest::prelude::*;

    fn layout_strategy() -> impl Strategy<Value = (LayoutKind, u64)> {
        prop_oneof![
            Just((LayoutKind::Contiguous, 0)),
            (1u64..40).prop_map(|c| (LayoutKind::Chunked, c)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random slab writes against a shadow model read back exactly,
        /// for every layout and random chunk size.
        #[test]
        fn slab_io_matches_model(
            (layout, chunk) in layout_strategy(),
            len in 1u64..200,
            ops in prop::collection::vec((0u64..200, 1u64..64, 0u8..255), 1..25),
        ) {
            let f = H5File::create(MemVfd::new(), "p.h5", FileOptions::default()).unwrap();
            let builder = DatasetBuilder::new(DataType::Int { width: 1 }, &[len]);
            let builder = match layout {
                LayoutKind::Chunked => builder.chunks(&[chunk.min(len).max(1)]),
                other => builder.layout(other),
            };
            let mut ds = f.root().create_dataset("d", builder).unwrap();
            let mut model = vec![0u8; len as usize];
            for (off, cnt, val) in ops {
                let off = off % len;
                let cnt = cnt.min(len - off);
                if cnt == 0 { continue; }
                ds.write_slab(&Selection::slab(&[off], &[cnt]), &vec![val; cnt as usize])
                    .unwrap();
                for i in off..off + cnt {
                    model[i as usize] = val;
                }
                // Read back a random-ish slab (reuse off/cnt shifted).
                let roff = (off / 2) % len;
                let rcnt = cnt.min(len - roff);
                let got = ds.read_slab(&Selection::slab(&[roff], &[rcnt])).unwrap();
                prop_assert_eq!(&got[..], &model[roff as usize..(roff + rcnt) as usize]);
            }
            prop_assert_eq!(ds.read().unwrap(), model);
            ds.close().unwrap();
            f.close().unwrap();
        }

        /// Variable-length round trips with arbitrary item sizes, both
        /// layouts.
        #[test]
        fn varlen_matches_model(
            chunked in prop::bool::ANY,
            items in prop::collection::vec(prop::collection::vec(prop::num::u8::ANY, 0..500), 1..20),
        ) {
            let f = H5File::create(MemVfd::new(), "v.h5", FileOptions::default()).unwrap();
            let n = items.len() as u64;
            let builder = DatasetBuilder::new(DataType::VarLen, &[n]);
            let builder = if chunked { builder.chunks(&[3]) } else { builder };
            let mut ds = f.root().create_dataset("vl", builder).unwrap();
            for (i, item) in items.iter().enumerate() {
                ds.write_varlen(i as u64, &[item]).unwrap();
            }
            let back = ds.read_varlen(0, n).unwrap();
            prop_assert_eq!(back, items);
            ds.close().unwrap();
            f.close().unwrap();
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::file::{FileOptions, H5File};
    use dayu_vfd::{MemFs, MemVfd};

    #[test]
    fn compact_varlen_descriptors() {
        // VL descriptors through the compact layout: 8 elements × 16 bytes
        // of descriptors live in the header; payloads in the heap.
        let f = H5File::create(MemVfd::new(), "cv.h5", FileOptions::default()).unwrap();
        let mut ds = f
            .root()
            .create_dataset(
                "vl",
                DatasetBuilder::new(DataType::VarLen, &[8]).layout(LayoutKind::Compact),
            )
            .unwrap();
        for i in 0..8u64 {
            let item = vec![i as u8; (i as usize + 1) * 5];
            ds.write_varlen(i, &[&item]).unwrap();
        }
        for i in 0..8u64 {
            assert_eq!(
                ds.read_varlen(i, 1).unwrap()[0],
                vec![i as u8; (i as usize + 1) * 5]
            );
        }
        assert!(ds.extents().unwrap().is_empty(), "compact: no extents");
        ds.close().unwrap();
        f.close().unwrap();
    }

    #[test]
    fn deep_nesting_persists() {
        let fs = MemFs::new();
        {
            let f =
                H5File::create(fs.create("deep.h5"), "deep.h5", FileOptions::default()).unwrap();
            let mut g = f.root().create_group("l0").unwrap();
            for depth in 1..8 {
                g = g.create_group(&format!("l{depth}")).unwrap();
            }
            let mut ds = g
                .create_dataset(
                    "leaf",
                    DatasetBuilder::new(DataType::Int { width: 2 }, &[4]),
                )
                .unwrap();
            ds.write(&[1; 8]).unwrap();
            ds.close().unwrap();
            f.close().unwrap();
        }
        let f = H5File::open(fs.open("deep.h5"), "deep.h5", FileOptions::default()).unwrap();
        let mut g = f.root().open_group("l0").unwrap();
        for depth in 1..8 {
            g = g.open_group(&format!("l{depth}")).unwrap();
        }
        let mut ds = g.open_dataset("leaf").unwrap();
        assert_eq!(ds.read().unwrap(), vec![1; 8]);
        ds.close().unwrap();
        f.close().unwrap();
    }

    #[test]
    fn group_attributes_persist_across_reopen() {
        let fs = MemFs::new();
        {
            let f = H5File::create(fs.create("ga.h5"), "ga.h5", FileOptions::default()).unwrap();
            let g = f.root().create_group("meta").unwrap();
            g.set_attr("run_id", AttrValue::U64(42)).unwrap();
            g.set_attr("label", AttrValue::Str("calib".into())).unwrap();
            f.close().unwrap();
        }
        let f = H5File::open(fs.open("ga.h5"), "ga.h5", FileOptions::default()).unwrap();
        let g = f.root().open_group("meta").unwrap();
        assert_eq!(g.attr("run_id").unwrap(), Some(AttrValue::U64(42)));
        assert_eq!(
            g.attr("label").unwrap(),
            Some(AttrValue::Str("calib".into()))
        );
        f.close().unwrap();
    }

    #[test]
    fn mixed_layouts_in_one_file_reopen() {
        let fs = MemFs::new();
        {
            let f = H5File::create(fs.create("mix.h5"), "mix.h5", FileOptions::default()).unwrap();
            let root = f.root();
            let mut a = root
                .create_dataset(
                    "compact",
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[16])
                        .layout(LayoutKind::Compact),
                )
                .unwrap();
            a.write(&[1; 16]).unwrap();
            a.close().unwrap();
            let mut b = root
                .create_dataset(
                    "contig",
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[16]),
                )
                .unwrap();
            b.write(&[2; 16]).unwrap();
            b.close().unwrap();
            let mut c = root
                .create_dataset(
                    "chunked",
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[16]).chunks(&[5]),
                )
                .unwrap();
            c.write(&[3; 16]).unwrap();
            c.close().unwrap();
            let mut v = root
                .create_dataset("vl", DatasetBuilder::new(DataType::VarLen, &[2]))
                .unwrap();
            v.write_varlen(0, &[b"alpha", b"bee"]).unwrap();
            v.close().unwrap();
            f.close().unwrap();
        }
        let f = H5File::open(fs.open("mix.h5"), "mix.h5", FileOptions::default()).unwrap();
        let root = f.root();
        for (name, fill, layout) in [
            ("compact", 1u8, LayoutKind::Compact),
            ("contig", 2, LayoutKind::Contiguous),
            ("chunked", 3, LayoutKind::Chunked),
        ] {
            let mut ds = root.open_dataset(name).unwrap();
            assert_eq!(ds.layout(), layout, "{name}");
            assert_eq!(ds.read().unwrap(), vec![fill; 16], "{name}");
            ds.close().unwrap();
        }
        let mut v = root.open_dataset("vl").unwrap();
        let items = v.read_varlen(0, 2).unwrap();
        assert_eq!(items[0], b"alpha");
        assert_eq!(items[1], b"bee");
        v.close().unwrap();
        f.close().unwrap();
    }

    #[test]
    fn batched_sweep_matches_scalar_bytes_and_extents() {
        use dayu_vfd::IoEngineConfig;
        // 16 chunks of 32 bytes against a 4-chunk cache: the sweep overflows
        // the cache, so the batched fast path engages for 12 direct chunks.
        let build = || {
            DatasetBuilder::new(DataType::Int { width: 1 }, &[64, 8])
                .chunks(&[4, 8])
                .cache_bytes(128)
        };
        let data: Vec<u8> = (0..512u32).map(|i| (i * 7 % 251) as u8).collect();

        let scalar_f = H5File::create(MemVfd::new(), "s.h5", FileOptions::default()).unwrap();
        let mut scalar = scalar_f.root().create_dataset("d", build()).unwrap();
        scalar.write(&data).unwrap();

        let opts = FileOptions::default().with_io_engine(IoEngineConfig::batched());
        let batched_f = H5File::create(MemVfd::new(), "b.h5", opts).unwrap();
        let mut batched = batched_f.root().create_dataset("d", build()).unwrap();
        batched.write(&data).unwrap();

        assert_eq!(batched.read().unwrap(), data);
        assert_eq!(scalar.read().unwrap(), data);
        // Identical allocation schedule: extent-for-extent equal addresses.
        assert_eq!(scalar.extents().unwrap(), batched.extents().unwrap());
    }

    #[test]
    fn batched_file_reopens_under_scalar_engine() {
        use dayu_vfd::IoEngineConfig;
        let fs = MemFs::new();
        let data: Vec<u8> = (0..512u32).map(|i| (i % 239) as u8).collect();
        {
            let opts = FileOptions::default().with_io_engine(
                IoEngineConfig::batched()
                    .with_queue_depth(3)
                    .with_readahead(2),
            );
            let f = H5File::create(fs.create("x.h5"), "x.h5", opts).unwrap();
            let mut ds = f
                .root()
                .create_dataset(
                    "d",
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[512])
                        .chunks(&[32])
                        .cache_bytes(64),
                )
                .unwrap();
            ds.write(&data).unwrap();
            ds.close().unwrap();
            f.close().unwrap();
        }
        let f = H5File::open(fs.open("x.h5"), "x.h5", FileOptions::default()).unwrap();
        let mut ds = f.root().open_dataset("d").unwrap();
        assert_eq!(ds.read().unwrap(), data);
        ds.close().unwrap();
        f.close().unwrap();
    }

    #[test]
    fn batched_read_without_coalescing_round_trips() {
        use dayu_vfd::IoEngineConfig;
        let fs = MemFs::new();
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 13 % 241) as u8).collect();
        {
            let f = H5File::create(fs.create("y.h5"), "y.h5", FileOptions::default()).unwrap();
            let mut ds = f
                .root()
                .create_dataset(
                    "d",
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[1024])
                        .chunks(&[32])
                        .cache_bytes(96),
                )
                .unwrap();
            ds.write(&data).unwrap();
            ds.close().unwrap();
            f.close().unwrap();
        }
        let opts = FileOptions::default().with_io_engine(
            IoEngineConfig::batched()
                .with_coalesce(false)
                .with_readahead(4),
        );
        let f = H5File::open(fs.open("y.h5"), "y.h5", opts).unwrap();
        let mut ds = f.root().open_dataset("d").unwrap();
        assert_eq!(ds.read().unwrap(), data);
        ds.close().unwrap();
        f.close().unwrap();
    }

    #[test]
    fn batched_read_of_unwritten_chunks_is_fill() {
        use dayu_vfd::IoEngineConfig;
        let opts = FileOptions::default().with_io_engine(IoEngineConfig::batched());
        let f = H5File::create(MemVfd::new(), "z.h5", opts).unwrap();
        let mut ds = f
            .root()
            .create_dataset(
                "d",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[256])
                    .chunks(&[16])
                    .cache_bytes(32),
            )
            .unwrap();
        // All chunks are holes: the read fast path must not touch the device.
        assert_eq!(ds.read().unwrap(), vec![0u8; 256]);
        // Partial writes fall back to the scalar path and still interoperate.
        ds.write_slab(&Selection::slab(&[100], &[20]), &[7; 20])
            .unwrap();
        let back = ds.read().unwrap();
        assert_eq!(&back[100..120], &[7u8; 20]);
        assert_eq!(&back[..100], &vec![0u8; 100][..]);
    }

    #[test]
    fn partial_write_then_distant_read_returns_fill() {
        // Regression for the extent-hole bug the slab proptest caught:
        // a partial first write must leave the rest of the extent readable.
        let f = H5File::create(MemVfd::new(), "hole.h5", FileOptions::default()).unwrap();
        let mut ds = f
            .root()
            .create_dataset(
                "d",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[4096]),
            )
            .unwrap();
        ds.write_slab(&Selection::slab(&[0], &[10]), &[9; 10])
            .unwrap();
        let tail = ds.read_slab(&Selection::slab(&[4000], &[96])).unwrap();
        assert_eq!(tail, vec![0u8; 96], "unwritten region reads as fill");
        let head = ds.read_slab(&Selection::slab(&[0], &[10])).unwrap();
        assert_eq!(head, vec![9u8; 10]);
        ds.close().unwrap();
        f.close().unwrap();
    }
}
