//! Error type for format operations.

use dayu_vfd::VfdError;
use std::fmt;

/// Errors raised by the format library.
#[derive(Debug)]
pub enum HdfError {
    /// Underlying driver failure.
    Vfd(VfdError),
    /// Named object does not exist.
    NotFound(String),
    /// An object with that name already exists in the group.
    AlreadyExists(String),
    /// Operation incompatible with the object's datatype or layout (e.g.
    /// fixed-size read of a variable-length dataset).
    TypeMismatch(String),
    /// Caller-supplied shapes/selections/sizes are inconsistent.
    InvalidArgument(String),
    /// The bytes on storage do not decode as valid format structures.
    Corrupt(String),
    /// A metadata block's stored CRC-32 does not match its contents:
    /// the structure decoded, but the bytes were silently altered.
    ChecksumMismatch(String),
    /// The file or object handle was already closed.
    Closed,
    /// Several independent sub-operations failed (e.g. more than one task
    /// of a workflow stage). Each entry is `(label, error message)`; the
    /// underlying errors are not `Clone`, so they are carried as strings.
    MultiFailure(Vec<(String, String)>),
}

impl fmt::Display for HdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdfError::Vfd(e) => write!(f, "driver error: {e}"),
            HdfError::NotFound(n) => write!(f, "object not found: {n}"),
            HdfError::AlreadyExists(n) => write!(f, "object already exists: {n}"),
            HdfError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            HdfError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            HdfError::Corrupt(m) => write!(f, "corrupt file structure: {m}"),
            HdfError::ChecksumMismatch(m) => write!(f, "checksum mismatch: {m}"),
            HdfError::Closed => write!(f, "handle already closed"),
            HdfError::MultiFailure(fails) => {
                write!(f, "{} operations failed:", fails.len())?;
                for (label, msg) in fails {
                    write!(f, " [{label}: {msg}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for HdfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HdfError::Vfd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VfdError> for HdfError {
    fn from(e: VfdError) -> Self {
        HdfError::Vfd(e)
    }
}

/// Result alias for format operations.
pub type Result<T> = std::result::Result<T, HdfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(HdfError::NotFound("/x".into()).to_string().contains("/x"));
        assert!(HdfError::AlreadyExists("d".into())
            .to_string()
            .contains("already exists"));
        assert!(HdfError::TypeMismatch("vl".into())
            .to_string()
            .contains("type mismatch"));
        assert!(HdfError::InvalidArgument("bad".into())
            .to_string()
            .contains("invalid"));
        assert!(HdfError::Corrupt("magic".into())
            .to_string()
            .contains("corrupt"));
        assert!(HdfError::ChecksumMismatch("header".into())
            .to_string()
            .contains("checksum mismatch"));
        assert!(HdfError::Closed.to_string().contains("closed"));
        let multi = HdfError::MultiFailure(vec![
            ("task_a".into(), "boom".into()),
            ("task_b".into(), "bust".into()),
        ]);
        let s = multi.to_string();
        assert!(s.contains("2 operations failed"), "{s}");
        assert!(s.contains("task_a: boom"), "{s}");
        assert!(s.contains("task_b: bust"), "{s}");
        let v: HdfError = VfdError::Closed.into();
        assert!(v.to_string().contains("driver error"));
        use std::error::Error;
        assert!(v.source().is_some());
        assert!(HdfError::Closed.source().is_none());
    }
}
