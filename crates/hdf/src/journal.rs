//! Metadata write-ahead journal and crash recovery.
//!
//! A journaled file defers every metadata block write into an in-memory
//! overlay (see [`crate::raw::RawFile`]) and makes it durable in two
//! ordered steps: first the pending blocks are appended to an on-disk
//! journal region as checksummed, LEB128-framed records and a commit
//! marker is flushed behind them; only then are the blocks applied in
//! place and the superblock generation advanced. A crash at any point
//! leaves either the old committed state (torn journal tail, discarded on
//! recovery) or a fully committed journal that [`recover_image`] replays
//! idempotently.
//!
//! ## Frame format
//!
//! Both frame kinds start with a tag byte and the epoch (the generation
//! the commit will produce) and end with a CRC-32 over every preceding
//! byte of the frame:
//!
//! ```text
//! block  := 0x01 epoch:varint addr:varint len:varint payload[len] crc32:u32le
//! commit := 0x02 epoch:varint root:varint eof:varint
//!           journal_addr:varint journal_cap:varint crc32:u32le
//! ```
//!
//! Varints are unsigned LEB128. A scan stops at the first unknown tag,
//! checksum failure, truncated frame, or epoch mismatch — everything
//! after that point is a torn tail and is ignored. The journal head
//! returns to offset zero after every commit, so at most one epoch is
//! ever live in the region.

use crate::crc::crc32;
use crate::error::Result;
use crate::meta::{Superblock, SUPERBLOCK_REGION, SUPERBLOCK_SIZE};

/// Tag byte of a deferred metadata block write.
const TAG_BLOCK: u8 = 0x01;
/// Tag byte of a commit marker.
const TAG_COMMIT: u8 = 0x02;

/// Default size of the on-disk journal region allocated at create time.
pub const DEFAULT_JOURNAL_CAPACITY: u64 = 64 * 1024;

/// Write-path durability contract selected in
/// [`crate::FileOptions::durability`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// Metadata writes go straight to the device, as before this module
    /// existed. A mid-write crash can tear metadata; fsck can flag but
    /// not always repair the damage.
    #[default]
    WriteThrough,
    /// Metadata writes are staged and committed through the write-ahead
    /// journal; every flush/close is all-or-nothing.
    Journal,
}

/// What [`recover_image`] (and therefore `H5File::open`) found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Superblock generation in effect after recovery.
    pub generation: u64,
    /// The newest valid superblock already recorded a clean shutdown;
    /// nothing was modified.
    pub was_clean: bool,
    /// Committed journal frames replayed into the image.
    pub replayed_frames: usize,
    /// Payload bytes replayed into the image.
    pub replayed_bytes: u64,
    /// Bytes of torn (uncommitted) journal tail that were discarded.
    pub discarded_bytes: u64,
    /// Physical bytes beyond the committed end-of-file that were cut off.
    pub truncated_tail: u64,
}

impl RecoveryReport {
    /// Whether the open had to repair anything (unclean shutdown).
    pub fn performed_recovery(&self) -> bool {
        !self.was_clean
    }
}

/// Appends `v` to `out` as an unsigned LEB128 varint.
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint at `*pos`, advancing it. Returns
/// `None` on truncation or a varint longer than ten bytes.
pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Encodes one deferred block write as a journal frame.
pub fn encode_block_frame(epoch: u64, addr: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.push(TAG_BLOCK);
    put_varint(&mut out, epoch);
    put_varint(&mut out, addr);
    put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Encodes the commit marker that seals an epoch.
pub fn encode_commit_marker(
    epoch: u64,
    root: u64,
    eof: u64,
    journal_addr: u64,
    journal_cap: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.push(TAG_COMMIT);
    put_varint(&mut out, epoch);
    put_varint(&mut out, root);
    put_varint(&mut out, eof);
    put_varint(&mut out, journal_addr);
    put_varint(&mut out, journal_cap);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// A decoded block frame: replay as `image[addr..addr+data.len()] = data`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockFrame {
    pub addr: u64,
    pub data: Vec<u8>,
}

/// A decoded commit marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitMarker {
    pub root: u64,
    pub eof: u64,
    pub journal_addr: u64,
    pub journal_cap: u64,
}

/// Result of scanning a journal region for one expected epoch.
#[derive(Clone, Debug, Default)]
pub struct Scan {
    /// Block frames of the expected epoch, in write order.
    pub blocks: Vec<BlockFrame>,
    /// The commit marker sealing the epoch, if it was reached intact.
    pub commit: Option<CommitMarker>,
    /// Bytes from the first broken or foreign frame to the region end.
    pub torn_bytes: u64,
}

/// Scans `region` for frames of `epoch`. Never panics on any input: a
/// truncated, corrupt, or stale prefix simply ends the scan and the
/// remainder is reported as torn.
pub fn scan_region(region: &[u8], epoch: u64) -> Scan {
    let mut scan = Scan::default();
    let mut pos = 0usize;
    while pos < region.len() {
        let start = pos;
        let tag = region[pos];
        let mut p = pos + 1;
        if tag != TAG_BLOCK && tag != TAG_COMMIT {
            scan.torn_bytes = (region.len() - start) as u64;
            return scan;
        }
        let frame = decode_frame(region, tag, start, &mut p, epoch);
        match frame {
            Some(Decoded::Block(b)) => {
                scan.blocks.push(b);
                pos = p;
            }
            Some(Decoded::Commit(m)) => {
                scan.commit = Some(m);
                return scan;
            }
            None => {
                scan.torn_bytes = (region.len() - start) as u64;
                return scan;
            }
        }
    }
    scan
}

enum Decoded {
    Block(BlockFrame),
    Commit(CommitMarker),
}

/// Decodes one frame starting at `start` (whose tag is `tag`), advancing
/// `*p` past it. Returns `None` on truncation, bad CRC, or a foreign
/// epoch.
fn decode_frame(
    region: &[u8],
    tag: u8,
    start: usize,
    p: &mut usize,
    epoch: u64,
) -> Option<Decoded> {
    let e = get_varint(region, p)?;
    if e != epoch {
        return None;
    }
    let decoded = if tag == TAG_BLOCK {
        let addr = get_varint(region, p)?;
        let len = get_varint(region, p)?;
        let len = usize::try_from(len).ok()?;
        let end = p.checked_add(len)?;
        if end > region.len() {
            return None;
        }
        let data = region[*p..end].to_vec();
        *p = end;
        Decoded::Block(BlockFrame { addr, data })
    } else {
        let root = get_varint(region, p)?;
        let eof = get_varint(region, p)?;
        let journal_addr = get_varint(region, p)?;
        let journal_cap = get_varint(region, p)?;
        Decoded::Commit(CommitMarker {
            root,
            eof,
            journal_addr,
            journal_cap,
        })
    };
    let crc_end = p.checked_add(4)?;
    if crc_end > region.len() {
        return None;
    }
    let stored = u32::from_le_bytes(region[*p..crc_end].try_into().unwrap());
    if crc32(&region[start..*p]) != stored {
        return None;
    }
    *p = crc_end;
    Some(decoded)
}

/// Replays `blocks` into `image`, growing it as needed. Replay is
/// idempotent: frames are absolute-addressed full overwrites.
pub fn replay_blocks(image: &mut Vec<u8>, blocks: &[BlockFrame]) -> u64 {
    let mut bytes = 0u64;
    for b in blocks {
        let addr = b.addr as usize;
        let end = addr.saturating_add(b.data.len());
        if image.len() < end {
            image.resize(end, 0);
        }
        image[addr..end].copy_from_slice(&b.data);
        bytes += b.data.len() as u64;
    }
    bytes
}

/// Detects an unclean shutdown in `image` and repairs it in place.
///
/// The newest valid superblock slot fixes the last committed generation
/// `G`. If it is clean, nothing happens. If not, and the file carries a
/// journal, the region is scanned for epoch `G + 1`: a sealed epoch is
/// replayed (frames applied, file cut to the committed end-of-file, a
/// clean generation `G + 1` superblock finalized into its slot); a torn
/// epoch is discarded (file cut back to the generation-`G` end-of-file,
/// clean `G + 1` finalized likewise). Unjournaled unclean files are
/// reported but left untouched — fsck is the tool for those.
///
/// Calling this on its own output is a no-op, and a crash *during* the
/// write-back of a recovered image is itself recoverable: replay is
/// idempotent and the finalized superblock lands in the other slot.
pub fn recover_image(image: &mut Vec<u8>) -> Result<RecoveryReport> {
    let sb = Superblock::decode_region(image)?;
    if sb.journal_addr == 0 {
        // Write-through file: no journal to replay. The report only
        // states whether the shutdown was clean.
        return Ok(RecoveryReport {
            generation: sb.generation,
            was_clean: sb.clean,
            ..RecoveryReport::default()
        });
    }
    // The clean flag alone cannot gate the scan: a crash between the
    // commit marker and the superblock write leaves the newest durable
    // slot clean while a sealed epoch waits in the journal.
    let mut report = RecoveryReport {
        generation: sb.generation,
        was_clean: false,
        ..RecoveryReport::default()
    };
    let epoch = sb.generation + 1;
    let region = journal_slice(image, &sb);
    let scan = region.map(|r| scan_region(r, epoch)).unwrap_or_default();
    if scan.commit.is_none() && sb.clean && image.len() as u64 == sb.eof {
        // Nothing sealed, cleanly shut down, no uncommitted tail.
        report.was_clean = true;
        return Ok(report);
    }
    if let Some(marker) = scan.commit {
        // Sealed epoch: roll forward.
        report.replayed_frames = scan.blocks.len();
        report.replayed_bytes = replay_blocks(image, &scan.blocks);
        let eof = marker.eof.max(SUPERBLOCK_REGION);
        report.truncated_tail = (image.len() as u64).saturating_sub(eof);
        image.resize(eof as usize, 0);
        finalize(
            image,
            Superblock {
                root_addr: marker.root,
                eof,
                generation: epoch,
                clean: true,
                journal_addr: marker.journal_addr,
                journal_cap: marker.journal_cap,
            },
        );
        report.generation = epoch;
    } else {
        // Torn or empty epoch: roll back to generation G.
        report.discarded_bytes = scan.torn_bytes;
        let eof = sb.eof.max(SUPERBLOCK_REGION);
        report.truncated_tail = (image.len() as u64).saturating_sub(eof);
        image.resize(eof as usize, 0);
        finalize(
            image,
            Superblock {
                clean: true,
                generation: epoch,
                ..sb
            },
        );
        report.generation = epoch;
    }
    Ok(report)
}

/// The journal region of `image` per `sb`, if its extent is in bounds.
fn journal_slice<'a>(image: &'a [u8], sb: &Superblock) -> Option<&'a [u8]> {
    let start = usize::try_from(sb.journal_addr).ok()?;
    let end = start.checked_add(usize::try_from(sb.journal_cap).ok()?)?;
    if sb.journal_addr < SUPERBLOCK_REGION || end > image.len() {
        return None;
    }
    Some(&image[start..end])
}

/// Writes `sb` into the slot its generation selects.
fn finalize(image: &mut [u8], sb: Superblock) {
    let slot = Superblock::slot_offset(sb.generation) as usize;
    image[slot..slot + SUPERBLOCK_SIZE as usize].copy_from_slice(&sb.encode());
}

/// Convenience for callers that only have bytes: returns the report and
/// whether the image was modified.
pub fn recover_bytes(image: &mut Vec<u8>) -> Result<(RecoveryReport, bool)> {
    let before_len = image.len();
    let before_crc = crc32(image);
    let report = recover_image(image)?;
    let modified = image.len() != before_len || crc32(image) != before_crc;
    Ok((report, modified))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn varint_round_trip(v: u64) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varints_round_trip() {
        for v in [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            varint_round_trip(v);
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(get_varint(&buf[..cut], &mut pos), None);
        }
    }

    fn sealed_region(epoch: u64) -> Vec<u8> {
        let mut region = Vec::new();
        region.extend_from_slice(&encode_block_frame(epoch, 128, &[7u8; 32]));
        region.extend_from_slice(&encode_block_frame(epoch, 256, &[9u8; 16]));
        region.extend_from_slice(&encode_commit_marker(epoch, 128, 512, 0, 0));
        region
    }

    #[test]
    fn scan_reads_back_sealed_epoch() {
        let region = sealed_region(5);
        let scan = scan_region(&region, 5);
        assert_eq!(scan.blocks.len(), 2);
        assert_eq!(scan.blocks[0].addr, 128);
        assert_eq!(scan.blocks[1].data, vec![9u8; 16]);
        let marker = scan.commit.expect("commit marker");
        assert_eq!((marker.root, marker.eof), (128, 512));
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn scan_stops_at_foreign_epoch() {
        let region = sealed_region(4);
        let scan = scan_region(&region, 5);
        assert!(scan.blocks.is_empty());
        assert!(scan.commit.is_none());
        assert_eq!(scan.torn_bytes, region.len() as u64);
    }

    #[test]
    fn scan_never_panics_on_any_prefix() {
        let region = sealed_region(3);
        for cut in 0..=region.len() {
            let scan = scan_region(&region[..cut], 3);
            // A cut before the marker loses the commit.
            if cut < region.len() {
                assert!(scan.commit.is_none());
            }
        }
    }

    #[test]
    fn scan_rejects_flipped_bit() {
        let mut region = sealed_region(2);
        region[5] ^= 0x10;
        let scan = scan_region(&region, 2);
        assert!(scan.blocks.is_empty() && scan.commit.is_none());
    }

    #[test]
    fn replay_is_idempotent() {
        let scan = scan_region(&sealed_region(1), 1);
        let mut a = vec![0u8; 512];
        replay_blocks(&mut a, &scan.blocks);
        let mut b = a.clone();
        replay_blocks(&mut b, &scan.blocks);
        assert_eq!(a, b);
    }
}
