//! # dayu-hdf
//!
//! A from-scratch self-describing hierarchical data format, playing the role
//! HDF5 plays in the DaYu paper. It reproduces the structural properties the
//! paper's analyses depend on:
//!
//! * a **hierarchical object model** — files contain groups, groups contain
//!   datasets, attributes attach to objects (Challenge 1);
//! * a **dual translation**: logical dataset operations are mapped to file
//!   addresses by layout logic (contiguous / chunked / compact) and then to
//!   low-level I/O operations issued through the [`dayu_vfd::Vfd`] driver
//!   trait (Challenge 1);
//! * **metadata vs raw-data separation**: every driver operation is flagged
//!   [`AccessType::Metadata`] or [`AccessType::RawData`], so a profiler
//!   beneath the format can categorize I/O exactly as DaYu's VFD profiler
//!   does (Table II parameter 6);
//! * **fragmentation mechanics** — chunked layouts store index metadata and
//!   chunk payloads in separate regions, and **variable-length data** lives
//!   in global-heap blocks scattered through the file (Challenge 3);
//! * a **chunk cache**, so chunked I/O batches into per-chunk operations
//!   while contiguous variable-length writes issue per-element descriptor
//!   updates — the mechanism behind the paper's Fig. 8/13c observation that
//!   chunked layouts halve write-op counts for VL data;
//! * **VOL hook points** ([`hooks::VolHooks`]) at every object-level event,
//!   plus publication of the current object into the shared
//!   [`dayu_trace::SharedContext`], which together are the attach points for
//!   the Data Semantic Mapper in `dayu-mapper`.
//!
//! ## Quick example
//!
//! ```
//! use dayu_hdf::{H5File, FileOptions, DatasetBuilder};
//! use dayu_trace::vol::DataType;
//! use dayu_vfd::MemVfd;
//!
//! let file = H5File::create(MemVfd::new(), "demo.h5", FileOptions::default()).unwrap();
//! let group = file.root().create_group("sim").unwrap();
//! let mut ds = group
//!     .create_dataset("temperature", DatasetBuilder::new(DataType::Float { width: 8 }, &[4, 4]))
//!     .unwrap();
//! ds.write_f64s(&[1.5; 16]).unwrap();
//! assert_eq!(ds.read_f64s().unwrap()[0], 1.5);
//! file.close().unwrap();
//! ```

pub mod alloc;
pub mod chunk;
pub mod codec;
pub mod crc;
pub mod dataset;
pub mod error;
pub mod file;
pub mod group;
pub mod heap;
pub mod hooks;
pub mod journal;
pub mod meta;
pub mod raw;
pub mod space;

pub use dataset::{Dataset, DatasetBuilder};
pub use error::{HdfError, Result};
pub use file::{FileOptions, H5File};
pub use group::Group;
pub use hooks::{HookSet, VolHooks};
pub use journal::{Durability, RecoveryReport};
pub use meta::AttrValue;
pub use space::Selection;

// Canonical semantic types are shared with the trace model so VOL records
// describe objects in the same vocabulary the format uses.
pub use dayu_trace::vfd::AccessType;
pub use dayu_trace::vol::{DataType, LayoutKind};
