//! Global heap: out-of-line storage for variable-length data.
//!
//! Variable-length elements cannot live inside a dataset's fixed-stride
//! storage; like HDF5, the format stores each element's bytes in a *global
//! heap* and the dataset holds 16-byte descriptors pointing into it. Heap
//! space is grouped into blocks (default 64 KiB): incoming objects pack into
//! the current block, which is written out once when full — so VL payload
//! I/O batches per block, while descriptor I/O follows the dataset's layout.
//! The *separation* of descriptors and payload into different file regions
//! is precisely the VL fragmentation of the paper's Challenge 3 and Fig. 1.

use crate::codec::{Decoder, Encoder};
use crate::error::{HdfError, Result};
use crate::raw::RawFile;
use dayu_trace::vfd::AccessType;

/// Magic prefix of every heap block.
pub const HEAP_MAGIC: u32 = 0x50484744; // "DGHP" little-endian
/// Heap block header size (magic + used length).
pub const HEAP_HEADER: u64 = 8;
/// Default heap block size.
pub const DEFAULT_HEAP_BLOCK: u64 = 64 * 1024;

/// Reference to one variable-length object in the heap: the descriptor
/// stored inside datasets. Exactly 16 bytes on storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapRef {
    /// Payload length in bytes.
    pub len: u32,
    /// Address of the containing heap block.
    pub block_addr: u64,
    /// Offset of the payload within the block.
    pub offset: u32,
}

impl HeapRef {
    /// Descriptor encoding size.
    pub const SIZE: u64 = 16;

    /// A null reference (zero-length element).
    pub fn null() -> Self {
        Self::default()
    }

    /// Whether this reference points at no bytes.
    pub fn is_null(&self) -> bool {
        self.block_addr == 0
    }

    /// Encodes the 16-byte descriptor.
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&self.len.to_le_bytes());
        out[4..12].copy_from_slice(&self.block_addr.to_le_bytes());
        out[12..16].copy_from_slice(&self.offset.to_le_bytes());
        out
    }

    /// Decodes a 16-byte descriptor.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < 16 {
            return Err(HdfError::Corrupt("short heap descriptor".into()));
        }
        Ok(Self {
            len: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            block_addr: u64::from_le_bytes(buf[4..12].try_into().unwrap()),
            offset: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
        })
    }
}

struct CurrentBlock {
    addr: u64,
    buf: Vec<u8>,
    capacity: u64,
}

/// The file's global heap manager.
pub struct GlobalHeap {
    block_size: u64,
    current: Option<CurrentBlock>,
    /// Total payload bytes inserted (diagnostics).
    inserted_bytes: u64,
    /// Heap blocks written to storage so far.
    blocks_flushed: u64,
}

impl GlobalHeap {
    /// A heap packing objects into blocks of `block_size` bytes.
    pub fn new(block_size: u64) -> Self {
        Self {
            block_size: block_size.max(HEAP_HEADER + 1),
            current: None,
            inserted_bytes: 0,
            blocks_flushed: 0,
        }
    }

    /// Total payload bytes inserted over the heap's lifetime.
    pub fn inserted_bytes(&self) -> u64 {
        self.inserted_bytes
    }

    /// Heap blocks flushed to storage so far.
    pub fn blocks_flushed(&self) -> u64 {
        self.blocks_flushed
    }

    /// Inserts `data`, returning its descriptor. The payload lands on
    /// storage when its block fills or on [`GlobalHeap::flush`].
    pub fn insert(&mut self, rf: &mut RawFile, data: &[u8]) -> Result<HeapRef> {
        if data.is_empty() {
            return Ok(HeapRef::null());
        }
        self.inserted_bytes += data.len() as u64;

        // Oversized objects get a dedicated block.
        let needed = HEAP_HEADER + data.len() as u64;
        if needed > self.block_size {
            let addr = rf.alloc(needed)?;
            let mut e = Encoder::with_capacity(needed as usize);
            e.u32(HEAP_MAGIC).u32(data.len() as u32).bytes(data);
            rf.write_at(addr, &e.finish()[..], AccessType::RawData)?;
            self.blocks_flushed += 1;
            return Ok(HeapRef {
                len: data.len() as u32,
                block_addr: addr,
                offset: HEAP_HEADER as u32,
            });
        }

        // Flush the current block if the object does not fit.
        if let Some(cur) = &self.current {
            if cur.buf.len() as u64 + data.len() as u64 > cur.capacity {
                self.flush(rf)?;
            }
        }

        // Open a new block if needed.
        if self.current.is_none() {
            let addr = rf.alloc(self.block_size)?;
            let mut buf = Vec::with_capacity(self.block_size as usize);
            let mut e = Encoder::new();
            e.u32(HEAP_MAGIC).u32(0);
            buf.extend_from_slice(&e.finish());
            self.current = Some(CurrentBlock {
                addr,
                buf,
                capacity: self.block_size,
            });
        }

        let cur = self.current.as_mut().expect("just ensured");
        let offset = cur.buf.len() as u32;
        cur.buf.extend_from_slice(data);
        Ok(HeapRef {
            len: data.len() as u32,
            block_addr: cur.addr,
            offset,
        })
    }

    /// Reads the payload a descriptor points at. Serves from the in-memory
    /// current block when the data has not been flushed yet.
    pub fn read(&mut self, rf: &mut RawFile, href: HeapRef) -> Result<Vec<u8>> {
        if href.is_null() {
            return Ok(Vec::new());
        }
        if let Some(cur) = &self.current {
            if cur.addr == href.block_addr {
                let start = href.offset as usize;
                let end = start + href.len as usize;
                if end > cur.buf.len() {
                    return Err(HdfError::Corrupt("heap ref past block".into()));
                }
                return Ok(cur.buf[start..end].to_vec());
            }
        }
        rf.read_at(
            href.block_addr + href.offset as u64,
            href.len as u64,
            AccessType::RawData,
        )
    }

    /// Writes the current in-memory block to storage (one I/O), recording
    /// the used length in its header. Unused tail space of the block is
    /// returned to the allocator.
    pub fn flush(&mut self, rf: &mut RawFile) -> Result<()> {
        let Some(mut cur) = self.current.take() else {
            return Ok(());
        };
        let used = cur.buf.len() as u64;
        // Patch the used-length field.
        let mut d = Decoder::new(&cur.buf);
        debug_assert_eq!(d.u32().expect("header present"), HEAP_MAGIC);
        cur.buf[4..8].copy_from_slice(&(used as u32).to_le_bytes());
        rf.write_at(cur.addr, &cur.buf, AccessType::RawData)?;
        if used < cur.capacity {
            rf.free(cur.addr + used, cur.capacity - used);
        }
        self.blocks_flushed += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_vfd::MemVfd;

    // Real files always have a superblock at address 0, so heap blocks never
    // land there (block_addr == 0 is the null-descriptor sentinel).
    fn raw() -> RawFile {
        RawFile::new(Box::new(MemVfd::new()), 64)
    }

    #[test]
    fn descriptor_round_trip() {
        let h = HeapRef {
            len: 300,
            block_addr: 65536,
            offset: 24,
        };
        assert_eq!(HeapRef::decode(&h.encode()).unwrap(), h);
        assert!(HeapRef::decode(&[0; 8]).is_err());
    }

    #[test]
    fn insert_and_read_before_flush() {
        let mut rf = raw();
        let mut heap = GlobalHeap::new(1024);
        let a = heap.insert(&mut rf, b"first").unwrap();
        let b = heap.insert(&mut rf, b"second").unwrap();
        assert_eq!(heap.read(&mut rf, a).unwrap(), b"first");
        assert_eq!(heap.read(&mut rf, b).unwrap(), b"second");
        assert_eq!(heap.blocks_flushed(), 0, "still buffered");
    }

    #[test]
    fn read_after_flush() {
        let mut rf = raw();
        let mut heap = GlobalHeap::new(1024);
        let a = heap.insert(&mut rf, b"persisted").unwrap();
        heap.flush(&mut rf).unwrap();
        assert_eq!(heap.blocks_flushed(), 1);
        assert_eq!(heap.read(&mut rf, a).unwrap(), b"persisted");
    }

    #[test]
    fn block_fills_trigger_flush() {
        let mut rf = raw();
        // Block payload capacity = 64 - 8 = 56 bytes.
        let mut heap = GlobalHeap::new(64);
        let mut refs = Vec::new();
        for i in 0..10u8 {
            refs.push((i, heap.insert(&mut rf, &[i; 20]).unwrap()));
        }
        // 20-byte objects: 2 per block → at least 4 full blocks flushed.
        assert!(heap.blocks_flushed() >= 4, "{}", heap.blocks_flushed());
        heap.flush(&mut rf).unwrap();
        for (i, r) in refs {
            assert_eq!(heap.read(&mut rf, r).unwrap(), vec![i; 20]);
        }
        assert_eq!(heap.inserted_bytes(), 200);
    }

    #[test]
    fn oversized_object_gets_dedicated_block() {
        let mut rf = raw();
        let mut heap = GlobalHeap::new(64);
        let big = vec![7u8; 1000];
        let r = heap.insert(&mut rf, &big).unwrap();
        assert_eq!(heap.blocks_flushed(), 1, "dedicated block written eagerly");
        assert_eq!(heap.read(&mut rf, r).unwrap(), big);
    }

    #[test]
    fn empty_object_is_null_ref() {
        let mut rf = raw();
        let mut heap = GlobalHeap::new(64);
        let r = heap.insert(&mut rf, b"").unwrap();
        assert!(r.is_null());
        assert_eq!(heap.read(&mut rf, r).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn flush_frees_unused_tail() {
        let mut rf = raw();
        let mut heap = GlobalHeap::new(1024);
        heap.insert(&mut rf, &[1; 10]).unwrap();
        heap.flush(&mut rf).unwrap();
        // 1024 allocated at 64, 18 used → tail freed, shrinking EOF to 82.
        assert_eq!(rf.eof(), 64 + 18);
    }

    #[test]
    fn payloads_in_different_blocks_do_not_interfere() {
        let mut rf = raw();
        let mut heap = GlobalHeap::new(128);
        let mut refs = Vec::new();
        for i in 0..50u8 {
            refs.push((
                i,
                heap.insert(&mut rf, &vec![i; (i as usize % 37) + 1])
                    .unwrap(),
            ));
        }
        heap.flush(&mut rf).unwrap();
        for (i, r) in refs {
            assert_eq!(
                heap.read(&mut rf, r).unwrap(),
                vec![i; (i as usize % 37) + 1]
            );
        }
    }
}
