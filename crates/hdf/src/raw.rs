//! Raw file access: a driver plus the file-space allocator.
//!
//! Everything above this layer (headers, heaps, chunk machinery, dataset
//! layout logic) performs I/O through [`RawFile`], which pairs the
//! [`Vfd`] driver with the [`Allocator`] so callers can allocate-and-write
//! or read-and-free without juggling two mutable borrows.

use crate::alloc::Allocator;
use crate::error::Result;
use crate::meta::SUPERBLOCK_REGION;
use dayu_trace::vfd::AccessType;
use dayu_vfd::{BatchOp, BatchOpKind, Vfd};
use std::collections::BTreeMap;

/// A driver plus allocator: the substrate for all format structures.
///
/// With journaling enabled (see [`crate::journal`]), metadata block
/// writes above the superblock region are *staged* in an address-keyed
/// overlay instead of reaching the device; reads consult the overlay
/// first so the session always observes its own writes. The file layer
/// drains the overlay at commit time — journal frames first, then the
/// in-place application. Frees are likewise deferred while journaling so
/// a block freed mid-epoch (but still referenced by the last committed
/// generation) cannot be reallocated and clobbered before the commit.
pub struct RawFile {
    vfd: Box<dyn Vfd>,
    alloc: Allocator,
    writes: u64,
    journaling: bool,
    overlay: BTreeMap<u64, Vec<u8>>,
    pending_frees: Vec<(u64, u64)>,
}

impl RawFile {
    /// Wraps a driver; allocation begins at `eof`.
    pub fn new(vfd: Box<dyn Vfd>, eof: u64) -> Self {
        Self {
            vfd,
            alloc: Allocator::new(eof),
            writes: 0,
            journaling: false,
            overlay: BTreeMap::new(),
            pending_frees: Vec::new(),
        }
    }

    /// Number of write operations issued through this raw file (used to
    /// detect whether a session modified the file at all).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Enables or disables metadata write staging.
    pub fn set_journaling(&mut self, on: bool) {
        self.journaling = on;
    }

    /// Whether metadata writes are currently staged.
    pub fn journaling(&self) -> bool {
        self.journaling
    }

    /// Whether any staged writes or deferred frees await a commit.
    pub fn has_staged_state(&self) -> bool {
        !self.overlay.is_empty() || !self.pending_frees.is_empty()
    }

    /// Drains the overlay in address order for journaling and in-place
    /// application.
    pub fn take_overlay(&mut self) -> Vec<(u64, Vec<u8>)> {
        std::mem::take(&mut self.overlay).into_iter().collect()
    }

    /// Applies the deferred frees to the allocator (commit time only).
    pub fn apply_pending_frees(&mut self) {
        for (addr, len) in std::mem::take(&mut self.pending_frees) {
            self.alloc.free(addr, len);
        }
    }

    /// Serves `buf` from the overlay when the staged block containing
    /// `addr` fully covers the request.
    fn overlay_read(&self, addr: u64, buf: &mut [u8]) -> bool {
        if self.overlay.is_empty() {
            return false;
        }
        if let Some((&base, block)) = self.overlay.range(..=addr).next_back() {
            let off = (addr - base) as usize;
            if off.saturating_add(buf.len()) <= block.len() {
                buf.copy_from_slice(&block[off..off + buf.len()]);
                return true;
            }
        }
        false
    }

    /// Stages a metadata block write. Metadata blocks are written whole,
    /// so a repeat write to a staged address replaces it and a write
    /// inside a larger staged block patches it.
    fn stage(&mut self, addr: u64, data: &[u8]) {
        if let Some((&base, block)) = self.overlay.range_mut(..=addr).next_back() {
            let off = (addr - base) as usize;
            if off.saturating_add(data.len()) <= block.len() {
                block[off..off + data.len()].copy_from_slice(data);
                return;
            }
            if base == addr {
                *block = data.to_vec();
                return;
            }
        }
        self.overlay.insert(addr, data.to_vec());
    }

    /// Reads `len` bytes at `addr`.
    pub fn read_at(&mut self, addr: u64, len: u64, access: AccessType) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        self.read_into(addr, &mut buf, access)?;
        Ok(buf)
    }

    /// Reads into a caller-provided buffer.
    pub fn read_into(&mut self, addr: u64, buf: &mut [u8], access: AccessType) -> Result<()> {
        if self.overlay_read(addr, buf) {
            return Ok(());
        }
        self.vfd.read(addr, buf, access)?;
        Ok(())
    }

    /// Writes `data` at `addr`. While journaling, metadata writes above
    /// the superblock region are staged until the next commit.
    pub fn write_at(&mut self, addr: u64, data: &[u8], access: AccessType) -> Result<()> {
        if self.journaling && access == AccessType::Metadata && addr >= SUPERBLOCK_REGION {
            self.stage(addr, data);
            self.writes += 1;
            return Ok(());
        }
        self.vfd.write(addr, data, access)?;
        self.writes += 1;
        Ok(())
    }

    /// Writes straight to the device, bypassing staging. The commit path
    /// uses this for journal frames, overlay application, and superblock
    /// slots — writes whose ordering *is* the durability protocol.
    pub fn write_direct(&mut self, addr: u64, data: &[u8], access: AccessType) -> Result<()> {
        self.vfd.write(addr, data, access)?;
        self.writes += 1;
        Ok(())
    }

    /// Submits a batch of raw-data operations straight to the driver.
    ///
    /// Only [`AccessType::RawData`] ops are legal here: metadata writes may
    /// need journal staging, which the batch path deliberately bypasses
    /// (the overlay never holds raw-data blocks, so staged state cannot
    /// shadow these extents). Write counting matches the scalar path: one
    /// count per completed logical segment. Fail-fast like the driver —
    /// the first errored op aborts the batch and is returned.
    pub fn submit_raw_batch(&mut self, batch: &mut [BatchOp]) -> Result<()> {
        debug_assert!(batch.iter().all(|op| op.access == AccessType::RawData));
        let completions = self.vfd.submit(batch);
        let mut failed = None;
        for (op, c) in batch.iter().zip(completions) {
            let done = if c.result.is_ok() {
                op.segments.len() as u64
            } else {
                c.segments_done
            };
            if op.kind == BatchOpKind::Write {
                self.writes += done;
            }
            if let Err(e) = c.result {
                failed = Some(e);
                break;
            }
        }
        match failed {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Allocates `len` bytes of file space.
    pub fn alloc(&mut self, len: u64) -> Result<u64> {
        self.alloc.alloc(len)
    }

    /// Frees `[addr, addr+len)` — deferred to the next commit while
    /// journaling, immediate otherwise.
    pub fn free(&mut self, addr: u64, len: u64) {
        if self.journaling {
            self.pending_frees.push((addr, len));
        } else {
            self.alloc.free(addr, len);
        }
    }

    /// Allocates space for `data` and writes it, returning the address.
    pub fn alloc_write(&mut self, data: &[u8], access: AccessType) -> Result<u64> {
        let addr = self.alloc(data.len() as u64)?;
        self.write_at(addr, data, access)?;
        Ok(addr)
    }

    /// Ensures the driver's end-of-file covers addresses up to `end`,
    /// zero-filling (HDF5 likewise extends the end-of-allocation when an
    /// extent is reserved, so reads of not-yet-written regions return fill
    /// values instead of failing).
    pub fn ensure_eof(&mut self, end: u64) -> Result<()> {
        if self.vfd.eof() < end {
            self.vfd.truncate(end)?;
        }
        Ok(())
    }

    /// The driver's current end-of-file (physical bytes, which can trail
    /// or exceed the allocator's EOF mid-session).
    pub fn device_eof(&self) -> u64 {
        self.vfd.eof()
    }

    /// Truncates the driver to `end` (recovery write-back shrinks the
    /// device to the committed end-of-file).
    pub fn truncate(&mut self, end: u64) -> Result<()> {
        self.vfd.truncate(end)?;
        Ok(())
    }

    /// Unwraps the underlying driver, discarding allocator state.
    pub fn into_vfd(self) -> Box<dyn Vfd> {
        self.vfd
    }

    /// Current end of allocated space.
    pub fn eof(&self) -> u64 {
        self.alloc.eof()
    }

    /// Bytes currently on the free list.
    pub fn free_bytes(&self) -> u64 {
        self.alloc.free_bytes()
    }

    /// Flushes the driver.
    pub fn flush(&mut self) -> Result<()> {
        self.vfd.flush()?;
        Ok(())
    }

    /// Truncates the driver to the allocator's EOF, drops un-persisted free
    /// space, and closes the driver.
    pub fn close(&mut self) -> Result<()> {
        self.alloc.abandon_free_space();
        self.vfd.truncate(self.alloc.eof())?;
        self.vfd.close()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_vfd::MemVfd;

    const RAW: AccessType = AccessType::RawData;

    #[test]
    fn alloc_write_read_round_trip() {
        let mut rf = RawFile::new(Box::new(MemVfd::new()), 64);
        let addr = rf.alloc_write(b"hello", RAW).unwrap();
        assert_eq!(addr, 64);
        assert_eq!(rf.read_at(addr, 5, RAW).unwrap(), b"hello");
        assert_eq!(rf.eof(), 69);
    }

    #[test]
    fn free_and_reuse() {
        let mut rf = RawFile::new(Box::new(MemVfd::new()), 0);
        let a = rf.alloc_write(&[1; 10], RAW).unwrap();
        let _b = rf.alloc_write(&[2; 10], RAW).unwrap();
        rf.free(a, 10);
        assert_eq!(rf.free_bytes(), 10);
        let c = rf.alloc(4).unwrap();
        assert_eq!(c, a, "first fit reuses the hole");
    }

    #[test]
    fn close_truncates_to_eof() {
        let mut rf = RawFile::new(Box::new(MemVfd::new()), 0);
        rf.alloc_write(&[0; 100], RAW).unwrap();
        rf.flush().unwrap();
        rf.close().unwrap();
    }

    #[test]
    fn read_into_buffer() {
        let mut rf = RawFile::new(Box::new(MemVfd::new()), 0);
        let addr = rf.alloc_write(&[9; 16], RAW).unwrap();
        let mut buf = [0u8; 8];
        rf.read_into(addr + 4, &mut buf, RAW).unwrap();
        assert_eq!(buf, [9; 8]);
    }

    #[test]
    fn staged_metadata_is_readable_but_not_on_device() {
        const META: AccessType = AccessType::Metadata;
        let mut rf = RawFile::new(Box::new(MemVfd::new()), SUPERBLOCK_REGION);
        rf.set_journaling(true);
        let addr = rf.alloc_write(&[5; 32], META).unwrap();
        // The session observes its own staged write...
        assert_eq!(rf.read_at(addr, 32, META).unwrap(), vec![5; 32]);
        assert!(rf.has_staged_state());
        // ...and a repeat write to the same block replaces it.
        rf.write_at(addr, &[6; 32], META).unwrap();
        assert_eq!(rf.read_at(addr, 8, META).unwrap(), vec![6; 8]);
        let staged = rf.take_overlay();
        assert_eq!(staged, vec![(addr, vec![6; 32])]);
    }

    #[test]
    fn journaled_frees_are_deferred_until_applied() {
        const META: AccessType = AccessType::Metadata;
        let mut rf = RawFile::new(Box::new(MemVfd::new()), SUPERBLOCK_REGION);
        rf.set_journaling(true);
        let a = rf.alloc_write(&[1; 10], META).unwrap();
        rf.free(a, 10);
        assert_eq!(rf.free_bytes(), 0, "free is deferred");
        let b = rf.alloc(4).unwrap();
        assert_ne!(b, a, "freed block must not be reused before commit");
        rf.apply_pending_frees();
        assert_eq!(rf.free_bytes(), 10);
    }
}
