//! Raw file access: a driver plus the file-space allocator.
//!
//! Everything above this layer (headers, heaps, chunk machinery, dataset
//! layout logic) performs I/O through [`RawFile`], which pairs the
//! [`Vfd`] driver with the [`Allocator`] so callers can allocate-and-write
//! or read-and-free without juggling two mutable borrows.

use crate::alloc::Allocator;
use crate::error::Result;
use dayu_trace::vfd::AccessType;
use dayu_vfd::Vfd;

/// A driver plus allocator: the substrate for all format structures.
pub struct RawFile {
    vfd: Box<dyn Vfd>,
    alloc: Allocator,
    writes: u64,
}

impl RawFile {
    /// Wraps a driver; allocation begins at `eof`.
    pub fn new(vfd: Box<dyn Vfd>, eof: u64) -> Self {
        Self {
            vfd,
            alloc: Allocator::new(eof),
            writes: 0,
        }
    }

    /// Number of write operations issued through this raw file (used to
    /// detect whether a session modified the file at all).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Reads `len` bytes at `addr`.
    pub fn read_at(&mut self, addr: u64, len: u64, access: AccessType) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        self.vfd.read(addr, &mut buf, access)?;
        Ok(buf)
    }

    /// Reads into a caller-provided buffer.
    pub fn read_into(&mut self, addr: u64, buf: &mut [u8], access: AccessType) -> Result<()> {
        self.vfd.read(addr, buf, access)?;
        Ok(())
    }

    /// Writes `data` at `addr`.
    pub fn write_at(&mut self, addr: u64, data: &[u8], access: AccessType) -> Result<()> {
        self.vfd.write(addr, data, access)?;
        self.writes += 1;
        Ok(())
    }

    /// Allocates `len` bytes of file space.
    pub fn alloc(&mut self, len: u64) -> Result<u64> {
        self.alloc.alloc(len)
    }

    /// Frees `[addr, addr+len)`.
    pub fn free(&mut self, addr: u64, len: u64) {
        self.alloc.free(addr, len);
    }

    /// Allocates space for `data` and writes it, returning the address.
    pub fn alloc_write(&mut self, data: &[u8], access: AccessType) -> Result<u64> {
        let addr = self.alloc(data.len() as u64)?;
        self.write_at(addr, data, access)?;
        Ok(addr)
    }

    /// Ensures the driver's end-of-file covers addresses up to `end`,
    /// zero-filling (HDF5 likewise extends the end-of-allocation when an
    /// extent is reserved, so reads of not-yet-written regions return fill
    /// values instead of failing).
    pub fn ensure_eof(&mut self, end: u64) -> Result<()> {
        if self.vfd.eof() < end {
            self.vfd.truncate(end)?;
        }
        Ok(())
    }

    /// Unwraps the underlying driver, discarding allocator state.
    pub fn into_vfd(self) -> Box<dyn Vfd> {
        self.vfd
    }

    /// Current end of allocated space.
    pub fn eof(&self) -> u64 {
        self.alloc.eof()
    }

    /// Bytes currently on the free list.
    pub fn free_bytes(&self) -> u64 {
        self.alloc.free_bytes()
    }

    /// Flushes the driver.
    pub fn flush(&mut self) -> Result<()> {
        self.vfd.flush()?;
        Ok(())
    }

    /// Truncates the driver to the allocator's EOF, drops un-persisted free
    /// space, and closes the driver.
    pub fn close(&mut self) -> Result<()> {
        self.alloc.abandon_free_space();
        self.vfd.truncate(self.alloc.eof())?;
        self.vfd.close()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_vfd::MemVfd;

    const RAW: AccessType = AccessType::RawData;

    #[test]
    fn alloc_write_read_round_trip() {
        let mut rf = RawFile::new(Box::new(MemVfd::new()), 64);
        let addr = rf.alloc_write(b"hello", RAW).unwrap();
        assert_eq!(addr, 64);
        assert_eq!(rf.read_at(addr, 5, RAW).unwrap(), b"hello");
        assert_eq!(rf.eof(), 69);
    }

    #[test]
    fn free_and_reuse() {
        let mut rf = RawFile::new(Box::new(MemVfd::new()), 0);
        let a = rf.alloc_write(&[1; 10], RAW).unwrap();
        let _b = rf.alloc_write(&[2; 10], RAW).unwrap();
        rf.free(a, 10);
        assert_eq!(rf.free_bytes(), 10);
        let c = rf.alloc(4).unwrap();
        assert_eq!(c, a, "first fit reuses the hole");
    }

    #[test]
    fn close_truncates_to_eof() {
        let mut rf = RawFile::new(Box::new(MemVfd::new()), 0);
        rf.alloc_write(&[0; 100], RAW).unwrap();
        rf.flush().unwrap();
        rf.close().unwrap();
    }

    #[test]
    fn read_into_buffer() {
        let mut rf = RawFile::new(Box::new(MemVfd::new()), 0);
        let addr = rf.alloc_write(&[9; 16], RAW).unwrap();
        let mut buf = [0u8; 8];
        rf.read_into(addr + 4, &mut buf, RAW).unwrap();
        assert_eq!(buf, [9; 8]);
    }
}
