//! On-storage metadata structures: superblock, object headers, attributes.
//!
//! These are the structures whose I/O shows up flagged
//! [`AccessType::Metadata`](dayu_trace::vfd::AccessType) in VFD traces, and
//! which the paper's SDGs aggregate under "File-Metadata" nodes. Object
//! headers live in fixed-size blocks (like HDF5's object header chunks);
//! attributes live in a separate reallocated-on-update block, so attribute
//! churn produces visible small metadata I/O.

use crate::codec::{Decoder, Encoder};
use crate::crc::crc32;
use crate::error::{HdfError, Result};
use dayu_trace::vol::{DataType, ObjectKind};

/// File magic at address 0.
pub const MAGIC: &[u8; 8] = b"DAYUHDF1";
/// Format version encoded in the superblock. Version 2 added the
/// dual-slot superblock (generation + clean flag + journal location +
/// CRC) and checksums on header and attribute blocks.
pub const VERSION: u32 = 2;
/// Size of one superblock slot.
pub const SUPERBLOCK_SIZE: u64 = 64;
/// Number of alternating superblock slots at the head of the file.
pub const SUPERBLOCK_SLOTS: u64 = 2;
/// Bytes reserved at address 0 for the superblock slots; allocation
/// starts here.
pub const SUPERBLOCK_REGION: u64 = SUPERBLOCK_SIZE * SUPERBLOCK_SLOTS;
/// Fixed size of every object header block.
pub const HEADER_BLOCK_SIZE: u64 = 512;
/// Maximum payload bytes a compact-layout dataset may hold (the rest of the
/// header block must fit the other messages).
pub const COMPACT_MAX: u64 = 256;
/// Maximum dataspace rank.
pub const MAX_RANK: usize = 8;

/// The superblock: root group location, end-of-file, and the durability
/// state (commit generation, clean-shutdown flag, journal location).
///
/// Two slots alternate at addresses 0 and [`SUPERBLOCK_SIZE`]; a commit
/// of generation `g` writes slot `g % 2`, so a torn superblock write
/// always leaves the previous generation's slot intact. Each slot ends
/// in a CRC-32 and [`Superblock::decode_region`] picks the newest slot
/// whose checksum holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Address of the root group's object header.
    pub root_addr: u64,
    /// End of allocated file space.
    pub eof: u64,
    /// Commit generation; create() writes generation 1 to slot B, leaving
    /// slot A vacant (all zeros) until the first post-create commit.
    pub generation: u64,
    /// Whether the file was cleanly flushed/closed when this slot was
    /// written. An unclean newest slot triggers recovery on open.
    pub clean: bool,
    /// Address of the write-ahead journal region (0 = unjournaled).
    pub journal_addr: u64,
    /// Capacity of the journal region in bytes.
    pub journal_cap: u64,
}

impl Superblock {
    /// Byte offset of the slot a commit of `generation` writes.
    pub fn slot_offset(generation: u64) -> u64 {
        (generation % SUPERBLOCK_SLOTS) * SUPERBLOCK_SIZE
    }

    /// Encodes into exactly [`SUPERBLOCK_SIZE`] bytes, CRC last.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(SUPERBLOCK_SIZE as usize);
        e.bytes(MAGIC)
            .u32(VERSION)
            .u64(self.root_addr)
            .u64(self.eof)
            .u64(self.generation)
            .u8(if self.clean { 1 } else { 0 })
            .u64(self.journal_addr)
            .u64(self.journal_cap)
            .pad_to(SUPERBLOCK_SIZE as usize - 4);
        let mut buf = e.finish();
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and validates one superblock slot.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(buf);
        let magic = d.bytes(8)?;
        if magic != MAGIC {
            return Err(HdfError::Corrupt("bad magic".into()));
        }
        let version = d.u32()?;
        if version != VERSION {
            return Err(HdfError::Corrupt(format!("unsupported version {version}")));
        }
        if buf.len() < SUPERBLOCK_SIZE as usize {
            return Err(HdfError::Corrupt("short superblock".into()));
        }
        let body = &buf[..SUPERBLOCK_SIZE as usize - 4];
        let stored = u32::from_le_bytes(
            buf[SUPERBLOCK_SIZE as usize - 4..SUPERBLOCK_SIZE as usize]
                .try_into()
                .unwrap(),
        );
        if crc32(body) != stored {
            return Err(HdfError::ChecksumMismatch("superblock".into()));
        }
        Ok(Self {
            root_addr: d.u64()?,
            eof: d.u64()?,
            generation: d.u64()?,
            clean: d.u8()? != 0,
            journal_addr: d.u64()?,
            journal_cap: d.u64()?,
        })
    }

    /// Decodes the superblock region, returning the newest slot whose
    /// CRC holds. Errors with slot A's failure when no slot is valid.
    pub fn decode_region(buf: &[u8]) -> Result<Self> {
        let a = Self::decode(buf);
        let b = if buf.len() >= SUPERBLOCK_REGION as usize {
            Self::decode(&buf[SUPERBLOCK_SIZE as usize..SUPERBLOCK_REGION as usize])
        } else {
            Err(HdfError::Corrupt("short superblock region".into()))
        };
        match (a, b) {
            (Ok(a), Ok(b)) => Ok(if b.generation > a.generation { b } else { a }),
            (Ok(a), Err(_)) => Ok(a),
            (Err(_), Ok(b)) => Ok(b),
            (Err(e), Err(_)) => Err(e),
        }
    }
}

/// Storage layout message held in a dataset's object header.
#[derive(Clone, Debug, PartialEq)]
pub enum LayoutMessage {
    /// Payload inline in the header block.
    Compact {
        /// The dataset's raw bytes.
        data: Vec<u8>,
    },
    /// One contiguous extent. `addr == 0` means not yet allocated (HDF5's
    /// "late allocation": space is assigned at first write).
    Contiguous {
        /// Extent address (0 = unallocated).
        addr: u64,
        /// Extent size in bytes.
        size: u64,
    },
    /// Fixed-size chunks located through an index block.
    Chunked {
        /// Chunk dimensions.
        chunk_dims: Vec<u64>,
        /// Address of the chunk index block.
        index_addr: u64,
        /// Size of the chunk index block in bytes.
        index_len: u64,
    },
}

/// Everything stored in an object header block.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectHeader {
    /// Group or dataset.
    pub kind: ObjectKind,
    /// Dataspace dimensions (datasets only; empty for groups).
    pub shape: Vec<u64>,
    /// Element datatype (datasets only).
    pub dtype: Option<DataType>,
    /// Layout message (datasets only).
    pub layout: Option<LayoutMessage>,
    /// For groups: address of the entry-table block (0 = empty group).
    pub table_addr: u64,
    /// For groups: byte length of the entry-table block.
    pub table_len: u64,
    /// Address of the attribute block (0 = no attributes).
    pub attr_addr: u64,
    /// Byte length of the attribute block.
    pub attr_len: u64,
    /// Logical payload bytes accumulated for variable-length datasets (the
    /// descriptors only index the global heap, so the header tracks the
    /// true data volume).
    pub vl_logical_bytes: u64,
}

impl ObjectHeader {
    /// A fresh group header.
    pub fn new_group() -> Self {
        Self {
            kind: ObjectKind::Group,
            shape: Vec::new(),
            dtype: None,
            layout: None,
            table_addr: 0,
            table_len: 0,
            attr_addr: 0,
            attr_len: 0,
            vl_logical_bytes: 0,
        }
    }

    /// A fresh dataset header.
    pub fn new_dataset(shape: Vec<u64>, dtype: DataType, layout: LayoutMessage) -> Self {
        Self {
            kind: ObjectKind::Dataset,
            shape,
            dtype: Some(dtype),
            layout: Some(layout),
            table_addr: 0,
            table_len: 0,
            attr_addr: 0,
            attr_len: 0,
            vl_logical_bytes: 0,
        }
    }

    /// Encodes into exactly [`HEADER_BLOCK_SIZE`] bytes.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut e = Encoder::with_capacity(HEADER_BLOCK_SIZE as usize);
        e.u8(match self.kind {
            ObjectKind::Group => 1,
            ObjectKind::Dataset => 2,
            _ => {
                return Err(HdfError::InvalidArgument(
                    "only groups and datasets have headers".into(),
                ))
            }
        });
        if self.shape.len() > MAX_RANK {
            return Err(HdfError::InvalidArgument(format!(
                "rank {} exceeds max {MAX_RANK}",
                self.shape.len()
            )));
        }
        e.u8(self.shape.len() as u8);
        for &d in &self.shape {
            e.u64(d);
        }
        encode_dtype(&mut e, self.dtype);
        match &self.layout {
            None => {
                e.u8(0);
            }
            Some(LayoutMessage::Compact { data }) => {
                if data.len() as u64 > COMPACT_MAX {
                    return Err(HdfError::InvalidArgument(format!(
                        "compact payload {} exceeds max {COMPACT_MAX}",
                        data.len()
                    )));
                }
                e.u8(1).u32(data.len() as u32).bytes(data);
            }
            Some(LayoutMessage::Contiguous { addr, size }) => {
                e.u8(2).u64(*addr).u64(*size);
            }
            Some(LayoutMessage::Chunked {
                chunk_dims,
                index_addr,
                index_len,
            }) => {
                e.u8(3).u8(chunk_dims.len() as u8);
                for &d in chunk_dims {
                    e.u64(d);
                }
                e.u64(*index_addr).u64(*index_len);
            }
        }
        e.u64(self.table_addr)
            .u64(self.table_len)
            .u64(self.attr_addr)
            .u64(self.attr_len)
            .u64(self.vl_logical_bytes);
        if e.len() as u64 > HEADER_BLOCK_SIZE - 4 {
            return Err(HdfError::InvalidArgument(format!(
                "object header overflows {HEADER_BLOCK_SIZE}-byte block ({} bytes)",
                e.len()
            )));
        }
        e.pad_to(HEADER_BLOCK_SIZE as usize - 4);
        let mut buf = e.finish();
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        Ok(buf)
    }

    /// Decodes a header block, verifying its trailing CRC first.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < HEADER_BLOCK_SIZE as usize {
            return Err(HdfError::Corrupt("short object header block".into()));
        }
        let body = &buf[..HEADER_BLOCK_SIZE as usize - 4];
        let stored = u32::from_le_bytes(
            buf[HEADER_BLOCK_SIZE as usize - 4..HEADER_BLOCK_SIZE as usize]
                .try_into()
                .unwrap(),
        );
        if crc32(body) != stored {
            return Err(HdfError::ChecksumMismatch("object header".into()));
        }
        let mut d = Decoder::new(body);
        let kind = match d.u8()? {
            1 => ObjectKind::Group,
            2 => ObjectKind::Dataset,
            k => return Err(HdfError::Corrupt(format!("bad object kind {k}"))),
        };
        let rank = d.u8()? as usize;
        if rank > MAX_RANK {
            return Err(HdfError::Corrupt(format!("bad rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(d.u64()?);
        }
        let dtype = decode_dtype(&mut d)?;
        let layout = match d.u8()? {
            0 => None,
            1 => {
                let len = d.u32()? as usize;
                Some(LayoutMessage::Compact {
                    data: d.bytes(len)?.to_vec(),
                })
            }
            2 => Some(LayoutMessage::Contiguous {
                addr: d.u64()?,
                size: d.u64()?,
            }),
            3 => {
                let crank = d.u8()? as usize;
                let mut chunk_dims = Vec::with_capacity(crank);
                for _ in 0..crank {
                    chunk_dims.push(d.u64()?);
                }
                Some(LayoutMessage::Chunked {
                    chunk_dims,
                    index_addr: d.u64()?,
                    index_len: d.u64()?,
                })
            }
            c => return Err(HdfError::Corrupt(format!("bad layout class {c}"))),
        };
        Ok(Self {
            kind,
            shape,
            dtype,
            layout,
            table_addr: d.u64()?,
            table_len: d.u64()?,
            attr_addr: d.u64()?,
            attr_len: d.u64()?,
            vl_logical_bytes: d.u64()?,
        })
    }
}

fn encode_dtype(e: &mut Encoder, dtype: Option<DataType>) {
    match dtype {
        None => {
            e.u8(0).u32(0);
        }
        Some(DataType::Int { width }) => {
            e.u8(1).u32(width as u32);
        }
        Some(DataType::Float { width }) => {
            e.u8(2).u32(width as u32);
        }
        Some(DataType::FixedBytes { len }) => {
            e.u8(3).u32(len);
        }
        Some(DataType::VarLen) => {
            e.u8(4).u32(0);
        }
    }
}

fn decode_dtype(d: &mut Decoder) -> Result<Option<DataType>> {
    let code = d.u8()?;
    let param = d.u32()?;
    Ok(match code {
        0 => None,
        1 => Some(DataType::Int { width: param as u8 }),
        2 => Some(DataType::Float { width: param as u8 }),
        3 => Some(DataType::FixedBytes { len: param }),
        4 => Some(DataType::VarLen),
        c => return Err(HdfError::Corrupt(format!("bad dtype code {c}"))),
    })
}

/// An attribute value (attributes are small, typed, and stored inline in the
/// object's attribute block).
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Double-precision float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl AttrValue {
    /// Approximate stored size in bytes.
    pub fn stored_size(&self) -> u64 {
        match self {
            AttrValue::U64(_) | AttrValue::I64(_) | AttrValue::F64(_) => 8,
            AttrValue::Str(s) => s.len() as u64,
            AttrValue::Bytes(b) => b.len() as u64,
        }
    }
}

/// A named attribute.
#[derive(Clone, Debug, PartialEq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute value.
    pub value: AttrValue,
}

/// Encodes an attribute list block.
pub fn encode_attrs(attrs: &[Attribute]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u32(attrs.len() as u32);
    for a in attrs {
        e.str(&a.name);
        match &a.value {
            AttrValue::U64(v) => {
                e.u8(1).u64(*v);
            }
            AttrValue::I64(v) => {
                e.u8(2).u64(*v as u64);
            }
            AttrValue::F64(v) => {
                e.u8(3).u64(v.to_bits());
            }
            AttrValue::Str(s) => {
                e.u8(4).u32(s.len() as u32).bytes(s.as_bytes());
            }
            AttrValue::Bytes(b) => {
                e.u8(5).u32(b.len() as u32).bytes(b);
            }
        }
    }
    let mut buf = e.finish();
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decodes an attribute list block, verifying its trailing CRC first.
pub fn decode_attrs(buf: &[u8]) -> Result<Vec<Attribute>> {
    if buf.len() < 4 {
        return Err(HdfError::Corrupt("short attribute block".into()));
    }
    let (body, tail) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().unwrap());
    if crc32(body) != stored {
        return Err(HdfError::ChecksumMismatch("attribute block".into()));
    }
    let mut d = Decoder::new(body);
    let count = d.u32()? as usize;
    let mut attrs = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let name = d.str()?;
        let value = match d.u8()? {
            1 => AttrValue::U64(d.u64()?),
            2 => AttrValue::I64(d.u64()? as i64),
            3 => AttrValue::F64(f64::from_bits(d.u64()?)),
            4 => {
                let len = d.u32()? as usize;
                AttrValue::Str(
                    String::from_utf8(d.bytes(len)?.to_vec())
                        .map_err(|_| HdfError::Corrupt("invalid UTF-8 attribute".into()))?,
                )
            }
            5 => {
                let len = d.u32()? as usize;
                AttrValue::Bytes(d.bytes(len)?.to_vec())
            }
            c => return Err(HdfError::Corrupt(format!("bad attr value code {c}"))),
        };
        attrs.push(Attribute { name, value });
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sb() -> Superblock {
        Superblock {
            root_addr: 128,
            eof: 123456,
            generation: 3,
            clean: true,
            journal_addr: 4096,
            journal_cap: 65536,
        }
    }

    #[test]
    fn superblock_round_trip() {
        let sb = sample_sb();
        let bytes = sb.encode();
        assert_eq!(bytes.len() as u64, SUPERBLOCK_SIZE);
        assert_eq!(Superblock::decode(&bytes).unwrap(), sb);
    }

    #[test]
    fn superblock_rejects_bad_magic_and_version() {
        let sb = sample_sb();
        let mut bytes = sb.encode();
        bytes[0] = b'X';
        assert!(matches!(
            Superblock::decode(&bytes),
            Err(HdfError::Corrupt(_))
        ));
        let mut bytes = sb.encode();
        bytes[8] = 99;
        assert!(matches!(
            Superblock::decode(&bytes),
            Err(HdfError::Corrupt(_))
        ));
    }

    #[test]
    fn superblock_rejects_flipped_field_bit() {
        let mut bytes = sample_sb().encode();
        bytes[20] ^= 0x01; // eof low byte: magic/version intact, CRC not
        assert!(matches!(
            Superblock::decode(&bytes),
            Err(HdfError::ChecksumMismatch(_))
        ));
    }

    #[test]
    fn decode_region_picks_newest_valid_slot() {
        let old = Superblock {
            generation: 4,
            ..sample_sb()
        };
        let new = Superblock {
            generation: 5,
            root_addr: 640,
            ..sample_sb()
        };
        // Slot layout: generation 4 -> slot 0, generation 5 -> slot 1.
        let mut region = old.encode();
        region.extend_from_slice(&new.encode());
        assert_eq!(Superblock::decode_region(&region).unwrap(), new);
        // Tear the newer slot: the older generation must win.
        region[SUPERBLOCK_SIZE as usize + 30] ^= 0xff;
        assert_eq!(Superblock::decode_region(&region).unwrap(), old);
        // Tear both: decode_region reports slot A's error.
        region[30] ^= 0xff;
        assert!(Superblock::decode_region(&region).is_err());
    }

    #[test]
    fn group_header_round_trip() {
        let mut h = ObjectHeader::new_group();
        h.table_addr = 1024;
        h.table_len = 256;
        let bytes = h.encode().unwrap();
        assert_eq!(bytes.len() as u64, HEADER_BLOCK_SIZE);
        assert_eq!(ObjectHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn dataset_header_round_trip_all_layouts() {
        let layouts = vec![
            LayoutMessage::Compact { data: vec![7; 100] },
            LayoutMessage::Contiguous {
                addr: 4096,
                size: 800,
            },
            LayoutMessage::Chunked {
                chunk_dims: vec![10, 100],
                index_addr: 8192,
                index_len: 480,
            },
        ];
        for layout in layouts {
            let mut h = ObjectHeader::new_dataset(
                vec![100, 100],
                DataType::Float { width: 8 },
                layout.clone(),
            );
            h.attr_addr = 99;
            h.attr_len = 12;
            h.vl_logical_bytes = 5;
            let bytes = h.encode().unwrap();
            let back = ObjectHeader::decode(&bytes).unwrap();
            assert_eq!(back, h, "layout {layout:?}");
        }
    }

    #[test]
    fn all_dtypes_round_trip() {
        for dt in [
            DataType::Int { width: 4 },
            DataType::Float { width: 8 },
            DataType::FixedBytes { len: 77 },
            DataType::VarLen,
        ] {
            let h = ObjectHeader::new_dataset(
                vec![4],
                dt,
                LayoutMessage::Contiguous { addr: 0, size: 0 },
            );
            let back = ObjectHeader::decode(&h.encode().unwrap()).unwrap();
            assert_eq!(back.dtype, Some(dt));
        }
    }

    #[test]
    fn compact_overflow_is_rejected() {
        let h = ObjectHeader::new_dataset(
            vec![1000],
            DataType::Int { width: 1 },
            LayoutMessage::Compact {
                data: vec![0; COMPACT_MAX as usize + 1],
            },
        );
        assert!(matches!(h.encode(), Err(HdfError::InvalidArgument(_))));
    }

    #[test]
    fn excessive_rank_is_rejected() {
        let h = ObjectHeader::new_dataset(
            vec![1; MAX_RANK + 1],
            DataType::Int { width: 1 },
            LayoutMessage::Contiguous { addr: 0, size: 0 },
        );
        assert!(h.encode().is_err());
    }

    #[test]
    fn attribute_round_trip() {
        let attrs = vec![
            Attribute {
                name: "count".into(),
                value: AttrValue::U64(42),
            },
            Attribute {
                name: "offset".into(),
                value: AttrValue::I64(-9),
            },
            Attribute {
                name: "scale".into(),
                value: AttrValue::F64(2.5),
            },
            Attribute {
                name: "units".into(),
                value: AttrValue::Str("kelvin".into()),
            },
            Attribute {
                name: "blob".into(),
                value: AttrValue::Bytes(vec![1, 2, 3]),
            },
        ];
        let bytes = encode_attrs(&attrs);
        assert_eq!(decode_attrs(&bytes).unwrap(), attrs);
    }

    #[test]
    fn attr_stored_sizes() {
        assert_eq!(AttrValue::U64(1).stored_size(), 8);
        assert_eq!(AttrValue::Str("abc".into()).stored_size(), 3);
        assert_eq!(AttrValue::Bytes(vec![0; 10]).stored_size(), 10);
    }

    #[test]
    fn corrupt_header_is_detected() {
        let h = ObjectHeader::new_group();
        let mut bytes = h.encode().unwrap();
        bytes[0] = 77; // bad kind: the CRC catches the altered byte first
        assert!(matches!(
            ObjectHeader::decode(&bytes),
            Err(HdfError::ChecksumMismatch(_))
        ));
        // Re-sign the block so the CRC holds: the structural check fires.
        let crc = crc32(&bytes[..HEADER_BLOCK_SIZE as usize - 4]);
        let at = HEADER_BLOCK_SIZE as usize - 4;
        bytes[at..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ObjectHeader::decode(&bytes),
            Err(HdfError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_attr_block_is_detected() {
        let attrs = vec![Attribute {
            name: "count".into(),
            value: AttrValue::U64(42),
        }];
        let mut bytes = encode_attrs(&attrs);
        bytes[4] ^= 0x08;
        assert!(matches!(
            decode_attrs(&bytes),
            Err(HdfError::ChecksumMismatch(_))
        ));
    }
}
