//! File-space allocation.
//!
//! All metadata blocks, dataset extents, chunks and heap blocks obtain their
//! file addresses here. Allocation policy is first-fit over a free list with
//! fallback to end-of-file extension — the same class of policy HDF5 uses,
//! and the mechanism by which metadata and raw data become *interleaved*
//! through the file: a freed metadata block can be reused for data and vice
//! versa, producing the address-scatter DaYu's SDG address-region nodes
//! visualize (paper Fig. 1 and Fig. 8).
//!
//! Like HDF5's default file-space strategy, the free list is an in-memory
//! structure that is *not* persisted on close: space freed during a session
//! and not reused becomes dead weight in the file.

use crate::error::{HdfError, Result};

/// A free extent `[addr, addr+len)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Extent {
    addr: u64,
    len: u64,
}

/// First-fit file-space allocator.
#[derive(Debug)]
pub struct Allocator {
    /// Free extents sorted by address (for merge-on-free).
    free: Vec<Extent>,
    /// Current end of allocated space.
    eof: u64,
}

impl Allocator {
    /// Allocator over a file whose allocated space ends at `eof`.
    pub fn new(eof: u64) -> Self {
        Self {
            free: Vec::new(),
            eof,
        }
    }

    /// Current end of file (high-water mark).
    pub fn eof(&self) -> u64 {
        self.eof
    }

    /// Total bytes on the free list (internal fragmentation measure).
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|e| e.len).sum()
    }

    /// Number of free extents.
    pub fn free_extent_count(&self) -> usize {
        self.free.len()
    }

    /// Allocates `len` bytes, first-fit from the free list, else at EOF.
    pub fn alloc(&mut self, len: u64) -> Result<u64> {
        if len == 0 {
            return Err(HdfError::InvalidArgument("zero-length allocation".into()));
        }
        for i in 0..self.free.len() {
            if self.free[i].len >= len {
                let addr = self.free[i].addr;
                if self.free[i].len == len {
                    self.free.remove(i);
                } else {
                    self.free[i].addr += len;
                    self.free[i].len -= len;
                }
                return Ok(addr);
            }
        }
        let addr = self.eof;
        self.eof += len;
        Ok(addr)
    }

    /// Returns `[addr, addr+len)` to the free list, coalescing neighbours.
    /// Freeing the tail extent shrinks EOF instead.
    pub fn free(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        debug_assert!(addr + len <= self.eof, "free past EOF");
        if addr + len == self.eof {
            self.eof = addr;
            // The new tail may itself be free; keep shrinking.
            while let Some(last) = self.free.last() {
                if last.addr + last.len == self.eof {
                    self.eof = last.addr;
                    self.free.pop();
                } else {
                    break;
                }
            }
            return;
        }
        let pos = self.free.partition_point(|e| e.addr < addr);
        // Coalesce with predecessor and/or successor.
        let merged_prev = pos > 0 && {
            let p = self.free[pos - 1];
            debug_assert!(p.addr + p.len <= addr, "double free (overlaps predecessor)");
            p.addr + p.len == addr
        };
        let merged_next = pos < self.free.len() && {
            let n = self.free[pos];
            debug_assert!(addr + len <= n.addr, "double free (overlaps successor)");
            addr + len == n.addr
        };
        match (merged_prev, merged_next) {
            (true, true) => {
                self.free[pos - 1].len += len + self.free[pos].len;
                self.free.remove(pos);
            }
            (true, false) => self.free[pos - 1].len += len,
            (false, true) => {
                self.free[pos].addr = addr;
                self.free[pos].len += len;
            }
            (false, false) => self.free.insert(pos, Extent { addr, len }),
        }
    }

    /// Drops the free list (what closing a file does: free space is not
    /// persisted), returning how many bytes were abandoned.
    pub fn abandon_free_space(&mut self) -> u64 {
        let lost = self.free_bytes();
        self.free.clear();
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_allocation_is_sequential() {
        let mut a = Allocator::new(64);
        assert_eq!(a.alloc(100).unwrap(), 64);
        assert_eq!(a.alloc(28).unwrap(), 164);
        assert_eq!(a.eof(), 192);
    }

    #[test]
    fn zero_alloc_is_an_error() {
        let mut a = Allocator::new(0);
        assert!(a.alloc(0).is_err());
    }

    #[test]
    fn freed_space_is_reused_first_fit() {
        let mut a = Allocator::new(0);
        let x = a.alloc(100).unwrap();
        let _y = a.alloc(100).unwrap();
        a.free(x, 100);
        // A smaller allocation fits in the hole.
        assert_eq!(a.alloc(40).unwrap(), 0);
        assert_eq!(a.alloc(60).unwrap(), 40);
        // Hole exhausted; next goes to EOF.
        assert_eq!(a.alloc(1).unwrap(), 200);
    }

    #[test]
    fn free_tail_shrinks_eof() {
        let mut a = Allocator::new(0);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(50).unwrap();
        a.free(y, 50);
        assert_eq!(a.eof(), 100);
        a.free(x, 100);
        assert_eq!(a.eof(), 0);
        assert_eq!(a.free_bytes(), 0);
    }

    #[test]
    fn free_tail_cascades_through_free_list() {
        let mut a = Allocator::new(0);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        let z = a.alloc(10).unwrap();
        a.free(y, 10); // middle hole
        a.free(z, 10); // tail: shrink to 10, then cascade over y's hole
        assert_eq!(a.eof(), 10);
        a.free(x, 10);
        assert_eq!(a.eof(), 0);
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut a = Allocator::new(0);
        let w = a.alloc(10).unwrap();
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        let _hold = a.alloc(10).unwrap(); // keeps EOF above the holes
        a.free(w, 10);
        a.free(y, 10);
        assert_eq!(a.free_extent_count(), 2);
        a.free(x, 10); // bridges both
        assert_eq!(a.free_extent_count(), 1);
        assert_eq!(a.free_bytes(), 30);
        // The single 30-byte hole satisfies a 30-byte request at addr 0.
        assert_eq!(a.alloc(30).unwrap(), 0);
    }

    #[test]
    fn abandon_free_space_loses_holes() {
        let mut a = Allocator::new(0);
        let x = a.alloc(100).unwrap();
        let _y = a.alloc(10).unwrap();
        a.free(x, 100);
        assert_eq!(a.abandon_free_space(), 100);
        assert_eq!(a.free_bytes(), 0);
        // Space is gone: new allocations extend EOF.
        assert_eq!(a.alloc(10).unwrap(), 110);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Allocations never overlap each other, live or freed-then-reused.
        #[test]
        fn allocations_never_overlap(ops in prop::collection::vec((1u64..200, prop::bool::ANY), 1..60)) {
            let mut a = Allocator::new(0);
            let mut live: Vec<(u64, u64)> = Vec::new();
            for (len, do_free) in ops {
                if do_free && !live.is_empty() {
                    let (addr, len) = live.swap_remove(live.len() / 2);
                    a.free(addr, len);
                } else {
                    let addr = a.alloc(len).unwrap();
                    for &(la, ll) in &live {
                        prop_assert!(addr + len <= la || la + ll <= addr,
                            "overlap: new [{},{}) vs live [{},{})", addr, addr+len, la, la+ll);
                    }
                    prop_assert!(addr + len <= a.eof());
                    live.push((addr, len));
                }
            }
        }

        /// free_bytes + live bytes == eof (no space leaks inside the file).
        #[test]
        fn space_is_conserved(ops in prop::collection::vec((1u64..200, prop::bool::ANY), 1..60)) {
            let mut a = Allocator::new(0);
            let mut live: Vec<(u64, u64)> = Vec::new();
            for (len, do_free) in ops {
                if do_free && !live.is_empty() {
                    let (addr, len) = live.pop().unwrap();
                    a.free(addr, len);
                } else {
                    let addr = a.alloc(len).unwrap();
                    live.push((addr, len));
                }
                let live_bytes: u64 = live.iter().map(|&(_, l)| l).sum();
                prop_assert_eq!(live_bytes + a.free_bytes(), a.eof());
            }
        }
    }
}
