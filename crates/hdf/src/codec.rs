//! Little-endian binary encoding helpers for on-storage metadata structures.
//!
//! All format metadata (superblock, object headers, group tables, chunk
//! indexes, heap headers) is encoded with these helpers so the byte layout
//! is explicit and stable — the analyzer's address-region views depend on
//! metadata structures having well-defined extents.

use crate::error::{HdfError, Result};

/// Append-only encoder.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed (u16) UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        debug_assert!(v.len() <= u16::MAX as usize, "name too long");
        self.u16(v.len() as u16);
        self.buf.extend_from_slice(v.as_bytes());
        self
    }

    /// Pads with zeros up to `len` total bytes (no-op if already longer).
    pub fn pad_to(&mut self, len: usize) -> &mut Self {
        if self.buf.len() < len {
            self.buf.resize(len, 0);
        }
        self
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based decoder over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decoder over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(HdfError::Corrupt(format!(
                "decode past end: need {n} bytes at {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a length-prefixed (u16) UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| HdfError::Corrupt("invalid UTF-8 in name".into()))
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut e = Encoder::new();
        e.u8(0xAB)
            .u16(0xCDEF)
            .u32(0xDEADBEEF)
            .u64(0x0123456789ABCDEF)
            .str("hello")
            .bytes(&[1, 2, 3]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert_eq!(d.u16().unwrap(), 0xCDEF);
        assert_eq!(d.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.u64().unwrap(), 0x0123456789ABCDEF);
        assert_eq!(d.str().unwrap(), "hello");
        assert_eq!(d.bytes(3).unwrap(), &[1, 2, 3]);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn pad_to_extends_but_never_shrinks() {
        let mut e = Encoder::new();
        e.u32(7).pad_to(16);
        assert_eq!(e.len(), 16);
        e.pad_to(8);
        assert_eq!(e.len(), 16);
    }

    #[test]
    fn decode_past_end_is_corrupt_error() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(d.u32(), Err(HdfError::Corrupt(_))));
        // Failed reads do not advance the cursor.
        assert_eq!(d.u16().unwrap(), 0x0201);
    }

    #[test]
    fn invalid_utf8_is_corrupt_error() {
        let mut e = Encoder::new();
        e.u16(2).bytes(&[0xFF, 0xFE]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert!(matches!(d.str(), Err(HdfError::Corrupt(_))));
    }

    #[test]
    fn position_tracking() {
        let mut e = Encoder::new();
        assert!(e.is_empty());
        e.u64(0);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.position(), 0);
        d.u32().unwrap();
        assert_eq!(d.position(), 4);
        assert_eq!(d.remaining(), 4);
    }
}
