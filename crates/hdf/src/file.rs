//! File handles and the shared file core.
//!
//! [`H5File`] owns a [`RawFile`] (driver + allocator), the global heap, the
//! header cache, and the observation plumbing (VOL [`HookSet`], shared
//! context, clock). [`crate::Group`] and [`crate::Dataset`]
//! handles share the core through an `Arc<Mutex<…>>`, mirroring HDF5 where
//! every object handle operates on the containing file's state.
//!
//! The header cache is read-cached but **write-through**: header updates go
//! to storage immediately, so metadata churn is visible to the VFD profiler
//! the way it is in HDF5 traces.

use crate::error::{HdfError, Result};
use crate::group::Group;
use crate::heap::{GlobalHeap, DEFAULT_HEAP_BLOCK};
use crate::hooks::HookSet;
use crate::journal::{self, Durability, RecoveryReport, DEFAULT_JOURNAL_CAPACITY};
use crate::meta::{ObjectHeader, Superblock, HEADER_BLOCK_SIZE, SUPERBLOCK_REGION};
use crate::raw::RawFile;
use dayu_trace::context::SharedContext;
use dayu_trace::ids::FileKey;
use dayu_trace::time::{Clock, RealClock, Timestamp};
use dayu_trace::vfd::AccessType;
use dayu_vfd::{IoEngineConfig, Vfd};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration for creating or opening a file.
#[derive(Clone)]
pub struct FileOptions {
    /// VOL hooks observing object-level events.
    pub hooks: HookSet,
    /// The VOL→VFD context channel; the format publishes the current object
    /// here so a profiling driver can attribute low-level I/O.
    pub context: SharedContext,
    /// Time source for VOL event stamps.
    pub clock: Arc<dyn Clock>,
    /// Global heap block size for variable-length payloads.
    pub heap_block_size: u64,
    /// Default chunk cache capacity per dataset, in bytes.
    pub chunk_cache_bytes: u64,
    /// Metadata durability contract. `Journal` stages metadata writes and
    /// commits them through the write-ahead journal on flush/close, so a
    /// crash never leaves half-applied metadata. Only consulted at create
    /// time: an existing file's superblock records whether it carries a
    /// journal, and that property wins on open.
    pub durability: Durability,
    /// Capacity of the journal region reserved at create time (journaled
    /// files only); the journal relocates itself if a commit outgrows it.
    pub journal_capacity: u64,
    /// How chunk sweeps dispatch their raw-data I/O: one scalar op per
    /// extent, or planned submission batches with coalescing and readahead.
    pub io_engine: IoEngineConfig,
}

impl Default for FileOptions {
    fn default() -> Self {
        Self {
            hooks: HookSet::none(),
            context: SharedContext::new(),
            clock: Arc::new(RealClock::new()),
            heap_block_size: DEFAULT_HEAP_BLOCK,
            chunk_cache_bytes: crate::chunk::DEFAULT_CACHE_BYTES,
            durability: Durability::WriteThrough,
            journal_capacity: DEFAULT_JOURNAL_CAPACITY,
            io_engine: IoEngineConfig::default(),
        }
    }
}

impl FileOptions {
    /// Selects the durability contract for files this options set creates.
    pub fn with_durability(mut self, d: Durability) -> Self {
        self.durability = d;
        self
    }

    /// Selects the I/O engine for chunk-sweep dispatch.
    pub fn with_io_engine(mut self, engine: IoEngineConfig) -> Self {
        self.io_engine = engine;
        self
    }
}

impl std::fmt::Debug for FileOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileOptions")
            .field("hooks", &self.hooks)
            .field("heap_block_size", &self.heap_block_size)
            .field("chunk_cache_bytes", &self.chunk_cache_bytes)
            .field("durability", &self.durability)
            .field("journal_capacity", &self.journal_capacity)
            .field("io_engine", &self.io_engine)
            .finish()
    }
}

/// Shared mutable state of one open file.
pub(crate) struct FileCore {
    pub(crate) name: FileKey,
    pub(crate) rf: RawFile,
    pub(crate) heap: GlobalHeap,
    pub(crate) hooks: HookSet,
    pub(crate) ctx: SharedContext,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) chunk_cache_bytes: u64,
    pub(crate) io_engine: IoEngineConfig,
    header_cache: HashMap<u64, ObjectHeader>,
    root_addr: u64,
    open: bool,
    /// Last committed superblock generation.
    generation: u64,
    /// Journal region location (0 = write-through file).
    journal_addr: u64,
    journal_cap: u64,
    /// Clean flag of the newest durable superblock slot.
    clean_on_device: bool,
    /// `rf.write_count()` as of the last superblock write (or open). A
    /// flush with no writes since is a no-op — pure readers do not
    /// rewrite the superblock and so never appear as writers in FTGs.
    persisted_writes: u64,
}

impl FileCore {
    pub(crate) fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Address of the root group's object header.
    pub(crate) fn root_header_addr(&self) -> u64 {
        self.root_addr
    }

    pub(crate) fn check_open(&self) -> Result<()> {
        if self.open {
            Ok(())
        } else {
            Err(HdfError::Closed)
        }
    }

    /// Loads an object header, serving repeats from the cache (a minimal
    /// metadata cache, like HDF5's).
    pub(crate) fn load_header(&mut self, addr: u64) -> Result<ObjectHeader> {
        if let Some(h) = self.header_cache.get(&addr) {
            return Ok(h.clone());
        }
        let buf = self
            .rf
            .read_at(addr, HEADER_BLOCK_SIZE, AccessType::Metadata)?;
        let h = ObjectHeader::decode(&buf)?;
        self.header_cache.insert(addr, h.clone());
        Ok(h)
    }

    /// Writes a header through to storage and updates the cache.
    pub(crate) fn store_header(&mut self, addr: u64, h: &ObjectHeader) -> Result<()> {
        let bytes = h.encode()?;
        self.rf.write_at(addr, &bytes, AccessType::Metadata)?;
        self.header_cache.insert(addr, h.clone());
        Ok(())
    }

    /// Allocates a header block and writes `h` into it.
    pub(crate) fn create_header(&mut self, h: &ObjectHeader) -> Result<u64> {
        let addr = self.rf.alloc(HEADER_BLOCK_SIZE)?;
        self.store_header(addr, h)?;
        Ok(addr)
    }

    fn superblock_for(&self, generation: u64, clean: bool) -> Superblock {
        Superblock {
            root_addr: self.root_addr,
            eof: self.rf.eof(),
            generation,
            clean,
            journal_addr: self.journal_addr,
            journal_cap: self.journal_cap,
        }
    }

    /// Writes superblock `sb` into the slot its generation selects and
    /// advances the dirty watermark.
    fn write_superblock_slot(&mut self, sb: Superblock) -> Result<()> {
        self.rf.write_direct(
            Superblock::slot_offset(sb.generation),
            &sb.encode(),
            AccessType::Metadata,
        )?;
        self.generation = sb.generation;
        self.clean_on_device = sb.clean;
        self.persisted_writes = self.rf.write_count();
        Ok(())
    }

    /// Makes the session's writes durable. A no-op when nothing changed
    /// since the last superblock write and the clean flag already matches
    /// (the dirty-flag contract asserted by `clean_flush_is_a_noop`).
    pub(crate) fn persist(&mut self, clean: bool) -> Result<()> {
        if self.rf.write_count() == self.persisted_writes && clean == self.clean_on_device {
            return Ok(());
        }
        if self.rf.journaling() {
            self.commit(clean)
        } else {
            let sb = self.superblock_for(self.generation + 1, clean);
            self.write_superblock_slot(sb)
        }
    }

    /// Journaled commit: seals the staged metadata as one epoch, then
    /// applies it in place. Ordering (each `flush` is a barrier):
    ///
    /// 1. journal frames for every staged block — `flush` (raw data and
    ///    frames durable);
    /// 2. commit marker — `flush` (the epoch is now sealed: recovery
    ///    rolls it forward);
    /// 3. staged blocks applied in place, then the generation-`epoch`
    ///    superblock slot — `flush`. A crash inside step 3 is repaired
    ///    from the sealed journal, so the two need no barrier between.
    fn commit(&mut self, clean: bool) -> Result<()> {
        let staged = self.rf.take_overlay();
        let needed: u64 = staged.iter().map(|(_, d)| d.len() as u64 + 32).sum::<u64>() + 64;
        if needed > self.journal_cap {
            self.relocate_journal(needed)?;
        }
        self.rf.apply_pending_frees();
        let epoch = self.generation + 1;
        let mut frames = Vec::with_capacity(needed as usize);
        for (addr, data) in &staged {
            frames.extend_from_slice(&journal::encode_block_frame(epoch, *addr, data));
        }
        self.rf
            .write_direct(self.journal_addr, &frames, AccessType::Metadata)?;
        self.rf.flush()?;
        let marker = journal::encode_commit_marker(
            epoch,
            self.root_addr,
            self.rf.eof(),
            self.journal_addr,
            self.journal_cap,
        );
        self.rf.write_direct(
            self.journal_addr + frames.len() as u64,
            &marker,
            AccessType::Metadata,
        )?;
        self.rf.flush()?;
        for (addr, data) in &staged {
            self.rf.write_direct(*addr, data, AccessType::Metadata)?;
        }
        self.write_superblock_slot(self.superblock_for(epoch, clean))?;
        self.rf.flush()?;
        Ok(())
    }

    /// Moves the journal to a larger region via a marker-only epoch: the
    /// relocation commits (in the old region) before any frame is written
    /// to the new one, so the new region is only ever referenced by a
    /// durable superblock.
    fn relocate_journal(&mut self, needed: u64) -> Result<()> {
        let new_cap = needed
            .checked_next_power_of_two()
            .unwrap_or(needed)
            .max(self.journal_cap);
        let new_addr = self.rf.alloc(new_cap)?;
        self.rf.ensure_eof(new_addr + new_cap)?;
        let epoch = self.generation + 1;
        let (old_addr, old_cap) = (self.journal_addr, self.journal_cap);
        self.journal_addr = new_addr;
        self.journal_cap = new_cap;
        let marker =
            journal::encode_commit_marker(epoch, self.root_addr, self.rf.eof(), new_addr, new_cap);
        self.rf.flush()?;
        self.rf
            .write_direct(old_addr, &marker, AccessType::Metadata)?;
        self.rf.flush()?;
        self.write_superblock_slot(self.superblock_for(epoch, false))?;
        self.rf.flush()?;
        // The old region stays reserved until the next commit applies
        // the deferred free, so a crash rolls back safely.
        self.rf.free(old_addr, old_cap);
        Ok(())
    }
}

/// An open format file.
pub struct H5File {
    pub(crate) core: Arc<Mutex<FileCore>>,
}

impl H5File {
    /// Creates a new file on `vfd` (existing contents are ignored and
    /// overwritten from address 0).
    pub fn create<V: Vfd + 'static>(vfd: V, name: &str, opts: FileOptions) -> Result<H5File> {
        let journaled = opts.durability == Durability::Journal;
        let journal_capacity = opts.journal_capacity.max(4096);
        let mut core = FileCore {
            name: FileKey::new(name),
            rf: RawFile::new(Box::new(vfd), SUPERBLOCK_REGION),
            heap: GlobalHeap::new(opts.heap_block_size),
            hooks: opts.hooks,
            ctx: opts.context,
            clock: opts.clock,
            chunk_cache_bytes: opts.chunk_cache_bytes,
            io_engine: opts.io_engine,
            header_cache: HashMap::new(),
            root_addr: 0,
            open: true,
            generation: 0,
            journal_addr: 0,
            journal_cap: 0,
            clean_on_device: false,
            persisted_writes: 0,
        };
        // Root group header.
        let root = ObjectHeader::new_group();
        let root_addr = core.create_header(&root)?;
        core.root_addr = root_addr;
        if journaled {
            let addr = core.rf.alloc(journal_capacity)?;
            core.rf.ensure_eof(addr + journal_capacity)?;
            core.journal_addr = addr;
            core.journal_cap = journal_capacity;
        }
        // Generation 1 lands in slot B, so creation costs one superblock
        // write; slot A stays vacant (all zeros) until generation 2.
        let sb = core.superblock_for(1, true);
        core.write_superblock_slot(sb)?;
        if journaled {
            core.rf.flush()?;
            core.rf.set_journaling(true);
        }
        let now = core.now();
        let name_key = core.name.clone();
        core.hooks.each(|h| h.file_opened(&name_key, now));
        Ok(H5File {
            core: Arc::new(Mutex::new(core)),
        })
    }

    /// Opens an existing file on `vfd`, discarding the recovery report.
    pub fn open<V: Vfd + 'static>(vfd: V, name: &str, opts: FileOptions) -> Result<H5File> {
        Self::open_reporting(vfd, name, opts).map(|(f, _)| f)
    }

    /// Opens an existing file on `vfd` and reports what recovery found.
    ///
    /// A journaled file that missed its clean shutdown is repaired here:
    /// a sealed epoch is rolled forward, a torn one discarded (see
    /// [`journal::recover_image`]), and the repaired image is written
    /// back before the file is used. For write-through files the report
    /// only states whether the shutdown was clean.
    pub fn open_reporting<V: Vfd + 'static>(
        vfd: V,
        name: &str,
        opts: FileOptions,
    ) -> Result<(H5File, RecoveryReport)> {
        let mut rf = RawFile::new(Box::new(vfd), 0);
        let region = rf.read_at(0, SUPERBLOCK_REGION, AccessType::Metadata)?;
        let mut sb = Superblock::decode_region(&region)?;
        let report = if sb.journal_addr != 0 {
            let len = rf.device_eof();
            let mut image = rf.read_at(0, len, AccessType::Metadata)?;
            let (report, modified) = journal::recover_bytes(&mut image)?;
            if modified {
                rf.write_direct(0, &image, AccessType::Metadata)?;
                rf.truncate(image.len() as u64)?;
                rf.flush()?;
            }
            sb = Superblock::decode_region(&image)?;
            report
        } else {
            RecoveryReport {
                generation: sb.generation,
                was_clean: sb.clean,
                ..RecoveryReport::default()
            }
        };
        let mut core = FileCore {
            name: FileKey::new(name),
            rf: RawFile::new(Box::new(NullVfd), 0), // replaced below
            heap: GlobalHeap::new(opts.heap_block_size),
            hooks: opts.hooks,
            ctx: opts.context,
            clock: opts.clock,
            chunk_cache_bytes: opts.chunk_cache_bytes,
            io_engine: opts.io_engine,
            header_cache: HashMap::new(),
            root_addr: sb.root_addr,
            open: true,
            generation: sb.generation,
            journal_addr: sb.journal_addr,
            journal_cap: sb.journal_cap,
            clean_on_device: sb.clean,
            persisted_writes: 0,
        };
        // Rebuild the raw file with allocation starting at the persisted EOF.
        core.rf = rf.restart_at(sb.eof);
        if sb.journal_addr != 0 {
            core.rf.set_journaling(true);
        }
        let now = core.now();
        let name_key = core.name.clone();
        core.hooks.each(|h| h.file_opened(&name_key, now));
        Ok((
            H5File {
                core: Arc::new(Mutex::new(core)),
            },
            report,
        ))
    }

    /// The file's name key.
    pub fn name(&self) -> FileKey {
        self.core.lock().name.clone()
    }

    /// The root group.
    pub fn root(&self) -> Group {
        Group::root(self.core.clone())
    }

    /// Flushes the heap's current block and the superblock without
    /// closing. On a journaled file this commits one epoch; either way a
    /// flush with nothing dirty writes nothing.
    pub fn flush(&self) -> Result<()> {
        let mut core = self.core.lock();
        core.check_open()?;
        let FileCore { rf, heap, .. } = &mut *core;
        heap.flush(rf)?;
        // Mid-session durability point: the file stays marked in-flight
        // until close, so a later crash is still detected on open.
        core.persist(false)?;
        core.rf.flush()?;
        Ok(())
    }

    /// Closes the file: flushes the heap, commits/writes the clean
    /// superblock, truncates to EOF, closes the driver and fires the
    /// `file_closed` hook. Dataset handles must be closed first (their
    /// chunk caches flush on their close).
    pub fn close(&self) -> Result<()> {
        let mut core = self.core.lock();
        core.check_open()?;
        {
            let FileCore { rf, heap, .. } = &mut *core;
            heap.flush(rf)?;
        }
        core.persist(true)?;
        core.rf.close()?;
        core.open = false;
        let now = core.now();
        let name_key = core.name.clone();
        core.hooks.each(|h| h.file_closed(&name_key, now));
        Ok(())
    }

    /// Current end-of-file (allocated bytes).
    pub fn eof(&self) -> u64 {
        self.core.lock().rf.eof()
    }

    /// Bytes currently on the internal free list (fragmentation metric).
    pub fn free_space(&self) -> u64 {
        self.core.lock().rf.free_bytes()
    }
}

impl RawFile {
    /// Consumes this raw file and returns one whose allocator starts at
    /// `eof` (used when opening an existing file whose superblock records
    /// the persisted end-of-file).
    fn restart_at(self, eof: u64) -> RawFile {
        RawFile::new(self.into_vfd(), eof)
    }
}

/// Inert driver used briefly during two-phase open.
struct NullVfd;

impl Vfd for NullVfd {
    fn read(&mut self, _: u64, _: &mut [u8], _: AccessType) -> dayu_vfd::Result<()> {
        Err(dayu_vfd::VfdError::Closed)
    }
    fn write(&mut self, _: u64, _: &[u8], _: AccessType) -> dayu_vfd::Result<()> {
        Err(dayu_vfd::VfdError::Closed)
    }
    fn eof(&self) -> u64 {
        0
    }
    fn truncate(&mut self, _: u64) -> dayu_vfd::Result<()> {
        Err(dayu_vfd::VfdError::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetBuilder;
    use dayu_trace::vol::DataType;
    use dayu_vfd::{CountingVfd, MemFs, MemVfd, OpCounters};

    #[test]
    fn create_close_reopen() {
        let fs = MemFs::new();
        let f = H5File::create(fs.create("a.h5"), "a.h5", FileOptions::default()).unwrap();
        assert_eq!(f.name().as_str(), "a.h5");
        assert!(f.eof() >= SUPERBLOCK_REGION + HEADER_BLOCK_SIZE);
        f.close().unwrap();

        let f2 = H5File::open(fs.open("a.h5"), "a.h5", FileOptions::default()).unwrap();
        let root = f2.root();
        assert_eq!(root.list().unwrap().len(), 0);
        f2.close().unwrap();
    }

    #[test]
    fn clean_flush_is_a_noop() {
        let counters = OpCounters::shared();
        let vfd = CountingVfd::new(MemVfd::new(), counters.clone());
        let f = H5File::create(vfd, "c.h5", FileOptions::default()).unwrap();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[4]))
            .unwrap();
        ds.write_u64s(&[1, 2, 3, 4]).unwrap();
        f.flush().unwrap();
        let after_first = counters.writes.load(std::sync::atomic::Ordering::Relaxed);
        // Nothing changed since: the second flush must not write at all.
        f.flush().unwrap();
        assert_eq!(
            counters.writes.load(std::sync::atomic::Ordering::Relaxed),
            after_first,
            "clean flush must not rewrite the superblock"
        );
        f.close().unwrap();
    }

    #[test]
    fn journaled_file_round_trips() {
        let fs = MemFs::new();
        let opts = FileOptions::default().with_durability(Durability::Journal);
        let f = H5File::create(fs.create("j.h5"), "j.h5", opts.clone()).unwrap();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[4]))
            .unwrap();
        ds.write_u64s(&[9, 8, 7, 6]).unwrap();
        f.close().unwrap();

        let (f2, report) = H5File::open_reporting(fs.open("j.h5"), "j.h5", opts).unwrap();
        assert!(report.was_clean, "clean close: no recovery expected");
        let mut ds = f2.root().open_dataset("d").unwrap();
        assert_eq!(ds.read_u64s().unwrap(), vec![9, 8, 7, 6]);
        f2.close().unwrap();
    }

    #[test]
    fn torn_commit_rolls_back_to_last_committed_state() {
        let fs = MemFs::new();
        let opts = FileOptions::default().with_durability(Durability::Journal);
        let f = H5File::create(fs.create("t.h5"), "t.h5", opts.clone()).unwrap();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[2]))
            .unwrap();
        ds.write_u64s(&[5, 6]).unwrap();
        f.close().unwrap();

        // Simulate a crash mid-epoch: a torn next-epoch frame in the
        // journal and an uncommitted tail past the committed EOF — the
        // committed state must survive the reopen.
        {
            let image = fs.snapshot("t.h5").expect("image exists");
            let sb = Superblock::decode_region(&image).unwrap();
            let frame = journal::encode_block_frame(sb.generation + 1, 128, &[0xAB; 64]);
            let torn = &frame[..frame.len() / 2];
            let mut v = fs.open("t.h5");
            v.write(sb.journal_addr, torn, AccessType::Metadata)
                .unwrap();
            v.write(image.len() as u64, &[0xCD; 100], AccessType::RawData)
                .unwrap();
        }
        let (f2, report) = H5File::open_reporting(fs.open("t.h5"), "t.h5", opts).unwrap();
        assert!(report.performed_recovery());
        let mut ds = f2.root().open_dataset("d").unwrap();
        assert_eq!(ds.read_u64s().unwrap(), vec![5, 6]);
        f2.close().unwrap();
    }

    #[test]
    fn double_close_is_an_error() {
        let f = H5File::create(MemVfd::new(), "x", FileOptions::default()).unwrap();
        f.close().unwrap();
        assert!(matches!(f.close(), Err(HdfError::Closed)));
        assert!(matches!(f.flush(), Err(HdfError::Closed)));
    }

    #[test]
    fn open_garbage_is_corrupt() {
        let v = MemVfd::with_bytes(vec![0u8; 128]);
        assert!(matches!(
            H5File::open(v, "bad", FileOptions::default()),
            Err(HdfError::Corrupt(_))
        ));
    }

    #[test]
    fn open_truncated_file_is_error() {
        let v = MemVfd::with_bytes(vec![0u8; 10]);
        assert!(H5File::open(v, "tiny", FileOptions::default()).is_err());
    }
}
