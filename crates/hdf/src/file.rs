//! File handles and the shared file core.
//!
//! [`H5File`] owns a [`RawFile`] (driver + allocator), the global heap, the
//! header cache, and the observation plumbing (VOL [`HookSet`], shared
//! context, clock). [`crate::Group`] and [`crate::Dataset`]
//! handles share the core through an `Arc<Mutex<…>>`, mirroring HDF5 where
//! every object handle operates on the containing file's state.
//!
//! The header cache is read-cached but **write-through**: header updates go
//! to storage immediately, so metadata churn is visible to the VFD profiler
//! the way it is in HDF5 traces.

use crate::error::{HdfError, Result};
use crate::group::Group;
use crate::heap::{GlobalHeap, DEFAULT_HEAP_BLOCK};
use crate::hooks::HookSet;
use crate::meta::{ObjectHeader, Superblock, HEADER_BLOCK_SIZE, SUPERBLOCK_SIZE};
use crate::raw::RawFile;
use dayu_trace::context::SharedContext;
use dayu_trace::ids::FileKey;
use dayu_trace::time::{Clock, RealClock, Timestamp};
use dayu_trace::vfd::AccessType;
use dayu_vfd::Vfd;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration for creating or opening a file.
#[derive(Clone)]
pub struct FileOptions {
    /// VOL hooks observing object-level events.
    pub hooks: HookSet,
    /// The VOL→VFD context channel; the format publishes the current object
    /// here so a profiling driver can attribute low-level I/O.
    pub context: SharedContext,
    /// Time source for VOL event stamps.
    pub clock: Arc<dyn Clock>,
    /// Global heap block size for variable-length payloads.
    pub heap_block_size: u64,
    /// Default chunk cache capacity per dataset, in bytes.
    pub chunk_cache_bytes: u64,
}

impl Default for FileOptions {
    fn default() -> Self {
        Self {
            hooks: HookSet::none(),
            context: SharedContext::new(),
            clock: Arc::new(RealClock::new()),
            heap_block_size: DEFAULT_HEAP_BLOCK,
            chunk_cache_bytes: crate::chunk::DEFAULT_CACHE_BYTES,
        }
    }
}

impl std::fmt::Debug for FileOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileOptions")
            .field("hooks", &self.hooks)
            .field("heap_block_size", &self.heap_block_size)
            .field("chunk_cache_bytes", &self.chunk_cache_bytes)
            .finish()
    }
}

/// Shared mutable state of one open file.
pub(crate) struct FileCore {
    pub(crate) name: FileKey,
    pub(crate) rf: RawFile,
    pub(crate) heap: GlobalHeap,
    pub(crate) hooks: HookSet,
    pub(crate) ctx: SharedContext,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) chunk_cache_bytes: u64,
    header_cache: HashMap<u64, ObjectHeader>,
    root_addr: u64,
    open: bool,
    /// `rf.write_count()` when the file was opened; if unchanged at close,
    /// the session was read-only and the superblock is not rewritten (so
    /// pure readers do not appear as writers in FTGs).
    writes_at_open: u64,
}

impl FileCore {
    pub(crate) fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Address of the root group's object header.
    pub(crate) fn root_header_addr(&self) -> u64 {
        self.root_addr
    }

    pub(crate) fn check_open(&self) -> Result<()> {
        if self.open {
            Ok(())
        } else {
            Err(HdfError::Closed)
        }
    }

    /// Loads an object header, serving repeats from the cache (a minimal
    /// metadata cache, like HDF5's).
    pub(crate) fn load_header(&mut self, addr: u64) -> Result<ObjectHeader> {
        if let Some(h) = self.header_cache.get(&addr) {
            return Ok(h.clone());
        }
        let buf = self
            .rf
            .read_at(addr, HEADER_BLOCK_SIZE, AccessType::Metadata)?;
        let h = ObjectHeader::decode(&buf)?;
        self.header_cache.insert(addr, h.clone());
        Ok(h)
    }

    /// Writes a header through to storage and updates the cache.
    pub(crate) fn store_header(&mut self, addr: u64, h: &ObjectHeader) -> Result<()> {
        let bytes = h.encode()?;
        self.rf.write_at(addr, &bytes, AccessType::Metadata)?;
        self.header_cache.insert(addr, h.clone());
        Ok(())
    }

    /// Allocates a header block and writes `h` into it.
    pub(crate) fn create_header(&mut self, h: &ObjectHeader) -> Result<u64> {
        let addr = self.rf.alloc(HEADER_BLOCK_SIZE)?;
        self.store_header(addr, h)?;
        Ok(addr)
    }

    fn write_superblock(&mut self) -> Result<()> {
        let sb = Superblock {
            root_addr: self.root_addr,
            eof: self.rf.eof(),
        };
        self.rf.write_at(0, &sb.encode(), AccessType::Metadata)?;
        Ok(())
    }
}

/// An open format file.
pub struct H5File {
    pub(crate) core: Arc<Mutex<FileCore>>,
}

impl H5File {
    /// Creates a new file on `vfd` (existing contents are ignored and
    /// overwritten from address 0).
    pub fn create<V: Vfd + 'static>(vfd: V, name: &str, opts: FileOptions) -> Result<H5File> {
        let mut core = FileCore {
            name: FileKey::new(name),
            rf: RawFile::new(Box::new(vfd), SUPERBLOCK_SIZE),
            heap: GlobalHeap::new(opts.heap_block_size),
            hooks: opts.hooks,
            ctx: opts.context,
            clock: opts.clock,
            chunk_cache_bytes: opts.chunk_cache_bytes,
            header_cache: HashMap::new(),
            root_addr: 0,
            open: true,
            writes_at_open: 0,
        };
        // Root group header.
        let root = ObjectHeader::new_group();
        let root_addr = core.create_header(&root)?;
        core.root_addr = root_addr;
        core.write_superblock()?;
        let now = core.now();
        let name_key = core.name.clone();
        core.hooks.each(|h| h.file_opened(&name_key, now));
        Ok(H5File {
            core: Arc::new(Mutex::new(core)),
        })
    }

    /// Opens an existing file on `vfd`.
    pub fn open<V: Vfd + 'static>(vfd: V, name: &str, opts: FileOptions) -> Result<H5File> {
        let mut rf = RawFile::new(Box::new(vfd), SUPERBLOCK_SIZE);
        let sb_bytes = rf.read_at(0, SUPERBLOCK_SIZE, AccessType::Metadata)?;
        let sb = Superblock::decode(&sb_bytes)?;
        let mut core = FileCore {
            name: FileKey::new(name),
            rf: RawFile::new(Box::new(NullVfd), 0), // replaced below
            heap: GlobalHeap::new(opts.heap_block_size),
            hooks: opts.hooks,
            ctx: opts.context,
            clock: opts.clock,
            chunk_cache_bytes: opts.chunk_cache_bytes,
            header_cache: HashMap::new(),
            root_addr: sb.root_addr,
            open: true,
            writes_at_open: 0,
        };
        // Rebuild the raw file with allocation starting at the persisted EOF.
        core.rf = rf.restart_at(sb.eof);
        let now = core.now();
        let name_key = core.name.clone();
        core.hooks.each(|h| h.file_opened(&name_key, now));
        Ok(H5File {
            core: Arc::new(Mutex::new(core)),
        })
    }

    /// The file's name key.
    pub fn name(&self) -> FileKey {
        self.core.lock().name.clone()
    }

    /// The root group.
    pub fn root(&self) -> Group {
        Group::root(self.core.clone())
    }

    /// Flushes the heap's current block and the superblock without closing.
    pub fn flush(&self) -> Result<()> {
        let mut core = self.core.lock();
        core.check_open()?;
        let FileCore { rf, heap, .. } = &mut *core;
        heap.flush(rf)?;
        if core.rf.write_count() > core.writes_at_open {
            core.write_superblock()?;
        }
        core.rf.flush()?;
        Ok(())
    }

    /// Closes the file: flushes the heap and superblock, truncates to EOF,
    /// closes the driver and fires the `file_closed` hook. Dataset handles
    /// must be closed first (their chunk caches flush on their close).
    pub fn close(&self) -> Result<()> {
        let mut core = self.core.lock();
        core.check_open()?;
        {
            let FileCore { rf, heap, .. } = &mut *core;
            heap.flush(rf)?;
        }
        if core.rf.write_count() > core.writes_at_open {
            core.write_superblock()?;
        }
        core.rf.close()?;
        core.open = false;
        let now = core.now();
        let name_key = core.name.clone();
        core.hooks.each(|h| h.file_closed(&name_key, now));
        Ok(())
    }

    /// Current end-of-file (allocated bytes).
    pub fn eof(&self) -> u64 {
        self.core.lock().rf.eof()
    }

    /// Bytes currently on the internal free list (fragmentation metric).
    pub fn free_space(&self) -> u64 {
        self.core.lock().rf.free_bytes()
    }
}

impl RawFile {
    /// Consumes this raw file and returns one whose allocator starts at
    /// `eof` (used when opening an existing file whose superblock records
    /// the persisted end-of-file).
    fn restart_at(self, eof: u64) -> RawFile {
        RawFile::new(self.into_vfd(), eof)
    }
}

/// Inert driver used briefly during two-phase open.
struct NullVfd;

impl Vfd for NullVfd {
    fn read(&mut self, _: u64, _: &mut [u8], _: AccessType) -> dayu_vfd::Result<()> {
        Err(dayu_vfd::VfdError::Closed)
    }
    fn write(&mut self, _: u64, _: &[u8], _: AccessType) -> dayu_vfd::Result<()> {
        Err(dayu_vfd::VfdError::Closed)
    }
    fn eof(&self) -> u64 {
        0
    }
    fn truncate(&mut self, _: u64) -> dayu_vfd::Result<()> {
        Err(dayu_vfd::VfdError::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_vfd::{MemFs, MemVfd};

    #[test]
    fn create_close_reopen() {
        let fs = MemFs::new();
        let f = H5File::create(fs.create("a.h5"), "a.h5", FileOptions::default()).unwrap();
        assert_eq!(f.name().as_str(), "a.h5");
        assert!(f.eof() >= SUPERBLOCK_SIZE + HEADER_BLOCK_SIZE);
        f.close().unwrap();

        let f2 = H5File::open(fs.open("a.h5"), "a.h5", FileOptions::default()).unwrap();
        let root = f2.root();
        assert_eq!(root.list().unwrap().len(), 0);
        f2.close().unwrap();
    }

    #[test]
    fn double_close_is_an_error() {
        let f = H5File::create(MemVfd::new(), "x", FileOptions::default()).unwrap();
        f.close().unwrap();
        assert!(matches!(f.close(), Err(HdfError::Closed)));
        assert!(matches!(f.flush(), Err(HdfError::Closed)));
    }

    #[test]
    fn open_garbage_is_corrupt() {
        let v = MemVfd::with_bytes(vec![0u8; 128]);
        assert!(matches!(
            H5File::open(v, "bad", FileOptions::default()),
            Err(HdfError::Corrupt(_))
        ));
    }

    #[test]
    fn open_truncated_file_is_error() {
        let v = MemVfd::with_bytes(vec![0u8; 10]);
        assert!(H5File::open(v, "tiny", FileOptions::default()).is_err());
    }
}
