//! Journal-recovery properties. The two contracts the write-ahead journal
//! must hold against arbitrary crash timing:
//!
//! 1. **Replay is idempotent** — recovering a torn image once produces a
//!    stable fixpoint: recovering it again changes nothing and reports a
//!    clean shutdown, so a crash *during recovery* (re-running replay on
//!    the partially repaired image) can never make things worse.
//! 2. **Torn tails never panic** — truncating an image at any byte
//!    boundary, or tearing any single write, yields either a successful
//!    recovery or a typed error; the decoder must survive every prefix.

use dayu_hdf::journal::recover_bytes;
use dayu_hdf::{DataType, DatasetBuilder, Durability, FileOptions, H5File};
use dayu_vfd::{CrashSchedule, CrashVfd, MemFs};
use proptest::prelude::*;

/// Journaled options with a small journal region so images stay compact
/// (the every-prefix sweep below walks each byte of the image).
fn opts() -> FileOptions {
    let mut o = FileOptions::default().with_durability(Durability::Journal);
    o.journal_capacity = 4096;
    o
}

/// Writes `datasets` small committed datasets through a torn-write crash
/// at write-op `crash_at`, returning the torn image (or the complete
/// image when the workload finished before the crash point).
fn torn_image(seed: u64, crash_at: u64, datasets: usize) -> Vec<u8> {
    let fs = MemFs::new();
    let ctrl = CrashSchedule::new(seed)
        .with_crash_at(crash_at)
        .torn()
        .controller_for("prop");
    let vfd = CrashVfd::with_controller(fs.create("p.h5"), ctrl);
    let run = || -> dayu_hdf::Result<()> {
        let f = H5File::create(vfd, "p.h5", opts())?;
        for i in 0..datasets {
            let mut ds = f.root().create_dataset(
                &format!("d{i}"),
                DatasetBuilder::new(DataType::Int { width: 8 }, &[16]),
            )?;
            ds.write_u64s(&[i as u64; 16])?;
            ds.close()?;
            f.flush()?;
        }
        f.close()
    };
    let _ = run(); // crash (or completion) both leave an image to recover
    fs.snapshot("p.h5").unwrap_or_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Recovering a torn image twice is byte-identical to recovering it
    /// once, and the second pass observes a clean shutdown.
    #[test]
    fn replay_is_idempotent(seed in 0u64..1024, crash_at in 1u64..160) {
        let mut image = torn_image(seed, crash_at, 4);
        if image.len() < 64 {
            // Crash predates the first superblock: nothing to recover.
            return Ok(());
        }
        let Ok((first, _)) = recover_bytes(&mut image) else {
            // Torn bootstrap superblock: unrecoverable by design, and a
            // second attempt must say the same.
            let mut again = image.clone();
            prop_assert!(recover_bytes(&mut again).is_err());
            return Ok(());
        };
        let once = image.clone();
        let (second, modified) = recover_bytes(&mut image).unwrap();
        prop_assert_eq!(&image, &once, "second replay must be a no-op");
        prop_assert!(!modified, "second replay reported a write");
        prop_assert!(second.was_clean, "first recovery must leave a clean image");
        prop_assert_eq!(second.replayed_frames, 0);
        let _ = first;
    }

    /// Truncating a journaled image at an arbitrary byte never panics:
    /// recovery either succeeds or returns a typed error.
    #[test]
    fn arbitrary_truncation_never_panics(
        seed in 0u64..1024,
        crash_at in 1u64..160,
        keep_num in 0u64..=1_000,
    ) {
        let full = torn_image(seed, crash_at, 3);
        let keep = (full.len() as u64 * keep_num / 1_000) as usize;
        let mut image = full[..keep].to_vec();
        let _ = recover_bytes(&mut image); // must not panic
        // Whatever recovery produced must itself be a fixpoint.
        if recover_bytes(&mut image.clone()).is_ok() {
            let once = image.clone();
            let _ = recover_bytes(&mut image);
            prop_assert_eq!(image, once);
        }
    }
}

/// Exhaustive variant of the truncation property for one representative
/// image: every prefix length of a committed two-dataset file must decode
/// without panicking.
#[test]
fn every_prefix_of_a_committed_image_recovers_or_errors() {
    let full = torn_image(7, u64::MAX, 2); // never crashes: complete image
    assert!(full.len() > 4096, "expected a journaled image");
    for keep in 0..=full.len() {
        let mut image = full[..keep].to_vec();
        let _ = recover_bytes(&mut image); // must not panic at any prefix
    }
}
