//! # dayu-advisor
//!
//! The optimization guideline engine (Section III-A of the paper). Given the
//! analyzer's findings, it emits concrete recommendations under the four
//! guideline families:
//!
//! 1. **Customized Caching** — prioritize frequently reused data in the
//!    fastest available storage or memory (intra- and inter-task reuse);
//! 2. **Partial File Access** — access only the needed file segments,
//!    leaving unused datasets behind;
//! 3. **Customized Prefetching** — prefetch anticipated inputs to fast/local
//!    storage, delay prefetch under congestion, stage shared data to
//!    node-local storage to cut per-file concurrency;
//! 4. **Data Format Optimization** — contiguous for small or sequentially
//!    read fixed-length data, chunked for random/parallel access and for
//!    variable-length data; consolidate many small datasets.
//!
//! Plus the scheduling moves the paper's evaluation applies: co-scheduling
//! producer/consumer chains, parallelizing data-independent tasks, and
//! staging out disposable data.

use dayu_analyzer::Finding;
use serde::{Deserialize, Serialize};

/// Which Section III-A guideline family a recommendation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Guideline {
    /// III-A.1.
    CustomizedCaching,
    /// III-A.2.
    PartialFileAccess,
    /// III-A.3.
    CustomizedPrefetching,
    /// III-A.4.
    DataFormatOptimization,
    /// Scheduling moves used in the evaluation (co-scheduling, task
    /// parallelization, stage-out).
    Scheduling,
}

/// The concrete action recommended.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Cache the target in memory or the fastest node-local tier.
    CacheInFastTier {
        /// File (or dataset label) to cache.
        target: String,
    },
    /// Read only the needed datasets; skip the named unused one.
    SkipUnusedDataset {
        /// Dataset label (`file:path`).
        dataset: String,
    },
    /// Prefetch the file to node-local storage before its consumer starts.
    PrefetchToNodeLocal {
        /// The file.
        file: String,
        /// Delay the prefetch until shortly before first use (reduces
        /// congestion; paper Fig. 4 circle 2).
        delayed: bool,
    },
    /// Convert a dataset's layout.
    ChangeLayout {
        /// Dataset label.
        dataset: String,
        /// `"contiguous"` or `"chunked"`.
        to: String,
    },
    /// Consolidate many small datasets of a file into one large dataset,
    /// tracking original offsets.
    ConsolidateSmallDatasets {
        /// The file.
        file: String,
        /// How many datasets would merge.
        count: usize,
    },
    /// Run the producer and consumer on the same node.
    CoSchedule {
        /// Producing task.
        producer: String,
        /// Consuming task.
        consumer: String,
    },
    /// Run two data-independent tasks in parallel.
    Parallelize {
        /// First task.
        first: String,
        /// Second task.
        second: String,
    },
    /// Move the file to slower storage once its last consumer finished.
    StageOut {
        /// The file.
        file: String,
    },
    /// Re-run a task whose trace is a salvaged fragment before trusting
    /// recommendations about the data it touches.
    RerunTask {
        /// The task to re-run.
        task: String,
    },
    /// Verify (fsck) a task's recovered output files and keep journaled
    /// durability enabled for them: the task crashed mid-write and its
    /// retry resumed from journal-recovered state.
    AuditRecoveredOutputs {
        /// The task whose retry resumed from recovered files.
        task: String,
    },
    /// Reconcile a task's declared I/O contract with its recorded
    /// behaviour: either the declaration or the task is wrong, and every
    /// proof discharged from that contract is suspect until they agree.
    AuditContract {
        /// The task whose contract and trace disagree.
        task: String,
        /// Dataset label (`file:path`) where they diverge.
        dataset: String,
    },
    /// Two recordings of the same workload disagree: investigate the
    /// first divergent event and the upstream state feeding it before
    /// trusting either run's analysis or optimization plan.
    InvestigateDivergence {
        /// Task whose stream diverges first.
        task: String,
        /// Index of the divergent event within that task's stream.
        event_index: usize,
    },
    /// Re-ingest a workflow's trace sections after a degraded streaming
    /// ingest: the live graph is missing quarantined or load-shed
    /// sections, so recommendations derived from it are lower bounds.
    ReingestWorkflow {
        /// The workflow to re-ingest from a clean trace.
        workflow: String,
    },
    /// Stop materializing a dataset whose bytes the recorded workflow
    /// never consumes (dead data, or a version fully overwritten before
    /// any read).
    ElideDataset {
        /// File holding the dataset.
        file: String,
        /// The dataset to elide.
        dataset: String,
        /// Raw bytes the elision saves.
        bytes: u64,
    },
}

/// A recommendation: an action, its guideline family, and the rationale
/// derived from the triggering finding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Guideline family.
    pub guideline: Guideline,
    /// Concrete action.
    pub action: Action,
    /// Human-readable rationale.
    pub rationale: String,
}

/// Derives recommendations from analyzer findings.
pub fn advise(findings: &[Finding]) -> Vec<Recommendation> {
    let mut out = Vec::new();
    for f in findings {
        match f {
            Finding::DataReuse { file, readers } => out.push(Recommendation {
                guideline: Guideline::CustomizedCaching,
                action: Action::CacheInFastTier {
                    target: file.clone(),
                },
                rationale: format!(
                    "{file} is read by {} tasks ({}); keeping it in the fastest tier \
                     avoids repeated shared-storage accesses",
                    readers.len(),
                    readers.join(", ")
                ),
            }),
            Finding::WriteAfterRead { task, file } | Finding::ReadAfterWrite { task, file } => out
                .push(Recommendation {
                    guideline: Guideline::CustomizedCaching,
                    action: Action::CacheInFastTier {
                        target: file.clone(),
                    },
                    rationale: format!(
                        "{task} revisits {file} within its lifetime; intra-task reuse \
                     benefits from memory caching"
                    ),
                }),
            Finding::TimeDependentInput {
                file,
                first_access_fraction,
            } => out.push(Recommendation {
                guideline: Guideline::CustomizedPrefetching,
                action: Action::PrefetchToNodeLocal {
                    file: file.clone(),
                    delayed: true,
                },
                rationale: format!(
                    "{file} is first needed {:.0}% into the workflow; delaying its \
                     prefetch until just before use reduces congestion and saves \
                     local space",
                    first_access_fraction * 100.0
                ),
            }),
            Finding::DisposableData { file, .. } => out.push(Recommendation {
                guideline: Guideline::Scheduling,
                action: Action::StageOut { file: file.clone() },
                rationale: format!(
                    "{file} has at most one consumer; once processed it can move to \
                     slower storage, freeing space for later-stage data"
                ),
            }),
            Finding::SmallScatteredDatasets {
                file,
                dataset_count,
                mean_bytes,
            } => out.push(Recommendation {
                guideline: Guideline::DataFormatOptimization,
                action: Action::ConsolidateSmallDatasets {
                    file: file.clone(),
                    count: *dataset_count,
                },
                rationale: format!(
                    "{file} holds {dataset_count} datasets averaging {mean_bytes:.0} \
                     bytes; consolidating them into one large dataset cuts per-dataset \
                     metadata I/O"
                ),
            }),
            Finding::UnusedDataset {
                dataset,
                metadata_only_readers,
                never_read,
                ..
            } => out.push(Recommendation {
                guideline: Guideline::PartialFileAccess,
                action: Action::SkipUnusedDataset {
                    dataset: dataset.clone(),
                },
                rationale: if *never_read {
                    format!("{dataset} is written but never read; skip moving it")
                } else {
                    format!(
                        "{dataset} is only touched for metadata by {}; exclude its \
                         content from data movement",
                        metadata_only_readers.join(", ")
                    )
                },
            }),
            Finding::IndependentTasks { first, second } => out.push(Recommendation {
                guideline: Guideline::Scheduling,
                action: Action::Parallelize {
                    first: first.clone(),
                    second: second.clone(),
                },
                rationale: format!(
                    "{first} and {second} share no files; with a pre-trained model \
                     (or equivalent control dependency resolved) they can overlap"
                ),
            }),
            Finding::MetadataHeavyFile {
                file,
                metadata_fraction,
                ..
            } => out.push(Recommendation {
                guideline: Guideline::DataFormatOptimization,
                action: Action::CacheInFastTier {
                    target: file.clone(),
                },
                rationale: format!(
                    "{:.0}% of {file}'s operations are metadata; placing it on a \
                     low-latency tier (or restructuring its layout) pays off",
                    metadata_fraction * 100.0
                ),
            }),
            Finding::ChunkedSmallDataset { dataset, bytes } => out.push(Recommendation {
                guideline: Guideline::DataFormatOptimization,
                action: Action::ChangeLayout {
                    dataset: dataset.clone(),
                    to: "contiguous".into(),
                },
                rationale: format!(
                    "{dataset} is only {bytes} bytes but chunked; the chunk index \
                     adds metadata overhead and extra I/O — use contiguous layout"
                ),
            }),
            Finding::RandomAccessContiguous {
                dataset,
                sequential_fraction,
                ops,
            } => out.push(Recommendation {
                guideline: Guideline::DataFormatOptimization,
                action: Action::ChangeLayout {
                    dataset: dataset.clone(),
                    to: "chunked".into(),
                },
                rationale: format!(
                    "{dataset} is large, contiguous, and accessed non-sequentially \
                     ({ops} ops, only {:.0}% sequential); chunked layout indexes the \
                     regions being accessed",
                    sequential_fraction * 100.0
                ),
            }),
            Finding::ContiguousVarlenDataset { dataset, bytes } => out.push(Recommendation {
                guideline: Guideline::DataFormatOptimization,
                action: Action::ChangeLayout {
                    dataset: dataset.clone(),
                    to: "chunked".into(),
                },
                rationale: format!(
                    "{dataset} stores {bytes} bytes of variable-length data \
                     contiguously; chunked layout provides the index metadata for \
                     efficient random access"
                ),
            }),
            Finding::CoSchedulable {
                producer,
                consumer,
                file,
            } => out.push(Recommendation {
                guideline: Guideline::Scheduling,
                action: Action::CoSchedule {
                    producer: producer.clone(),
                    consumer: consumer.clone(),
                },
                rationale: format!(
                    "{consumer} reads only {producer}'s output ({file}); running \
                     both on one node turns shared-storage traffic into local I/O"
                ),
            }),
            Finding::DegradedTrace { task } => out.push(Recommendation {
                guideline: Guideline::Scheduling,
                action: Action::RerunTask { task: task.clone() },
                rationale: format!(
                    "{task}'s trace is a salvaged fragment (the task died or \
                     exhausted its retries); findings about its files are lower \
                     bounds — re-record before applying optimizations to them"
                ),
            }),
            Finding::RecoveredTask { task } => out.push(Recommendation {
                guideline: Guideline::Scheduling,
                action: Action::AuditRecoveredOutputs { task: task.clone() },
                rationale: format!(
                    "{task} crashed mid-write and its retry resumed from \
                     journal-recovered files; fsck its outputs and keep \
                     journaled durability for this stage — its timing also \
                     includes recovery replay, so treat it as an outlier"
                ),
            }),
            Finding::ReplayDivergence {
                task,
                event_index,
                expected,
                actual,
                ancestor_tasks,
                ..
            } => out.push(Recommendation {
                guideline: Guideline::Scheduling,
                action: Action::InvestigateDivergence {
                    task: task.clone(),
                    event_index: *event_index,
                },
                rationale: format!(
                    "{task} diverges from the reference run at event {event_index} \
                     (recorded {expected}, observed {actual}); {} — neither run's \
                     findings are trustworthy until the cause is pinned down",
                    if ancestor_tasks.is_empty() {
                        "it has no upstream producers, so the cause is local to the \
                         task or its environment"
                            .to_owned()
                    } else {
                        format!(
                            "check its upstream producers ({}) for nondeterminism first",
                            ancestor_tasks.join(", ")
                        )
                    }
                ),
            }),
            Finding::DegradedIngest {
                workflow,
                reason,
                quarantined,
                dropped,
            } => out.push(Recommendation {
                guideline: Guideline::Scheduling,
                action: Action::ReingestWorkflow {
                    workflow: workflow.clone(),
                },
                rationale: format!(
                    "{workflow}'s streaming ingest degraded ({reason}: \
                     {quarantined} sections quarantined, {dropped} dropped); its \
                     live graph is a lower bound — re-ingest from a clean trace \
                     before acting on findings for this workflow"
                ),
            }),
        }
    }
    out
}

/// Derives recommendations from the linter's lifetime findings: dead
/// datasets and fully-overwritten-before-read versions are wasted I/O an
/// in-situ rewrite can elide (guideline III-A.2 — move only the bytes
/// somebody will read). Race and corruption findings deliberately yield
/// no recommendation: they are defects to fix, not waste to optimize.
pub fn advise_lint(report: &dayu_lint::Report) -> Vec<Recommendation> {
    use dayu_lint::Finding as Lint;
    let mut out = Vec::new();
    for f in &report.findings {
        match f {
            Lint::DeadDataset {
                file,
                dataset,
                writers,
                bytes,
            } => out.push(Recommendation {
                guideline: Guideline::PartialFileAccess,
                action: Action::ElideDataset {
                    file: file.clone(),
                    dataset: dataset.clone(),
                    bytes: *bytes,
                },
                rationale: format!(
                    "{dataset} in {file} is written by {} but never read anywhere \
                     in the recorded workflow; eliding it saves {bytes} bytes of I/O",
                    writers.join(", ")
                ),
            }),
            Lint::RedundantOverwrite {
                file,
                dataset,
                first,
                second,
                bytes,
            } => out.push(Recommendation {
                guideline: Guideline::PartialFileAccess,
                action: Action::ElideDataset {
                    file: file.clone(),
                    dataset: dataset.clone(),
                    bytes: *bytes,
                },
                rationale: format!(
                    "{first}'s version of {dataset} in {file} is fully overwritten \
                     by {second} before any read; the first write ({bytes} bytes) \
                     is wasted"
                ),
            }),
            Lint::ContractViolation {
                task,
                file,
                dataset,
                access,
                start,
                end,
                undeclared,
            } => out.push(Recommendation {
                guideline: Guideline::PartialFileAccess,
                action: Action::AuditContract {
                    task: task.clone(),
                    dataset: format!("{file}:{dataset}"),
                },
                rationale: if *undeclared {
                    format!(
                        "{task} {access}s bytes [{start}, {end}) of {dataset} in {file} \
                         outside its declared contract; widen the declaration or fix \
                         the task — until they agree, proofs discharged from this \
                         contract are unsound"
                    )
                } else {
                    format!(
                        "{task} declares a {access} of {dataset} in {file} it never \
                         performs; dropping the clause tightens what the static \
                         passes must assume"
                    )
                },
            }),
            _ => {}
        }
    }
    out
}

/// Formats recommendations as a plain-text report.
pub fn report(recs: &[Recommendation]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "DaYu optimization recommendations ({}):", recs.len());
    for (i, r) in recs.iter().enumerate() {
        let _ = writeln!(out, "{:2}. [{:?}] {:?}", i + 1, r.guideline, r.action);
        let _ = writeln!(out, "     {}", r.rationale);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_trace::time::Timestamp;

    #[test]
    fn every_finding_kind_yields_a_recommendation() {
        let findings = vec![
            Finding::DataReuse {
                file: "a.h5".into(),
                readers: vec!["r1".into(), "r2".into()],
            },
            Finding::WriteAfterRead {
                task: "t".into(),
                file: "a.h5".into(),
            },
            Finding::ReadAfterWrite {
                task: "t".into(),
                file: "b.h5".into(),
            },
            Finding::TimeDependentInput {
                file: "late.h5".into(),
                first_access_fraction: 0.6,
            },
            Finding::DisposableData {
                file: "tmp.h5".into(),
                after: Timestamp(100),
            },
            Finding::SmallScatteredDatasets {
                file: "s.h5".into(),
                dataset_count: 32,
                mean_bytes: 300.0,
            },
            Finding::UnusedDataset {
                dataset: "agg.h5:/contact_map".into(),
                written_by: vec!["agg".into()],
                metadata_only_readers: vec!["train".into()],
                never_read: false,
                bytes: 1 << 16,
            },
            Finding::IndependentTasks {
                first: "train".into(),
                second: "infer".into(),
            },
            Finding::MetadataHeavyFile {
                file: "m.h5".into(),
                metadata_fraction: 0.8,
                total_ops: 100,
            },
            Finding::ChunkedSmallDataset {
                dataset: "d.h5:/small".into(),
                bytes: 800,
            },
            Finding::ContiguousVarlenDataset {
                dataset: "v.h5:/images".into(),
                bytes: 6 << 20,
            },
            Finding::CoSchedulable {
                producer: "s3".into(),
                consumer: "s4".into(),
                file: "tracks.h5".into(),
            },
            Finding::DegradedTrace {
                task: "crashed".into(),
            },
            Finding::RecoveredTask {
                task: "phoenix".into(),
            },
            Finding::ReplayDivergence {
                task: "sim_2".into(),
                event_index: 17,
                expected: "Write out.h5:/d [0, 64) (RawData)".into(),
                actual: "<end of stream>".into(),
                ancestor_tasks: vec!["sim_1".into()],
                ancestor_datasets: vec!["in.h5:/d".into()],
            },
        ];
        let recs = advise(&findings);
        assert_eq!(recs.len(), findings.len());
    }

    #[test]
    fn divergence_asks_for_an_investigation() {
        let recs = advise(&[Finding::ReplayDivergence {
            task: "sim_2".into(),
            event_index: 17,
            expected: "a".into(),
            actual: "b".into(),
            ancestor_tasks: vec!["sim_1".into()],
            ancestor_datasets: vec![],
        }]);
        assert_eq!(
            recs[0].action,
            Action::InvestigateDivergence {
                task: "sim_2".into(),
                event_index: 17,
            }
        );
        assert!(recs[0].rationale.contains("sim_1"));
        let no_upstream = advise(&[Finding::ReplayDivergence {
            task: "src".into(),
            event_index: 0,
            expected: "a".into(),
            actual: "b".into(),
            ancestor_tasks: vec![],
            ancestor_datasets: vec![],
        }]);
        assert!(no_upstream[0].rationale.contains("no upstream"));
    }

    #[test]
    fn degraded_trace_asks_for_a_rerun() {
        let recs = advise(&[Finding::DegradedTrace {
            task: "sim_0".into(),
        }]);
        assert_eq!(
            recs[0].action,
            Action::RerunTask {
                task: "sim_0".into()
            }
        );
        assert!(recs[0].rationale.contains("salvaged"));
    }

    #[test]
    fn recovered_task_asks_for_an_output_audit() {
        let recs = advise(&[Finding::RecoveredTask {
            task: "sim_1".into(),
        }]);
        assert_eq!(
            recs[0].action,
            Action::AuditRecoveredOutputs {
                task: "sim_1".into()
            }
        );
        assert!(recs[0].rationale.contains("journal-recovered"));
    }

    #[test]
    fn degraded_ingest_asks_for_a_reingest() {
        let recs = advise(&[Finding::DegradedIngest {
            workflow: "wf-7".into(),
            reason: "quarantined sections".into(),
            quarantined: 3,
            dropped: 1,
        }]);
        assert_eq!(
            recs[0].action,
            Action::ReingestWorkflow {
                workflow: "wf-7".into()
            }
        );
        assert!(recs[0].rationale.contains("3 sections quarantined"));
        assert!(recs[0].rationale.contains("lower bound"));
    }

    #[test]
    fn guideline_mapping_matches_paper() {
        let recs = advise(&[
            Finding::DataReuse {
                file: "a".into(),
                readers: vec!["x".into(), "y".into()],
            },
            Finding::UnusedDataset {
                dataset: "f:/d".into(),
                written_by: vec![],
                metadata_only_readers: vec![],
                never_read: true,
                bytes: 0,
            },
            Finding::TimeDependentInput {
                file: "l".into(),
                first_access_fraction: 0.5,
            },
            Finding::ContiguousVarlenDataset {
                dataset: "v:/i".into(),
                bytes: 1,
            },
        ]);
        assert_eq!(recs[0].guideline, Guideline::CustomizedCaching);
        assert_eq!(recs[1].guideline, Guideline::PartialFileAccess);
        assert_eq!(recs[2].guideline, Guideline::CustomizedPrefetching);
        assert_eq!(recs[3].guideline, Guideline::DataFormatOptimization);
    }

    #[test]
    fn layout_directions_are_correct() {
        let recs = advise(&[
            Finding::ChunkedSmallDataset {
                dataset: "d:/s".into(),
                bytes: 100,
            },
            Finding::ContiguousVarlenDataset {
                dataset: "d:/v".into(),
                bytes: 100,
            },
        ]);
        assert_eq!(
            recs[0].action,
            Action::ChangeLayout {
                dataset: "d:/s".into(),
                to: "contiguous".into()
            }
        );
        assert_eq!(
            recs[1].action,
            Action::ChangeLayout {
                dataset: "d:/v".into(),
                to: "chunked".into()
            }
        );
    }

    #[test]
    fn delayed_prefetch_for_late_inputs() {
        let recs = advise(&[Finding::TimeDependentInput {
            file: "late.h5".into(),
            first_access_fraction: 0.72,
        }]);
        match &recs[0].action {
            Action::PrefetchToNodeLocal { file, delayed } => {
                assert_eq!(file, "late.h5");
                assert!(*delayed);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert!(recs[0].rationale.contains("72%"));
    }

    #[test]
    fn report_is_readable() {
        let recs = advise(&[Finding::CoSchedulable {
            producer: "s3".into(),
            consumer: "s4".into(),
            file: "t.h5".into(),
        }]);
        let text = report(&recs);
        assert!(text.contains("1 recommendations") || text.contains("(1)"));
        assert!(text.contains("CoSchedule"));
        assert!(text.contains("s3"));
    }

    #[test]
    fn empty_findings_empty_recs() {
        assert!(advise(&[]).is_empty());
        assert!(report(&[]).contains("(0)"));
    }

    #[test]
    fn lint_waste_findings_become_elisions_and_defects_do_not() {
        let mut r = dayu_lint::Report::new();
        r.push(dayu_lint::Finding::DeadDataset {
            file: "out.h5".into(),
            dataset: "/debug/residuals".into(),
            writers: vec!["solver".into()],
            bytes: 4096,
        });
        r.push(dayu_lint::Finding::RedundantOverwrite {
            file: "out.h5".into(),
            dataset: "/state".into(),
            first: "step_0".into(),
            second: "step_1".into(),
            bytes: 512,
        });
        r.push(dayu_lint::Finding::ExtentRace {
            file: "out.h5".into(),
            datasets: vec!["/state".into()],
            first: "a".into(),
            second: "b".into(),
            write_write: true,
            start: 0,
            end: 64,
        });
        let recs = advise_lint(&r);
        assert_eq!(recs.len(), 2, "races are defects, not optimizations");
        assert_eq!(
            recs[0].action,
            Action::ElideDataset {
                file: "out.h5".into(),
                dataset: "/debug/residuals".into(),
                bytes: 4096,
            }
        );
        assert!(recs[1].rationale.contains("fully overwritten"));
        assert!(recs
            .iter()
            .all(|r| r.guideline == Guideline::PartialFileAccess));
    }

    #[test]
    fn contract_violations_become_audit_actions() {
        let mut r = dayu_lint::Report::new();
        r.push(dayu_lint::Finding::ContractViolation {
            task: "writer_0".into(),
            file: "shared.h5".into(),
            dataset: "/raw".into(),
            access: "write".into(),
            start: 4096,
            end: 4160,
            undeclared: true,
        });
        r.push(dayu_lint::Finding::ContractViolation {
            task: "reader".into(),
            file: "shared.h5".into(),
            dataset: "/aux".into(),
            access: "read".into(),
            start: 0,
            end: 0,
            undeclared: false,
        });
        let recs = advise_lint(&r);
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs[0].action,
            Action::AuditContract {
                task: "writer_0".into(),
                dataset: "shared.h5:/raw".into(),
            }
        );
        assert!(recs[0].rationale.contains("outside its declared contract"));
        assert!(recs[1].rationale.contains("never"));
    }
}
