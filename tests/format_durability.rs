//! Cross-crate durability tests of the format substrate: data written
//! through any driver/instrumentation combination reads back identically
//! through any other, across open/close cycles and process-like handoffs.

use dayu::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn rand_bytes(rng: &mut SmallRng, n: usize) -> Vec<u8> {
    let mut v = vec![0u8; n];
    rng.fill(&mut v[..]);
    v
}

#[test]
fn instrumented_writer_uninstrumented_reader() {
    let fs = MemFs::new();
    let mapper = Mapper::new("compat");
    mapper.set_task("writer");
    let f = H5File::create(
        mapper.wrap_vfd(fs.create("x.h5"), "x.h5"),
        "x.h5",
        mapper.file_options(),
    )
    .unwrap();
    let mut ds = f
        .root()
        .create_dataset(
            "d",
            DatasetBuilder::new(DataType::Float { width: 8 }, &[100]).chunks(&[7]),
        )
        .unwrap();
    let vals: Vec<f64> = (0..100).map(|i| i as f64 * 1.5).collect();
    ds.write_f64s(&vals).unwrap();
    ds.close().unwrap();
    f.close().unwrap();

    // Plain reader, no DaYu anywhere.
    let f = H5File::open(fs.open("x.h5"), "x.h5", FileOptions::default()).unwrap();
    let mut ds = f.root().open_dataset("d").unwrap();
    assert_eq!(ds.read_f64s().unwrap(), vals);
    ds.close().unwrap();
    f.close().unwrap();
}

#[test]
fn disk_backed_files_survive_reopen() {
    let dir = std::env::temp_dir().join(format!("dayu-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("persist.h5");
    let mut rng = SmallRng::seed_from_u64(99);
    let blob = rand_bytes(&mut rng, 64 << 10);
    {
        let vfd = dayu_core::vfd::FileVfd::create(&path).unwrap();
        let f = H5File::create(vfd, "persist.h5", FileOptions::default()).unwrap();
        let g = f.root().create_group("archive").unwrap();
        let mut ds = g
            .create_dataset(
                "blob",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[blob.len() as u64])
                    .chunks(&[9000]),
            )
            .unwrap();
        ds.write(&blob).unwrap();
        ds.set_attr(
            "checksum",
            AttrValue::U64(blob.iter().map(|&b| b as u64).sum()),
        )
        .unwrap();
        ds.close().unwrap();
        f.close().unwrap();
    }
    {
        let vfd = dayu_core::vfd::FileVfd::open(&path).unwrap();
        let f = H5File::open(vfd, "persist.h5", FileOptions::default()).unwrap();
        let g = f.root().open_group("archive").unwrap();
        let mut ds = g.open_dataset("blob").unwrap();
        let back = ds.read().unwrap();
        assert_eq!(back, blob);
        assert_eq!(
            ds.attr("checksum").unwrap(),
            Some(AttrValue::U64(blob.iter().map(|&b| b as u64).sum()))
        );
        ds.close().unwrap();
        f.close().unwrap();
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn many_sessions_accumulate_objects() {
    // A file grown across 10 open/close sessions holds everything.
    let fs = MemFs::new();
    for session in 0..10 {
        let f = if session == 0 {
            H5File::create(fs.create("grow.h5"), "grow.h5", FileOptions::default()).unwrap()
        } else {
            H5File::open(fs.open("grow.h5"), "grow.h5", FileOptions::default()).unwrap()
        };
        let mut ds = f
            .root()
            .create_dataset(
                &format!("session_{session}"),
                DatasetBuilder::new(DataType::Int { width: 8 }, &[16]),
            )
            .unwrap();
        ds.write_u64s(&[session as u64; 16]).unwrap();
        ds.close().unwrap();
        f.close().unwrap();
    }
    let f = H5File::open(fs.open("grow.h5"), "grow.h5", FileOptions::default()).unwrap();
    assert_eq!(f.root().list().unwrap().len(), 10);
    for session in 0..10u64 {
        let mut ds = f
            .root()
            .open_dataset(&format!("session_{session}"))
            .unwrap();
        assert_eq!(ds.read_u64s().unwrap(), vec![session; 16]);
        ds.close().unwrap();
    }
    f.close().unwrap();
}

#[test]
fn randomized_slab_writes_read_back_exactly() {
    // Property-style fuzz at the integration level: random slab writes to a
    // chunked 2-D dataset, shadowed by an in-memory model.
    let fs = MemFs::new();
    let f = H5File::create(fs.create("fuzz.h5"), "fuzz.h5", FileOptions::default()).unwrap();
    let (rows, cols) = (40u64, 50u64);
    let mut ds = f
        .root()
        .create_dataset(
            "grid",
            DatasetBuilder::new(DataType::Int { width: 1 }, &[rows, cols]).chunks(&[8, 13]),
        )
        .unwrap();
    let mut model = vec![0u8; (rows * cols) as usize];
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..200 {
        let r0 = rng.gen_range(0..rows);
        let c0 = rng.gen_range(0..cols);
        let rn = rng.gen_range(1..=rows - r0);
        let cn = rng.gen_range(1..=cols - c0);
        let data = rand_bytes(&mut rng, (rn * cn) as usize);
        ds.write_slab(&Selection::slab(&[r0, c0], &[rn, cn]), &data)
            .unwrap();
        for i in 0..rn {
            for j in 0..cn {
                model[((r0 + i) * cols + c0 + j) as usize] = data[(i * cn + j) as usize];
            }
        }
        // Random verification slab.
        let vr0 = rng.gen_range(0..rows);
        let vc0 = rng.gen_range(0..cols);
        let vrn = rng.gen_range(1..=rows - vr0);
        let vcn = rng.gen_range(1..=cols - vc0);
        let got = ds
            .read_slab(&Selection::slab(&[vr0, vc0], &[vrn, vcn]))
            .unwrap();
        for i in 0..vrn {
            for j in 0..vcn {
                assert_eq!(
                    got[(i * vcn + j) as usize],
                    model[((vr0 + i) * cols + vc0 + j) as usize],
                    "mismatch at ({},{})",
                    vr0 + i,
                    vc0 + j
                );
            }
        }
    }
    // Full read after close/reopen matches the model.
    ds.close().unwrap();
    f.close().unwrap();
    let f = H5File::open(fs.open("fuzz.h5"), "fuzz.h5", FileOptions::default()).unwrap();
    let mut ds = f.root().open_dataset("grid").unwrap();
    assert_eq!(ds.read().unwrap(), model);
    ds.close().unwrap();
    f.close().unwrap();
}

#[test]
fn varlen_data_survives_reopen_with_both_layouts() {
    for chunked in [false, true] {
        let fs = MemFs::new();
        let mut rng = SmallRng::seed_from_u64(11);
        let items: Vec<Vec<u8>> = (0..40)
            .map(|_| {
                let n = rng.gen_range(1..3000);
                rand_bytes(&mut rng, n)
            })
            .collect();
        {
            let f = H5File::create(fs.create("vl.h5"), "vl.h5", FileOptions::default()).unwrap();
            let b = DatasetBuilder::new(DataType::VarLen, &[40]);
            let b = if chunked { b.chunks(&[7]) } else { b };
            let mut ds = f.root().create_dataset("items", b).unwrap();
            for (i, item) in items.iter().enumerate() {
                ds.write_varlen(i as u64, &[item]).unwrap();
            }
            ds.close().unwrap();
            f.close().unwrap();
        }
        let f = H5File::open(fs.open("vl.h5"), "vl.h5", FileOptions::default()).unwrap();
        let mut ds = f.root().open_dataset("items").unwrap();
        let back = ds.read_varlen(0, 40).unwrap();
        assert_eq!(back, items, "chunked={chunked}");
        ds.close().unwrap();
        f.close().unwrap();
    }
}
