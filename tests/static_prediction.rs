//! Integration: static dataflow prediction end to end. The contracts of
//! every bundled workload, interpreted abstractly, must predict a graph
//! that *contains* whatever a real recorded run produces — soundness of
//! the sSDG — across exact parameter bindings, and a planted contract
//! hole must surface as an `incomplete-contract` finding instead of
//! silently shrinking the prediction.

use dayu_analyzer::Analysis;
use dayu_lint::{cost_model, CostConfig, Finding, StaticPrediction};
use dayu_sim::cluster::{Cluster, Placement};
use dayu_sim::engine::Engine;
use dayu_vfd::MemFs;
use dayu_workflow::{record, WorkflowSpec};
use dayu_workloads::{arldm, ddmd, pyflextrkr};
use proptest::prelude::*;

/// Records `spec` on a fresh in-memory filesystem and returns its
/// recorded (concrete) SDG.
fn recorded_sdg(spec: &WorkflowSpec, fs: &MemFs) -> dayu_analyzer::graph::Graph {
    let run = record(spec, fs).expect("record workload");
    Analysis::run(&run.bundle).sdg
}

/// Asserts the prediction contains the recorded run: zero missing and
/// zero mismatched raw-data edges.
fn assert_sound(spec: &WorkflowSpec, fs: &MemFs) {
    let pred = StaticPrediction::from_spec(spec);
    let cmp = pred.compare(&recorded_sdg(spec, fs));
    assert!(
        cmp.is_sound(),
        "predicted sSDG must contain the recorded SDG: {} missing, {} mismatched\n{}",
        cmp.missing,
        cmp.mismatched,
        cmp.report
    );
    assert_eq!(cmp.recall(), 1.0);
}

#[test]
fn ddmd_prediction_contains_recorded_sdg() {
    let cfg = ddmd::DdmdConfig {
        sim_tasks: 3,
        iterations: 2,
        contact_map_dim: 32,
        point_cloud_points: 64,
        scalar_series_len: 16,
        ..Default::default()
    };
    assert_sound(&ddmd::workflow(&cfg), &MemFs::new());
}

#[test]
fn pyflextrkr_prediction_contains_recorded_sdg() {
    let cfg = pyflextrkr::PyflextrkrConfig {
        input_files: 3,
        input_bytes: 32 << 10,
        feature_bytes: 16 << 10,
        small_datasets: 6,
        small_dataset_bytes: 200,
        small_dataset_accesses: 2,
        compute_ns: 0,
    };
    let fs = MemFs::new();
    pyflextrkr::prepare_inputs_untraced(&fs, &cfg).expect("prepare inputs");
    assert_sound(&pyflextrkr::workflow(&cfg), &fs);
}

#[test]
fn arldm_prediction_contains_recorded_sdg() {
    assert_sound(
        &arldm::workflow(&arldm::ArldmConfig::default()),
        &MemFs::new(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Soundness holds for *every* exact parameter binding, not just the
    /// defaults: the concrete recorded SDG is a subgraph of the
    /// predicted sSDG whatever the scale knobs say.
    #[test]
    fn ddmd_prediction_sound_for_any_binding(
        sim_tasks in 1usize..4,
        iterations in 1usize..3,
        dim_exp in 4u32..7,
        points_exp in 5u32..8,
    ) {
        let (dim, points) = (1u64 << dim_exp, 1u64 << points_exp);
        let cfg = ddmd::DdmdConfig {
            sim_tasks,
            iterations,
            contact_map_dim: dim,
            point_cloud_points: points,
            scalar_series_len: 16,
            ..Default::default()
        };
        let spec = ddmd::workflow(&cfg);
        let fs = MemFs::new();
        let pred = StaticPrediction::from_spec(&spec);
        let cmp = pred.compare(&recorded_sdg(&spec, &fs));
        prop_assert!(cmp.is_sound(), "{} missing, {} mismatched", cmp.missing, cmp.mismatched);
    }

    #[test]
    fn pyflextrkr_prediction_sound_for_any_binding(
        input_files in 1usize..4,
        small_datasets in 2usize..8,
    ) {
        let cfg = pyflextrkr::PyflextrkrConfig {
            input_files,
            input_bytes: 16 << 10,
            feature_bytes: 8 << 10,
            small_datasets,
            small_dataset_bytes: 128,
            small_dataset_accesses: 2,
            compute_ns: 0,
        };
        let fs = MemFs::new();
        pyflextrkr::prepare_inputs_untraced(&fs, &cfg).expect("prepare inputs");
        let spec = pyflextrkr::workflow(&cfg);
        let pred = StaticPrediction::from_spec(&spec);
        let cmp = pred.compare(&recorded_sdg(&spec, &fs));
        prop_assert!(cmp.is_sound(), "{} missing, {} mismatched", cmp.missing, cmp.mismatched);
    }
}

#[test]
fn planted_contract_hole_fires_incomplete_contract() {
    // Record the real ddmd pipeline, then predict from a spec whose
    // aggregate task's contract was emptied: every raw-data edge that
    // task produced is now unpredicted, and each must surface as a hole.
    let cfg = ddmd::DdmdConfig {
        sim_tasks: 2,
        iterations: 1,
        contact_map_dim: 32,
        point_cloud_points: 64,
        scalar_series_len: 16,
        ..Default::default()
    };
    let spec = ddmd::workflow(&cfg);
    let sdg = recorded_sdg(&spec, &MemFs::new());

    let mut holed = spec.clone();
    let mut victim = None;
    for stage in &mut holed.stages {
        for task in &mut stage.tasks {
            if task.name.starts_with("aggregate") {
                task.contract = Some(dayu_workflow::IoContract::new());
                victim = Some(task.name.clone());
            }
        }
    }
    let victim = victim.expect("ddmd has an aggregate task");

    let cmp = StaticPrediction::from_spec(&holed).compare(&sdg);
    assert!(cmp.missing > 0, "the hole must be visible");
    assert!(
        cmp.report.findings.iter().any(|f| matches!(
            f,
            Finding::IncompleteContract { task, .. } if *task == victim
        )),
        "expected an incomplete-contract finding for {victim}:\n{}",
        cmp.report
    );
    // And CI can gate on exactly that class.
    assert!(!cmp
        .report
        .denied(&["incomplete-contract".into()])
        .is_empty());
}

#[test]
fn predicted_sdg_is_a_runnable_sim_dag() {
    // The sSDG's task DAG feeds straight into the simulator: flows become
    // dependencies, resolved footprints become I/O programs.
    let cfg = ddmd::DdmdConfig {
        sim_tasks: 2,
        iterations: 1,
        contact_map_dim: 32,
        point_cloud_points: 64,
        scalar_series_len: 16,
        ..Default::default()
    };
    let spec = ddmd::workflow(&cfg);
    let pred = StaticPrediction::from_spec(&spec);
    let tasks = pred.to_sim_tasks();
    assert_eq!(tasks.len(), spec.task_count());

    let cluster = Cluster::gpu_cluster(2);
    let report = Engine::new(&cluster, &Placement::new())
        .run(&tasks)
        .expect("predicted DAG must simulate");
    assert!(report.makespan_ns > 0);

    // The cost model's totals agree with what the sim plan moves.
    let costs = cost_model(&pred, &CostConfig::default());
    let plan_bytes: u64 = tasks.iter().map(|t| t.total_io_bytes()).sum();
    assert_eq!(costs.total_bytes, plan_bytes);
}
