//! I/O engine matrix: the batched submission/completion engine must be
//! *invisible* everywhere except wall time. For every failure shape the
//! recorder supports, a run under `--io-engine batched` must produce:
//!
//! * a low-level op stream element-identical to the scalar run's (same
//!   kind, file, offset, length, access class and responsible object, in
//!   the same order — timestamps aside),
//! * the same task outcomes and byte-identical final file images,
//! * a `.drb` bundle that round-trips, replays validated, and restores the
//!   engine configuration from its manifest,
//! * scalar-equal `CountingVfd` totals for arbitrary chunk geometry.
//!
//! The sweep workload is sized to actually engage the batched fast paths:
//! a full-selection write and read of a chunked dataset with far more
//! chunks than the chunk cache holds.

use dayu::prelude::*;
use dayu_core::hdf::Durability;
use dayu_core::trace::ManualClock;
use dayu_core::vfd::{CountingVfd, CrashSchedule, IoEngineConfig, OpCounters};
use dayu_core::workflow::RecordedRun;
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Sweep geometry: 64 chunks against an 8-chunk cache, so both the write
/// and the read sweep overflow the cache and the batched planner engages.
const SWEEP_BYTES: u64 = 64 << 10;
const SWEEP_CHUNK: u64 = 1 << 10;
const SWEEP_CACHE: u64 = 8 << 10;

fn payload() -> Vec<u8> {
    (0..SWEEP_BYTES).map(|i| (i * 37 % 241) as u8).collect()
}

/// Producer writes the chunked sweep dataset; consumer reads it back cold
/// and checks every byte.
fn sweep_workload() -> (WorkflowSpec, MemFs) {
    let fs = MemFs::new();
    let spec = WorkflowSpec::new("io-engine-matrix")
        .stage(
            "produce",
            vec![TaskSpec::new("producer", |io: &TaskIo| {
                let f = io.create("sweep.h5")?;
                let mut ds = f.root().create_dataset(
                    "x",
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[SWEEP_BYTES])
                        .chunks(&[SWEEP_CHUNK])
                        .cache_bytes(SWEEP_CACHE),
                )?;
                ds.write(&payload())?;
                ds.close()?;
                f.close()
            })],
        )
        .stage(
            "consume",
            vec![TaskSpec::new("consumer", |io: &TaskIo| {
                let f = io.open("sweep.h5")?;
                let mut ds = f.root().open_dataset("x")?;
                let back = ds.read()?;
                assert_eq!(back, payload(), "consumer read corrupt bytes");
                ds.close()?;
                f.close()
            })],
        );
    (spec, fs)
}

/// The failure shapes the matrix sweeps (fixed seeds, zero backoff).
fn scenarios() -> Vec<(&'static str, RecordOptions)> {
    vec![
        ("clean", RecordOptions::default()),
        (
            "transient-chaos",
            RecordOptions::default()
                .with_chaos(FaultSchedule::new(5).with_transient_at(3))
                .with_retry(RetryPolicy::default().with_backoff(0, 0)),
        ),
        (
            "crash-journal-resume",
            RecordOptions::default()
                .with_crash(CrashSchedule::new(11).with_crash_at(6).torn())
                .with_durability(Durability::Journal)
                .with_resume(true)
                .with_retry(RetryPolicy::default().attempts(3).with_backoff(0, 0)),
        ),
    ]
}

/// The batched engine configurations compared against scalar.
fn engines() -> Vec<(&'static str, IoEngineConfig)> {
    vec![
        ("batched", IoEngineConfig::batched()),
        ("batched-nc", IoEngineConfig::batched().with_coalesce(false)),
        (
            "batched-qd2-ra3",
            IoEngineConfig::batched()
                .with_queue_depth(2)
                .with_readahead(3),
        ),
    ]
}

fn manual(opts: RecordOptions) -> RecordOptions {
    RecordOptions {
        clock: Some(Arc::new(ManualClock::new())),
        ..opts
    }
}

/// Records the sweep workload and returns the run plus the final image.
fn record_sweep(opts: RecordOptions) -> (RecordedRun, Vec<u8>) {
    let (spec, fs) = sweep_workload();
    let run = record_opts(&spec, &fs, &manual(opts)).expect("record sweep");
    let image = fs.snapshot("sweep.h5").unwrap_or_default();
    (run, image)
}

/// The timestamp-free projection of the low-level op stream.
fn stream(bundle: &TraceBundle) -> Vec<String> {
    bundle
        .vfd
        .iter()
        .map(|r| {
            format!(
                "{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}",
                r.task, r.file, r.kind, r.offset, r.len, r.access, r.object
            )
        })
        .collect()
}

fn outcomes(run: &RecordedRun) -> Vec<String> {
    run.outcomes.iter().map(|o| format!("{o:?}")).collect()
}

#[test]
fn batched_streams_match_scalar_across_failure_shapes() {
    for (scenario, base) in scenarios() {
        let (scalar_run, scalar_image) = record_sweep(base.clone());
        assert!(
            !scalar_run.bundle.vfd.is_empty(),
            "{scenario}: scalar run recorded nothing"
        );
        for (ename, engine) in engines() {
            let (run, image) = record_sweep(base.clone().with_io_engine(engine));
            assert_eq!(
                stream(&scalar_run.bundle),
                stream(&run.bundle),
                "{scenario}/{ename}: op stream diverged from scalar"
            );
            assert_eq!(
                outcomes(&scalar_run),
                outcomes(&run),
                "{scenario}/{ename}: task outcomes diverged"
            );
            assert_eq!(
                scalar_image, image,
                "{scenario}/{ename}: final image differs from scalar"
            );
        }
    }
}

#[test]
fn batched_bundles_round_trip_and_replay_validated() {
    for (scenario, base) in scenarios() {
        let opts = manual(base.with_io_engine(IoEngineConfig::batched()));
        let (spec, fs) = sweep_workload();
        let (_, bundle) = record_to_bundle(
            &spec,
            &fs,
            &opts,
            format!("scenario={scenario}"),
            "io-engine-matrix",
            true,
        )
        .unwrap_or_else(|e| panic!("{scenario}: record failed: {e}"));
        assert_eq!(
            bundle.manifest.io_engine,
            IoEngineConfig::batched(),
            "{scenario}: manifest dropped the engine config"
        );

        // The container round-trips losslessly, manifest included.
        let bytes = bundle.to_bytes();
        ReplayBundle::verify_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{scenario}: verify failed: {e}"));
        let back = ReplayBundle::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{scenario}: parse failed: {e}"));
        assert_eq!(back.to_bytes(), bytes, "{scenario}: not a fixpoint");
        assert_eq!(back.manifest.io_engine, IoEngineConfig::batched());

        // Replay re-runs under the restored batched engine and must
        // reproduce the recording bit-for-bit.
        let (spec2, fs2) = sweep_workload();
        let report = replay_bundle(&back, &spec2, &fs2)
            .unwrap_or_else(|e| panic!("{scenario}: replay failed: {e}"));
        assert!(report.op_checked, "{scenario}: sampled recording?");
        assert!(
            report.validated(),
            "{scenario}: divergence={:?} mismatches={:?}",
            report.divergence,
            report.mismatches
        );
        assert_eq!(
            report.run.bundle.to_binary_bytes(),
            bundle.trace.to_binary_bytes(),
            "{scenario}: replayed trace differs from recording"
        );
    }
}

/// Writes and reads a chunked dataset directly through a counting driver,
/// returning the totals and the read-back bytes.
fn counted_sweep(engine: IoEngineConfig, chunk: u64, total: u64) -> ([u64; 6], Vec<u8>) {
    let fs = MemFs::new();
    let counters = OpCounters::shared();
    let data: Vec<u8> = (0..total).map(|i| (i * 131 % 251) as u8).collect();
    {
        let vfd = CountingVfd::new(fs.create("c.h5"), counters.clone());
        let f = H5File::create(vfd, "c.h5", FileOptions::default().with_io_engine(engine))
            .expect("create");
        let mut ds = f
            .root()
            .create_dataset(
                "x",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[total])
                    .chunks(&[chunk])
                    .cache_bytes(SWEEP_CACHE),
            )
            .expect("dataset");
        ds.write(&data).expect("write");
        ds.close().expect("close dataset");
        f.close().expect("close file");
    }
    let vfd = CountingVfd::new(fs.open("c.h5"), counters.clone());
    let f = H5File::open(vfd, "c.h5", FileOptions::default().with_io_engine(engine)).expect("open");
    let mut ds = f.root().open_dataset("x").expect("open dataset");
    let back = ds.read().expect("read");
    let totals = [
        counters.reads.load(Ordering::Relaxed),
        counters.writes.load(Ordering::Relaxed),
        counters.bytes_read.load(Ordering::Relaxed),
        counters.bytes_written.load(Ordering::Relaxed),
        counters.metadata_ops.load(Ordering::Relaxed),
        counters.metadata_bytes.load(Ordering::Relaxed),
    ];
    (totals, back)
}

/// Deterministic sweep of the same properties the proptests below explore:
/// a fixed grid of seeds, fault/crash points, queue depths, readahead
/// windows and chunk geometries that always runs, so the property bodies
/// are exercised even where the proptest runner is unavailable.
#[test]
fn representative_cases_hold_the_properties() {
    for (seed, fault_at, qd, ra) in [(0, 0, 1, 0), (5, 3, 2, 4), (17, 29, 8, 1)] {
        let base = RecordOptions::default()
            .with_chaos(FaultSchedule::new(seed).with_transient_at(fault_at))
            .with_retry(RetryPolicy::default().with_backoff(0, 0));
        let engine = IoEngineConfig::batched()
            .with_queue_depth(qd)
            .with_readahead(ra);
        let (scalar_run, scalar_image) = record_sweep(base.clone());
        let (run, image) = record_sweep(base.with_io_engine(engine));
        assert_eq!(
            stream(&scalar_run.bundle),
            stream(&run.bundle),
            "chaos seed={seed} fault_at={fault_at} qd={qd} ra={ra}"
        );
        assert_eq!(outcomes(&scalar_run), outcomes(&run));
        assert_eq!(scalar_image, image);
    }
    for (seed, crash_at) in [(3, 1), (11, 6), (23, 39)] {
        let base = RecordOptions::default()
            .with_crash(CrashSchedule::new(seed).with_crash_at(crash_at).torn())
            .with_durability(Durability::Journal)
            .with_resume(true)
            .with_retry(RetryPolicy::default().attempts(3).with_backoff(0, 0));
        let (scalar_run, scalar_image) = record_sweep(base.clone());
        let (run, image) = record_sweep(base.with_io_engine(IoEngineConfig::batched()));
        assert_eq!(
            stream(&scalar_run.bundle),
            stream(&run.bundle),
            "crash seed={seed} crash_at={crash_at}"
        );
        assert_eq!(scalar_image, image);
    }
    for (chunk, chunks, qd, ra, coalesce) in [
        (64, 9, 1, 0, true),
        (256, 20, 3, 4, false),
        (1024, 32, 8, 2, true),
    ] {
        let total = chunk * chunks + chunk / 2;
        let engine = IoEngineConfig::batched()
            .with_queue_depth(qd)
            .with_readahead(ra)
            .with_coalesce(coalesce);
        let (scalar_totals, scalar_back) = counted_sweep(IoEngineConfig::default(), chunk, total);
        let (totals, back) = counted_sweep(engine, chunk, total);
        assert_eq!(
            scalar_totals, totals,
            "chunk={chunk} chunks={chunks} qd={qd} ra={ra} coalesce={coalesce}"
        );
        assert_eq!(scalar_back, back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary chaos seeds and fault points: the batched run's op stream,
    /// outcomes and final image stay element-identical to scalar.
    #[test]
    fn chaos_seeds_preserve_stream_identity(
        seed in 0u64..64,
        fault_at in 0u64..48,
        qd in 1usize..9,
        ra in 0u64..5,
    ) {
        let base = RecordOptions::default()
            .with_chaos(FaultSchedule::new(seed).with_transient_at(fault_at))
            .with_retry(RetryPolicy::default().with_backoff(0, 0));
        let engine = IoEngineConfig::batched()
            .with_queue_depth(qd)
            .with_readahead(ra);
        let (scalar_run, scalar_image) = record_sweep(base.clone());
        let (run, image) = record_sweep(base.with_io_engine(engine));
        prop_assert_eq!(stream(&scalar_run.bundle), stream(&run.bundle));
        prop_assert_eq!(outcomes(&scalar_run), outcomes(&run));
        prop_assert_eq!(scalar_image, image);
    }

    /// Arbitrary crash points under journaled durability: both engines
    /// crash, recover and resume into the same stream and image.
    #[test]
    fn crash_points_preserve_stream_identity(seed in 0u64..32, crash_at in 1u64..40) {
        let base = RecordOptions::default()
            .with_crash(CrashSchedule::new(seed).with_crash_at(crash_at).torn())
            .with_durability(Durability::Journal)
            .with_resume(true)
            .with_retry(RetryPolicy::default().attempts(3).with_backoff(0, 0));
        let (scalar_run, scalar_image) = record_sweep(base.clone());
        let (run, image) = record_sweep(base.with_io_engine(IoEngineConfig::batched()));
        prop_assert_eq!(stream(&scalar_run.bundle), stream(&run.bundle));
        prop_assert_eq!(scalar_image, image);
    }

    /// Arbitrary chunk geometry, queue depth and readahead: batched writes
    /// and reads move exactly the bytes scalar moves, op for op, and the
    /// read-back bytes are identical.
    #[test]
    fn counters_and_bytes_match_scalar_for_any_geometry(
        chunk_pow in 6u32..11,
        chunks in 9u64..33,
        qd in 1usize..9,
        ra in 0u64..5,
        coalesce in proptest::bool::ANY,
    ) {
        let chunk = 1u64 << chunk_pow;
        let total = chunk * chunks + chunk / 2; // ragged tail chunk
        let engine = IoEngineConfig::batched()
            .with_queue_depth(qd)
            .with_readahead(ra)
            .with_coalesce(coalesce);
        let (scalar_totals, scalar_back) = counted_sweep(IoEngineConfig::default(), chunk, total);
        let (totals, back) = counted_sweep(engine, chunk, total);
        prop_assert_eq!(scalar_totals, totals);
        prop_assert_eq!(scalar_back, back);
    }
}
