//! Cross-crate integration: the full DaYu loop — record under the mapper,
//! analyze, advise, transform, replay — on each of the paper's workflows.

use dayu::prelude::*;
use dayu_core::workflow::{file_written_bytes, transform};
use dayu_core::workloads::{arldm, ddmd, pyflextrkr};

fn ddmd_cfg() -> ddmd::DdmdConfig {
    ddmd::DdmdConfig {
        sim_tasks: 4,
        iterations: 2,
        contact_map_dim: 32,
        point_cloud_points: 64,
        scalar_series_len: 32,
        compute_ns: 100_000,
        ..Default::default()
    }
}

#[test]
fn ddmd_full_loop_baseline_vs_optimized() {
    let fs = MemFs::new();
    let run = record(&ddmd::workflow(&ddmd_cfg()), &fs).unwrap();

    // Analysis surfaces the partial-access opportunity…
    let analysis = Analysis::run(&run.bundle);
    let unused: Vec<&Finding> = analysis.findings_of("unused-dataset").collect();
    assert!(
        unused
            .iter()
            .any(|f| matches!(f, Finding::UnusedDataset { dataset, .. } if dataset.contains("contact_map"))),
        "contact_map flagged"
    );
    // …and the advisor turns it into a PartialFileAccess recommendation.
    let recs = advise(&analysis.findings);
    assert!(recs
        .iter()
        .any(|r| r.guideline == Guideline::PartialFileAccess));

    // Replay baseline vs the optimized plan.
    let cluster = Cluster::gpu_cluster(2);
    let schedule = Schedule::round_robin(&run, 2);
    let baseline_tasks = to_sim_tasks(&run, &schedule);
    let baseline = Engine::new(&cluster, &Placement::new())
        .run(&baseline_tasks)
        .unwrap();

    let mut opt_bundle = run.bundle.clone();
    for i in 0..2 {
        transform::drop_object_ops(&mut opt_bundle, &format!("aggregate_i{i}"), "/contact_map");
    }
    let opt_run = dayu_core::workflow::RecordedRun {
        bundle: opt_bundle,
        stage_of: run.stage_of.clone(),
        compute_ns: run.compute_ns.clone(),
        stage_names: run.stage_names.clone(),
        outcomes: run.outcomes.clone(),
    };
    let mut opt_tasks = to_sim_tasks(&opt_run, &schedule);
    let mut placement = Placement::new();
    for i in 0..2 {
        for t in 0..4 {
            placement.place(
                ddmd::sim_file(i, t),
                FileLocation::NodeLocal(0, TierKind::NvmeSsd),
            );
        }
        transform::co_schedule(
            &mut opt_tasks,
            &format!("aggregate_i{i}"),
            &format!("inference_i{i}"),
        );
    }
    let optimized = Engine::new(&cluster, &placement).run(&opt_tasks).unwrap();
    assert!(
        optimized.makespan_ns < baseline.makespan_ns,
        "optimized {} should beat baseline {}",
        optimized.makespan_ns,
        baseline.makespan_ns
    );
}

#[test]
fn pyflextrkr_diagnosis_artifacts_round_trip() {
    let fs = MemFs::new();
    let cfg = pyflextrkr::PyflextrkrConfig {
        input_files: 3,
        input_bytes: 16 << 10,
        feature_bytes: 8 << 10,
        small_datasets: 12,
        small_dataset_bytes: 300,
        small_dataset_accesses: 2,
        compute_ns: 0,
    };
    pyflextrkr::prepare_inputs_untraced(&fs, &cfg).unwrap();
    let diagnosis = dayu_core::diagnose(&pyflextrkr::workflow(&cfg), &fs).unwrap();
    assert!(diagnosis
        .analysis
        .findings_of("small-scattered-datasets")
        .next()
        .is_some());

    let dir = std::env::temp_dir().join(format!("dayu-e2e-{}", std::process::id()));
    diagnosis.write_artifacts(&dir).unwrap();
    // The persisted trace re-analyzes to the same findings.
    let text = std::fs::read(dir.join("trace.jsonl")).unwrap();
    let bundle = TraceBundle::read_jsonl(&text[..]).unwrap();
    let again = Analysis::run(&bundle);
    assert_eq!(again.findings, diagnosis.analysis.findings);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn arldm_layout_recommendation_closes_the_loop() {
    // Contiguous run → advisor says "go chunked" → chunked run → advisor
    // no longer complains and write-op count drops.
    let cfg = |layout| arldm::ArldmConfig {
        stories: 16,
        mean_image_bytes: 2 << 10,
        mean_text_bytes: 128,
        layout,
        chunk_elems: 4,
        batch: 1,
        compute_ns: 0,
    };
    let fs = MemFs::new();
    let before = record(&arldm::workflow(&cfg(LayoutKind::Contiguous)), &fs).unwrap();
    let analysis = Analysis::run(&before.bundle);
    let recs = advise(&analysis.findings);
    let wants_chunked = recs
        .iter()
        .any(|r| matches!(&r.action, Action::ChangeLayout { to, .. } if to == "chunked"));
    assert!(wants_chunked, "advisor recommends chunking VL data");

    let fs = MemFs::new();
    let after = record(&arldm::workflow(&cfg(LayoutKind::Chunked)), &fs).unwrap();
    let analysis_after = Analysis::run(&after.bundle);
    assert_eq!(
        analysis_after
            .findings_of("contiguous-varlen-dataset")
            .count(),
        0,
        "finding resolved after applying the recommendation"
    );
    let writes = |b: &TraceBundle| {
        b.vfd
            .iter()
            .filter(|r| {
                r.kind == dayu_core::trace::vfd::IoKind::Write && r.task.as_str() == "arldm_saveh5"
            })
            .count()
    };
    assert!(
        writes(&before.bundle) > writes(&after.bundle),
        "write ops drop after the layout change"
    );
}

#[test]
fn stage_in_transform_composes_with_recorded_traces() {
    let fs = MemFs::new();
    let spec = WorkflowSpec::new("staging")
        .stage(
            "w",
            vec![TaskSpec::new("writer", |io: &TaskIo| {
                let f = io.create("shared.h5")?;
                let mut ds = f.root().create_dataset(
                    "d",
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[1 << 20]),
                )?;
                ds.write(&vec![1u8; 1 << 20])?;
                ds.close()?;
                f.close()
            })],
        )
        .stage(
            "r",
            vec![
                TaskSpec::new("reader_0", |io: &TaskIo| {
                    let f = io.open("shared.h5")?;
                    f.root().open_dataset("d")?.read()?;
                    f.close()
                }),
                TaskSpec::new("reader_1", |io: &TaskIo| {
                    let f = io.open("shared.h5")?;
                    f.root().open_dataset("d")?.read()?;
                    f.close()
                }),
            ],
        );
    let run = record(&spec, &fs).unwrap();
    let cluster = Cluster::gpu_cluster(2);
    let mut tasks = to_sim_tasks(&run, &Schedule::round_robin(&run, 2));
    let mut placement = Placement::new();
    let bytes = file_written_bytes(&run, "shared.h5");
    transform::stage_in(
        &mut tasks,
        &mut placement,
        "shared.h5",
        bytes,
        0,
        TierKind::Ram,
    );
    let report = Engine::new(&cluster, &placement).run(&tasks).unwrap();
    // The copy ran between the writer and the readers.
    let copy = report.task("stage_in:shared.h5").unwrap();
    let writer = report.task("writer").unwrap();
    let r0 = report.task("reader_0").unwrap();
    assert!(copy.start_ns >= writer.end_ns);
    assert!(r0.start_ns >= copy.end_ns);
}
