//! Replay matrix: every chaos/crash scenario of the paper's workloads must
//! bundle, replay, and validate deterministically:
//!
//! * `record_to_bundle` under a [`ManualClock`] freezes a run whose replay
//!   passes all three checks (op stream, outcomes, final images) with zero
//!   divergences — for clean, transient-chaos, and crash+journal+resume
//!   runs alike;
//! * the replayed trace is *byte-identical* to the bundled one (the manual
//!   clock removes wall time, the seeds remove everything else);
//! * the `.drb` container round-trips losslessly and verifies;
//! * two same-seed bundles diff empty, and a perturbed-seed pair produces
//!   a diff that names the first divergent task and its causal ancestors.

use dayu::prelude::*;
use dayu_core::hdf::Durability;
use dayu_core::trace::ManualClock;
use dayu_core::vfd::CrashSchedule;
use dayu_core::workloads::{arldm, ddmd, pyflextrkr};
use std::sync::Arc;

/// A workload instance small enough to record dozens of times.
fn workload(name: &str) -> (WorkflowSpec, MemFs) {
    let fs = MemFs::new();
    let spec = match name {
        "ddmd" => ddmd::workflow(&ddmd::DdmdConfig {
            sim_tasks: 2,
            iterations: 1,
            contact_map_dim: 8,
            point_cloud_points: 16,
            scalar_series_len: 8,
            compute_ns: 10,
            ..Default::default()
        }),
        "pyflextrkr" => {
            let cfg = pyflextrkr::PyflextrkrConfig {
                input_files: 2,
                input_bytes: 4 << 10,
                feature_bytes: 2 << 10,
                small_datasets: 4,
                small_dataset_bytes: 64,
                small_dataset_accesses: 2,
                compute_ns: 10,
            };
            pyflextrkr::prepare_inputs_untraced(&fs, &cfg).expect("inputs");
            pyflextrkr::workflow(&cfg)
        }
        "arldm" => arldm::workflow(&arldm::ArldmConfig {
            stories: 6,
            mean_image_bytes: 1024,
            mean_text_bytes: 64,
            chunk_elems: 4,
            batch: 2,
            compute_ns: 10,
            ..Default::default()
        }),
        other => panic!("unknown workload {other}"),
    };
    (spec, fs)
}

const WORKLOADS: [&str; 3] = ["ddmd", "pyflextrkr", "arldm"];

/// The failure shapes the matrix sweeps. Each returns deterministic
/// [`RecordOptions`] (zero backoff, fixed seeds) *without* a clock; the
/// matrix adds the [`ManualClock`] itself.
fn scenarios() -> Vec<(&'static str, RecordOptions)> {
    vec![
        ("clean", RecordOptions::default()),
        (
            "transient-chaos",
            RecordOptions::default()
                .with_chaos(FaultSchedule::new(5).with_transient_at(3))
                .with_retry(RetryPolicy::default().with_backoff(0, 0)),
        ),
        (
            "crash-journal-resume",
            RecordOptions::default()
                .with_crash(CrashSchedule::new(11).with_crash_at(6).torn())
                .with_durability(Durability::Journal)
                .with_resume(true)
                .with_retry(RetryPolicy::default().attempts(3).with_backoff(0, 0)),
        ),
    ]
}

fn manual(opts: RecordOptions) -> RecordOptions {
    RecordOptions {
        clock: Some(Arc::new(ManualClock::new())),
        ..opts
    }
}

/// Records one (workload, scenario) cell into a bundle under a manual
/// clock, stamping the scenario name into the provenance params.
fn bundle_of(name: &str, scenario: &str, opts: &RecordOptions) -> ReplayBundle {
    let (spec, fs) = workload(name);
    let (_, bundle) = record_to_bundle(
        &spec,
        &fs,
        &manual(opts.clone()),
        format!("scenario={scenario}"),
        "replay-matrix",
        true,
    )
    .unwrap_or_else(|e| panic!("{name}/{scenario}: record failed: {e}"));
    bundle
}

#[test]
fn every_scenario_bundles_and_replays_byte_identically() {
    for name in WORKLOADS {
        for (scenario, opts) in scenarios() {
            let bundle = bundle_of(name, scenario, &opts);
            assert!(bundle.manifest.manual_clock);
            assert_eq!(
                bundle.trace.meta.origin.as_ref().map(|o| o.params.as_str()),
                Some(format!("scenario={scenario}").as_str()),
                "{name}/{scenario}: provenance missing"
            );

            // The container round-trips losslessly and verifies.
            let bytes = bundle.to_bytes();
            ReplayBundle::verify_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{name}/{scenario}: verify failed: {e}"));
            let back = ReplayBundle::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{name}/{scenario}: parse failed: {e}"));
            assert_eq!(back.to_bytes(), bytes, "{name}/{scenario}: not a fixpoint");

            // The replay validates on every active check…
            let (spec, fs) = workload(name);
            let report = replay_bundle(&back, &spec, &fs)
                .unwrap_or_else(|e| panic!("{name}/{scenario}: replay failed: {e}"));
            assert!(report.op_checked, "{name}/{scenario}: sampled recording?");
            assert!(
                report.validated(),
                "{name}/{scenario}: divergence={:?} mismatches={:?}",
                report.divergence,
                report.mismatches
            );

            // …and reproduces the recorded trace bit-for-bit.
            assert_eq!(
                report.run.bundle.to_binary_bytes(),
                bundle.trace.to_binary_bytes(),
                "{name}/{scenario}: replayed trace differs from recording"
            );
        }
    }
}

#[test]
fn same_seed_bundles_diff_empty() {
    for name in WORKLOADS {
        for (scenario, opts) in scenarios() {
            let a = bundle_of(name, scenario, &opts);
            let b = bundle_of(name, scenario, &opts);
            let diff = diff_traces(&a.trace, &b.trace);
            assert!(
                diff.is_empty(),
                "{name}/{scenario}: same-seed runs diverged: {:?}",
                diff.first
            );
            assert!(diff.finding().is_none());
        }
    }
}

#[test]
fn perturbed_seed_diff_names_the_divergent_task_and_its_ancestors() {
    for name in WORKLOADS {
        let clean = bundle_of(name, "clean", &RecordOptions::default());
        // Kill the device at the first payload op: every writing task is
        // salvaged, so its op stream is cut short relative to the clean run.
        let perturbed = bundle_of(
            name,
            "dead-at-0",
            &RecordOptions {
                retry: RetryPolicy::default().with_backoff(0, 0),
                chaos: Some(FaultSchedule::new(7).with_dead_at(0)),
                ..Default::default()
            },
        );
        let diff = diff_traces(&clean.trace, &perturbed.trace);
        assert!(!diff.is_empty(), "{name}: dead-at-0 run matched clean run");
        let first = diff
            .first
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: non-empty diff without a first divergence"));
        assert!(
            clean
                .trace
                .meta
                .task_order
                .iter()
                .any(|t| t.as_str() == first.task),
            "{name}: first divergence names unknown task {:?}",
            first.task
        );

        // The diff surfaces as a finding the advisor turns into an
        // investigation pointing at the same task and event.
        let finding = diff.finding().expect("non-empty diff yields a finding");
        let recs = advise(&[finding]);
        assert_eq!(recs.len(), 1);
        match &recs[0].action {
            Action::InvestigateDivergence { task, event_index } => {
                assert_eq!(task, &first.task);
                assert_eq!(*event_index, first.event_index);
            }
            other => panic!("{name}: expected InvestigateDivergence, got {other:?}"),
        }
    }
}

#[test]
fn truncated_and_tampered_bundles_are_rejected_structurally() {
    let bundle = bundle_of("ddmd", "clean", &RecordOptions::default());
    let bytes = bundle.to_bytes();
    // Chop the artifact at a handful of interesting boundaries.
    for cut in [0, 4, bytes.len() / 3, bytes.len() - 1] {
        assert!(ReplayBundle::verify_bytes(&bytes[..cut]).is_err());
        assert!(ReplayBundle::from_bytes(&bytes[..cut]).is_err());
    }
    // Flip one byte deep inside the trace section.
    let mut tampered = bytes.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    assert!(ReplayBundle::verify_bytes(&tampered).is_err());
    assert!(ReplayBundle::from_bytes(&tampered).is_err());
}
