//! Chaos matrix: sweep seeded fault schedules over the paper's workloads
//! and hold the fault-tolerance contract:
//!
//! * `record_opts` never panics — every task either succeeds (possibly
//!   after retries) or contributes a salvaged, `degraded`-marked fragment;
//! * the analyzer and advisor consume whatever survived without panicking,
//!   and a degraded bundle is flagged by the degraded-trace detector;
//! * a degraded run's FTG is a *subset* of the clean run's (salvage never
//!   invents dataflow);
//! * every bundle, degraded or not, round-trips through JSONL;
//! * a fixed chaos seed reproduces the run bit-for-bit.

use dayu::prelude::*;
use dayu_core::trace::ManualClock;
use dayu_core::workloads::{arldm, ddmd, pyflextrkr};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A workload instance small enough to record dozens of times.
fn workload(name: &str) -> (WorkflowSpec, MemFs) {
    let fs = MemFs::new();
    let spec = match name {
        "ddmd" => ddmd::workflow(&ddmd::DdmdConfig {
            sim_tasks: 2,
            iterations: 1,
            contact_map_dim: 8,
            point_cloud_points: 16,
            scalar_series_len: 8,
            compute_ns: 10,
            ..Default::default()
        }),
        "pyflextrkr" => {
            let cfg = pyflextrkr::PyflextrkrConfig {
                input_files: 2,
                input_bytes: 4 << 10,
                feature_bytes: 2 << 10,
                small_datasets: 4,
                small_dataset_bytes: 64,
                small_dataset_accesses: 2,
                compute_ns: 10,
            };
            pyflextrkr::prepare_inputs_untraced(&fs, &cfg).expect("inputs");
            pyflextrkr::workflow(&cfg)
        }
        "arldm" => arldm::workflow(&arldm::ArldmConfig {
            stories: 6,
            mean_image_bytes: 1024,
            mean_text_bytes: 64,
            chunk_elems: 4,
            batch: 2,
            compute_ns: 10,
            ..Default::default()
        }),
        other => panic!("unknown workload {other}"),
    };
    (spec, fs)
}

const WORKLOADS: [&str; 3] = ["ddmd", "pyflextrkr", "arldm"];

/// The fault shapes the matrix sweeps, all derived from one seed.
fn schedules(seed: u64) -> Vec<FaultSchedule> {
    vec![
        // One transient hiccup early, plus occasional injected latency.
        FaultSchedule::new(seed)
            .with_transient_at(3)
            .with_latency(0.05, 1_000),
        // The device dies a few payload ops in and stays dead.
        FaultSchedule::new(seed).with_dead_at(6),
        // Random faults; sticky, so an unlucky task is lost for good.
        FaultSchedule::new(seed).with_fault_prob(0.02).sticky(),
    ]
}

/// FTG edges as order-independent `kind:label -> kind:label` strings.
fn edge_labels(g: &Graph) -> BTreeSet<String> {
    g.edges
        .iter()
        .map(|e| {
            let (f, t) = (&g.nodes[e.from], &g.nodes[e.to]);
            format!("{:?}:{} -> {:?}:{}", f.kind, f.label, t.kind, t.label)
        })
        .collect()
}

#[test]
fn chaos_matrix_never_panics_and_degrades_to_subsets() {
    for name in WORKLOADS {
        let (spec, fs) = workload(name);
        let clean = record(&spec, &fs).expect("clean run");
        let clean_edges = edge_labels(&Analysis::run(&clean.bundle).ftg);

        for seed in [11, 2026, 0xDA1E] {
            for (i, schedule) in schedules(seed).into_iter().enumerate() {
                let (spec, fs) = workload(name);
                let opts = RecordOptions {
                    retry: RetryPolicy::default().with_backoff(1_000, 10_000),
                    chaos: Some(schedule),
                    ..Default::default()
                };
                let run = record_opts(&spec, &fs, &opts)
                    .unwrap_or_else(|e| panic!("{name}/seed {seed}/schedule {i}: {e}"));

                // Per-task contract: success or salvaged fragment.
                for o in &run.outcomes {
                    assert!(
                        o.succeeded() || o.degraded,
                        "{name}/seed {seed}/schedule {i}: task {} neither \
                         succeeded nor salvaged: {o:?}",
                        o.task
                    );
                }

                // Analyzer and advisor accept whatever survived.
                let analysis = Analysis::run(&run.bundle);
                let _ = advise(&analysis.findings);
                if run.degraded() {
                    assert!(
                        analysis
                            .findings
                            .iter()
                            .any(|f| f.category() == "degraded-trace"),
                        "{name}/seed {seed}/schedule {i}: degraded run not flagged"
                    );
                }

                // Salvage never invents dataflow the clean run lacks.
                let edges = edge_labels(&analysis.ftg);
                assert!(
                    edges.is_subset(&clean_edges),
                    "{name}/seed {seed}/schedule {i}: extra edges {:?}",
                    edges.difference(&clean_edges).collect::<Vec<_>>()
                );

                // Degraded or not, the bundle round-trips through JSONL.
                let bytes = run.bundle.to_jsonl_bytes();
                assert_eq!(TraceBundle::read_jsonl(&bytes[..]).unwrap(), run.bundle);
            }
        }
    }
}

#[test]
fn fixed_seed_chaos_is_fully_deterministic() {
    // A virtual clock removes wall-time from the bundle; the chaos seed is
    // then the only remaining source of variation, so two runs must match
    // bit-for-bit — outcomes, attempt counts, and salvaged fragments alike.
    let run = |schedule: FaultSchedule| {
        let (spec, fs) = workload("ddmd");
        let opts = RecordOptions {
            retry: RetryPolicy::default().with_backoff(0, 0),
            chaos: Some(schedule),
            clock: Some(Arc::new(ManualClock::new())),
            ..Default::default()
        };
        record_opts(&spec, &fs, &opts).expect("salvage mode never errors")
    };

    // Probabilistic faults: the per-task RNG streams derive from the seed.
    let prob = |seed| FaultSchedule::new(seed).with_fault_prob(0.05).sticky();
    let a = run(prob(7));
    let b = run(prob(7));
    assert_eq!(a.outcomes, b.outcomes, "same seed, same per-task fate");
    assert_eq!(a.bundle, b.bundle, "same seed, identical bundle");

    // Guaranteed degradation: every task dies at its first payload op, so
    // the salvaged bundles (not just the outcomes) must also reproduce.
    let c = run(FaultSchedule::new(7).with_dead_at(0));
    let d = run(FaultSchedule::new(7).with_dead_at(0));
    assert!(c.degraded(), "dead-at-0 must lose tasks");
    assert_eq!(c.outcomes, d.outcomes);
    assert_eq!(c.bundle, d.bundle, "identical salvaged fragments");
    assert!(
        c.outcomes.iter().any(|o| o.attempts > 1),
        "retries happened"
    );
}
