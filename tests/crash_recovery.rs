//! Crash matrix: sweep seeded torn-write crash points over resume-aware
//! workloads under journaled durability, and hold the crash-consistency
//! contract at *every* point:
//!
//! * the run completes — the retry either resumes from the recovered
//!   image or restarts the file from scratch, but never fails;
//! * every committed dataset round-trips bit-for-bit after the run;
//! * every surviving file image is fsck-clean;
//! * a resumed-from-recovery task carries the `Recovered` marker in its
//!   outcome and in the trace bundle, and the marker survives JSONL;
//! * each workload shape exercises actual journal recovery at least once
//!   across its sweep (the matrix is not vacuously green).

use dayu::prelude::*;
use dayu_core::hdf::Durability;
use dayu_core::trace::TaskKey;
use dayu_core::vfd::CrashSchedule;

/// One workload shape of the matrix: a spec factory plus a verifier that
/// re-reads every committed dataset from the final images.
struct Shape {
    name: &'static str,
    seed: u64,
    spec: fn() -> WorkflowSpec,
    verify: fn(&MemFs),
}

/// Opens `file` read-only (write-through: verification must not touch
/// the image) and asserts dataset `ds` holds `want`.
fn assert_ds(fs: &MemFs, file: &str, ds: &str, want: &[u64]) {
    let vfd = fs
        .open_existing(file)
        .unwrap_or_else(|| panic!("{file} missing"));
    let f =
        H5File::open(vfd, file, FileOptions::default()).unwrap_or_else(|e| panic!("{file}: {e}"));
    let mut d = f
        .root()
        .open_dataset(ds)
        .unwrap_or_else(|e| panic!("{file}/{ds}: {e}"));
    assert_eq!(d.read_u64s().unwrap(), want, "{file}/{ds}");
    d.close().unwrap();
    f.close().unwrap();
}

/// Shape 1 — one task, one file, two commit epochs. The crash window
/// covers bootstrap, the first epoch, the inter-commit gap, and close.
fn single_file() -> WorkflowSpec {
    WorkflowSpec::new("single").stage(
        "s",
        vec![TaskSpec::new("writer", |io: &TaskIo| {
            let f = io.create("c.h5")?;
            let mut a = f
                .root()
                .ensure_dataset("a", DatasetBuilder::new(DataType::Int { width: 8 }, &[32]))?;
            a.write_u64s(&[7; 32])?;
            a.close()?;
            f.flush()?; // "a" is durable from here on
            let mut b = f
                .root()
                .ensure_dataset("b", DatasetBuilder::new(DataType::Int { width: 8 }, &[32]))?;
            b.write_u64s(&[9; 32])?;
            b.close()?;
            f.close()
        })],
    )
}

fn verify_single(fs: &MemFs) {
    assert_ds(fs, "c.h5", "a", &[7; 32]);
    assert_ds(fs, "c.h5", "b", &[9; 32]);
}

/// Shape 2 — a two-stage pipeline. Each task has its own crash
/// controller, so the seeded point strikes the producer *and* the
/// consumer; the consumer must still observe the producer's committed
/// output through its own recovery.
fn pipeline() -> WorkflowSpec {
    WorkflowSpec::new("pipeline")
        .stage(
            "produce",
            vec![TaskSpec::new("producer", |io: &TaskIo| {
                let f = io.create("in.h5")?;
                let mut x = f
                    .root()
                    .ensure_dataset("x", DatasetBuilder::new(DataType::Int { width: 8 }, &[16]))?;
                x.write_u64s(&[3; 16])?;
                x.close()?;
                f.flush()?;
                let mut y = f
                    .root()
                    .ensure_dataset("y", DatasetBuilder::new(DataType::Int { width: 8 }, &[16]))?;
                y.write_u64s(&[5; 16])?;
                y.close()?;
                f.close()
            })],
        )
        .stage(
            "consume",
            vec![TaskSpec::new("consumer", |io: &TaskIo| {
                let src = io.open("in.h5")?;
                let mut x = src.root().open_dataset("x")?;
                let xs = x.read_u64s()?;
                x.close()?;
                src.close()?;
                let f = io.create("out.h5")?;
                let mut s = f
                    .root()
                    .ensure_dataset("sum", DatasetBuilder::new(DataType::Int { width: 8 }, &[1]))?;
                s.write_u64s(&[xs.iter().sum()])?;
                s.close()?;
                f.flush()?;
                let mut c = f.root().ensure_dataset(
                    "copy",
                    DatasetBuilder::new(DataType::Int { width: 8 }, &[16]),
                )?;
                c.write_u64s(&xs)?;
                c.close()?;
                f.close()
            })],
        )
}

fn verify_pipeline(fs: &MemFs) {
    assert_ds(fs, "in.h5", "x", &[3; 16]);
    assert_ds(fs, "in.h5", "y", &[5; 16]);
    assert_ds(fs, "out.h5", "sum", &[48]);
    assert_ds(fs, "out.h5", "copy", &[3; 16]);
}

/// Shape 3 — one task fanning out to two files. The crash controller's
/// write counter spans both files, so the point can land in either
/// image; recovery of one must not disturb the other.
fn fanout() -> WorkflowSpec {
    WorkflowSpec::new("fanout").stage(
        "s",
        vec![TaskSpec::new("fanout", |io: &TaskIo| {
            for (i, name) in ["f0.h5", "f1.h5"].iter().enumerate() {
                let f = io.create(name)?;
                let mut d = f
                    .root()
                    .ensure_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[24]))?;
                d.write_u64s(&[i as u64 + 1; 24])?;
                d.close()?;
                f.flush()?;
                let mut t = f.root().ensure_dataset(
                    "tail",
                    DatasetBuilder::new(DataType::Int { width: 8 }, &[8]),
                )?;
                t.write_u64s(&[10 + i as u64; 8])?;
                t.close()?;
                f.close()?;
            }
            Ok(())
        })],
    )
}

fn verify_fanout(fs: &MemFs) {
    assert_ds(fs, "f0.h5", "d", &[1; 24]);
    assert_ds(fs, "f0.h5", "tail", &[10; 8]);
    assert_ds(fs, "f1.h5", "d", &[2; 24]);
    assert_ds(fs, "f1.h5", "tail", &[11; 8]);
}

const SHAPES: [Shape; 3] = [
    Shape {
        name: "single-file",
        seed: 11,
        spec: single_file,
        verify: verify_single,
    },
    Shape {
        name: "pipeline",
        seed: 23,
        spec: pipeline,
        verify: verify_pipeline,
    },
    Shape {
        name: "fanout",
        seed: 37,
        spec: fanout,
        verify: verify_fanout,
    },
];

/// Crash points per shape. Wide enough to cover bootstrap, journal
/// append, commit apply, and (for late points) "never reached".
const CRASH_POINTS: std::ops::Range<u64> = 1..32;

#[test]
fn crash_matrix_recovers_committed_data_at_every_point() {
    for shape in &SHAPES {
        let mut recovered_points = 0usize;
        for crash_at in CRASH_POINTS {
            let ctx = |msg: &str| format!("{} crash@{crash_at}: {msg}", shape.name);
            let spec = (shape.spec)();
            let fs = MemFs::new();
            let opts = RecordOptions::default()
                .with_crash(
                    CrashSchedule::new(shape.seed)
                        .with_crash_at(crash_at)
                        .torn(),
                )
                .with_durability(Durability::Journal)
                .with_resume(true)
                .with_retry(RetryPolicy::default().attempts(3).with_backoff(0, 0));
            let run = record_opts(&spec, &fs, &opts).unwrap();

            // Every task completed; nothing was salvaged as degraded.
            assert!(!run.degraded(), "{}", ctx("degraded run"));
            for o in &run.outcomes {
                assert!(
                    o.succeeded(),
                    "{}",
                    ctx(&format!("{}: {:?}", o.task, o.error))
                );
            }

            // Committed datasets round-trip from the final images.
            (shape.verify)(&fs);

            // Every surviving image is fsck-clean after the run.
            for name in fs.list() {
                let bytes = fs.snapshot(&name).unwrap();
                assert!(
                    fsck_bytes(&bytes).is_clean(),
                    "{}",
                    ctx(&format!("{name} not fsck-clean"))
                );
            }

            // Recovery markers are consistent across outcome, run and
            // bundle, and survive a JSONL round-trip.
            let recovered: Vec<&str> = run
                .outcomes
                .iter()
                .filter(|o| o.recovered())
                .map(|o| o.task.as_str())
                .collect();
            if !recovered.is_empty() {
                recovered_points += 1;
                assert!(run.recovered(), "{}", ctx("run.recovered() false"));
                for task in &recovered {
                    assert!(
                        run.bundle.is_recovered(&TaskKey::new(*task)),
                        "{}",
                        ctx(&format!("{task} missing bundle marker"))
                    );
                }
                let back = TraceBundle::read_jsonl(&run.bundle.to_jsonl_bytes()[..]).unwrap();
                assert_eq!(
                    back.meta.recovered_tasks,
                    run.bundle.meta.recovered_tasks,
                    "{}",
                    ctx("markers lost in JSONL")
                );
            } else {
                assert!(!run.recovered(), "{}", ctx("phantom recovery marker"));
            }
        }
        assert!(
            recovered_points > 0,
            "{}: no crash point exercised journal recovery",
            shape.name
        );
    }
}

/// The recovered marker feeds the analyzer/advisor chain end to end:
/// detector surfaces it as a `recovered-task` finding and the advisor
/// asks for an output audit — without flagging the trace as degraded.
#[test]
fn recovered_run_flows_through_analyzer_and_advisor() {
    // Find a crash point that actually recovers (shape 1's sweep proves
    // one exists), then analyze that run.
    for crash_at in CRASH_POINTS {
        let spec = single_file();
        let fs = MemFs::new();
        let opts = RecordOptions::default()
            .with_crash(CrashSchedule::new(11).with_crash_at(crash_at).torn())
            .with_durability(Durability::Journal)
            .with_resume(true)
            .with_retry(RetryPolicy::default().attempts(3).with_backoff(0, 0));
        let run = record_opts(&spec, &fs, &opts).unwrap();
        if !run.recovered() {
            continue;
        }
        let analysis = Analysis::run(&run.bundle);
        let findings: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| matches!(f, Finding::RecoveredTask { .. }))
            .collect();
        assert_eq!(findings.len(), 1, "one recovered task, one finding");
        assert!(
            matches!(findings[0], Finding::RecoveredTask { task } if task == "writer"),
            "{:?}",
            findings[0]
        );
        assert!(
            !analysis
                .findings
                .iter()
                .any(|f| matches!(f, Finding::DegradedTrace { .. })),
            "a recovered run is not a degraded trace"
        );
        let recs = advise(&analysis.findings);
        assert!(
            recs.iter().any(|r| matches!(
                &r.action,
                Action::AuditRecoveredOutputs { task } if task == "writer"
            )),
            "advisor must ask for an output audit"
        );
        return;
    }
    panic!("no crash point in the sweep exercised recovery");
}
