//! Failure-path integration: storage faults under the full stack must
//! surface as errors (never panics or corruption), and the profiler's
//! traces must stay consistent — failed operations are not recorded.

use dayu::prelude::*;
use dayu_core::vfd::{FaultPlan, FaultyVfd, MemFs, MemVfd};

fn faulty_file(plan: FaultPlan) -> (Mapper, dayu_core::hdf::Result<H5File>) {
    let mapper = Mapper::new("faulty");
    mapper.set_task("t");
    let inner = FaultyVfd::new(MemVfd::new(), plan);
    let file = H5File::create(
        mapper.wrap_vfd(inner, "f.h5"),
        "f.h5",
        mapper.file_options(),
    );
    (mapper, file)
}

#[test]
fn create_on_dead_device_fails_cleanly() {
    let (mapper, file) = faulty_file(FaultPlan::dead_after(0));
    assert!(file.is_err(), "superblock write must fail");
    let bundle = mapper.into_bundle();
    // No data-moving ops were recorded (the open record may exist).
    assert_eq!(bundle.vfd.iter().filter(|r| r.kind.moves_data()).count(), 0);
}

#[test]
fn mid_write_fault_surfaces_and_trace_stays_consistent() {
    // Let file creation succeed, then kill the device during dataset I/O.
    let (mapper, file) = faulty_file(FaultPlan::dead_after(20));
    let file = file.expect("creation survives 20 ops");
    let result = (|| -> dayu_core::hdf::Result<()> {
        let mut ds = file.root().create_dataset(
            "d",
            DatasetBuilder::new(DataType::Int { width: 1 }, &[1 << 16]).chunks(&[4096]),
        )?;
        ds.write(&vec![7u8; 1 << 16])?;
        ds.close()?;
        file.close()
    })();
    assert!(result.is_err(), "the injected fault must surface");

    let bundle = mapper.into_bundle();
    // Every recorded op is one that actually completed: offsets/lengths are
    // internally consistent and serialization round-trips.
    for r in &bundle.vfd {
        if r.kind.moves_data() {
            assert!(r.len > 0 || r.kind == dayu_core::trace::vfd::IoKind::Read);
            assert!(r.end >= r.start);
        }
    }
    let bytes = bundle.to_jsonl_bytes();
    let back = TraceBundle::read_jsonl(&bytes[..]).unwrap();
    assert_eq!(back, bundle);
}

#[test]
fn transient_fault_is_retryable_at_the_application_level() {
    let mapper = Mapper::new("transient");
    mapper.set_task("t");
    let inner = FaultyVfd::new(MemVfd::new(), FaultPlan::transient_at(12));
    let file = H5File::create(
        mapper.wrap_vfd(inner, "f.h5"),
        "f.h5",
        mapper.file_options(),
    )
    .expect("creation fits under 12 ops");
    let mut ds = file
        .root()
        .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[64]))
        .unwrap();
    // Enough writes to be certain one crosses the injected op; exactly one
    // fails, and retries succeed.
    let mut failures = 0;
    let mut last_ok = 0u64;
    for attempt in 0..20u64 {
        match ds.write_u64s(&[attempt; 64]) {
            Ok(()) => last_ok = attempt,
            Err(_) => failures += 1,
        }
    }
    assert_eq!(failures, 1, "exactly one injected failure");
    assert_eq!(last_ok, 19);
    assert_eq!(ds.read_u64s().unwrap(), vec![19u64; 64], "last write won");
    ds.close().unwrap();
    file.close().unwrap();
}

#[test]
fn workflow_task_failure_aborts_the_record_cleanly() {
    // A workflow whose second stage fails: record() returns the error and
    // the shared filesystem still holds stage-1 output intact.
    let fs = MemFs::new();
    let spec = WorkflowSpec::new("failing")
        .stage(
            "ok",
            vec![TaskSpec::new("producer", |io: &TaskIo| {
                let f = io.create("good.h5")?;
                let mut ds = f
                    .root()
                    .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 1 }, &[8]))?;
                ds.write(&[1; 8])?;
                ds.close()?;
                f.close()
            })],
        )
        .stage(
            "bad",
            vec![TaskSpec::new("crasher", |io: &TaskIo| {
                io.open("does_not_exist.h5").map(|_| ())
            })],
        );
    let err = match record(&spec, &fs) {
        Err(e) => e,
        Ok(_) => panic!("record should fail"),
    };
    assert!(matches!(err, HdfError::NotFound(_)));
    // Stage-1 output survives and is readable.
    let f = H5File::open(fs.open("good.h5"), "good.h5", FileOptions::default()).unwrap();
    assert_eq!(
        f.root().open_dataset("d").unwrap().read().unwrap(),
        vec![1; 8]
    );
    f.close().unwrap();
}
