//! Failure-path integration: storage faults under the full stack must
//! surface as errors (never panics or corruption), and the profiler's
//! traces must stay consistent — failed operations are not recorded.
//!
//! Fault accounting: only raw-data (payload-moving) operations advance the
//! chaos engine's op counter, so `FaultPlan::dead_after(n)` means "after
//! `n` payload ops", independent of how much metadata traffic (superblock,
//! object headers) the format library generates around them. A device that
//! must refuse even the superblock write is modeled with
//! [`FaultSchedule::dead_on_arrival`].

use dayu::prelude::*;
use dayu_core::vfd::{FaultInjector, FaultPlan, FaultyVfd, MemFs, MemVfd};

fn faulty_file(plan: FaultPlan) -> (Mapper, FaultInjector, dayu_core::hdf::Result<H5File>) {
    let mapper = Mapper::new("faulty");
    mapper.set_task("t");
    let inner = FaultyVfd::new(MemVfd::new(), plan);
    let inj = inner.injector().clone();
    let file = H5File::create(
        mapper.wrap_vfd(inner, "f.h5"),
        "f.h5",
        mapper.file_options(),
    );
    (mapper, inj, file)
}

#[test]
fn data_death_spares_metadata_creation() {
    // dead_after(0): the very first raw-data op fails, but file creation is
    // metadata-only traffic and is not counted against the fault schedule.
    let (mapper, inj, file) = faulty_file(FaultPlan::dead_after(0));
    let file = file.expect("metadata-only creation survives a data-dead device");
    assert_eq!(inj.data_ops(), 0, "creation moved no payload bytes");
    assert!(inj.meta_ops() > 0, "creation did go through the device");
    let result = (|| -> dayu_core::hdf::Result<()> {
        let mut ds = file
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 1 }, &[64]))?;
        ds.write(&[7u8; 64])?;
        ds.close()
    })();
    assert!(
        result.is_err(),
        "the first payload op must hit the dead device"
    );
    assert!(inj.is_dead());
    assert!(inj.faults_injected() >= 1);
    // The failed op was never recorded; what was recorded round-trips.
    let bundle = mapper.into_bundle();
    let bytes = bundle.to_jsonl_bytes();
    assert_eq!(TraceBundle::read_jsonl(&bytes[..]).unwrap(), bundle);
}

#[test]
fn born_dead_device_fails_creation() {
    // dead_on_arrival refuses everything, metadata included: even the
    // superblock write fails, and the error names the chaos seed.
    let mapper = Mapper::new("faulty");
    mapper.set_task("t");
    let schedule = FaultSchedule::new(0xDEAD).dead_on_arrival();
    let inner = FaultyVfd::with_injector(MemVfd::new(), schedule.injector_for("t"));
    let file = H5File::create(
        mapper.wrap_vfd(inner, "f.h5"),
        "f.h5",
        mapper.file_options(),
    );
    let err = file.err().expect("superblock write must fail");
    assert!(err.to_string().contains("chaos seed"), "{err}");
    let bundle = mapper.into_bundle();
    // No data-moving ops were recorded (the open record may exist).
    assert_eq!(bundle.vfd.iter().filter(|r| r.kind.moves_data()).count(), 0);
}

#[test]
fn mid_write_fault_surfaces_and_trace_stays_consistent() {
    // Creation and the first 8 chunk writes succeed, then the device dies
    // mid dataset write (the 64 KiB payload spans 16 chunks of 4 KiB).
    let (mapper, _inj, file) = faulty_file(FaultPlan::dead_after(8));
    let file = file.expect("creation is metadata-only and survives");
    let result = (|| -> dayu_core::hdf::Result<()> {
        let mut ds = file.root().create_dataset(
            "d",
            DatasetBuilder::new(DataType::Int { width: 1 }, &[1 << 16]).chunks(&[4096]),
        )?;
        ds.write(&vec![7u8; 1 << 16])?;
        ds.close()?;
        file.close()
    })();
    assert!(result.is_err(), "the injected fault must surface");

    let bundle = mapper.into_bundle();
    // Every recorded op is one that actually completed: offsets/lengths are
    // internally consistent and serialization round-trips.
    for r in &bundle.vfd {
        if r.kind.moves_data() {
            assert!(r.len > 0 || r.kind == dayu_core::trace::vfd::IoKind::Read);
            assert!(r.end >= r.start);
        }
    }
    let bytes = bundle.to_jsonl_bytes();
    let back = TraceBundle::read_jsonl(&bytes[..]).unwrap();
    assert_eq!(back, bundle);
}

#[test]
fn transient_fault_is_retryable_at_the_application_level() {
    let mapper = Mapper::new("transient");
    mapper.set_task("t");
    let inner = FaultyVfd::new(MemVfd::new(), FaultPlan::transient_at(12));
    let file = H5File::create(
        mapper.wrap_vfd(inner, "f.h5"),
        "f.h5",
        mapper.file_options(),
    )
    .expect("creation is metadata-only, consumes no counted ops");
    let mut ds = file
        .root()
        .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[64]))
        .unwrap();
    // Enough writes to be certain one crosses the injected op; exactly one
    // (the 13th payload write) fails, and retries succeed.
    let mut failures = 0;
    let mut last_ok = 0u64;
    for attempt in 0..20u64 {
        match ds.write_u64s(&[attempt; 64]) {
            Ok(()) => last_ok = attempt,
            Err(_) => failures += 1,
        }
    }
    assert_eq!(failures, 1, "exactly one injected failure");
    assert_eq!(last_ok, 19);
    assert_eq!(ds.read_u64s().unwrap(), vec![19u64; 64], "last write won");
    ds.close().unwrap();
    file.close().unwrap();
}

#[test]
fn workflow_task_failure_aborts_the_record_cleanly() {
    // A workflow whose second stage fails: record() returns the error and
    // the shared filesystem still holds stage-1 output intact.
    let fs = MemFs::new();
    let spec = WorkflowSpec::new("failing")
        .stage(
            "ok",
            vec![TaskSpec::new("producer", |io: &TaskIo| {
                let f = io.create("good.h5")?;
                let mut ds = f
                    .root()
                    .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 1 }, &[8]))?;
                ds.write(&[1; 8])?;
                ds.close()?;
                f.close()
            })],
        )
        .stage(
            "bad",
            vec![TaskSpec::new("crasher", |io: &TaskIo| {
                io.open("does_not_exist.h5").map(|_| ())
            })],
        );
    let err = match record(&spec, &fs) {
        Err(e) => e,
        Ok(_) => panic!("record should fail"),
    };
    assert!(matches!(err, HdfError::NotFound(_)));
    // Stage-1 output survives and is readable.
    let f = H5File::open(fs.open("good.h5"), "good.h5", FileOptions::default()).unwrap();
    assert_eq!(
        f.root().open_dataset("d").unwrap().read().unwrap(),
        vec![1; 8]
    );
    f.close().unwrap();
}
