//! Integration tests for the command-line tools (`dayu-analyze`,
//! `dayu-h5ls`): write real artifacts to disk, invoke the binaries, check
//! their output.

use dayu::prelude::*;
use std::path::PathBuf;
use std::process::Command;

fn bin(name: &str) -> PathBuf {
    // target/debug/<name>, next to the test executable's directory.
    let mut p = std::env::current_exe().unwrap();
    p.pop(); // deps/
    p.pop(); // debug/
    p.push(name);
    p
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dayu-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn dayu_h5ls_lists_a_real_file() {
    let dir = tmp_dir("h5ls");
    let path = dir.join("sample.h5");
    {
        let vfd = dayu_core::vfd::FileVfd::create(&path).unwrap();
        let f = H5File::create(vfd, "sample.h5", FileOptions::default()).unwrap();
        let g = f.root().create_group("observations").unwrap();
        let mut ds = g
            .create_dataset(
                "radar",
                DatasetBuilder::new(DataType::Float { width: 8 }, &[32, 8]).chunks(&[8, 8]),
            )
            .unwrap();
        ds.write_f64s(&vec![1.0; 256]).unwrap();
        ds.set_attr("station", AttrValue::Str("KOUN".into()))
            .unwrap();
        ds.close().unwrap();
        f.close().unwrap();
    }

    let out = Command::new(bin("dayu-h5ls"))
        .arg(&path)
        .args(["--extents", "--attrs"])
        .output()
        .expect("run dayu-h5ls");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("observations/"), "{text}");
    assert!(text.contains("radar"), "{text}");
    assert!(text.contains("chunked"), "{text}");
    assert!(text.contains("shape [32, 8]"), "{text}");
    assert!(text.contains("@station = \"KOUN\""), "{text}");
    assert!(text.contains("extent ["), "{text}");
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dayu_h5ls_rejects_garbage() {
    let dir = tmp_dir("h5ls-bad");
    let path = dir.join("garbage.h5");
    std::fs::write(&path, vec![0u8; 256]).unwrap();
    let out = Command::new(bin("dayu-h5ls")).arg(&path).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a valid file"));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dayu_analyze_processes_a_trace() {
    let dir = tmp_dir("analyze");
    // Produce a trace with a known reuse finding.
    let fs = MemFs::new();
    let spec = WorkflowSpec::new("cli_wf")
        .stage(
            "w",
            vec![TaskSpec::new("writer", |io: &TaskIo| {
                let f = io.create("shared.h5")?;
                let mut ds = f.root().create_dataset(
                    "d",
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[4096]),
                )?;
                ds.write(&[7; 4096])?;
                ds.close()?;
                f.close()
            })],
        )
        .stage("r", {
            (0..2)
                .map(|i| {
                    TaskSpec::new(format!("reader_{i}"), |io: &TaskIo| {
                        let f = io.open("shared.h5")?;
                        f.root().open_dataset("d")?.read()?;
                        f.close()
                    })
                })
                .collect()
        });
    let run = record(&spec, &fs).unwrap();
    let trace_path = dir.join("trace.jsonl");
    let mut f = std::fs::File::create(&trace_path).unwrap();
    run.bundle.write_jsonl(&mut f).unwrap();
    drop(f);

    let out_dir = dir.join("report");
    let out = Command::new(bin("dayu-analyze"))
        .arg(&trace_path)
        .args(["--regions", "4", "--aggregate", "--out"])
        .arg(&out_dir)
        .output()
        .expect("run dayu-analyze");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("workflow \"cli_wf\""), "{text}");
    assert!(text.contains("aggregated"), "{text}");
    assert!(text.contains("data-reuse"), "{text}");
    assert!(text.contains("recommendations"), "{text}");
    for name in ["ftg.html", "sdg.html", "ftg.dot", "sdg.json"] {
        assert!(out_dir.join(name).exists(), "{name} missing");
    }
    std::fs::remove_dir_all(dir).unwrap();
}

/// Walks the raw metadata of an on-disk file to the chunk index of
/// `observations/radar`, returning the index block's address.
fn chunk_index_addr(image: &[u8]) -> u64 {
    use dayu_hdf::meta::{self, LayoutMessage, ObjectHeader, Superblock};
    let sb = Superblock::decode(&image[..meta::SUPERBLOCK_SIZE as usize]).unwrap();
    let hdr = |addr: u64| {
        ObjectHeader::decode(&image[addr as usize..(addr + meta::HEADER_BLOCK_SIZE) as usize])
            .unwrap()
    };
    let table = |h: &ObjectHeader| {
        dayu_hdf::group::decode_table(
            &image[h.table_addr as usize..(h.table_addr + h.table_len) as usize],
        )
        .unwrap()
    };
    let root = hdr(sb.root_addr);
    let obs = table(&root)
        .into_iter()
        .find(|e| e.name == "observations")
        .unwrap();
    let radar = table(&hdr(obs.addr))
        .into_iter()
        .find(|e| e.name == "radar")
        .unwrap();
    match hdr(radar.addr).layout {
        Some(LayoutMessage::Chunked { index_addr, .. }) => index_addr,
        other => panic!("expected chunked layout, got {other:?}"),
    }
}

#[test]
fn dayu_h5ls_fsck_catches_corrupted_chunk_index() {
    let dir = tmp_dir("fsck");
    let path = dir.join("sample.h5");
    {
        let vfd = dayu_core::vfd::FileVfd::create(&path).unwrap();
        let f = H5File::create(vfd, "sample.h5", FileOptions::default()).unwrap();
        let g = f.root().create_group("observations").unwrap();
        let mut ds = g
            .create_dataset(
                "radar",
                DatasetBuilder::new(DataType::Float { width: 8 }, &[32, 8]).chunks(&[8, 8]),
            )
            .unwrap();
        ds.write_f64s(&vec![1.0; 256]).unwrap();
        ds.close().unwrap();
        f.close().unwrap();
    }

    // An intact file passes --fsck and still prints the listing.
    let out = Command::new(bin("dayu-h5ls"))
        .arg(&path)
        .arg("--fsck")
        .output()
        .expect("run dayu-h5ls");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fsck: clean"), "{text}");
    assert!(text.contains("radar"), "{text}");

    // Point the first chunk-index entry far beyond the end of the file.
    let mut image = std::fs::read(&path).unwrap();
    let entry = chunk_index_addr(&image) as usize + 4;
    image[entry..entry + 8].copy_from_slice(&u64::MAX.to_le_bytes()[..8]);
    std::fs::write(&path, &image).unwrap();

    let out = Command::new(bin("dayu-h5ls"))
        .arg(&path)
        .arg("--fsck")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chunk-out-of-bounds"), "{text}");
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dayu_analyze_check_passes_clean_trace_and_flags_planted_hazard() {
    use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
    use dayu_trace::time::Timestamp;
    use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};

    let dir = tmp_dir("check");

    // A clean recorded run is hazard-free.
    let fs = MemFs::new();
    let spec = WorkflowSpec::new("check_wf")
        .stage(
            "w",
            vec![TaskSpec::new("writer", |io: &TaskIo| {
                let f = io.create("out.h5")?;
                let mut ds = f
                    .root()
                    .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 1 }, &[512]))?;
                ds.write(&[3; 512])?;
                ds.close()?;
                f.close()
            })],
        )
        .stage(
            "r",
            vec![TaskSpec::new("reader", |io: &TaskIo| {
                let f = io.open("out.h5")?;
                f.root().open_dataset("d")?.read()?;
                f.close()
            })],
        );
    let run = record(&spec, &fs).unwrap();
    let clean_path = dir.join("clean.jsonl");
    let mut f = std::fs::File::create(&clean_path).unwrap();
    run.bundle.write_jsonl(&mut f).unwrap();
    drop(f);
    let out = Command::new(bin("dayu-analyze"))
        .args(["check"])
        .arg(&clean_path)
        .output()
        .expect("run dayu-analyze check");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("no dataflow hazards"));

    // A trace whose reader observably started before the writer is flagged.
    let mut bundle = dayu_trace::TraceBundle::new("planted");
    for (task, kind, start, end) in [
        ("eager_reader", IoKind::Read, 0u64, 50),
        ("producer", IoKind::Write, 100, 200),
    ] {
        bundle.vfd.push(VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new("data.h5"),
            kind,
            offset: 0,
            len: 1024,
            access: AccessType::RawData,
            object: ObjectKey::new("/d"),
            start: Timestamp(start),
            end: Timestamp(end),
        });
    }
    let bad_path = dir.join("planted.jsonl");
    let mut f = std::fs::File::create(&bad_path).unwrap();
    bundle.write_jsonl(&mut f).unwrap();
    drop(f);
    let out = Command::new(bin("dayu-analyze"))
        .args(["check"])
        .arg(&bad_path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("read-before-write"), "{text}");
    std::fs::remove_dir_all(dir).unwrap();
}

/// `dayu-analyze record` exit-code contract: 0 — clean run; 3 — degraded
/// trace but every surviving image intact or repairable; 4 — at least one
/// image is beyond recovery (no valid superblock slot).
#[test]
fn dayu_analyze_record_exit_codes_track_damage() {
    // Clean run: exit 0.
    let out = Command::new(bin("dayu-analyze"))
        .args(["record", "ddmd"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A device dead from the first raw-data op with no retry budget:
    // every task fails, but each image is either empty (skipped by the
    // audit) or carries the intact superblock written before death —
    // degraded trace, repairable images, exit 3.
    let out = Command::new(bin("dayu-analyze"))
        .args([
            "record",
            "ddmd",
            "--chaos-seed",
            "1",
            "--dead-at",
            "0",
            "--retries",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("degraded"), "{text}");

    // A torn crash at write-op 1 lands mid-superblock during file
    // bootstrap (write 0 is the root header, write 1 the first
    // superblock), so neither slot ever becomes valid: unrecoverable
    // corruption, exit 4.
    let out = Command::new(bin("dayu-analyze"))
        .args([
            "record",
            "ddmd",
            "--crash-seed",
            "1",
            "--crash-at",
            "1",
            "--retries",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("UNRECOVERABLE"), "{text}");
}

/// `dayu-h5ls --fsck --repair` rolls a torn journaled image forward to a
/// clean state in place.
#[test]
fn dayu_h5ls_repair_heals_a_torn_journaled_image() {
    use dayu_core::vfd::{CrashSchedule, CrashVfd, MemFs, Vfd};

    // Stages `image` into a fresh in-memory file and reads dataset "a".
    fn read_a(image: &[u8]) -> Option<Vec<u64>> {
        let mem = MemFs::new();
        let mut v = mem.create("x.h5");
        v.write(0, image, dayu_core::trace::AccessType::RawData)
            .ok()?;
        let f = H5File::open(mem.open_existing("x.h5")?, "x.h5", FileOptions::default()).ok()?;
        let mut a = f.root().open_dataset("a").ok()?;
        let data = a.read_u64s().ok()?;
        a.close().ok()?;
        f.close().ok()?;
        Some(data)
    }
    let dir = tmp_dir("h5ls-repair");
    let path = dir.join("torn.h5");

    // Build a torn image: journaled file, two commit epochs, crash swept
    // past bootstrap (write 0/1) until a point leaves the image dirty
    // but with its superblock intact.
    let torn_image = |crash_at: u64| -> Vec<u8> {
        let fs = MemFs::new();
        let ctrl = CrashSchedule::new(11)
            .with_crash_at(crash_at)
            .torn()
            .controller_for("t");
        let vfd = CrashVfd::with_controller(fs.create("torn.h5"), ctrl);
        let opts = FileOptions::default().with_durability(dayu_core::hdf::Durability::Journal);
        let body = || -> dayu_core::hdf::Result<()> {
            let f = H5File::create(vfd, "torn.h5", opts)?;
            let mut a = f
                .root()
                .create_dataset("a", DatasetBuilder::new(DataType::Int { width: 8 }, &[32]))?;
            a.write_u64s(&[7; 32])?;
            a.close()?;
            f.flush()?;
            let mut b = f
                .root()
                .create_dataset("b", DatasetBuilder::new(DataType::Int { width: 8 }, &[32]))?;
            b.write_u64s(&[9; 32])?;
            b.close()?;
            f.close()
        };
        let _ = body();
        fs.snapshot("torn.h5").unwrap()
    };
    // Pick a point whose image is dirty *and* post-dates the first
    // commit (so repair must preserve the committed dataset "a").
    let image = (2..64)
        .map(torn_image)
        .find(|img| {
            if fsck_bytes(img).is_clean() {
                return false;
            }
            let mut scratch = img.clone();
            dayu_core::lint::repair_bytes(&mut scratch).is_clean()
                && read_a(&scratch).as_deref() == Some(&[7u64; 32][..])
        })
        .expect("some crash point must leave a dirty image with 'a' committed");
    std::fs::write(&path, &image).unwrap();

    let out = Command::new(bin("dayu-h5ls"))
        .arg(&path)
        .args(["--fsck", "--repair"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clean after"), "{text}");

    // The repair persisted: the image on disk is now fsck-clean and the
    // committed dataset survived.
    let healed = std::fs::read(&path).unwrap();
    assert!(fsck_bytes(&healed).is_clean());
    assert_eq!(read_a(&healed).as_deref(), Some(&[7u64; 32][..]));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dayu_analyze_rejects_missing_and_garbage_input() {
    let out = Command::new(bin("dayu-analyze"))
        .arg("/nonexistent/trace.jsonl")
        .output()
        .unwrap();
    assert!(!out.status.success());

    let dir = tmp_dir("analyze-bad");
    let p = dir.join("bad.jsonl");
    std::fs::write(&p, "this is not json\n").unwrap();
    let out = Command::new(bin("dayu-analyze")).arg(&p).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dayu_analyze_serve_and_ingest_round_trip() {
    use std::io::{BufRead, BufReader, Read};

    let dir = tmp_dir("serve");
    let trace = dir.join("wf.dtb");
    {
        use dayu_trace::{
            AccessType, FileKey, IoKind, ObjectKey, TaskKey, Timestamp, TraceBundle, VfdRecord,
        };
        let mut b = TraceBundle::new("wf-serve");
        for t in ["produce", "consume"] {
            b.push_task(TaskKey::new(t));
        }
        for (i, (task, kind)) in [("produce", IoKind::Write), ("consume", IoKind::Read)]
            .iter()
            .enumerate()
        {
            b.vfd.push(VfdRecord {
                task: TaskKey::new(*task),
                file: FileKey::new("data.h5"),
                object: ObjectKey::new("/grid"),
                kind: *kind,
                offset: 0,
                len: 4096,
                access: AccessType::RawData,
                start: Timestamp(i as u64 * 100),
                end: Timestamp(i as u64 * 100 + 50),
            });
        }
        std::fs::write(&trace, b.to_binary_bytes()).unwrap();
    }

    // Port 0: the kernel picks a free port; the server prints the bound
    // address as its first output line.
    let mut child = Command::new(bin("dayu-analyze"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--idle-shutdown-ms",
            "1500",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn dayu-analyze serve");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let addr = first
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {first:?}"))
        .to_string();

    let out = Command::new(bin("dayu-analyze"))
        .arg("ingest")
        .arg(&trace)
        .args(["--addr", &addr])
        .output()
        .expect("run dayu-analyze ingest");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{text}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("accepted"), "{text}");
    assert!(
        text.contains("2 accepted, 0 duplicates, 0 quarantined"),
        "{text}"
    );

    // Re-ingesting the same trace is acknowledged as duplicates, not
    // double-counted.
    let out = Command::new(bin("dayu-analyze"))
        .arg("ingest")
        .arg(&trace)
        .args(["--addr", &addr])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{text}");
    assert!(text.contains("(duplicate)"), "{text}");
    assert!(text.contains("2 accepted, 2 duplicates"), "{text}");

    // The server idles out, prints per-tenant stats, and exits cleanly.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited with {status}: {rest}");
    assert!(rest.contains("tenant wf-serve"), "{rest}");
    assert!(rest.contains("2 accepted"), "{rest}");
    std::fs::remove_dir_all(dir).unwrap();
}
