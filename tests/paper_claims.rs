//! Integration-level checks of the paper's headline quantitative claims,
//! at the scales this substrate reproduces them. Deterministic claims are
//! asserted tightly; timing-based claims are asserted as shapes.

use dayu::prelude::*;
use dayu_bench::{fig11, fig12, fig13, Scale};
use dayu_core::workloads::corner_case::{self, CornerCaseConfig};
use dayu_core::workloads::{Backend, Instrumentation};

/// "Evaluation on scientific workflows demonstrates up to a 3.7x
/// performance improvement in I/O time for obscure bottlenecks."
#[test]
fn headline_up_to_3_7x_io_improvement() {
    let fig = fig13::run_13a(Scale::Quick);
    let best: f64 = fig
        .rows
        .iter()
        .map(|r| r[4].trim_end_matches('x').parse::<f64>().unwrap())
        .fold(0.0, f64::max);
    assert!(
        best >= 2.0,
        "the consolidation study should reach multi-x improvements, got {best:.2}x"
    );
    assert!(
        best <= 8.0,
        "improvements should stay in the paper's order of magnitude, got {best:.2}x"
    );
}

/// Fig. 11: "the workflow runtime from stages 3 to 5 shows an overall
/// speedup of 1.6x. Specifically, Stage 3 in experiment C1 shows a
/// speedup of 2.6x."
#[test]
fn placement_speedups_in_paper_regime() {
    let cfg = dayu_core::workloads::pyflextrkr::PyflextrkrConfig {
        input_files: 8,
        input_bytes: 128 << 10,
        feature_bytes: 64 << 10,
        small_datasets: 8,
        small_dataset_bytes: 400,
        small_dataset_accesses: 2,
        compute_ns: 15_000_000,
    };
    let out = fig11::run_configuration(&cfg, 2, "C1");
    assert!(
        (1.1..4.0).contains(&out.overall_speedup()),
        "overall {:.2}x",
        out.overall_speedup()
    );
    assert!(
        out.stage3_speedup() >= out.overall_speedup() * 0.8,
        "stage 3 is where the all-to-all contention lived: {:.2}x vs {:.2}x",
        out.stage3_speedup(),
        out.overall_speedup()
    );
}

/// Fig. 12: "a 1.15x performance improvement per pipeline iteration and a
/// 1.2x improvement across a 5-iteration pipeline."
#[test]
fn ddmd_improvement_is_modest_like_the_paper() {
    let (cfg, nodes) = (
        dayu_core::workloads::ddmd::DdmdConfig {
            sim_tasks: 4,
            iterations: 2,
            contact_map_dim: 64,
            point_cloud_points: 128,
            scalar_series_len: 32,
            compute_ns: 60_000_000,
            ..Default::default()
        },
        2,
    );
    let out = fig12::run_configuration(&cfg, nodes);
    let s = out.pipeline_speedup();
    assert!(
        (1.02..3.0).contains(&s),
        "a real but modest win, got {s:.2}x"
    );
}

/// "The time and storage overhead for DaYu's time-ordered data are
/// typically under 0.2% of runtime and 0.25% of data volume" — the storage
/// half is deterministic and assertable: with I/O tracing *off*, trace
/// storage is far below the paper's bound for bulk workloads.
#[test]
fn vol_storage_overhead_small_for_bulk_io() {
    let run = corner_case::run(
        &CornerCaseConfig {
            datasets: 16,
            file_bytes: 32 << 20,
            dataset_reads: 64,
        },
        Backend::mem(),
        Instrumentation::VolOnly,
    )
    .unwrap();
    let frac = run.vol_storage() as f64 / run.app_bytes as f64;
    assert!(
        frac < 0.0025,
        "VOL trace is {:.4}% of data volume (paper: ~0.2%)",
        frac * 100.0
    );
}

/// "Runtime overhead increases with higher I/O activity within a file's
/// open/close period" — the VFD trace grows linearly while VOL does not,
/// which is the mechanism behind both Fig. 9c and 9d.
#[test]
fn tracing_cost_grows_with_io_activity() {
    let at = |reads: usize| {
        corner_case::run(
            &CornerCaseConfig {
                datasets: 32,
                file_bytes: 1 << 20,
                dataset_reads: reads,
            },
            Backend::mem(),
            Instrumentation::Full,
        )
        .unwrap()
    };
    let lo = at(50);
    let hi = at(500);
    let vfd_growth = hi.vfd_storage() as f64 / lo.vfd_storage() as f64;
    // VOL records grow only through their lifetime lists (one interval per
    // reopen) while the VFD trace grows with every operation: the growth
    // factors must stay far apart.
    let vol_growth = hi.vol_storage() as f64 / lo.vol_storage() as f64;
    // (Creation ops are a fixed cost in both runs, so 10x the reads gives
    // somewhat under 10x the VFD records.)
    assert!(vfd_growth > 3.0, "vfd {vfd_growth:.2}x");
    assert!(
        vol_growth < vfd_growth / 1.5,
        "vol {vol_growth:.2}x vs vfd {vfd_growth:.2}x"
    );
}

/// The Workflow Analyzer scale claim: "less than 15 seconds to analyze a
/// graph with 1k nodes and 6k edges, and less than 2 seconds to construct
/// the corresponding FTG and SDG in HTML format." Our budget here is far
/// stricter since the claim was for their Python implementation.
#[test]
fn analyzer_scales_to_1k_nodes() {
    use dayu_core::trace::ids::{FileKey, ObjectKey, TaskKey};
    use dayu_core::trace::time::Timestamp;
    use dayu_core::trace::vfd::{AccessType, IoKind, VfdRecord};

    let mut b = TraceBundle::new("scale");
    for t in 0..400u64 {
        b.push_task(TaskKey::new(format!("task_{t:03}")));
        for k in 0..15u64 {
            b.vfd.push(VfdRecord {
                task: TaskKey::new(format!("task_{t:03}")),
                file: FileKey::new(format!("file_{:03}.h5", (t * 3 + k) % 300)),
                kind: if k % 3 == 0 {
                    IoKind::Write
                } else {
                    IoKind::Read
                },
                offset: k * 4096,
                len: 4096,
                access: AccessType::RawData,
                object: ObjectKey::new(format!("/dset_{}", (t + k) % 500)),
                start: Timestamp(t * 1000 + k),
                end: Timestamp(t * 1000 + k + 50),
            });
        }
    }
    let t0 = std::time::Instant::now();
    let analysis = Analysis::run(&b);
    let analyze_secs = t0.elapsed().as_secs_f64();
    assert!(
        analysis.sdg.nodes.len() > 1000,
        "{}",
        analysis.sdg.nodes.len()
    );
    assert!(
        analyze_secs < 15.0,
        "analysis took {analyze_secs:.1}s (paper bound: 15s)"
    );

    let t0 = std::time::Instant::now();
    let html = dayu_core::analyzer::export::to_html(&analysis.sdg);
    let html_secs = t0.elapsed().as_secs_f64();
    assert!(html.len() > 10_000);
    assert!(
        html_secs < 2.0,
        "HTML took {html_secs:.1}s (paper bound: 2s)"
    );
}
