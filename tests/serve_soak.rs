//! Soak test for the resilient streaming-ingest service: many tenants,
//! interleaved per-task sections, planted corrupt frames, duplicated
//! sends. The acceptance bar (ISSUE 10):
//!
//! * the run completes with zero panics — corrupt frames go straight
//!   through the ingest path;
//! * every planted-bad section is quarantined with a structured report,
//!   and the counts match exactly;
//! * every unaffected tenant's live graph is identical (nodes, edges,
//!   ids) to the one-shot batch `analyzer::build` of its trace — and
//!   affected tenants match the batch build of their *surviving*
//!   sections;
//! * peak retained memory stays under the configured budgets.

use dayu_analyzer::{build_ftg, build_sdg, Finding, SdgOptions};
use dayu_served::{Budgets, IngestStatus, QuarantineCause, Served};
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::time::Timestamp;
use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
use dayu_trace::{decode_section, sha256, TraceBundle};

const TENANTS: usize = 20;
const TASKS_PER_TENANT: usize = 10;
const RECORDS_PER_SECTION: usize = 24;

fn workflow_name(tenant: usize) -> String {
    format!("soak-wf-{tenant:02}")
}

/// A deterministic producer/consumer workload for one tenant.
fn tenant_bundle(tenant: usize) -> TraceBundle {
    let workflow = workflow_name(tenant);
    let mut b = TraceBundle::new(&workflow);
    for t in 0..TASKS_PER_TENANT {
        b.push_task(TaskKey::new(format!("task-{t:02}")));
    }
    let mut at = (tenant as u64) * 10;
    for t in 0..TASKS_PER_TENANT {
        let task = TaskKey::new(format!("task-{t:02}"));
        for r in 0..RECORDS_PER_SECTION {
            let file = FileKey::new(format!("f{}.h5", (t + r) % 3));
            let write = t % 2 == 0 || r % 4 == 0;
            b.vfd.push(VfdRecord {
                task: task.clone(),
                file,
                object: ObjectKey::new(format!("/d{}", r % 5)),
                kind: if write { IoKind::Write } else { IoKind::Read },
                offset: (r as u64) * 1024,
                len: 1024,
                access: if r % 6 == 5 {
                    AccessType::Metadata
                } else {
                    AccessType::RawData
                },
                start: Timestamp(at),
                end: Timestamp(at + 50),
            });
            at += 70;
        }
    }
    b
}

/// How a planted-corrupt section is mangled. Every kind must surface as a
/// quarantine — flips are pre-screened so only structurally fatal ones
/// are planted (a flip that still decodes is legal input, not corruption
/// the service could possibly detect without a digest mismatch).
enum Corruption {
    Truncate,
    FlipFatal,
    DigestLie,
}

fn main_loop() -> (Served, Vec<u64>, Vec<TraceBundle>, usize) {
    let budgets = Budgets {
        max_tenants: TENANTS,
        ..Budgets::unlimited()
    };
    let served = Served::with_clock(budgets, std::sync::Arc::new(dayu_trace::ManualClock::new()));
    let bundles: Vec<TraceBundle> = (0..TENANTS).map(tenant_bundle).collect();
    let sections: Vec<Vec<Vec<u8>>> = bundles
        .iter()
        .map(|b| {
            b.split_per_task()
                .iter()
                .map(TraceBundle::to_binary_bytes)
                .collect()
        })
        .collect();

    // Plan corruption: every third tenant is a victim; each victim gets
    // bad frames at a >5% global rate across the section stream.
    let mut expected_quarantined = vec![0u64; TENANTS];
    let mut corrupt_sent = 0usize;
    let mut surviving: Vec<TraceBundle> = bundles
        .iter()
        .map(|b| {
            let mut clean = b.clone();
            clean.vfd.clear();
            clean.vol.clear();
            clean.files.clear();
            clean
        })
        .collect();

    // Interleave: section s of tenant 0, 1, ..., then s+1, resending
    // every 7th frame to exercise digest dedup.
    for s in 0..TASKS_PER_TENANT {
        for tenant in 0..TENANTS {
            let workflow = workflow_name(tenant);
            let clean = &sections[tenant][s];
            let seq = s * TENANTS + tenant;
            let victim = tenant % 3 == 0 && s % 4 != 3;
            let corruption = if !victim {
                None
            } else {
                match seq % 3 {
                    0 => Some(Corruption::Truncate),
                    1 => Some(Corruption::FlipFatal),
                    _ => Some(Corruption::DigestLie),
                }
            };
            let (payload, declared, expect_quarantine) = match corruption {
                None => (clean.clone(), sha256(clean), false),
                Some(Corruption::Truncate) => {
                    // Cut mid-frame: a cut that happens to land on a frame
                    // boundary yields a *valid* shorter section, which is
                    // legal input — walk back until the decoder rejects it.
                    let mut cut = clean.len() / 2 + seq % 16;
                    while cut > 9 && decode_section(&clean[..cut]).is_ok() {
                        cut -= 1;
                    }
                    let bytes = clean[..cut].to_vec();
                    assert!(
                        decode_section(&bytes).is_err(),
                        "no mid-frame cut point found"
                    );
                    let d = sha256(&bytes);
                    (bytes, d, true)
                }
                Some(Corruption::FlipFatal) => {
                    // Find a flip the decoder actually rejects; such a
                    // position always exists (flip the magic).
                    let mut bytes = clean.clone();
                    let mut pos = 8 + (seq * 2654435761) % (bytes.len() - 8);
                    let mut found = false;
                    for _ in 0..bytes.len() {
                        bytes[pos] ^= 0xFF;
                        if decode_section(&bytes).is_err() {
                            found = true;
                            break;
                        }
                        bytes[pos] ^= 0xFF;
                        pos = (pos + 1) % bytes.len();
                    }
                    assert!(found, "no fatal flip found");
                    let d = sha256(&bytes);
                    (bytes, d, true)
                }
                Some(Corruption::DigestLie) => (clean.clone(), [0x5A; 32], true),
            };
            if expect_quarantine {
                corrupt_sent += 1;
                expected_quarantined[tenant] += 1;
            } else {
                let sec = decode_section(&payload).expect("clean section decodes");
                surviving[tenant].vfd.extend(sec.vfd.iter().cloned());
                surviving[tenant].vol.extend(sec.vol.iter().cloned());
                surviving[tenant].files.extend(sec.files.iter().cloned());
            }

            match served.ingest(&workflow, &payload, Some(declared)) {
                IngestStatus::Accepted { duplicate, .. } => {
                    assert!(!expect_quarantine, "corrupt section absorbed");
                    assert!(!duplicate, "first send cannot be a duplicate");
                }
                IngestStatus::Quarantined(report) => {
                    assert!(expect_quarantine, "clean section quarantined: {report}");
                    assert_eq!(report.tenant, workflow);
                    assert!(report.offset <= payload.len() as u64);
                    assert_eq!(report.len, payload.len() as u64);
                    match report.cause {
                        QuarantineCause::DigestMismatch { declared, computed } => {
                            assert_eq!(declared, [0x5A; 32]);
                            assert_eq!(computed, sha256(&payload));
                        }
                        QuarantineCause::Truncated | QuarantineCause::Malformed(_) => {}
                        QuarantineCause::DecoderPanic(ref m) => {
                            panic!("decoder panicked on planted corruption: {m}")
                        }
                    }
                }
                other => panic!("unexpected status {other:?}"),
            }

            // Duplicate resend of clean frames: must be acknowledged as a
            // duplicate and change nothing.
            if !expect_quarantine && seq % 7 == 0 {
                match served.ingest(&workflow, &payload, Some(declared)) {
                    IngestStatus::Accepted { duplicate, .. } => assert!(duplicate),
                    other => panic!("duplicate resend got {other:?}"),
                }
            }
        }
    }
    (served, expected_quarantined, surviving, corrupt_sent)
}

#[test]
fn soak_quarantines_exactly_and_keeps_healthy_graphs_identical() {
    let (served, expected_quarantined, surviving, corrupt_sent) = main_loop();

    // >5% of the stream was corrupt.
    let total_sections = TENANTS * TASKS_PER_TENANT;
    assert!(
        corrupt_sent * 20 >= total_sections,
        "corruption rate under 5%: {corrupt_sent}/{total_sections}"
    );

    let sdg_opts = SdgOptions {
        include_regions: true,
        region_count: 4,
    };
    for tenant in 0..TENANTS {
        let workflow = workflow_name(tenant);
        let stats = served.stats(&workflow).expect("tenant resident");
        assert_eq!(
            stats.quarantined, expected_quarantined[tenant],
            "tenant {workflow} quarantine count"
        );
        assert_eq!(stats.dropped, 0, "nothing throttled or rejected");

        // Live graphs must equal the batch build of the surviving
        // sections — for unaffected tenants that is the full trace.
        let reference = &surviving[tenant];
        let live_ftg = served.snapshot_ftg(&workflow).unwrap();
        let batch_ftg = build_ftg(reference);
        assert_eq!(live_ftg.nodes, batch_ftg.nodes, "{workflow} FTG nodes");
        assert_eq!(live_ftg.edges, batch_ftg.edges, "{workflow} FTG edges");
        let live_sdg = served.snapshot_sdg(&workflow, &sdg_opts).unwrap();
        let batch_sdg = build_sdg(reference, &sdg_opts);
        assert_eq!(live_sdg.nodes, batch_sdg.nodes, "{workflow} SDG nodes");
        assert_eq!(live_sdg.edges, batch_sdg.edges, "{workflow} SDG edges");
    }

    // The quarantine log holds every report; memory stayed bounded.
    assert_eq!(
        served.quarantine_log().len(),
        corrupt_sent,
        "one structured report per bad section"
    );
    assert!(served.total_retained_bytes() > 0);

    // The watchdog degrades exactly the victim tenants, with exact
    // counts, and the advisor turns each into a re-ingest.
    let findings = served.watchdog();
    let expected_victims = (0..TENANTS)
        .filter(|t| expected_quarantined[*t] > 0)
        .count();
    assert_eq!(findings.len(), expected_victims);
    for f in &findings {
        match f {
            Finding::DegradedIngest {
                workflow,
                quarantined,
                ..
            } => {
                let tenant: usize = workflow["soak-wf-".len()..].parse().unwrap();
                assert_eq!(*quarantined, expected_quarantined[tenant]);
            }
            other => panic!("unexpected finding {other:?}"),
        }
    }
    let recs = dayu_advisor::advise(&findings);
    assert_eq!(recs.len(), expected_victims);
    for r in &recs {
        assert!(matches!(
            r.action,
            dayu_advisor::Action::ReingestWorkflow { .. }
        ));
    }
}

#[test]
fn soak_respects_byte_budgets_under_pressure() {
    // Tight per-tenant budget — three sections' worth of retained
    // records — so the service must shed load, never exceed the cap,
    // and mark the tenant degraded rather than dying. Budgets are in
    // retained (in-memory) bytes, so size them from the record structs.
    let section_retained = RECORDS_PER_SECTION * std::mem::size_of::<dayu_trace::VfdRecord>();
    let budgets = Budgets {
        max_bytes_per_tenant: section_retained * 3,
        max_bytes_total: section_retained * 8,
        ..Budgets::unlimited()
    };
    let served = Served::with_clock(
        budgets.clone(),
        std::sync::Arc::new(dayu_trace::ManualClock::new()),
    );
    let mut rejected = 0usize;
    for tenant in 0..4 {
        let workflow = workflow_name(tenant);
        for (s, section) in tenant_bundle(tenant).split_per_task().iter().enumerate() {
            // Grow the payload by varying record content per round so no
            // two sections dedup.
            let mut b = section.clone();
            for r in &mut b.vfd {
                r.offset += (s as u64) << 20;
            }
            let bytes = b.to_binary_bytes();
            match served.ingest(&workflow, &bytes, Some(sha256(&bytes))) {
                IngestStatus::Accepted { .. } => {}
                IngestStatus::Rejected { reason } => {
                    assert!(reason.contains("budget"));
                    rejected += 1;
                }
                other => panic!("unexpected status {other:?}"),
            }
        }
        let stats = served.stats(&workflow).expect("resident");
        // The budget check runs before each absorb, so a tenant can
        // overshoot by at most one section's worth of retained records.
        assert!(
            stats.retained_bytes <= budgets.max_bytes_per_tenant + section_retained,
            "tenant {workflow} over budget: {} bytes",
            stats.retained_bytes
        );
    }
    assert!(rejected > 0, "pressure never triggered shedding");
    assert!(served.total_retained_bytes() <= budgets.max_bytes_total);
    let findings = served.watchdog();
    assert!(
        findings.iter().all(
            |f| matches!(f, Finding::DegradedIngest { reason, .. } if reason.contains("budget"))
        ),
        "{findings:?}"
    );
    assert!(!findings.is_empty());
}
