//! Integration: the *semantics* half of the paper's semantics+dynamics
//! split, end to end. Declared I/O contracts alone — no recorded trace
//! and no `ExtentCatalog`, ever — prove a barrier removal safe, reject
//! an unsafe one, and split planted defects between the pre-run static
//! pass and the post-run conformance sweep.

use dayu_core::workloads::corner_case;
use dayu_lint::{
    analyze_contracts, check_conformance, verified_with_contracts, ContractCatalog, Finding,
    LintConfig,
};
use dayu_sim::{SimOp, SimTask};
use dayu_vfd::MemFs;
use dayu_workflow::{record, transform};

const CHUNK: u64 = corner_case::CHUNK_BYTES;

/// Serialized replay plan of the partitioned chunk writers. The plan
/// layer only knows both tasks write the shared file, so writer 1 is
/// conservatively ordered after writer 0 — the barrier the transform
/// wants to remove.
fn serialized_writers() -> Vec<SimTask> {
    vec![
        SimTask::new("chunk_writer_0")
            .with_program(vec![SimOp::write(corner_case::SHARED_FILE, CHUNK)]),
        SimTask::new("chunk_writer_1")
            .after(&[0])
            .with_program(vec![SimOp::write(corner_case::SHARED_FILE, CHUNK)]),
    ]
}

#[test]
fn disjoint_parallelize_is_discharged_from_contracts_alone() {
    // The workflow's declarations partition the shared dataset into
    // per-writer chunks; the static pass proves them race-free before
    // any VFD is opened.
    let spec = corner_case::partitioned_workflow(2);
    let report = analyze_contracts(&spec, &LintConfig::default());
    assert!(report.is_clean(), "{:?}", report.findings);

    // The declared footprints are the verifier's only oracle here: the
    // plan-level write-write race the rewrite would introduce is
    // discharged by proven disjointness, with nothing ever recorded.
    let contracts = ContractCatalog::from_spec(&spec);
    let mut plan = serialized_writers();
    verified_with_contracts(&mut plan, "parallelize", &contracts, |t| {
        transform::parallelize(t, "chunk_writer_0", "chunk_writer_1")
    })
    .expect("declared disjoint partitions must discharge the barrier removal");
    assert!(plan[1].deps.is_empty(), "barrier removed");
}

#[test]
fn overlapping_contracts_reject_the_same_parallelize() {
    // Same plan, but the declarations overlap by 512 bytes: the
    // verifier must refuse the rewrite, restore the plan, and name the
    // colliding byte range.
    let contracts = ContractCatalog::from_spec(&corner_case::racy_workflow(2, 512));
    let mut plan = serialized_writers();
    let before = plan.clone();
    let err = verified_with_contracts(&mut plan, "parallelize", &contracts, |t| {
        transform::parallelize(t, "chunk_writer_0", "chunk_writer_1")
    })
    .unwrap_err();
    assert_eq!(plan, before, "plan restored on rejection");
    assert!(
        err.report.findings.iter().any(|f| matches!(
            f,
            Finding::ExtentRace {
                write_write: true,
                ..
            }
        )),
        "{err}"
    );
}

#[test]
fn planted_spill_passes_static_analysis_but_fails_conformance() {
    // The dual defect: declarations are a clean partition (the static
    // pass sees nothing), but writer 0's behaviour spills past its
    // declared chunk — only replaying the recorded trace against the
    // contracts exposes it.
    let spec = corner_case::violating_workflow(2, 256);
    let report = analyze_contracts(&spec, &LintConfig::default());
    assert!(report.is_clean(), "{:?}", report.findings);

    let fs = MemFs::new();
    let run = record(&spec, &fs).expect("record");
    let report = check_conformance(&run.bundle, &spec);
    assert!(
        report.findings.iter().any(|f| matches!(
            f,
            Finding::ContractViolation {
                task,
                undeclared: true,
                start,
                end,
                ..
            } if task == "chunk_writer_0" && *start == CHUNK && *end == CHUNK + 256
        )),
        "spill flagged: {:?}",
        report.findings
    );
}
