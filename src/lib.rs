//! Umbrella package for the DaYu workspace: hosts the runnable examples in
//! `examples/` and cross-crate integration tests in `tests/`.
//!
//! Use [`dayu_core`] (re-exported here as [`core`]) as the library entry
//! point.
pub use dayu_core as core;
pub use dayu_core::prelude;
