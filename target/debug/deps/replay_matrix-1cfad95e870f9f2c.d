/root/repo/target/debug/deps/replay_matrix-1cfad95e870f9f2c.d: tests/replay_matrix.rs

/root/repo/target/debug/deps/replay_matrix-1cfad95e870f9f2c: tests/replay_matrix.rs

tests/replay_matrix.rs:
