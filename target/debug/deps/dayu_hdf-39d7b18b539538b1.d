/root/repo/target/debug/deps/dayu_hdf-39d7b18b539538b1.d: crates/hdf/src/lib.rs crates/hdf/src/alloc.rs crates/hdf/src/chunk.rs crates/hdf/src/codec.rs crates/hdf/src/crc.rs crates/hdf/src/dataset.rs crates/hdf/src/error.rs crates/hdf/src/file.rs crates/hdf/src/group.rs crates/hdf/src/heap.rs crates/hdf/src/hooks.rs crates/hdf/src/journal.rs crates/hdf/src/meta.rs crates/hdf/src/raw.rs crates/hdf/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_hdf-39d7b18b539538b1.rmeta: crates/hdf/src/lib.rs crates/hdf/src/alloc.rs crates/hdf/src/chunk.rs crates/hdf/src/codec.rs crates/hdf/src/crc.rs crates/hdf/src/dataset.rs crates/hdf/src/error.rs crates/hdf/src/file.rs crates/hdf/src/group.rs crates/hdf/src/heap.rs crates/hdf/src/hooks.rs crates/hdf/src/journal.rs crates/hdf/src/meta.rs crates/hdf/src/raw.rs crates/hdf/src/space.rs Cargo.toml

crates/hdf/src/lib.rs:
crates/hdf/src/alloc.rs:
crates/hdf/src/chunk.rs:
crates/hdf/src/codec.rs:
crates/hdf/src/crc.rs:
crates/hdf/src/dataset.rs:
crates/hdf/src/error.rs:
crates/hdf/src/file.rs:
crates/hdf/src/group.rs:
crates/hdf/src/heap.rs:
crates/hdf/src/hooks.rs:
crates/hdf/src/journal.rs:
crates/hdf/src/meta.rs:
crates/hdf/src/raw.rs:
crates/hdf/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
