/root/repo/target/debug/deps/dayu_core-9d6f193cdd3b566a.d: crates/core/src/lib.rs crates/core/src/auto.rs

/root/repo/target/debug/deps/libdayu_core-9d6f193cdd3b566a.rlib: crates/core/src/lib.rs crates/core/src/auto.rs

/root/repo/target/debug/deps/libdayu_core-9d6f193cdd3b566a.rmeta: crates/core/src/lib.rs crates/core/src/auto.rs

crates/core/src/lib.rs:
crates/core/src/auto.rs:
