/root/repo/target/debug/deps/dayu_mapper-5cd85aff25cd97a1.d: crates/mapper/src/lib.rs crates/mapper/src/config.rs crates/mapper/src/state.rs crates/mapper/src/timers.rs crates/mapper/src/vfd_profiler.rs crates/mapper/src/vol_profiler.rs

/root/repo/target/debug/deps/dayu_mapper-5cd85aff25cd97a1: crates/mapper/src/lib.rs crates/mapper/src/config.rs crates/mapper/src/state.rs crates/mapper/src/timers.rs crates/mapper/src/vfd_profiler.rs crates/mapper/src/vol_profiler.rs

crates/mapper/src/lib.rs:
crates/mapper/src/config.rs:
crates/mapper/src/state.rs:
crates/mapper/src/timers.rs:
crates/mapper/src/vfd_profiler.rs:
crates/mapper/src/vol_profiler.rs:
