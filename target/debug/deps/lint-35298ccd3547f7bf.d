/root/repo/target/debug/deps/lint-35298ccd3547f7bf.d: crates/bench/src/bin/lint.rs Cargo.toml

/root/repo/target/debug/deps/liblint-35298ccd3547f7bf.rmeta: crates/bench/src/bin/lint.rs Cargo.toml

crates/bench/src/bin/lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
