/root/repo/target/debug/deps/dayu_core-f39b0771b15a8c6b.d: crates/core/src/lib.rs crates/core/src/auto.rs

/root/repo/target/debug/deps/dayu_core-f39b0771b15a8c6b: crates/core/src/lib.rs crates/core/src/auto.rs

crates/core/src/lib.rs:
crates/core/src/auto.rs:
