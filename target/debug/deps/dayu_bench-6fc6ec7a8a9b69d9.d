/root/repo/target/debug/deps/dayu_bench-6fc6ec7a8a9b69d9.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig01.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig_graphs.rs crates/bench/src/io.rs crates/bench/src/lint.rs crates/bench/src/pipeline.rs crates/bench/src/recovery.rs crates/bench/src/replay.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/dayu_bench-6fc6ec7a8a9b69d9: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig01.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig_graphs.rs crates/bench/src/io.rs crates/bench/src/lint.rs crates/bench/src/pipeline.rs crates/bench/src/recovery.rs crates/bench/src/replay.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/fig01.rs:
crates/bench/src/fig09.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig_graphs.rs:
crates/bench/src/io.rs:
crates/bench/src/lint.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/recovery.rs:
crates/bench/src/replay.rs:
crates/bench/src/tables.rs:
